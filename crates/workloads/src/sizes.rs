//! Empirical flow-size distributions.
//!
//! Figure 19 reproduces the pFabric ns-2 study, which draws flow sizes from
//! the DCTCP paper's measured *web search* workload ("based on clusters in
//! Microsoft datacenters", §5.2). The standard CDF tables from the pFabric
//! simulation release are reproduced here, expressed in MTU packets, with
//! the same piecewise-linear inverse-CDF sampling ns-2's
//! `EmpiricalRandomVariable` performs.

use eiffel_sim::SplitMix64;

/// Payload bytes carried per full-sized packet in the DC simulations.
pub const PACKET_PAYLOAD_BYTES: u64 = 1_460;

/// A piecewise-linear empirical CDF over flow sizes in packets.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    /// `(size_in_packets, cumulative_probability)`, strictly increasing in
    /// both coordinates, last probability = 1.0.
    points: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Builds a CDF from `(size_packets, cum_prob)` points.
    ///
    /// # Panics
    /// Panics if the points are not monotone or do not end at probability 1.
    pub fn new(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0, "sizes must be non-decreasing");
            assert!(w[0].1 < w[1].1, "probabilities must be strictly increasing");
        }
        let last = points.last().expect("non-empty");
        assert!((last.1 - 1.0).abs() < 1e-9, "CDF must end at 1.0");
        EmpiricalCdf {
            points: points.to_vec(),
        }
    }

    /// Samples a flow size in whole packets (≥ 1).
    pub fn sample_packets(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        self.quantile(u).round().max(1.0) as u64
    }

    /// Inverse CDF with linear interpolation between points.
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        if u <= self.points[0].1 {
            return self.points[0].0;
        }
        for w in self.points.windows(2) {
            let ((s0, p0), (s1, p1)) = (w[0], w[1]);
            if u <= p1 {
                let t = (u - p0) / (p1 - p0);
                return s0 + t * (s1 - s0);
            }
        }
        self.points.last().expect("non-empty").0
    }

    /// Analytic mean of the piecewise-linear distribution, in packets.
    pub fn mean_packets(&self) -> f64 {
        let mut mean = self.points[0].0 * self.points[0].1;
        for w in self.points.windows(2) {
            let ((s0, p0), (s1, p1)) = (w[0], w[1]);
            mean += (p1 - p0) * (s0 + s1) / 2.0;
        }
        mean
    }
}

/// The two canonical datacenter workloads of the pFabric study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowSizeDist {
    /// DCTCP-paper web-search workload (the one Figure 19 reports).
    WebSearch,
    /// VL2/data-mining workload (heavier tail; used for extension runs).
    DataMining,
}

impl FlowSizeDist {
    /// The CDF table, sizes in MTU packets.
    pub fn cdf(self) -> EmpiricalCdf {
        match self {
            // pFabric simulation release, `websearch.cdf` (sizes in packets).
            FlowSizeDist::WebSearch => EmpiricalCdf::new(&[
                (1.0, 0.0),
                (6.0, 0.15),
                (13.0, 0.2),
                (19.0, 0.3),
                (33.0, 0.4),
                (53.0, 0.53),
                (133.0, 0.6),
                (667.0, 0.7),
                (1_333.0, 0.8),
                (3_333.0, 0.9),
                (6_667.0, 0.97),
                (20_000.0, 1.0),
            ]),
            // pFabric simulation release, `datamining.cdf`.
            FlowSizeDist::DataMining => EmpiricalCdf::new(&[
                (1.0, 0.0),
                (2.0, 0.6),
                (3.0, 0.7),
                (7.0, 0.8),
                (267.0, 0.9),
                (2_107.0, 0.95),
                (66_667.0, 0.99),
                (666_667.0, 1.0),
            ]),
        }
    }

    /// Mean flow size in bytes (payload bytes × mean packets).
    pub fn mean_bytes(self) -> f64 {
        self.cdf().mean_packets() * PACKET_PAYLOAD_BYTES as f64
    }

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FlowSizeDist::WebSearch => "web-search",
            FlowSizeDist::DataMining => "data-mining",
        }
    }
}

/// Per-flow packet counts drawn from a trace CDF, clamped to `[1, cap]`
/// — the "trace-shaped" mixes the overload sweep drives millions of
/// flows with. The clamp keeps elephants from dominating a timed cell
/// while preserving the trace's many-mice shape; it is the same
/// capped-tail treatment `heavy_tailed_pkts` applies to its Pareto.
pub fn trace_shaped_pkts(flows: usize, dist: FlowSizeDist, cap: u64, seed: u64) -> Vec<u64> {
    assert!(cap >= 1);
    let cdf = dist.cdf();
    let mut rng = SplitMix64::new(seed ^ 0x7ace_5a17);
    (0..flows)
        .map(|_| cdf.sample_packets(&mut rng).clamp(1, cap))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_interpolates_monotonically() {
        let cdf = FlowSizeDist::WebSearch.cdf();
        let mut prev = 0.0;
        for i in 0..=100 {
            let q = cdf.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile must be monotone");
            prev = q;
        }
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 20_000.0);
        // Between the 0.53 point (53 pkts) and the 0.6 point (133 pkts).
        let mid = cdf.quantile(0.565);
        assert!(mid > 53.0 && mid < 133.0);
    }

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let cdf = FlowSizeDist::WebSearch.cdf();
        let mut rng = SplitMix64::new(2024);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| cdf.sample_packets(&mut rng) as f64).sum();
        let sample_mean = sum / n as f64;
        let analytic = cdf.mean_packets();
        let rel = (sample_mean - analytic).abs() / analytic;
        assert!(
            rel < 0.03,
            "sample mean {sample_mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn websearch_is_mostly_small_flows_with_heavy_bytes() {
        // The motivation for pFabric: most flows are small, most *bytes*
        // come from large flows.
        let cdf = FlowSizeDist::WebSearch.cdf();
        let mut rng = SplitMix64::new(7);
        let mut small = 0u64;
        let mut bytes_small = 0u64;
        let mut bytes_total = 0u64;
        for _ in 0..100_000 {
            let pkts = cdf.sample_packets(&mut rng);
            let bytes = pkts * PACKET_PAYLOAD_BYTES;
            bytes_total += bytes;
            if bytes <= 100 * 1024 {
                small += 1;
                bytes_small += bytes;
            }
        }
        assert!(small > 50_000, "majority of flows ≤ 100kB, got {small}");
        assert!(
            (bytes_small as f64) < 0.35 * bytes_total as f64,
            "small flows carry a minority of bytes"
        );
    }

    #[test]
    fn datamining_tail_is_heavier() {
        assert!(FlowSizeDist::DataMining.mean_bytes() > FlowSizeDist::WebSearch.mean_bytes());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotone_probability() {
        EmpiricalCdf::new(&[(1.0, 0.5), (2.0, 0.5), (3.0, 1.0)]);
    }

    #[test]
    fn trace_shaped_counts_are_capped_and_deterministic() {
        let pkts = trace_shaped_pkts(50_000, FlowSizeDist::WebSearch, 128, 9);
        assert_eq!(pkts.len(), 50_000);
        assert!(pkts.iter().all(|&p| (1..=128).contains(&p)));
        assert!(pkts.contains(&128), "elephants hit the cap");
        let mean = pkts.iter().sum::<u64>() as f64 / pkts.len() as f64;
        let median = {
            let mut s = pkts.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(
            (median as f64) < mean,
            "shape survives the cap: median {median} < mean {mean}"
        );
        assert_eq!(
            pkts,
            trace_shaped_pkts(50_000, FlowSizeDist::WebSearch, 128, 9)
        );
    }
}
