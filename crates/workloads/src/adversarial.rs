//! Adversarial workload shapes: the traffic production never grants.
//!
//! Every sweep before the chaos harness used steady-state uniform mixes.
//! This module provides the shapes that break schedulers in practice:
//!
//! * **rank patterns** — per-packet rank generators including the
//!   SP-PIFO paper's adversarial ramp (push every queue bound up, then
//!   burst low ranks underneath them) and RIFO-style monotone rank drift
//!   (stresses moving-window clamping);
//! * **heavy-tailed flow sizes** — discrete Pareto per-flow packet
//!   counts (web/Hadoop-style: most flows tiny, a few elephants);
//! * **incast start waves** — many flows starting at the same instant
//!   instead of the harnesses' smooth stagger.
//!
//! Everything is a pure function of `(seed, flow, seq)` so the
//! virtual-clock and threaded runtimes generate identical traffic.

use eiffel_sim::{FlowId, Nanos, SplitMix64};

fn mix(seed: u64, flow: FlowId, seq: u64) -> u64 {
    SplitMix64::new(seed ^ (u64::from(flow) << 32) ^ seq).next_u64()
}

/// Deterministic per-packet rank assignment for ranked (non-shaping)
/// scheduling experiments: rank of packet = `pattern.rank(flow, seq)`
/// where `seq` is the packet's per-flow sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankPattern {
    /// Independent uniform ranks in `[0, max]` — the benign baseline.
    Uniform {
        /// Largest rank produced.
        max: u64,
        /// Draw seed.
        seed: u64,
    },
    /// The SP-PIFO adversarial shape (*Everything Matters in Programmable
    /// Packet Scheduling*): within each period the ranks ramp from 0 up
    /// to `max`, dragging every SP-PIFO queue bound upward, then the
    /// period restarts at rank 0 — which now lands behind the high ranks
    /// occupying the low queues. Exact bucketed queues sort this
    /// perfectly; SP-PIFO's mapping inverts.
    SpPifoAdversarial {
        /// Largest rank reached at the top of each ramp.
        max: u64,
        /// Packets per ramp (≥ 2).
        period: u64,
    },
    /// Monotone rank drift, RIFO's motivating regime: ranks only grow
    /// (`start + seq·step` per flow), sliding out of any fixed window and
    /// stressing moving-window rotation and clamp accounting.
    Drift {
        /// Rank of each flow's first packet.
        start: u64,
        /// Rank increase per packet.
        step: u64,
    },
}

impl RankPattern {
    /// Rank for the `seq`-th packet of `flow`.
    pub fn rank(&self, flow: FlowId, seq: u64) -> u64 {
        match *self {
            RankPattern::Uniform { max, seed } => mix(seed, flow, seq) % (max + 1),
            RankPattern::SpPifoAdversarial { max, period } => {
                let period = period.max(2);
                let pos = seq % period;
                // Ramp 0 → max over the period; position 0 is the low-rank
                // burst landing under the pushed-up queue bounds.
                pos * max / (period - 1)
            }
            RankPattern::Drift { start, step } => start + seq * step,
        }
    }

    /// Largest rank this pattern can produce within `pkts` packets per
    /// flow (sizes fixed-range queue geometry).
    pub fn max_rank(&self, pkts: u64) -> u64 {
        match *self {
            RankPattern::Uniform { max, .. } => max,
            RankPattern::SpPifoAdversarial { max, .. } => max,
            RankPattern::Drift { start, step } => start + pkts.saturating_sub(1) * step,
        }
    }

    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RankPattern::Uniform { .. } => "uniform",
            RankPattern::SpPifoAdversarial { .. } => "sp-adversarial",
            RankPattern::Drift { .. } => "rank-drift",
        }
    }
}

/// Per-flow packet counts drawn from a discrete Pareto (heavy tail):
/// most flows send a handful of packets, a few send `cap`. `alpha` is
/// the tail exponent (smaller = heavier; the web-search-like regime is
/// ~1.1–1.5); `mean_pkts` sets the distribution mean, and every count is
/// clamped to `[1, cap]`.
pub fn heavy_tailed_pkts(
    flows: usize,
    mean_pkts: f64,
    alpha: f64,
    cap: u64,
    seed: u64,
) -> Vec<u64> {
    assert!(alpha > 1.0, "Pareto mean is infinite for alpha <= 1");
    assert!(mean_pkts >= 1.0 && cap >= 1);
    // Pareto scale x_m from the requested mean: E[X] = α·x_m/(α−1).
    let xm = mean_pkts * (alpha - 1.0) / alpha;
    let mut rng = SplitMix64::new(seed ^ 0x9ea7_7a11);
    (0..flows)
        .map(|_| {
            let u = rng.next_f64().max(f64::MIN_POSITIVE);
            let x = xm / u.powf(1.0 / alpha);
            (x.round() as u64).clamp(1, cap)
        })
        .collect()
}

/// Incast start times: flows start in waves of `wave` at once, waves
/// separated by `gap` nanoseconds (wave 0 starts at t = 0). The returned
/// vector is sorted, one entry per flow.
pub fn incast_starts(flows: usize, wave: usize, gap: Nanos) -> Vec<Nanos> {
    let wave = wave.max(1);
    (0..flows).map(|f| (f / wave) as u64 * gap).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_bounded() {
        let p = RankPattern::Uniform { max: 99, seed: 7 };
        for flow in 0..8u32 {
            for seq in 0..64 {
                let r = p.rank(flow, seq);
                assert!(r <= 99);
                assert_eq!(r, p.rank(flow, seq));
            }
        }
        // Different flows see different streams.
        let a: Vec<u64> = (0..32).map(|s| p.rank(1, s)).collect();
        let b: Vec<u64> = (0..32).map(|s| p.rank(2, s)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn sp_adversarial_ramps_then_resets() {
        let p = RankPattern::SpPifoAdversarial {
            max: 100,
            period: 11,
        };
        let ranks: Vec<u64> = (0..11).map(|s| p.rank(0, s)).collect();
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[10], 100);
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "{ranks:?}");
        assert_eq!(p.rank(0, 11), 0, "period restarts at the low burst");
        assert_eq!(p.max_rank(1_000), 100);
    }

    #[test]
    fn drift_is_monotone_per_flow() {
        let p = RankPattern::Drift { start: 50, step: 3 };
        assert_eq!(p.rank(9, 0), 50);
        assert_eq!(p.rank(9, 10), 80);
        assert_eq!(p.max_rank(11), 80);
    }

    #[test]
    fn heavy_tail_hits_mean_and_cap() {
        let pkts = heavy_tailed_pkts(20_000, 20.0, 1.3, 10_000, 42);
        assert_eq!(pkts.len(), 20_000);
        assert!(pkts.iter().all(|&p| (1..=10_000).contains(&p)));
        let mean = pkts.iter().sum::<u64>() as f64 / pkts.len() as f64;
        // Clamping biases the sample mean below the analytic one; just pin
        // the regime: heavier than the median, lighter than the cap.
        assert!(mean > 5.0 && mean < 60.0, "mean {mean}");
        let median = {
            let mut s = pkts.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(
            (median as f64) < mean,
            "heavy tail: median {median} < mean {mean}"
        );
        assert_eq!(pkts, heavy_tailed_pkts(20_000, 20.0, 1.3, 10_000, 42));
    }

    #[test]
    fn incast_waves_start_together() {
        let starts = incast_starts(10, 4, 1_000);
        assert_eq!(
            starts,
            vec![0, 0, 0, 0, 1_000, 1_000, 1_000, 1_000, 2_000, 2_000]
        );
    }
}
