//! DCTCP-style closed-loop sources: the transport that reacts to the
//! ECN marks the admission layer records.
//!
//! Eiffel's deployment story (§5.1.1) pairs the scheduler with
//! first-party transports — DCTCP-like senders that treat ECN marks as
//! a congestion *gradient* rather than a binary loss signal. Our rig's
//! `AdmitPolicy::EcnMark` has tallied marks since the chaos harness
//! landed, but sources were open-loop: they paced at their configured
//! rate no matter what came back. This module closes the loop.
//!
//! Per flow, [`ClosedLoopSource`] keeps the DCTCP estimator in exact
//! integer fixed-point so both host runtimes stay deterministic and
//! bit-identical:
//!
//! * an EWMA of the mark fraction, `α ← (1−g)·α + g·F`, with gain
//!   `g = 1/2^gain_shift` (DCTCP's `g = 1/16` by default), updated once
//!   per control window of `window` completions where `F` is that
//!   window's observed mark fraction (Q16);
//! * multiplicative decrease on a marked window: the pacing-rate scale
//!   drops by `α/2`, `scale ← scale·(1 − α/2)`, floored at `min_scale`;
//! * slow-start for new flows: they enter at `initial_scale` and double
//!   each clean window until the first mark (or full rate); a run can
//!   disable it (`slow_start: false`) to enter pure AIMD when
//!   `initial_scale` is already placed at the sustainable rate;
//! * additive recovery: after slow-start, each clean window adds
//!   `additive` to the scale until it saturates at [`SCALE_ONE`];
//! * loss signals (admission drops, shed/evicted packets) are the
//!   classic halving: `scale ← scale/2`, immediately, and slow-start
//!   ends.
//!
//! The scale is a Q10 fraction of the flow's configured rate:
//! `SCALE_ONE = 1024` means "pace at the full configured rate", and the
//! inter-packet gap stretches inversely ([`ClosedLoopSource::gap`]).
//! Everything is a pure function of the signals fed in, so replaying
//! the same completion sequence reproduces the same rate trajectory on
//! any runtime.

use eiffel_sim::Nanos;

/// Full-rate scale denominator (Q10): `scale == SCALE_ONE` paces at the
/// flow's configured rate.
pub const SCALE_ONE: u32 = 1024;

/// Mark-fraction fixed point (Q16): `alpha == ALPHA_ONE` means every
/// completion in the window came back marked.
pub const ALPHA_ONE: u32 = 1 << 16;

/// Tuning for the closed-loop estimator. One instance is shared by all
/// flows of a run; per-flow state lives in [`ClosedLoopSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedLoopParams {
    /// EWMA gain exponent: `g = 1/2^gain_shift`. DCTCP's default
    /// `g = 1/16` is `gain_shift = 4`.
    pub gain_shift: u32,
    /// Completions per control window (DCTCP updates per RTT; we use a
    /// completion count since the rig has no RTT).
    pub window: u32,
    /// Rate-scale floor — keeps refused flows probing instead of
    /// stalling forever (min 1).
    pub min_scale: u32,
    /// Additive increase per clean window after slow-start.
    pub additive: u32,
    /// Scale new flows enter slow-start at.
    pub initial_scale: u32,
    /// Whether new flows begin in slow-start (doubling per clean
    /// window). `false` enters pure AIMD at `initial_scale` — for
    /// operating points where `initial_scale` is already placed at the
    /// known sustainable rate and a doubling would overshoot it.
    pub slow_start: bool,
}

impl Default for ClosedLoopParams {
    fn default() -> Self {
        ClosedLoopParams {
            gain_shift: 4,
            window: 8,
            min_scale: 16,
            additive: 64,
            initial_scale: 128,
            slow_start: true,
        }
    }
}

/// Per-flow DCTCP-style congestion state in integer fixed-point.
#[derive(Debug, Clone)]
pub struct ClosedLoopSource {
    /// EWMA mark fraction, Q16 in `[0, ALPHA_ONE]`.
    alpha_fx: u32,
    /// Current pacing-rate scale, Q10 in `[min_scale, SCALE_ONE]`.
    scale: u32,
    window_marks: u32,
    window_acks: u32,
    slow_start: bool,
    windows: u64,
    marked_total: u64,
    losses: u64,
}

impl ClosedLoopSource {
    /// A fresh flow at the top of its slow-start ramp (or already in
    /// AIMD when `p.slow_start` is off).
    pub fn new(p: &ClosedLoopParams) -> ClosedLoopSource {
        ClosedLoopSource {
            alpha_fx: 0,
            scale: p.initial_scale.clamp(p.min_scale.max(1), SCALE_ONE),
            window_marks: 0,
            window_acks: 0,
            slow_start: p.slow_start,
            windows: 0,
            marked_total: 0,
            losses: 0,
        }
    }

    /// Feed one completion (the flow's packet was transmitted) and its
    /// ECN echo. Rolls the control window every `p.window` completions;
    /// returns `true` when this call rolled it.
    pub fn on_completion(&mut self, p: &ClosedLoopParams, marked: bool) -> bool {
        self.window_acks += 1;
        if marked {
            self.window_marks += 1;
            self.marked_total += 1;
        }
        if self.window_acks >= p.window.max(1) {
            self.roll(p);
            true
        } else {
            false
        }
    }

    /// Feed one loss signal (admission drop or shed/evicted packet):
    /// halve the rate immediately, leave slow-start, and count the mark
    /// into the current window so α sees the congestion too.
    pub fn on_loss(&mut self, p: &ClosedLoopParams) {
        self.losses += 1;
        self.slow_start = false;
        self.window_marks = self.window_marks.saturating_add(1);
        self.window_acks = self.window_acks.saturating_add(1);
        self.scale = (self.scale / 2).max(p.min_scale.max(1));
        if self.window_acks >= p.window.max(1) {
            self.roll(p);
        }
    }

    fn roll(&mut self, p: &ClosedLoopParams) {
        let g = p.gain_shift.min(16);
        // F: this window's mark fraction in Q16, then α ← α − α·g + F·g.
        let f_fx =
            ((u64::from(self.window_marks) << 16) / u64::from(self.window_acks.max(1))) as u32;
        self.alpha_fx = self.alpha_fx - (self.alpha_fx >> g) + (f_fx >> g);
        let floor = p.min_scale.max(1);
        if self.window_marks > 0 {
            self.slow_start = false;
            // scale ← scale·(1 − α/2); α is Q16 so the halved product
            // shifts down by 17.
            let dec = ((u64::from(self.scale) * u64::from(self.alpha_fx)) >> 17) as u32;
            self.scale = self.scale.saturating_sub(dec).max(floor);
        } else if self.slow_start {
            self.scale = (self.scale * 2).min(SCALE_ONE);
            if self.scale == SCALE_ONE {
                self.slow_start = false;
            }
        } else {
            self.scale = (self.scale + p.additive).min(SCALE_ONE);
        }
        self.windows += 1;
        self.window_marks = 0;
        self.window_acks = 0;
    }

    /// Current pacing-rate scale (Q10 of the configured rate).
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// Current mark-fraction estimate as a float (diagnostics only).
    pub fn alpha(&self) -> f64 {
        f64::from(self.alpha_fx) / f64::from(ALPHA_ONE)
    }

    /// Whether the flow is still in its slow-start ramp.
    pub fn in_slow_start(&self) -> bool {
        self.slow_start
    }

    /// Control windows rolled so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Stretch a base inter-packet gap by the inverse of the current
    /// scale: full rate leaves it unchanged, scale `SCALE_ONE/k`
    /// multiplies it by `k`. Never returns less than `base`.
    pub fn gap(&self, base: Nanos) -> Nanos {
        // scale ≥ 1 by construction.
        base.saturating_mul(u64::from(SCALE_ONE)) / u64::from(self.scale)
    }
}

/// Aggregate view over all flows' final closed-loop state, for reports
/// and convergence assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoopSummary {
    /// Number of flows summarized.
    pub flows: usize,
    /// Mean final rate scale as a fraction of full rate.
    pub mean_scale: f64,
    /// Minimum final rate scale as a fraction of full rate.
    pub min_scale: f64,
    /// Total control windows rolled across all flows.
    pub windows: u64,
    /// Total marked completions observed.
    pub marked: u64,
    /// Total loss signals applied.
    pub losses: u64,
}

/// Summarize a run's final per-flow closed-loop state.
pub fn summarize(sources: &[ClosedLoopSource]) -> ClosedLoopSummary {
    let flows = sources.len();
    let mut sum = 0.0f64;
    let mut min = f64::INFINITY;
    let (mut windows, mut marked, mut losses) = (0u64, 0u64, 0u64);
    for s in sources {
        let frac = f64::from(s.scale) / f64::from(SCALE_ONE);
        sum += frac;
        min = min.min(frac);
        windows += s.windows;
        marked += s.marked_total;
        losses += s.losses;
    }
    ClosedLoopSummary {
        flows,
        mean_scale: if flows == 0 { 0.0 } else { sum / flows as f64 },
        min_scale: if flows == 0 { 0.0 } else { min },
        windows,
        marked,
        losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ClosedLoopParams {
        ClosedLoopParams::default()
    }

    fn run_windows(s: &mut ClosedLoopSource, p: &ClosedLoopParams, windows: u32, marked: bool) {
        for _ in 0..windows * p.window {
            s.on_completion(p, marked);
        }
    }

    #[test]
    fn slow_start_doubles_to_full_rate() {
        let p = p();
        let mut s = ClosedLoopSource::new(&p);
        assert!(s.in_slow_start());
        assert_eq!(s.scale(), 128);
        run_windows(&mut s, &p, 1, false);
        assert_eq!(s.scale(), 256);
        run_windows(&mut s, &p, 2, false);
        assert_eq!(s.scale(), SCALE_ONE);
        assert!(!s.in_slow_start(), "ramp ends at full rate");
        run_windows(&mut s, &p, 4, false);
        assert_eq!(s.scale(), SCALE_ONE, "saturates, no overshoot");
    }

    #[test]
    fn marks_cut_rate_multiplicatively_and_alpha_tracks() {
        let p = p();
        let mut s = ClosedLoopSource::new(&p);
        run_windows(&mut s, &p, 3, false); // reach full rate
        let before = s.scale();
        run_windows(&mut s, &p, 20, true); // saturated marking
        assert!(s.alpha() > 0.7, "α converges toward 1, got {}", s.alpha());
        assert!(
            s.scale() < before / 4,
            "sustained marks collapse the rate: {} -> {}",
            before,
            s.scale()
        );
        assert!(s.scale() >= p.min_scale, "floored, never zero");
    }

    #[test]
    fn clean_windows_recover_additively_after_marks() {
        let p = p();
        let mut s = ClosedLoopSource::new(&p);
        run_windows(&mut s, &p, 3, false);
        run_windows(&mut s, &p, 10, true);
        let low = s.scale();
        assert!(low < SCALE_ONE / 2);
        // Enough clean windows to climb all the way back.
        let needed = (SCALE_ONE - low).div_ceil(p.additive);
        run_windows(&mut s, &p, needed, false);
        assert_eq!(s.scale(), SCALE_ONE, "additive recovery converges");
        assert!(!s.in_slow_start(), "no slow-start re-entry after marks");
    }

    #[test]
    fn recovery_is_monotone_without_marks() {
        let p = p();
        let mut s = ClosedLoopSource::new(&p);
        run_windows(&mut s, &p, 3, false);
        run_windows(&mut s, &p, 6, true);
        let mut last = s.scale();
        for _ in 0..40 {
            run_windows(&mut s, &p, 1, false);
            assert!(s.scale() >= last, "no oscillation on a quiet channel");
            last = s.scale();
        }
        assert_eq!(last, SCALE_ONE);
    }

    #[test]
    fn loss_halves_immediately() {
        let p = p();
        let mut s = ClosedLoopSource::new(&p);
        run_windows(&mut s, &p, 3, false);
        assert_eq!(s.scale(), SCALE_ONE);
        s.on_loss(&p);
        assert_eq!(s.scale(), SCALE_ONE / 2);
        s.on_loss(&p);
        s.on_loss(&p);
        s.on_loss(&p);
        s.on_loss(&p);
        s.on_loss(&p);
        assert_eq!(s.scale(), p.min_scale, "loss halving floors at min");
        assert!(!s.in_slow_start());
    }

    #[test]
    fn gap_scales_inversely_with_rate() {
        let p = p();
        let mut s = ClosedLoopSource::new(&p);
        run_windows(&mut s, &p, 3, false);
        assert_eq!(s.gap(1_000), 1_000, "full rate leaves the gap alone");
        run_windows(&mut s, &p, 30, true);
        let slow = s.gap(1_000);
        assert_eq!(slow, 1_000 * u64::from(SCALE_ONE) / u64::from(s.scale()));
        assert!(slow >= 2_000, "backed-off flows stretch their gap");
    }

    #[test]
    fn deterministic_across_replays() {
        let p = p();
        let mut a = ClosedLoopSource::new(&p);
        let mut b = ClosedLoopSource::new(&p);
        for i in 0..1_000u32 {
            let marked = i % 7 == 0 || (300..400).contains(&i);
            a.on_completion(&p, marked);
            b.on_completion(&p, marked);
            if i % 97 == 0 {
                a.on_loss(&p);
                b.on_loss(&p);
            }
        }
        assert_eq!(a.scale(), b.scale());
        assert_eq!(a.alpha(), b.alpha());
        assert_eq!(a.windows(), b.windows());
    }

    #[test]
    fn summary_aggregates_flows() {
        let p = p();
        let mut flows = vec![ClosedLoopSource::new(&p); 4];
        for s in flows.iter_mut().take(2) {
            run_windows(s, &p, 3, false); // full rate
        }
        run_windows(&mut flows[3], &p, 10, true); // beaten down
        let sum = summarize(&flows);
        assert_eq!(sum.flows, 4);
        assert!(sum.min_scale < 0.2, "min sees the marked flow");
        assert!(sum.mean_scale > 0.5, "mean sees the clean flows");
        assert!(sum.windows >= 16);
        assert!(sum.marked >= 80);
        let empty = summarize(&[]);
        assert_eq!(empty.flows, 0);
        assert_eq!(empty.mean_scale, 0.0);
    }
}
