//! # eiffel-workloads — traffic generators for the Eiffel reproduction
//!
//! The paper's evaluation drives its schedulers with: a neper-generated set
//! of 20k rate-limited TCP flows (§5.1.1), synthetic packet generators with
//! configurable flow counts and packet sizes (§5.1.2–§5.1.3), and the
//! DCTCP-paper *web search* flow-size distribution under Poisson arrivals
//! for the ns-2 study (§5.2, Figure 19). This crate provides all of those as
//! deterministic, seedable generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod arrivals;
pub mod closed_loop;
pub mod flows;
pub mod sizes;

pub use adversarial::{heavy_tailed_pkts, incast_starts, RankPattern};
pub use arrivals::PoissonArrivals;
pub use closed_loop::{
    summarize as summarize_closed_loop, ClosedLoopParams, ClosedLoopSource, ClosedLoopSummary,
    ALPHA_ONE, SCALE_ONE,
};
pub use flows::{FlowSet, PacedFlow};
pub use sizes::{trace_shaped_pkts, EmpiricalCdf, FlowSizeDist, PACKET_PAYLOAD_BYTES};
