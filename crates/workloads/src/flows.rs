//! Rate-limited flow sets — the neper-like workload of §5.1.1.
//!
//! "We generate traffic from 20k flows and use `SO_MAX_PACING_RATE` to rate
//! limit individual flows to achieve a maximum aggregate rate of 24 Gbps."
//! A [`FlowSet`] models exactly that: `n` flows, each continuously backlogged
//! and paced at `aggregate/n`, emitting MTU packets. TCP Small Queues is
//! modelled by the qdisc host (a cap on in-qdisc packets per flow), not here.

use eiffel_sim::{FlowId, Nanos, Packet, Rate};

/// One paced flow: continuously backlogged, next packet due at `next_at`.
#[derive(Debug, Clone)]
pub struct PacedFlow {
    /// Flow identity.
    pub id: FlowId,
    /// The flow's `SO_MAX_PACING_RATE`.
    pub rate: Rate,
    /// Packet size the flow emits.
    pub bytes: u32,
    /// Virtual time when the flow's next packet is due to enter the stack.
    pub next_at: Nanos,
    /// Packets emitted so far.
    pub emitted: u64,
}

impl PacedFlow {
    /// Inter-packet gap at the configured rate.
    pub fn gap(&self) -> Nanos {
        self.rate
            .tx_time(self.bytes as u64)
            .expect("paced flows have non-zero rates")
    }

    /// Emits the packet due at `next_at` and schedules the next one.
    pub fn emit(&mut self, id_counter: &mut u64) -> Packet {
        let p = Packet::new(*id_counter, self.id, self.bytes, self.next_at);
        *id_counter += 1;
        self.emitted += 1;
        self.next_at += self.gap();
        p
    }
}

/// A set of identical paced flows sharing an aggregate rate.
#[derive(Debug, Clone)]
pub struct FlowSet {
    flows: Vec<PacedFlow>,
    next_packet_id: u64,
}

impl FlowSet {
    /// Creates `n` flows splitting `aggregate` evenly, all emitting
    /// `bytes`-sized packets. Start times are staggered across one gap so
    /// the aggregate is smooth from t = 0.
    pub fn paced(n: usize, aggregate: Rate, bytes: u32) -> Self {
        assert!(n > 0);
        let per_flow = Rate::bps(aggregate.as_bps() / n as u64);
        assert!(per_flow.as_bps() > 0, "aggregate too small for {n} flows");
        let gap = per_flow.tx_time(bytes as u64).expect("non-zero rate");
        let flows = (0..n)
            .map(|i| PacedFlow {
                id: i as FlowId,
                rate: per_flow,
                bytes,
                next_at: gap * i as u64 / n as u64,
                emitted: 0,
            })
            .collect();
        FlowSet {
            flows,
            next_packet_id: 0,
        }
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the set is empty (never true for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Access a flow.
    pub fn flow(&self, id: FlowId) -> &PacedFlow {
        &self.flows[id as usize]
    }

    /// Mutable access to a flow.
    pub fn flow_mut(&mut self, id: FlowId) -> &mut PacedFlow {
        &mut self.flows[id as usize]
    }

    /// Emits the next due packet of flow `id`.
    pub fn emit(&mut self, id: FlowId) -> Packet {
        let next_id = &mut self.next_packet_id;
        self.flows[id as usize].emit(next_id)
    }

    /// Iterates over flows.
    pub fn iter(&self) -> impl Iterator<Item = &PacedFlow> {
        self.flows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eiffel_sim::SECOND;

    #[test]
    fn aggregate_rate_splits_evenly() {
        let fs = FlowSet::paced(20_000, Rate::gbps(24), 1_500);
        assert_eq!(fs.len(), 20_000);
        let per_flow = fs.flow(0).rate;
        assert_eq!(per_flow, Rate::bps(1_200_000)); // 1.2 Mbps each
                                                    // Gap for 1500B at 1.2 Mbps = 10 ms.
        assert_eq!(fs.flow(0).gap(), 10 * 1_000_000);
    }

    #[test]
    fn emission_paces_a_single_flow() {
        let mut fs = FlowSet::paced(1, Rate::mbps(12), 1_500);
        // 12 Mbps, 1500B → 1 ms gap.
        let p0 = fs.emit(0);
        let p1 = fs.emit(0);
        let p2 = fs.emit(0);
        assert_eq!(p0.created_at, 0);
        assert_eq!(p1.created_at, 1_000_000);
        assert_eq!(p2.created_at, 2_000_000);
        assert_eq!((p0.id, p1.id, p2.id), (0, 1, 2));
        assert_eq!(fs.flow(0).emitted, 3);
    }

    #[test]
    fn staggered_starts_cover_the_gap() {
        let fs = FlowSet::paced(10, Rate::mbps(120), 1_500);
        // Per-flow 12 Mbps → 1 ms gap; starts spread within [0, 1 ms).
        let starts: Vec<Nanos> = fs.iter().map(|f| f.next_at).collect();
        assert!(starts.iter().all(|&s| s < 1_000_000));
        let distinct: std::collections::BTreeSet<_> = starts.iter().collect();
        assert!(distinct.len() > 1, "starts must be staggered");
    }

    #[test]
    fn emitted_packets_sum_to_aggregate() {
        let mut fs = FlowSet::paced(100, Rate::mbps(100), 1_500);
        // Drive every flow for one simulated second.
        let mut bytes = 0u64;
        for id in 0..100u32 {
            while fs.flow(id).next_at < SECOND {
                bytes += fs.emit(id).bytes as u64;
            }
        }
        let bps = bytes as f64 * 8.0;
        assert!(
            (bps - 1e8).abs() / 1e8 < 0.02,
            "aggregate ≈ 100 Mbps, got {bps}"
        );
    }
}
