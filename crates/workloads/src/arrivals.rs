//! Flow arrival processes.
//!
//! The Figure 19 study offers load between 10% and 80% of fabric capacity:
//! flows arrive as a Poisson process with rate
//! `λ = load × capacity / mean_flow_size`, the standard open-loop model of
//! the pFabric/DCTCP simulation setups.

use eiffel_sim::{Nanos, Rate, SplitMix64};

/// Poisson arrival-time generator.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    mean_interarrival_ns: f64,
    next_at: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given mean inter-arrival time.
    pub fn with_mean_gap(mean_interarrival_ns: f64) -> Self {
        assert!(mean_interarrival_ns > 0.0);
        PoissonArrivals {
            mean_interarrival_ns,
            next_at: 0.0,
        }
    }

    /// Creates the process that offers `load` (0–1] of `capacity` given an
    /// average flow size of `mean_flow_bytes`.
    pub fn for_load(load: f64, capacity: Rate, mean_flow_bytes: f64) -> Self {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
        assert!(mean_flow_bytes > 0.0);
        // flows/sec = load × (capacity bits/s) / (8 × mean bytes)
        let flows_per_sec = load * capacity.as_bps() as f64 / (8.0 * mean_flow_bytes);
        PoissonArrivals::with_mean_gap(1e9 / flows_per_sec)
    }

    /// Draws the next arrival's absolute virtual time.
    pub fn next_arrival(&mut self, rng: &mut SplitMix64) -> Nanos {
        self.next_at += rng.next_exp(self.mean_interarrival_ns);
        self.next_at as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eiffel_sim::SECOND;

    #[test]
    fn arrival_rate_matches_load() {
        // 40% load on 10 Gbps with 1 MB mean flows → 500 flows/s.
        let mut p = PoissonArrivals::for_load(0.4, Rate::gbps(10), 1_000_000.0);
        let mut rng = SplitMix64::new(3);
        let mut count = 0u64;
        loop {
            let at = p.next_arrival(&mut rng);
            if at > 20 * SECOND {
                break;
            }
            count += 1;
        }
        let per_sec = count as f64 / 20.0;
        assert!(
            (per_sec - 500.0).abs() < 25.0,
            "expected ≈500 flows/s, got {per_sec}"
        );
    }

    #[test]
    fn arrivals_are_strictly_ordered() {
        let mut p = PoissonArrivals::with_mean_gap(100.0);
        let mut rng = SplitMix64::new(5);
        let mut prev = 0;
        for _ in 0..10_000 {
            let at = p.next_arrival(&mut rng);
            assert!(at >= prev);
            prev = at;
        }
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn rejects_zero_load() {
        PoissonArrivals::for_load(0.0, Rate::gbps(10), 1e6);
    }
}
