//! Property-based tests: every exact queue must agree with a reference
//! model (`BTreeMap<rank, FIFO>`) over arbitrary operation sequences, and
//! the structural invariants of the paper's theorems must hold for
//! arbitrary inputs.

use std::collections::{BTreeMap, VecDeque};

use proptest::prelude::*;

use eiffel_core::{
    ApproxGradientQueue, BucketHeapQueue, CffsQueue, FfsQueue, GradientQueue, GradientWord, HeapPq,
    HierBitmap, HierFfsQueue, HierGradientQueue, QueueConfig, QueueKind, RankedQueue, TreePq,
};

/// Reference model with the same FIFO-within-rank tie policy.
#[derive(Default)]
struct Model {
    map: BTreeMap<u64, VecDeque<u64>>,
    len: usize,
}

impl Model {
    fn enqueue(&mut self, rank: u64, v: u64) {
        self.map.entry(rank).or_default().push_back(v);
        self.len += 1;
    }

    fn dequeue_min(&mut self) -> Option<(u64, u64)> {
        let (&r, fifo) = self.map.iter_mut().next()?;
        let v = fifo.pop_front().unwrap();
        if fifo.is_empty() {
            self.map.remove(&r);
        }
        self.len -= 1;
        Some((r, v))
    }

    fn peek_min(&self) -> Option<u64> {
        self.map.keys().next().copied()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Enqueue(u64),
    Dequeue,
    Peek,
}

fn ops(max_rank: u64, n: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..max_rank).prop_map(Op::Enqueue),
            2 => Just(Op::Dequeue),
            1 => Just(Op::Peek),
        ],
        1..n,
    )
}

/// Exact bucketed queues at granularity 1 must behave identically to the
/// reference model (rank order + FIFO ties), including peeks.
fn check_exact_against_model<Q: RankedQueue<u64>>(mut q: Q, script: &[Op], max_rank: u64) {
    let _ = max_rank;
    let mut model = Model::default();
    let mut seq = 0u64;
    for op in script {
        match op {
            Op::Enqueue(r) => {
                q.enqueue(*r, seq).unwrap();
                model.enqueue(*r, seq);
                seq += 1;
            }
            Op::Dequeue => {
                assert_eq!(q.dequeue_min(), model.dequeue_min());
            }
            Op::Peek => {
                assert_eq!(q.peek_min_rank(), model.peek_min());
                assert_eq!(q.len(), model.len);
            }
        }
    }
    // Drain both to the end.
    loop {
        let (a, b) = (q.dequeue_min(), model.dequeue_min());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ffs_matches_model(script in ops(64, 400)) {
        check_exact_against_model(FfsQueue::new(1), &script, 64);
    }

    #[test]
    fn hffs_matches_model(script in ops(700, 600)) {
        check_exact_against_model(HierFfsQueue::new(700, 1), &script, 700);
    }

    #[test]
    fn gradient_matches_model(script in ops(64, 400)) {
        check_exact_against_model(GradientQueue::new(64, 1), &script, 64);
    }

    #[test]
    fn hier_gradient_matches_model(script in ops(5000, 600)) {
        check_exact_against_model(HierGradientQueue::new(5000, 1), &script, 5000);
    }

    #[test]
    fn bucket_heap_matches_model(script in ops(700, 600)) {
        check_exact_against_model(BucketHeapQueue::new(700, 1), &script, 700);
    }

    #[test]
    fn heap_pq_matches_model(script in ops(u64::MAX, 400)) {
        check_exact_against_model(HeapPq::new(), &script, u64::MAX);
    }

    #[test]
    fn tree_pq_matches_model(script in ops(u64::MAX, 400)) {
        check_exact_against_model(TreePq::new(), &script, u64::MAX);
    }

    /// cFFS with monotonically constrained ranks (each enqueue at or after
    /// the current window start — the shaper contract) behaves exactly like
    /// the model.
    #[test]
    fn cffs_matches_model_within_window(deltas in prop::collection::vec((0u64..500, any::<bool>()), 1..500)) {
        let mut q: CffsQueue<u64> = CffsQueue::new(256, 1, 0);
        let mut model = Model::default();
        for (seq, (delta, deq)) in deltas.into_iter().enumerate() {
            let seq = seq as u64;
            // Rank relative to the moving window start: always in coverage.
            let rank = q.h_index() + delta;
            q.enqueue(rank, seq).unwrap();
            model.enqueue(rank, seq);
            if deq {
                assert_eq!(q.dequeue_min(), model.dequeue_min());
            }
        }
        loop {
            let (a, b) = (q.dequeue_min(), model.dequeue_min());
            assert_eq!(a, b);
            if a.is_none() { break; }
        }
        assert_eq!(q.stats().clamped_high, 0);
        assert_eq!(q.stats().clamped_low, 0);
    }

    /// cFFS under *arbitrary* u64 ranks never loses or duplicates elements,
    /// whatever clamping occurred.
    #[test]
    fn cffs_conserves_arbitrary_ranks(ranks in prop::collection::vec(any::<u64>(), 1..300)) {
        let mut q: CffsQueue<usize> = CffsQueue::new(64, 1 << 20, 0);
        for (i, r) in ranks.iter().enumerate() {
            q.enqueue(*r, i).unwrap();
        }
        let mut seen = vec![false; ranks.len()];
        while let Some((r, i)) = q.dequeue_min() {
            assert_eq!(ranks[i], r, "rank must come back unchanged");
            assert!(!seen[i], "duplicate element {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|s| *s), "lost elements");
    }

    /// The approximate queue never loses elements and reports every stored
    /// rank exactly once, for arbitrary rank patterns.
    #[test]
    fn approx_conserves_arbitrary_patterns(ranks in prop::collection::vec(0u64..523, 1..400)) {
        let mut q: ApproxGradientQueue<usize> = ApproxGradientQueue::with_base(523, 1, 0, 16);
        for (i, r) in ranks.iter().enumerate() {
            q.enqueue(*r, i).unwrap();
        }
        let mut seen = vec![false; ranks.len()];
        while let Some((r, i)) = q.dequeue_min() {
            assert_eq!(ranks[i], r);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|s| *s));
        assert!(q.is_empty());
    }

    /// Batched dequeue must produce exactly the sequence repeated
    /// `dequeue_min` calls would — for all three §5.2 contenders (BH on the
    /// default trait impl, cFFS and Approx on their specialized fast
    /// paths), arbitrary fills, arbitrary batch sizes, and enqueues
    /// interleaved between batches.
    #[test]
    fn dequeue_batch_matches_repeated_dequeue_min(
        ranks in prop::collection::vec(0u64..700, 1..300),
        late in prop::collection::vec(0u64..700, 0..60),
        batches in prop::collection::vec(1usize..17, 1..80),
    ) {
        let cfg = QueueConfig::new(700, 1, 0);
        for kind in [
            QueueKind::BucketHeap,
            QueueKind::Cffs,
            QueueKind::ApproxGradient { alpha: 16 },
        ] {
            let mut batched: Box<dyn RankedQueue<usize>> = kind.build(cfg);
            let mut single: Box<dyn RankedQueue<usize>> = kind.build(cfg);
            for (i, r) in ranks.iter().enumerate() {
                batched.enqueue(*r, i).unwrap();
                single.enqueue(*r, i).unwrap();
            }
            let mut out = Vec::new();
            let mut round = 0usize;
            loop {
                let max = batches[round % batches.len()];
                out.clear();
                let got = batched.dequeue_batch(max, &mut out);
                prop_assert!(got <= max, "{kind:?} overfilled the batch");
                prop_assert_eq!(got, out.len());
                for pair in &out {
                    prop_assert_eq!(Some(*pair), single.dequeue_min(), "{:?}", kind);
                }
                if got == 0 {
                    prop_assert!(single.dequeue_min().is_none());
                    break;
                }
                // Interleave enqueues so batches also cross window
                // rotations and estimator-cache invalidations.
                if let Some(r) = late.get(round) {
                    batched.enqueue(*r, 100_000 + round).unwrap();
                    single.enqueue(*r, 100_000 + round).unwrap();
                }
                round += 1;
            }
            prop_assert!(batched.is_empty() && single.is_empty());
        }
    }

    /// Theorem 1 (Appendix A) for arbitrary occupancy masks.
    #[test]
    fn theorem1_holds_for_any_mask(mask in 1u64..) {
        let mut w = GradientWord::new();
        for i in 0..64 {
            if mask & (1 << i) != 0 {
                w.set(i);
            }
        }
        prop_assert_eq!(w.max_index(), Some(63 - mask.leading_zeros()));
    }

    /// Hierarchical bitmap first/last queries agree with a naive scan for
    /// arbitrary set/clear sequences.
    #[test]
    fn hierbitmap_matches_naive(ops in prop::collection::vec((0usize..1000, any::<bool>()), 1..600),
                                probe in 0usize..1000) {
        let mut bm = HierBitmap::new(1000);
        let mut naive = vec![false; 1000];
        for (i, set) in ops {
            if set { bm.set(i); naive[i] = true; } else { bm.clear(i); naive[i] = false; }
        }
        let first = naive.iter().position(|&b| b);
        let last = naive.iter().rposition(|&b| b);
        prop_assert_eq!(bm.first_set(), first);
        prop_assert_eq!(bm.last_set(), last);
        let first_from = naive[probe..].iter().position(|&b| b).map(|p| p + probe);
        prop_assert_eq!(bm.first_set_from(probe), first_from);
        let last_to = naive[..=probe].iter().rposition(|&b| b);
        prop_assert_eq!(bm.last_set_to(probe), last_to);
        prop_assert_eq!(bm.count_ones(), naive.iter().filter(|&&b| b).count());
    }
}
