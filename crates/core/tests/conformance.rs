//! PIFO-oracle conformance: every backend behind [`QueueKind`] is audited
//! against the ideal-PIFO reference ([`OracleAudit`]) over arbitrary
//! operation scripts.
//!
//! Three tiers of guarantee are pinned here:
//!
//! - **Exact backends** (FFS family, gradient, bucketed heap, comparison
//!   baselines) must score *zero* inversions and zero rank error at
//!   granularity 1 — they are PIFOs.
//! - **Approximate backends** (approx gradient, SP-PIFO, RIFO) must
//!   conserve every element (the audit panics on fabrication) and keep
//!   their advertised invariants: SP-PIFO's queue bounds stay sorted and
//!   its inversions bounded; RIFO's live range always fits its bucket
//!   geometry and its inversions stay below the bucket width for a pinned
//!   range.
//! - The approx gradient's **integer fixed-point estimator** must select
//!   the same bucket as the f64 reference estimator it replaced — or one
//!   strictly closer to the true minimum.

use std::collections::{BTreeSet, VecDeque};

use proptest::prelude::*;

use eiffel_core::buckets::Buckets;
use eiffel_core::{
    count_inversions, ApproxGradientQueue, HierBitmap, OracleAudit, QueueConfig, QueueKind,
    RankedQueue, RifoQueue, SpPifoQueue,
};

#[derive(Debug, Clone)]
enum Op {
    Enqueue(u64),
    Dequeue,
}

fn ops(max_rank: u64, n: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..max_rank).prop_map(Op::Enqueue),
            2 => Just(Op::Dequeue),
        ],
        1..n,
    )
}

/// Drives `kind` through `script` in lockstep with the oracle, then drains
/// it to empty. Panics inside the audit if the backend fabricates or
/// loses an element; returns the quality report of the full run.
fn audit_kind(kind: QueueKind, cfg: QueueConfig, script: &[Op]) -> eiffel_core::OracleReport {
    let mut q: Box<dyn RankedQueue<u64>> = kind.build(cfg);
    let mut audit = OracleAudit::new();
    for op in script {
        match op {
            Op::Enqueue(r) => {
                if q.enqueue(*r, *r).is_ok() {
                    audit.on_enqueue(*r);
                }
            }
            Op::Dequeue => {
                if let Some((r, _)) = q.dequeue_min() {
                    audit.on_dequeue(r);
                }
            }
        }
    }
    while let Some((r, _)) = q.dequeue_min() {
        audit.on_dequeue(r);
    }
    assert!(
        audit.is_empty(),
        "{kind:?} lost {} elements the oracle still holds",
        audit.len()
    );
    audit.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact backends are PIFOs: every pop returns the true minimum at
    /// that instant — zero rank error, for arbitrary interleaved scripts
    /// (ranks 0..64 so the 64-bucket FFS is in range alongside everything
    /// else). Note the *global-sequence* inversion count is not pinned
    /// here: even an ideal PIFO pops 5 before a later-arriving 3, so that
    /// metric only separates backends on drain-only phases (below).
    #[test]
    fn exact_backends_match_the_oracle(script in ops(64, 400)) {
        let cfg = QueueConfig::new(700, 1, 0);
        for kind in [
            QueueKind::Ffs,
            QueueKind::HierFfs,
            QueueKind::Cffs,
            QueueKind::Gradient,
            QueueKind::BucketHeap,
            QueueKind::BinaryHeap,
            QueueKind::BTree,
        ] {
            let rep = audit_kind(kind, cfg, &script);
            prop_assert_eq!(rep.rank_error_sum, 0, "{:?} rank error", kind);
            prop_assert_eq!(rep.max_rank_error, 0, "{:?} max rank error", kind);
        }
    }

    /// Approximate and adaptive backends conserve every element under
    /// arbitrary interleaved scripts: the oracle panics on any fabricated
    /// or duplicated rank, and must be drained empty in lockstep. (Their
    /// quality bands are pinned on drain-only phases below, where the
    /// papers' bounds actually apply.)
    #[test]
    fn approximate_backends_conserve_under_arbitrary_scripts(script in ops(523, 500)) {
        let cfg = QueueConfig::new(523, 1, 0);
        let enqueued = script.iter().filter(|op| matches!(op, Op::Enqueue(_))).count() as u64;
        for kind in [
            QueueKind::ApproxGradient { alpha: 16 },
            QueueKind::CircularApprox { alpha: 16 },
            QueueKind::SpPifo { queues: 8 },
            QueueKind::Rifo,
        ] {
            let rep = audit_kind(kind, cfg, &script);
            prop_assert_eq!(rep.pops, enqueued, "{:?} lost or duplicated", kind);
        }
    }

    /// SP-PIFO's structural invariant: the queue bounds stay sorted
    /// (non-decreasing toward lower priority) after every operation —
    /// push-up and push-down both preserve it — and on a drain-only phase
    /// the adaptive 16-queue mapping must beat the degenerate 1-queue
    /// mapper (a plain FIFO, which is what SP-PIFO collapses to with no
    /// queues to separate ranks into) on mean rank error.
    #[test]
    fn sp_pifo_bounds_stay_sorted_and_mapping_beats_fifo(script in ops(10_000, 500)) {
        let mut q: SpPifoQueue<u64> = SpPifoQueue::new(16);
        let mut fifo: SpPifoQueue<u64> = SpPifoQueue::new(1);
        let mut audit = OracleAudit::new();
        let mut fifo_audit = OracleAudit::new();
        for op in &script {
            match op {
                Op::Enqueue(r) => {
                    q.enqueue(*r, *r).unwrap();
                    audit.on_enqueue(*r);
                    fifo.enqueue(*r, *r).unwrap();
                    fifo_audit.on_enqueue(*r);
                }
                Op::Dequeue => {
                    if let Some((r, _)) = q.dequeue_min() {
                        audit.on_dequeue(r);
                    }
                    if let Some((r, _)) = fifo.dequeue_min() {
                        fifo_audit.on_dequeue(r);
                    }
                }
            }
            let b = q.queue_bounds();
            prop_assert!(
                b.windows(2).all(|w| w[0] <= w[1]),
                "queue bounds must stay sorted, got {:?}",
                b
            );
        }
        while let Some((r, _)) = q.dequeue_min() {
            audit.on_dequeue(r);
        }
        while let Some((r, _)) = fifo.dequeue_min() {
            fifo_audit.on_dequeue(r);
        }
        let (rep, fifo_rep) = (audit.finish(), fifo_audit.finish());
        prop_assert_eq!(rep.pops, fifo_rep.pops);
        // 16 strict-priority queues must not serve worse than no mapping
        // at all (ties allowed: short scripts can be error-free in both).
        prop_assert!(
            rep.avg_rank_error() <= fifo_rep.avg_rank_error(),
            "16-queue SP-PIFO (avg err {}) lost to a FIFO (avg err {})",
            rep.avg_rank_error(),
            fifo_rep.avg_rank_error()
        );
    }

    /// RIFO's geometry invariant: whenever the queue is non-empty the live
    /// range fits the bucket array (`hi − lo < g·N`, so every mapped index
    /// is in bounds — checked after every enqueue, including ones that
    /// widen the range), and on a fill-then-drain with the range pinned up
    /// front (no clamping, no rebase) both the per-pop rank error and the
    /// max inversion stay below the bucket width `g`.
    #[test]
    fn rifo_range_fits_and_inversions_stay_below_bucket_width(
        ranks in prop::collection::vec(0u64..32_000, 1..400),
    ) {
        let nb = 64usize;
        let mut q: RifoQueue<u64> = RifoQueue::new(nb);
        // Pin the range: lo = 0, hi = 32_000 → g fixed for the whole run.
        q.enqueue(0, 0).unwrap();
        q.enqueue(32_000, 32_000).unwrap();
        let (_, _, g) = q.range();
        let mut audit = OracleAudit::new();
        audit.on_enqueue(0);
        audit.on_enqueue(32_000);
        for r in &ranks {
            q.enqueue(*r, *r).unwrap();
            audit.on_enqueue(*r);
            let (lo, hi, g_now) = q.range();
            prop_assert!(
                hi - lo < g_now * nb as u64,
                "live range [{lo}, {hi}] overflows {nb} buckets of width {g_now}"
            );
        }
        prop_assert_eq!(q.stats().clamped_low, 0, "pinned range must not clamp");
        while let Some((r, _)) = q.dequeue_min() {
            audit.on_dequeue(r);
        }
        let rep = audit.finish();
        prop_assert!(
            rep.max_rank_error < g,
            "per-pop rank error {} must stay below bucket width {g}",
            rep.max_rank_error
        );
        let (_, max_gap) = count_inversions(audit.popped());
        prop_assert!(
            max_gap < g,
            "max inversion {max_gap} must stay below bucket width {g}"
        );
    }

    /// `dequeue_batch` must produce exactly the sequence repeated
    /// `dequeue_min` calls would, for both new backends, arbitrary fills,
    /// arbitrary batch sizes, and enqueues interleaved between batches
    /// (mirrors `properties.rs`'s three-incumbent version).
    #[test]
    fn new_backend_batches_match_repeated_single(
        ranks in prop::collection::vec(0u64..100_000, 1..300),
        late in prop::collection::vec(0u64..100_000, 0..60),
        batches in prop::collection::vec(1usize..17, 1..80),
    ) {
        let cfg = QueueConfig::new(700, 1, 0);
        for kind in [QueueKind::SpPifo { queues: 16 }, QueueKind::Rifo] {
            let mut batched: Box<dyn RankedQueue<usize>> = kind.build(cfg);
            let mut single: Box<dyn RankedQueue<usize>> = kind.build(cfg);
            for (i, r) in ranks.iter().enumerate() {
                batched.enqueue(*r, i).unwrap();
                single.enqueue(*r, i).unwrap();
            }
            let mut out = Vec::new();
            let mut round = 0usize;
            loop {
                let max = batches[round % batches.len()];
                out.clear();
                let got = batched.dequeue_batch(max, &mut out);
                prop_assert!(got <= max, "{kind:?} overfilled the batch");
                prop_assert_eq!(got, out.len());
                for pair in &out {
                    prop_assert_eq!(Some(*pair), single.dequeue_min(), "{:?}", kind);
                }
                if got == 0 {
                    prop_assert!(single.dequeue_min().is_none());
                    break;
                }
                if let Some(r) = late.get(round) {
                    batched.enqueue(*r, 100_000 + round).unwrap();
                    single.enqueue(*r, 100_000 + round).unwrap();
                }
                round += 1;
            }
            prop_assert!(batched.is_empty() && single.is_empty());
        }
    }

    /// Flow-churn through the shared node slab: arbitrary interleaved
    /// push/pop scripts across buckets, audited against a per-bucket FIFO
    /// oracle, with the storage invariants checked after *every* op —
    /// `free_list_len() = slab_len() − len()` (no leaked or double-freed
    /// nodes; the walk itself panics on a free-list cycle) and
    /// `slab_len() ≤ peak occupancy` (churn recycles, never grows).
    #[test]
    fn slab_churn_recycles_nodes_and_keeps_fifo(
        script in prop::collection::vec(
            (0usize..24, 0u64..1_000, any::<bool>()),
            1..600,
        ),
    ) {
        let mut b: Buckets<u64> = Buckets::new(24);
        let mut oracle: Vec<VecDeque<(u64, u64)>> = vec![VecDeque::new(); 24];
        let mut peak = 0usize;
        let mut serial = 0u64;
        for &(bucket, rank, is_push) in &script {
            if is_push {
                b.push(bucket, rank, serial);
                oracle[bucket].push_back((rank, serial));
                serial += 1;
            } else {
                prop_assert_eq!(b.pop(bucket), oracle[bucket].pop_front(), "bucket {}", bucket);
            }
            peak = peak.max(b.len());
            prop_assert_eq!(b.len(), oracle.iter().map(|q| q.len()).sum::<usize>());
            prop_assert_eq!(
                b.free_list_len(),
                b.slab_len() - b.len(),
                "every slab node must be live or free-listed, never both/neither"
            );
            prop_assert!(
                b.slab_len() <= peak.max(1),
                "slab grew to {} nodes for peak occupancy {}",
                b.slab_len(),
                peak
            );
        }
        // Drain everything: the oracle must agree to the end, and the full
        // slab must land on the free list.
        for (bucket, expect) in oracle.iter_mut().enumerate() {
            while let Some(got) = b.pop(bucket) {
                prop_assert_eq!(Some(got), expect.pop_front());
            }
            prop_assert!(expect.is_empty(), "bucket {} lost elements", bucket);
        }
        prop_assert_eq!(b.free_list_len(), b.slab_len());
    }

    /// Occupancy-bitmap churn against a set oracle: arbitrary set/clear
    /// scripts (heavy on 0↔1 edges — the transitions the hierarchy's
    /// summary words must track exactly), with `first_set`/`last_set` and
    /// the directional scans checked after every operation.
    #[test]
    fn hierbitmap_churn_matches_set_oracle(
        len in 1usize..700,
        script in prop::collection::vec((0usize..700, any::<bool>()), 1..400),
        probe in 0usize..700,
    ) {
        let mut bm = HierBitmap::new(len);
        let mut oracle: BTreeSet<usize> = BTreeSet::new();
        for &(i, set) in &script {
            let i = i % len;
            if set {
                bm.set(i);
                oracle.insert(i);
            } else {
                bm.clear(i);
                oracle.remove(&i);
            }
            prop_assert_eq!(bm.count_ones(), oracle.len());
            prop_assert_eq!(bm.first_set(), oracle.iter().next().copied());
            prop_assert_eq!(bm.last_set(), oracle.iter().next_back().copied());
            let p = probe % len;
            prop_assert_eq!(bm.first_set_from(p), oracle.range(p..).next().copied());
            prop_assert_eq!(bm.last_set_to(p), oracle.range(..=p).next_back().copied());
        }
    }

    /// Flow churn at the queue level: repeated fill/drain cycles (each
    /// cycle emptying the queue — many 0↔1 occupancy edges over recycled
    /// slab nodes), audited by the PIFO oracle. Exact backends must stay
    /// exact in *every* cycle: a stale summary bit or recycled-node bug
    /// from cycle k would surface as rank error in cycle k+1.
    #[test]
    fn queue_churn_stays_exact_across_empty_cycles(
        cycles in prop::collection::vec(
            prop::collection::vec(0u64..64, 1..40),
            2..8,
        ),
    ) {
        let cfg = QueueConfig::new(700, 1, 0);
        for kind in [
            QueueKind::Ffs,
            QueueKind::HierFfs,
            QueueKind::Cffs,
            QueueKind::Gradient,
            QueueKind::BucketHeap,
        ] {
            let mut q: Box<dyn RankedQueue<u64>> = kind.build(cfg);
            for ranks in &cycles {
                let mut audit = OracleAudit::new();
                for r in ranks {
                    q.enqueue(*r, *r).unwrap();
                    audit.on_enqueue(*r);
                }
                while let Some((r, _)) = q.dequeue_min() {
                    audit.on_dequeue(r);
                }
                prop_assert!(q.is_empty(), "{:?} must drain to empty", kind);
                let rep = audit.finish();
                prop_assert_eq!(rep.pops, ranks.len() as u64, "{:?} conservation", kind);
                prop_assert_eq!(rep.rank_error_sum, 0, "{:?} exactness after churn", kind);
            }
        }
    }

    /// The integer fixed-point estimator against the f64 reference it
    /// replaced: at every step of an arbitrary script, the bucket the
    /// integer path selects is the same one the float path would pick —
    /// or strictly closer to the true minimum (never worse).
    #[test]
    fn int_estimator_matches_float_reference(script in ops(523, 400)) {
        let nb = 523usize;
        let mut q: ApproxGradientQueue<u64> = ApproxGradientQueue::with_base(nb, 1, 0, 16);
        let mut audit = OracleAudit::new();
        let check = |q: &ApproxGradientQueue<u64>, audit: &OracleAudit| {
            let Some(truth_rank) = audit.true_min() else {
                prop_assert!(q.peek_min_rank().is_none());
                prop_assert!(q.float_reference_selection().is_none());
                return;
            };
            // Internal offset of a rank at granularity 1, base 0: nb−1−r.
            let truth_k = nb as u64 - 1 - truth_rank;
            let int_k = nb as u64 - 1 - q.peek_min_rank().expect("oracle says non-empty");
            let (float_k, _) = q.float_reference_selection().expect("oracle says non-empty");
            prop_assert!(
                int_k == float_k as u64
                    || int_k.abs_diff(truth_k) <= (float_k as u64).abs_diff(truth_k),
                "integer pick {int_k} is farther from truth {truth_k} than float pick {float_k}"
            );
        };
        for op in &script {
            match op {
                Op::Enqueue(r) => {
                    q.enqueue(*r, *r).unwrap();
                    audit.on_enqueue(*r);
                }
                Op::Dequeue => {
                    if let Some((r, _)) = q.dequeue_min() {
                        audit.on_dequeue(r);
                    }
                }
            }
            check(&q, &audit);
        }
        while let Some((r, _)) = q.dequeue_min() {
            audit.on_dequeue(r);
            check(&q, &audit);
        }
    }
}
