//! Property + stress suite for the lock-free SPSC ring.
//!
//! Single-threaded properties model the ring against a `VecDeque` oracle
//! across random push/pop interleavings (wraparound, full/empty edges,
//! tiny capacities). The two-thread test is the real contract: with a
//! producer and a consumer on separate OS threads, every pushed value is
//! popped **exactly once, in order** — the property the threaded host
//! runtime's per-packet path stands on.

use std::collections::VecDeque;

use eiffel_core::ring::SpscRing;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings vs a VecDeque oracle: identical contents and
    /// full/empty decisions at every step, across many wraparounds.
    #[test]
    fn matches_deque_oracle(
        cap in 1usize..9,
        ops in prop::collection::vec(0u8..4, 1..400),
    ) {
        let (mut tx, mut rx) = SpscRing::new(cap);
        let mut oracle: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for op in ops {
            // 0,1 = push (biased neither way); 2,3 = pop.
            if op < 2 {
                match tx.push(next) {
                    Ok(()) => {
                        prop_assert!(oracle.len() < cap, "pushed while full");
                        oracle.push_back(next);
                    }
                    Err(v) => {
                        prop_assert_eq!(v, next, "push must hand back the value");
                        prop_assert_eq!(oracle.len(), cap, "refused while not full");
                    }
                }
                next += 1;
            } else {
                prop_assert_eq!(rx.pop(), oracle.pop_front());
            }
            prop_assert_eq!(tx.len(), oracle.len());
            prop_assert_eq!(rx.len(), oracle.len());
            prop_assert_eq!(rx.is_empty(), oracle.is_empty());
        }
        // Drain: everything still inside comes out in FIFO order.
        while let Some(want) = oracle.pop_front() {
            prop_assert_eq!(rx.pop(), Some(want));
        }
        prop_assert_eq!(rx.pop(), None);
    }

    /// Capacity-1 ring: strict alternation — push, full, pop, empty.
    #[test]
    fn capacity_one_alternates(rounds in 1u64..200) {
        let (mut tx, mut rx) = SpscRing::new(1);
        for i in 0..rounds {
            prop_assert_eq!(tx.push(i), Ok(()));
            prop_assert_eq!(tx.push(i + 1_000_000), Err(i + 1_000_000));
            prop_assert_eq!(rx.pop(), Some(i));
            prop_assert_eq!(rx.pop(), None);
        }
    }
}

/// Wraparound is exercised far past the capacity boundary: the monotonic
/// counters must index slots correctly for many laps around the buffer.
#[test]
fn many_laps_preserve_fifo() {
    let (mut tx, mut rx) = SpscRing::new(3);
    let mut expected = 0u64;
    for i in 0..10_000u64 {
        tx.push(i).unwrap();
        if i % 3 == 2 {
            // Drain in bursts so occupancy swings between 0 and capacity.
            while let Some(v) = rx.pop() {
                assert_eq!(v, expected);
                expected += 1;
            }
        }
    }
    while let Some(v) = rx.pop() {
        assert_eq!(v, expected);
        expected += 1;
    }
    assert_eq!(expected, 10_000);
}

/// The cross-thread contract: a real producer thread and a real consumer
/// thread, tiny capacity (maximum full/empty contention), every value
/// received exactly once in push order.
#[test]
fn two_threads_exactly_once_in_order() {
    const N: u64 = 50_000;
    let (mut tx, mut rx) = SpscRing::new(8);
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut v = 0u64;
            while v < N {
                match tx.push(v) {
                    // Full means the consumer is behind: on single-CPU
                    // runners it may not even be scheduled — yield, don't
                    // spin out the timeslice.
                    Ok(()) => v += 1,
                    Err(_) => std::thread::yield_now(),
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect, "value lost, duplicated, or reordered");
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        assert_eq!(rx.pop(), None, "no extra values after the last push");
    });
}

/// Same contract with non-Copy payloads and batched consumption: exactly
/// once, in order, nothing leaked (Strings would double-free or leak under
/// a slot-ownership bug; miri-style issues show up as corruption here).
#[test]
fn two_threads_batched_strings() {
    const N: usize = 5_000;
    let (mut tx, mut rx) = SpscRing::new(16);
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut i = 0usize;
            while i < N {
                match tx.push(format!("pkt-{i}")) {
                    Ok(()) => i += 1,
                    Err(_) => std::thread::yield_now(),
                }
            }
        });
        let mut got = Vec::with_capacity(N);
        let mut buf = Vec::new();
        while got.len() < N {
            buf.clear();
            if rx.pop_batch(32, &mut buf) == 0 {
                std::thread::yield_now();
            }
            got.append(&mut buf);
        }
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s, &format!("pkt-{i}"));
        }
        assert!(rx.is_empty());
    });
}
