//! Per-core statistics counters aggregated without locks.
//!
//! The threaded host runtime keeps its live statistics the way scalable
//! data planes do (the "counter flavors" pattern): each shard thread owns a
//! block of plain `u64` counters that only it ever writes, stored as
//! cache-line-padded atomics so a reader thread can aggregate a consistent
//! *per-counter* view at any time with plain `Relaxed` loads — no locks, no
//! read-modify-write traffic on the writer's fast path, no false sharing
//! between shards. The aggregate is not a snapshot across counters (reads
//! of different counters may interleave with writes), which is exactly the
//! usual contract of networking stats; exact totals come from joining the
//! shard at shutdown.

use std::sync::atomic::{AtomicU64, Ordering};

/// Pads (and aligns) a value to 128 bytes so adjacent values never share a
/// cache line — 128 rather than 64 to also defeat adjacent-line prefetcher
/// pairing on x86.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// The padded value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Mutable access (single-owner contexts).
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.value
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

/// A block of `N` single-writer counters, readable by any thread.
///
/// The owning (writer) thread uses [`CounterBlock::add`] / [`set`]
/// (plain load + store — it is the only writer, so no `fetch_add` is
/// needed); reader threads use [`read`] / [`snapshot`].
///
/// [`set`]: CounterBlock::set
/// [`read`]: CounterBlock::read
/// [`snapshot`]: CounterBlock::snapshot
#[derive(Debug)]
pub struct CounterBlock<const N: usize> {
    slots: [CachePadded<AtomicU64>; N],
}

impl<const N: usize> CounterBlock<N> {
    /// A block of `N` zeroed counters.
    pub fn new() -> Self {
        CounterBlock {
            slots: std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0))),
        }
    }

    /// Writer-only: adds `delta` to counter `i`. Implemented as load+store,
    /// which is correct only because a counter has exactly one writer.
    pub fn add(&self, i: usize, delta: u64) {
        let slot = self.slots[i].get();
        let v = slot.load(Ordering::Relaxed);
        slot.store(v.wrapping_add(delta), Ordering::Relaxed);
    }

    /// Writer-only: sets counter `i` to `v`.
    pub fn set(&self, i: usize, v: u64) {
        self.slots[i].get().store(v, Ordering::Relaxed);
    }

    /// Reads counter `i` (any thread; monotone w.r.t. the writer's updates).
    pub fn read(&self, i: usize) -> u64 {
        self.slots[i].get().load(Ordering::Relaxed)
    }

    /// Reads all counters. Per-counter consistent, not a cross-counter
    /// snapshot (see the module docs).
    pub fn snapshot(&self) -> [u64; N] {
        std::array::from_fn(|i| self.read(i))
    }
}

impl<const N: usize> Default for CounterBlock<N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_set_read_snapshot() {
        let c: CounterBlock<3> = CounterBlock::new();
        c.add(0, 5);
        c.add(0, 7);
        c.set(1, 100);
        assert_eq!(c.read(0), 12);
        assert_eq!(c.read(1), 100);
        assert_eq!(c.read(2), 0);
        assert_eq!(c.snapshot(), [12, 100, 0]);
    }

    #[test]
    fn cache_padding_separates_slots() {
        assert!(std::mem::align_of::<CachePadded<AtomicU64>>() >= 128);
        let c: CounterBlock<2> = CounterBlock::new();
        let a = c.slots[0].get() as *const _ as usize;
        let b = c.slots[1].get() as *const _ as usize;
        assert!(b.abs_diff(a) >= 128, "slots share a cache line pair");
    }

    #[test]
    fn readable_while_another_thread_writes() {
        let c: CounterBlock<1> = CounterBlock::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..10_000 {
                    c.add(0, 1);
                }
            });
            let mut last = 0;
            for _ in 0..100 {
                let now = c.read(0);
                assert!(now >= last, "single-writer counters are monotone");
                last = now;
            }
        });
        assert_eq!(c.read(0), 10_000);
    }
}
