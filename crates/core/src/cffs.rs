//! Circular Hierarchical FFS-based queue (**cFFS**) — Figure 4, the paper's
//! flagship structure.
//!
//! Fixed-range FFS queues break under the moving rank ranges of real
//! policies (transmission timestamps only grow), and naive mod-indexing
//! corrupts the bitmap (§3.1.1's slot-zero example). Eiffel's fix: keep
//! **two** fixed-range queues, a *primary* covering `[h, h + span)` and a
//! *secondary* covering `[h + span, h + 2·span)`. Elements beyond even the
//! secondary's range are "enqueued at the last bucket in the secondary queue,
//! and thus losing their proper ordering" — an explicit, bounded inaccuracy
//! the operator avoids by sizing the horizon for the policy. When the primary
//! drains, the queue "circulates by switching the pointers of the two queues"
//! and advancing `h` by one span; no bitmap is ever reset and no element is
//! ever re-scanned.
//!
//! The wrapper is generic over [`BucketCore`] so the same window logic also
//! yields the circular approximate gradient queue
//! ([`crate::CircularApproxQueue`]; §3.1.2: "for cases of a moving range, a
//! circular approximate queue can be implemented as with cFFS").

use std::marker::PhantomData;

use crate::hffs::HierFfsQueue;
use crate::recip::Reciprocal;
use crate::traits::{EnqueueError, QueueStats, RankedQueue};

/// A fixed-range bucketed queue addressed purely by bucket index, usable as
/// one half of a [`Circular`] queue.
pub trait BucketCore<T> {
    /// Appends to bucket `bucket`'s FIFO (bucket is in `[0, num_buckets)`).
    fn push_bucket(&mut self, bucket: usize, rank: u64, item: T);
    /// Pops from the minimum non-empty bucket, reporting which bucket it was.
    fn pop_min_bucket(&mut self) -> Option<(usize, u64, T)>;
    /// Pops up to `max` elements in repeated-[`BucketCore::pop_min_bucket`]
    /// order, appending `(rank, item)` pairs to `out` and returning the
    /// count. Cores override this to amortize the min-find across a batch.
    fn pop_min_batch(&mut self, max: usize, out: &mut Vec<(u64, T)>) -> usize {
        let mut n = 0;
        while n < max {
            match self.pop_min_bucket() {
                Some((_, rank, item)) => {
                    out.push((rank, item));
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
    /// Pops from the maximum non-empty bucket, reporting which bucket it
    /// was. Default `None` = the core has no exact max path; cores with an
    /// occupancy bitmap override it so the circular wrapper can serve
    /// priority-drop eviction ([`RankedQueue::dequeue_max`]).
    fn pop_max_bucket(&mut self) -> Option<(usize, u64, T)> {
        None
    }
    /// Index of the minimum non-empty bucket.
    fn min_bucket(&self) -> Option<usize>;
    /// Stored element count.
    fn core_len(&self) -> usize;
    /// Bucket count.
    fn core_num_buckets(&self) -> usize;
    /// Approximation counters, if the core is approximate.
    fn core_stats(&self) -> QueueStats {
        QueueStats::default()
    }
}

/// Moving-window queue built from two fixed-range halves (Figure 4).
#[derive(Debug, Clone)]
pub struct Circular<C, T> {
    halves: [C; 2],
    /// Which half is currently the primary (0 or 1).
    primary: usize,
    /// Lowest rank covered by the primary window, aligned to the granularity
    /// grid ("h_index" in the paper).
    h_index: u64,
    /// The bucket granularity, stored once as its precomputed reciprocal:
    /// `recip.divisor()` reads it back, `recip.div`/`recip.rem` perform the
    /// enqueue-path rank→bucket division as a multiply-shift.
    recip: Reciprocal,
    num_buckets: usize,
    stats: QueueStats,
    _item: PhantomData<fn() -> T>,
}

impl<C: BucketCore<T>, T> Circular<C, T> {
    /// Builds a circular queue from two identical fixed-range halves.
    ///
    /// The window starts at `start_rank` (rounded down to the granularity
    /// grid).
    pub fn from_halves(a: C, b: C, granularity: u64, start_rank: u64) -> Self {
        assert!(granularity > 0, "granularity must be positive");
        assert_eq!(
            a.core_num_buckets(),
            b.core_num_buckets(),
            "halves must have identical geometry"
        );
        let num_buckets = a.core_num_buckets();
        let recip = Reciprocal::new(granularity);
        Circular {
            halves: [a, b],
            primary: 0,
            h_index: start_rank - recip.rem(start_rank),
            recip,
            num_buckets,
            stats: QueueStats::default(),
            _item: PhantomData,
        }
    }

    /// Rank units covered by one window half.
    pub fn span(&self) -> u64 {
        self.num_buckets as u64 * self.recip.divisor()
    }

    /// Lowest rank covered by the primary window.
    pub fn h_index(&self) -> u64 {
        self.h_index
    }

    /// Number of buckets per half.
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// Rank units per bucket.
    pub fn granularity(&self) -> u64 {
        self.recip.divisor()
    }

    fn primary_ref(&self) -> &C {
        &self.halves[self.primary]
    }

    fn secondary_ref(&self) -> &C {
        &self.halves[1 - self.primary]
    }

    /// Swaps the primary and secondary pointers and advances the window —
    /// the paper's "circulation". Only legal when the primary is drained.
    fn rotate(&mut self) {
        debug_assert_eq!(self.primary_ref().core_len(), 0);
        self.primary = 1 - self.primary;
        self.h_index += self.span();
    }
}

impl<C: BucketCore<T>, T> RankedQueue<T> for Circular<C, T> {
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>> {
        let span = self.span();
        // Re-base an empty queue whose window lags so far behind that the
        // rank would land in the overflow bucket: with nothing enqueued there
        // is no ordering to preserve, and jumping the window forward keeps
        // the rank exact. The window never moves backwards, and a non-empty
        // queue never re-bases (rotation is the only other advance).
        if rank >= self.h_index + 2 * span
            && self.primary_ref().core_len() == 0
            && self.secondary_ref().core_len() == 0
        {
            self.h_index = rank - self.recip.rem(rank);
        }
        let (half, bucket) = if rank < self.h_index {
            // Overdue rank: due immediately (Carousel clamps identically).
            self.stats.clamped_low += 1;
            (self.primary, 0)
        } else {
            let off = self.recip.div(rank - self.h_index);
            if off < self.num_buckets as u64 {
                (self.primary, off as usize)
            } else if off < 2 * self.num_buckets as u64 {
                (1 - self.primary, off as usize - self.num_buckets)
            } else {
                // Beyond the secondary window: last bucket, order not kept.
                debug_assert!(rank >= self.h_index + 2 * span);
                self.stats.clamped_high += 1;
                (1 - self.primary, self.num_buckets - 1)
            }
        };
        self.halves[half].push_bucket(bucket, rank, item);
        Ok(())
    }

    fn dequeue_min(&mut self) -> Option<(u64, T)> {
        if self.primary_ref().core_len() == 0 {
            if self.secondary_ref().core_len() == 0 {
                return None;
            }
            self.rotate();
        }
        let (_, rank, item) = self.halves[self.primary]
            .pop_min_bucket()
            .expect("primary non-empty after rotation");
        Some((rank, item))
    }

    /// Batched fast path: drains the primary half through its core's
    /// [`BucketCore::pop_min_batch`], rotating into the secondary exactly
    /// when repeated [`RankedQueue::dequeue_min`] would.
    fn dequeue_batch(&mut self, max: usize, out: &mut Vec<(u64, T)>) -> usize {
        let mut n = 0;
        while n < max {
            if self.primary_ref().core_len() == 0 {
                if self.secondary_ref().core_len() == 0 {
                    break;
                }
                self.rotate();
            }
            let got = self.halves[self.primary].pop_min_batch(max - n, out);
            // Fail as loudly as dequeue_min would: a half that claims
            // elements but pops none must not spin this loop forever.
            assert!(got > 0, "primary non-empty after rotation");
            n += got;
        }
        n
    }

    /// Exact max extraction: the secondary half's window covers strictly
    /// larger ranks than the primary's (and holds the clamped-high
    /// overflow), so the maximum lives wherever the secondary is non-empty.
    /// No rotation — that stays the exclusive business of the min path.
    fn dequeue_max(&mut self) -> Option<(u64, T)> {
        let half = if self.secondary_ref().core_len() > 0 {
            1 - self.primary
        } else {
            self.primary
        };
        self.halves[half].pop_max_bucket().map(|(_, r, t)| (r, t))
    }

    fn peek_min_rank(&self) -> Option<u64> {
        if let Some(b) = self.primary_ref().min_bucket() {
            return Some(self.h_index + b as u64 * self.recip.divisor());
        }
        self.secondary_ref()
            .min_bucket()
            .map(|b| self.h_index + self.span() + b as u64 * self.recip.divisor())
    }

    fn len(&self) -> usize {
        self.halves[0].core_len() + self.halves[1].core_len()
    }

    fn stats(&self) -> QueueStats {
        let mut s = self.stats;
        for h in &self.halves {
            let cs = h.core_stats();
            s.lookups += cs.lookups;
            s.error_sum += cs.error_sum;
            s.est_hits += cs.est_hits;
            s.est_misses += cs.est_misses;
        }
        s
    }
}

/// The paper's cFFS: a [`Circular`] queue over two hierarchical FFS halves.
pub type CffsQueue<T> = Circular<HierFfsQueue<T>, T>;

impl<T> CffsQueue<T> {
    /// Creates a cFFS with `num_buckets` buckets of `granularity` rank units
    /// per window half, starting at `start_rank`.
    ///
    /// Total coverage at any instant is `2 × num_buckets × granularity` rank
    /// units ahead of `h_index` — e.g. the paper's kernel shaper uses 20k
    /// buckets with a 2-second horizon (§5.1.1).
    pub fn new(num_buckets: usize, granularity: u64, start_rank: u64) -> Self {
        Circular::from_halves(
            HierFfsQueue::new(num_buckets, granularity),
            HierFfsQueue::new(num_buckets, granularity),
            granularity,
            start_rank,
        )
    }

    /// Pops the minimum element only if its bucket-edge rank is ≤ `bound`;
    /// otherwise leaves the queue untouched and returns `None`.
    ///
    /// Equivalent to `peek_min_rank()` + compare + `dequeue_min()`, but with
    /// a single bitmap word-descent instead of two — the peek already found
    /// the minimum bucket, so the pop reuses it. Like `dequeue_min`, the
    /// window rotates only when an element actually leaves; a rejected probe
    /// must not advance `h_index`, or ranks that were still inside the old
    /// primary window would arrive clamped and be released a span late.
    /// Time-indexed consumers (shapers, the hClock reservation/limit clocks)
    /// call this once per service with `bound = now`, which halves the
    /// descent cost of their hot loop; see
    /// `BENCH_fig12_hclock_scaling.json`.
    pub fn dequeue_min_le(&mut self, bound: u64) -> Option<(u64, T)> {
        let (half, base) = if self.primary_ref().core_len() > 0 {
            (self.primary, self.h_index)
        } else if self.secondary_ref().core_len() > 0 {
            (1 - self.primary, self.h_index + self.span())
        } else {
            return None;
        };
        let b = self.halves[half].min_bucket().expect("half is non-empty");
        if base + b as u64 * self.recip.divisor() > bound {
            return None;
        }
        if half != self.primary {
            self.rotate();
        }
        let (rank, item) = self.halves[half]
            .pop_bucket(b)
            .expect("min_bucket said non-empty");
        Some((rank, item))
    }

    /// Pops up to `max` elements whose bucket-edge rank is ≤ `bound`, in
    /// exactly the order repeated [`CffsQueue::dequeue_min_le`] calls would
    /// produce, appending them to `out` and returning the count.
    ///
    /// This is the shaper-side analogue of [`RankedQueue::dequeue_batch`]:
    /// one bitmap descent locates the minimum due bucket, whose FIFO is then
    /// popped directly ([`HierFfsQueue::pop_bucket`], O(1) per element)
    /// until it empties, the batch fills, or the next bucket's edge passes
    /// `bound`. Timer-driven hosts drain everything due at a softirq through
    /// this path, paying the descent once per occupied bucket instead of
    /// once per packet.
    pub fn dequeue_le_batch(&mut self, bound: u64, max: usize, out: &mut Vec<(u64, T)>) -> usize {
        let mut n = 0;
        while n < max {
            let (half, base) = if self.primary_ref().core_len() > 0 {
                (self.primary, self.h_index)
            } else if self.secondary_ref().core_len() > 0 {
                (1 - self.primary, self.h_index + self.span())
            } else {
                break;
            };
            let b = self.halves[half].min_bucket().expect("half is non-empty");
            if base + b as u64 * self.recip.divisor() > bound {
                break; // earliest pending bucket is not yet due
            }
            if half != self.primary {
                self.rotate();
            }
            // Drain the due bucket's FIFO without further descents.
            while n < max {
                match self.halves[self.primary].pop_bucket(b) {
                    Some(pair) => {
                        out.push(pair);
                        n += 1;
                    }
                    None => break, // bucket emptied: re-probe the bitmap
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(q: &mut impl RankedQueue<T>) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some((r, _)) = q.dequeue_min() {
            out.push(r);
        }
        out
    }

    #[test]
    fn orders_across_both_windows() {
        let mut q: CffsQueue<u32> = CffsQueue::new(10, 10, 0);
        // primary covers [0,100), secondary [100,200)
        q.enqueue(150, 1).unwrap();
        q.enqueue(20, 2).unwrap();
        q.enqueue(99, 3).unwrap();
        q.enqueue(100, 4).unwrap();
        assert_eq!(drain(&mut q), vec![20, 99, 100, 150]);
    }

    #[test]
    fn rotation_advances_window_without_losing_elements() {
        let mut q: CffsQueue<u32> = CffsQueue::new(4, 1, 0);
        // span = 4. Fill primary [0,4) and secondary [4,8).
        for r in 0..8u64 {
            q.enqueue(r, r as u32).unwrap();
        }
        assert_eq!(q.h_index(), 0);
        // Drain the primary; the 5th dequeue forces a rotation.
        for want in 0..8u64 {
            assert_eq!(q.dequeue_min().unwrap().0, want);
        }
        assert_eq!(q.h_index(), 4);
        assert!(q.is_empty());
    }

    #[test]
    fn beyond_horizon_lands_in_overflow_bucket_fifo() {
        let mut q: CffsQueue<&str> = CffsQueue::new(4, 1, 0);
        // Window covers [0,8). With the queue non-empty (no re-base), 100 and
        // 50 are both beyond → overflow bucket, FIFO order (not rank order):
        // the paper's documented inaccuracy.
        q.enqueue(3, "due").unwrap();
        q.enqueue(100, "first-in").unwrap();
        q.enqueue(50, "second-in").unwrap();
        assert_eq!(q.stats().clamped_high, 2);
        assert_eq!(q.dequeue_min().unwrap().1, "due");
        assert_eq!(q.dequeue_min().unwrap().1, "first-in"); // FIFO, not 50 first
        assert_eq!(q.dequeue_min().unwrap().1, "second-in");
    }

    #[test]
    fn below_window_clamps_to_due_now() {
        let mut q: CffsQueue<&str> = CffsQueue::new(4, 100, 1_000);
        q.enqueue(400, "overdue").unwrap(); // below h_index = 1000
        q.enqueue(1_050, "soon").unwrap();
        assert_eq!(q.stats().clamped_low, 1);
        // Overdue element comes out first (bucket 0 of primary).
        assert_eq!(q.dequeue_min().unwrap().1, "overdue");
        assert_eq!(q.dequeue_min().unwrap().1, "soon");
    }

    #[test]
    fn empty_queue_rebases_forward_only() {
        let mut q: CffsQueue<u32> = CffsQueue::new(4, 10, 0);
        q.enqueue(1_000_000, 1).unwrap();
        // Window jumped to the new rank instead of clamping it.
        assert_eq!(q.stats().clamped_high, 0);
        assert_eq!(q.h_index(), 1_000_000);
        assert_eq!(q.peek_min_rank(), Some(1_000_000));
        q.dequeue_min().unwrap();
        // Now empty again: an older rank must NOT move the window back…
        q.enqueue(500, 2).unwrap();
        assert_eq!(q.h_index(), 1_000_000, "window never re-bases backwards");
        assert_eq!(q.stats().clamped_low, 1);
        assert_eq!(q.dequeue_min().unwrap().0, 500);
        // …and a rank within the current coverage does not re-base either.
        q.enqueue(1_000_050, 3).unwrap();
        assert_eq!(q.h_index(), 1_000_000);
        assert_eq!(q.dequeue_min().unwrap().0, 1_000_050);
    }

    #[test]
    fn dequeue_min_le_matches_peek_then_pop() {
        // Reference semantics: pop iff peek_min_rank() ≤ bound.
        let mut fused: CffsQueue<u64> = CffsQueue::new(16, 10, 0);
        let mut split: CffsQueue<u64> = CffsQueue::new(16, 10, 0);
        let ranks = [5u64, 5, 42, 160, 170, 170, 319, 500];
        for &r in &ranks {
            fused.enqueue(r, r).unwrap();
            split.enqueue(r, r).unwrap();
        }
        for bound in [0u64, 4, 5, 50, 100, 165, 200, 320, 1_000, 5_000] {
            loop {
                let expect = match split.peek_min_rank() {
                    Some(edge) if edge <= bound => split.dequeue_min(),
                    _ => None,
                };
                let got = fused.dequeue_min_le(bound);
                assert_eq!(got, expect, "bound {bound}");
                if got.is_none() {
                    break;
                }
            }
        }
        assert!(fused.is_empty() && split.is_empty());
    }

    #[test]
    fn dequeue_le_batch_matches_repeated_dequeue_min_le() {
        // Reference semantics: the batch is exactly what a loop of
        // dequeue_min_le(bound) yields, across rotations and partial
        // buckets, with enqueues interleaved between batches.
        let mut batched: CffsQueue<u64> = CffsQueue::new(8, 10, 0);
        let mut single: CffsQueue<u64> = CffsQueue::new(8, 10, 0);
        let ranks = [5u64, 5, 12, 12, 12, 79, 80, 95, 141, 200, 200, 310];
        for &r in &ranks {
            batched.enqueue(r, r).unwrap();
            single.enqueue(r, r).unwrap();
        }
        let mut out = Vec::new();
        for (i, bound) in [0u64, 4, 5, 13, 70, 90, 150, 199, 1_000]
            .into_iter()
            .enumerate()
        {
            for max in [1usize, 2, 3, 64] {
                out.clear();
                let got = batched.dequeue_le_batch(bound, max, &mut out);
                assert_eq!(got, out.len());
                assert!(got <= max);
                for pair in &out {
                    assert_eq!(Some(*pair), single.dequeue_min_le(bound));
                }
                if got < max {
                    assert_eq!(single.dequeue_min_le(bound), None, "bound {bound}");
                }
            }
            // Interleave an enqueue so batches also cross window rotations.
            let r = 90 + 37 * i as u64;
            batched.enqueue(r, r).unwrap();
            single.enqueue(r, r).unwrap();
        }
        assert_eq!(batched.len(), single.len());
    }

    #[test]
    fn dequeue_le_batch_rejected_probe_does_not_rotate() {
        // Same invariant dequeue_min_le holds: probing an ineligible
        // secondary-only queue must not advance the window.
        let mut q: CffsQueue<u32> = CffsQueue::new(4, 1, 0);
        q.enqueue(6, 6).unwrap(); // secondary window [4, 8)
        let mut out = Vec::new();
        assert_eq!(q.dequeue_le_batch(0, 16, &mut out), 0);
        assert_eq!(q.h_index(), 0, "rejected probe left the window alone");
        q.enqueue(2, 2).unwrap();
        assert_eq!(q.stats().clamped_low, 0);
        assert_eq!(q.dequeue_le_batch(6, 16, &mut out), 2);
        assert_eq!(out, vec![(2, 2), (6, 6)]);
    }

    #[test]
    fn dequeue_min_le_rotates_into_secondary() {
        let mut q: CffsQueue<u32> = CffsQueue::new(4, 1, 0);
        // Only the secondary window [4, 8) is occupied.
        q.enqueue(6, 1).unwrap();
        assert_eq!(q.dequeue_min_le(5), None, "6 is not yet due at bound 5");
        assert_eq!(q.dequeue_min_le(6), Some((6, 1)));
        assert_eq!(q.dequeue_min_le(u64::MAX), None, "drained");
    }

    #[test]
    fn rejected_probe_does_not_rotate_the_window() {
        // Regression: an ineligible dequeue_min_le on a secondary-only
        // queue must NOT advance the window. If it did, a later enqueue of
        // a rank still inside the old primary window would clamp into
        // bucket 0 (edge = new h_index) and be held a full span past due.
        let mut q: CffsQueue<u32> = CffsQueue::new(4, 1, 0);
        q.enqueue(6, 6).unwrap(); // secondary window [4, 8)
        assert_eq!(q.dequeue_min_le(0), None);
        assert_eq!(q.h_index(), 0, "rejected probe left the window alone");
        q.enqueue(2, 2).unwrap(); // still representable in the primary
        assert_eq!(q.stats().clamped_low, 0);
        assert_eq!(q.dequeue_min_le(2), Some((2, 2)), "due at its true rank");
        assert_eq!(q.dequeue_min_le(5), None);
        assert_eq!(q.dequeue_min_le(6), Some((6, 6)));
        assert!(q.is_empty());
    }

    #[test]
    fn dequeue_min_le_uses_bucket_edge_like_peek() {
        // 523 lives in bucket [500, 600): eligible from bound 500 onwards,
        // exactly when peek_min_rank() (the timer deadline) says so.
        let mut q: CffsQueue<u32> = CffsQueue::new(10, 100, 0);
        q.enqueue(523, 1).unwrap();
        assert_eq!(q.dequeue_min_le(499), None);
        assert_eq!(q.dequeue_min_le(500), Some((523, 1)));
    }

    #[test]
    fn peek_reports_bucket_edge() {
        let mut q: CffsQueue<u32> = CffsQueue::new(10, 100, 0);
        q.enqueue(523, 1).unwrap();
        // 523 falls in bucket [500,600): the timer deadline is 500.
        assert_eq!(q.peek_min_rank(), Some(500));
        // Secondary-only occupancy peeks into the secondary window.
        let mut q: CffsQueue<u32> = CffsQueue::new(10, 100, 0);
        q.enqueue(0, 0).unwrap();
        q.enqueue(1_500, 1).unwrap();
        q.dequeue_min().unwrap();
        assert_eq!(q.peek_min_rank(), Some(1_500));
    }

    #[test]
    fn interleaved_enqueue_dequeue_is_monotone_per_window() {
        // A shaper-like workload: ranks trail slightly ahead of dequeues.
        // Window sized so the backlog always fits (2×2048 ranks of coverage
        // vs ≤3000 rank spread) — the operator's job per §3.1.1.
        let mut q: CffsQueue<u64> = CffsQueue::new(2_048, 1, 0);
        let mut next_rank = 0u64;
        let mut last_out = 0u64;
        for round in 0..1_000u64 {
            next_rank += 1 + round % 3;
            q.enqueue(next_rank, round).unwrap();
            if round % 2 == 1 {
                let (r, _) = q.dequeue_min().unwrap();
                assert!(r >= last_out, "monotone dequeue within moving window");
                last_out = r;
            }
        }
        while q.dequeue_min().is_some() {}
        assert!(q.is_empty());
        assert_eq!(q.stats().clamped_high, 0);
        assert_eq!(q.stats().clamped_low, 0);
    }
}
