//! Timing Wheel — the data structure behind Carousel (§2 of the paper).
//!
//! "Carousel relies on Timing Wheel, a data structure that can support
//! time-based operations in O(1) … However, Timing Wheel supports only
//! non-work conserving time-based schedules … it does not support operations
//! needed by work-conserving schedules (i.e., ExtractMin or ExtractMax)."
//!
//! This is the baseline Eiffel is compared against in the kernel shaping use
//! case (Figure 9/10). Deliberately, **no** `RankedQueue` implementation is
//! provided: a timing wheel is advanced by the clock, not by min-extraction.
//! A busy-polling or timer-driven host calls [`TimingWheel::advance`] every
//! slot granularity and transmits whatever spills out — which is exactly why
//! the Carousel qdisc must fire its timer every slot, while an Eiffel qdisc
//! can ask its queue for `SoonestDeadline()` and sleep until then.

use std::collections::VecDeque;

/// A circular calendar of time slots holding `(timestamp, item)` pairs.
#[derive(Debug, Clone)]
pub struct TimingWheel<T> {
    slots: Vec<VecDeque<(u64, T)>>,
    /// Nanoseconds (rank units) per slot.
    granularity: u64,
    /// The wheel covers `[cursor_slot × granularity, horizon)` absolute time.
    cursor_slot: u64,
    len: usize,
    /// Timestamps in the past are clamped to the cursor (sent immediately).
    clamped_low: u64,
    /// Timestamps beyond the horizon are clamped to the last slot.
    clamped_high: u64,
}

impl<T> TimingWheel<T> {
    /// Creates a wheel of `num_slots` slots of `granularity` time units,
    /// with the cursor at `start_time`.
    pub fn new(num_slots: usize, granularity: u64, start_time: u64) -> Self {
        assert!(num_slots > 1, "a wheel needs at least two slots");
        assert!(granularity > 0);
        let mut slots = Vec::with_capacity(num_slots);
        slots.resize_with(num_slots, VecDeque::new);
        TimingWheel {
            slots,
            granularity,
            cursor_slot: start_time / granularity,
            len: 0,
            clamped_low: 0,
            clamped_high: 0,
        }
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Time units per slot.
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// Stored element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements whose timestamp was clamped (past, beyond-horizon).
    pub fn clamp_counts(&self) -> (u64, u64) {
        (self.clamped_low, self.clamped_high)
    }

    /// Absolute time at which the wheel's coverage currently starts.
    pub fn now(&self) -> u64 {
        self.cursor_slot * self.granularity
    }

    /// Inserts `item` to be released at absolute time `timestamp`.
    ///
    /// Timestamps before the cursor are due now; timestamps at or beyond the
    /// horizon land in the furthest slot (Carousel's documented behaviour).
    pub fn schedule(&mut self, timestamp: u64, item: T) {
        let slot_abs = timestamp / self.granularity;
        let max_abs = self.cursor_slot + self.slots.len() as u64 - 1;
        let slot_abs = if slot_abs < self.cursor_slot {
            self.clamped_low += 1;
            self.cursor_slot
        } else if slot_abs > max_abs {
            self.clamped_high += 1;
            max_abs
        } else {
            slot_abs
        };
        let idx = (slot_abs % self.slots.len() as u64) as usize;
        self.slots[idx].push_back((timestamp, item));
        self.len += 1;
    }

    /// Advances the cursor to absolute time `now`, draining every element in
    /// slots that have passed into `out` (FIFO per slot, slot order).
    ///
    /// This is the operation Carousel's timer performs "every time instant
    /// (according to the granularity of the timing wheel)". The number of
    /// slots stepped — and hence the work — depends on the clock, not on
    /// element count.
    pub fn advance(&mut self, now: u64, out: &mut Vec<(u64, T)>) {
        let target_slot = now / self.granularity;
        while self.cursor_slot <= target_slot {
            let idx = (self.cursor_slot % self.slots.len() as u64) as usize;
            while let Some(e) = self.slots[idx].pop_front() {
                self.len -= 1;
                out.push(e);
            }
            self.cursor_slot += 1;
            if self.len == 0 && self.cursor_slot < target_slot {
                // Nothing left anywhere: jump, preserving slot alignment.
                self.cursor_slot = target_slot;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_in_slot_order_at_the_right_times() {
        let mut w = TimingWheel::new(8, 10, 0);
        w.schedule(35, "d");
        w.schedule(5, "a");
        w.schedule(12, "b");
        w.schedule(19, "c"); // same slot as "b": FIFO
        let mut out = Vec::new();
        w.advance(9, &mut out);
        assert_eq!(out, vec![(5, "a")]);
        out.clear();
        w.advance(29, &mut out);
        assert_eq!(out, vec![(12, "b"), (19, "c")]);
        out.clear();
        // Slot [30,40) is drained as soon as the clock reaches its start:
        // timing-wheel releases are early by up to one granule.
        w.advance(30, &mut out);
        assert_eq!(out, vec![(35, "d")]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_timestamps_release_immediately() {
        let mut w = TimingWheel::new(8, 10, 100);
        w.schedule(3, "late");
        assert_eq!(w.clamp_counts().0, 1);
        let mut out = Vec::new();
        w.advance(100, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn beyond_horizon_clamps_to_last_slot() {
        let mut w = TimingWheel::new(4, 10, 0);
        // horizon = slots 0..=3 → max time ~39
        w.schedule(1_000, "far");
        assert_eq!(w.clamp_counts().1, 1);
        let mut out = Vec::new();
        w.advance(29, &mut out);
        assert!(out.is_empty(), "not yet: clamped to slot 3");
        w.advance(30, &mut out);
        assert_eq!(out.len(), 1, "released at the clamped slot, early");
    }

    #[test]
    fn wraps_around_many_revolutions() {
        let mut w = TimingWheel::new(4, 1, 0);
        let mut out = Vec::new();
        for round in 0..100u64 {
            w.schedule(round, round);
            w.advance(round, &mut out);
        }
        assert_eq!(out.len(), 100);
        assert!(
            out.windows(2).all(|p| p[0].0 <= p[1].0),
            "time-ordered release"
        );
        assert!(w.is_empty());
    }

    #[test]
    fn empty_wheel_jump_does_not_scan_every_slot() {
        // Behavioural check of the fast-forward: advancing an empty wheel by
        // a huge time distance must still terminate promptly and keep
        // scheduling correct afterwards.
        let mut w: TimingWheel<u32> = TimingWheel::new(1_000, 1, 0);
        let mut out = Vec::new();
        w.advance(10_000_000_000, &mut out);
        assert!(out.is_empty());
        w.schedule(10_000_000_005, 7);
        w.advance(10_000_000_005, &mut out);
        assert_eq!(out, vec![(10_000_000_005, 7)]);
    }
}
