//! Bucketed queue indexed by a binary heap — the paper's "BH" baseline.
//!
//! §5.2: "We develop a baseline for bucketed priority queues by keeping
//! track of non-empty buckets in a binary heap, we refer to this as BH. We
//! ignore comparison-based priority queues … as we find that bucketed
//! priority queues perform 6x better in most cases."
//!
//! BH shares the bucket array of the FFS queues but replaces the bitmap
//! meta-data with a `BinaryHeap<Reverse<bucket index>>`: min-find is a heap
//! peek, but maintaining the heap costs O(log N_buckets) per transition and
//! the heap is lazily cleaned of stale indices.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::buckets::Buckets;
use crate::traits::{EnqueueError, EnqueueErrorKind, RankedQueue};

/// Fixed-range bucketed queue with binary-heap occupancy meta-data.
#[derive(Debug, Clone)]
pub struct BucketHeapQueue<T> {
    heap: BinaryHeap<Reverse<usize>>,
    buckets: Buckets<T>,
    granularity: u64,
    base: u64,
}

impl<T> BucketHeapQueue<T> {
    /// Creates a queue covering ranks `[0, n × granularity)`.
    pub fn new(n: usize, granularity: u64) -> Self {
        Self::with_base(n, granularity, 0)
    }

    /// Creates a queue covering ranks `[base, base + n × granularity)`.
    pub fn with_base(n: usize, granularity: u64, base: u64) -> Self {
        assert!(granularity > 0);
        BucketHeapQueue {
            heap: BinaryHeap::new(),
            buckets: Buckets::new(n),
            granularity,
            base,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.num_buckets()
    }

    fn bucket_of(&self, rank: u64) -> Option<usize> {
        let off = rank.checked_sub(self.base)? / self.granularity;
        if (off as usize) < self.buckets.num_buckets() {
            Some(off as usize)
        } else {
            None
        }
    }

    /// Drops stale heap entries (indices whose bucket has emptied since they
    /// were pushed) until the top is live or the heap is exhausted.
    fn clean_top(&mut self) {
        while let Some(&Reverse(b)) = self.heap.peek() {
            if self.buckets.bucket_is_empty(b) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<T> RankedQueue<T> for BucketHeapQueue<T> {
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>> {
        match self.bucket_of(rank) {
            Some(b) => {
                // Push the index only on the empty→non-empty transition; a
                // stale duplicate may already be in the heap and is skipped
                // lazily by `clean_top`.
                if self.buckets.bucket_is_empty(b) {
                    self.heap.push(Reverse(b));
                }
                self.buckets.push(b, rank, item);
                Ok(())
            }
            None => Err(EnqueueError {
                kind: EnqueueErrorKind::OutOfRange,
                rank,
                item,
            }),
        }
    }

    fn dequeue_min(&mut self) -> Option<(u64, T)> {
        self.clean_top();
        let &Reverse(b) = self.heap.peek()?;
        let out = self.buckets.pop(b);
        debug_assert!(out.is_some());
        if self.buckets.bucket_is_empty(b) {
            self.heap.pop();
        }
        out
    }

    fn peek_min_rank(&self) -> Option<u64> {
        // Peek must not mutate: scan past stale entries without popping.
        // (Stale entries are cleaned on the next dequeue.)
        self.heap
            .iter()
            .filter(|&&Reverse(b)| !self.buckets.bucket_is_empty(b))
            .map(|&Reverse(b)| b)
            .min()
            .map(|b| self.base + b as u64 * self.granularity)
    }

    fn len(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_dequeue_with_fifo_ties() {
        let mut q = BucketHeapQueue::new(100, 1);
        for (r, v) in [(30u64, 'a'), (10, 'b'), (30, 'c'), (5, 'd')] {
            q.enqueue(r, v).unwrap();
        }
        assert_eq!(q.peek_min_rank(), Some(5));
        assert_eq!(q.dequeue_min(), Some((5, 'd')));
        assert_eq!(q.dequeue_min(), Some((10, 'b')));
        assert_eq!(q.dequeue_min(), Some((30, 'a')));
        assert_eq!(q.dequeue_min(), Some((30, 'c')));
        assert_eq!(q.dequeue_min(), None);
    }

    #[test]
    fn stale_heap_entries_are_skipped() {
        let mut q = BucketHeapQueue::new(10, 1);
        // bucket 2 becomes non-empty, empty, then non-empty again: two heap
        // entries for bucket 2 exist, one goes stale after the first drain.
        q.enqueue(2, 1).unwrap();
        q.dequeue_min().unwrap();
        q.enqueue(2, 2).unwrap();
        q.enqueue(7, 3).unwrap();
        assert_eq!(q.dequeue_min(), Some((2, 2)));
        assert_eq!(q.dequeue_min(), Some((7, 3)));
        assert!(q.dequeue_min().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_churn_matches_reference() {
        use std::collections::BTreeMap;
        use std::collections::VecDeque;
        let mut q = BucketHeapQueue::new(1_000, 1);
        let mut model: BTreeMap<u64, VecDeque<u64>> = BTreeMap::new();
        let mut x: u64 = 0x2545f4914f6cdd1d;
        for step in 0..50_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 3 != 0 {
                let r = x % 1_000;
                q.enqueue(r, step).unwrap();
                model.entry(r).or_default().push_back(step);
            } else {
                let got = q.dequeue_min();
                let want = match model.iter_mut().next() {
                    Some((&r, fifo)) => {
                        let v = fifo.pop_front().unwrap();
                        if fifo.is_empty() {
                            model.remove(&r);
                        }
                        Some((r, v))
                    }
                    None => None,
                };
                assert_eq!(got, want);
            }
        }
    }
}
