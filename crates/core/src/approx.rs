//! Approximate Gradient Queue — §3.1.2 and Appendix B of the paper.
//!
//! The exact gradient queue's weights `2^i` double per index, so one word of
//! curvature covers only 64 buckets. The approximation flattens growth to
//! `2^(i/α)` (`f(i) = i/α`, α a positive integer): the accumulators `a`, `b`
//! now span hundreds of buckets, "which eliminates the need for hierarchical
//! Gradient Queue and allows for finding the minimum element with one step".
//!
//! The price is an *improper* weight function: `ceil(b/a)` no longer names
//! the maximum occupied index exactly. Solving the geometric and
//! arithmetico-geometric sums (paper, §3.1.2):
//!
//! ```text
//! b/a = M / (1 − g(α,M)) + u(α),   g(α,M) = (2^(1/α))^(−M−1),
//! u(α) = 1 / (1 − 2^(1/α))   (a constant shift; |u(16)| ≈ 22.6)
//! ```
//!
//! so the queue operates on indices `[I0, Imax]` where `g` has decayed to
//! ≈ 0 and the correction is the constant `|u(α)|`. With α = 16 and the
//! paper's decay threshold the window is I0 = 124, Imax = 647 — 523 usable
//! buckets with shift 22 (reproduced in `paper_alpha16_parameters`). The
//! estimate is exact when the occupied indices form a dense prefix
//! ("uniformly distributed over priority levels"); sparse occupancy causes
//! bounded error which triggers the paper's linear search and is recorded
//! for Figure 18.
//!
//! # Hot-path layout
//!
//! The estimator's per-packet cost is what Figures 16/17 measure, so the
//! state it touches is arranged for that path (measured against the
//! `queue_hot_paths` criterion bench; see DESIGN.md):
//!
//! * **One packed record per bucket** (`Meta`: occupancy count + weight,
//!   16 bytes) instead of parallel `counts`/`weights` arrays — the hit
//!   check, the per-element count update and the 0↔1-edge weight lookup all
//!   land on the same cache line.
//! * **A cached estimate** invalidated only when the accumulators change (a
//!   0↔1 occupancy edge or a rebuild). Consecutive lookups between edges —
//!   every pop after the first from a multi-packet bucket, or a `peek`
//!   followed by its `dequeue` — reuse the cached selection and perform no
//!   arithmetic at all.
//! * **The estimator is integer fixed-point end to end.** Weights are
//!   stored as `u64` fixed-point values scaled relative to an *anchor*
//!   offset (re-chosen at each rebuild), and the curvature ratio `b/a` is
//!   carried incrementally as a quotient/remainder pair `(q, rem)` with the
//!   invariant `b = q·a + rem, 0 ≤ rem < a`. A 0↔1 edge updates the pair
//!   with one multiply and a couple of compare/subtract steps; a lookup is
//!   `q + ci + (rem ≥ thresh)` with `thresh` one 64×32-bit multiply —
//!   **no division and no floating point on either hot path**. This kills
//!   the loop-carried `divsd` chain PR 4 measured against cFFS's `tzcnt`
//!   (EXPERIMENTS.md, Fig 16): the only divisions left are the rare
//!   renormalization fallbacks. Floats survive only at the edges of the
//!   structure: deriving per-bucket weights at construction and converting
//!   a weight to fixed-point once per rebuild anchor.
//! * Rank→bucket mapping divides by the construction-time granularity
//!   through a precomputed [`Reciprocal`], not a hardware `div`.
//!
//! The exact occupancy bitmap added in PR 3 stays: the estimator never
//! consults it on a hit, and it makes the miss search `O(log₆₄ nb)` with
//! selection identical to the paper's alternating linear search.

use std::cell::Cell;

use crate::buckets::Buckets;
use crate::cffs::{BucketCore, Circular};
use crate::hierbitmap::HierBitmap;
use crate::recip::Reciprocal;
use crate::traits::{EnqueueError, EnqueueErrorKind, QueueStats, RankedQueue};

/// Derived constants of an approximate gradient queue for a given α.
#[derive(Debug, Clone, Copy)]
pub struct ApproxParams {
    /// Curvature flattening parameter: weights grow as `2^(i/α)`.
    pub alpha: u32,
    /// First usable absolute index (`I0`): where `g(α, M) ≤ eps`.
    pub i0: u32,
    /// Calibrated constant shift (`≈ |u(α)| = 1/(2^(1/α) − 1)`).
    pub shift: f64,
    /// Per-index weight ratio `r = 2^(1/α)`.
    pub r: f64,
    /// Decay threshold used to place `I0`.
    pub eps: f64,
}

impl ApproxParams {
    /// Derives parameters for `alpha` with decay threshold `eps`.
    pub fn derive(alpha: u32, eps: f64) -> Self {
        assert!(alpha >= 2, "alpha must be at least 2");
        assert!(eps > 0.0 && eps < 0.5);
        let r = 2f64.powf(1.0 / alpha as f64);
        // Smallest M with r^(−M−1) ≤ eps  ⇔  M ≥ α·log2(1/eps) − 1.
        let i0 = (alpha as f64 * (1.0 / eps).log2() - 1.0).ceil() as u32;
        // |u(α)| = 1/(r − 1); refined by calibration in `with_capacity`.
        let shift = 1.0 / (r - 1.0);
        ApproxParams {
            alpha,
            i0,
            shift,
            r,
            eps,
        }
    }

    /// The paper's configuration: α = 16 with its decay threshold, giving
    /// I0 = 124 and shift ⌊|u(α)|⌋ = 22 (§3.1.2's worked example).
    pub fn paper_alpha16() -> Self {
        ApproxParams::derive(16, 0.0045)
    }

    /// Maximum bucket count for which the weights stay inside the f64
    /// *exponent* range (`(I0 + nb)/α ≲ 1000`).
    ///
    /// Note the two regimes: up to `48·α` buckets the f64 *mantissa* also
    /// resolves every weight, so a dense queue is exact end to end (the
    /// paper's 523-bucket example at α = 16). Beyond that, weights deep in
    /// the queue round out of the curvature sums — irrelevant for finding
    /// the *maximum*, and the accumulators are rebuilt whenever drain
    /// cancellation corrupts them (see `rebuild`).
    pub fn max_buckets(alpha: u32) -> usize {
        900 * alpha as usize
    }

    /// The α used when none is given: the paper's 16, raised only when the
    /// bucket count would overflow the f64 exponent budget.
    pub fn alpha_for_buckets(nb: usize) -> u32 {
        (nb.div_ceil(900)).max(16) as u32
    }
}

/// Estimator state of one bucket, packed so the hit check (`count > 0`),
/// the per-element count update and the 0↔1-edge accumulator update all
/// touch one 16-byte record — four records per cache line.
#[derive(Debug, Clone, Copy)]
struct Meta {
    /// Precomputed weight `r^(i0+k)` of this offset.
    weight: f64,
    /// Elements currently stored at this offset.
    count: u32,
    _pad: u32,
}

/// Sentinel `found` value in the lookup cache meaning "recompute".
const EST_STALE: (i32, i32) = (-1, -1);

/// Fixed-range approximate gradient **min**-queue.
///
/// Bucket `b` (0 = smallest rank) maps to absolute index `I0 + (nb−1−b)`, so
/// the curvature's max-index estimate finds the minimum-rank bucket.
#[derive(Debug, Clone)]
pub struct ApproxGradientQueue<T> {
    params: ApproxParams,
    /// Packed per-offset estimator state (absolute index `i0 + k`).
    meta: Vec<Meta>,
    nonempty: usize,
    /// Fixed-point fraction bits `F` of the weight scale: the anchor offset's
    /// weight is stored as `2^F`. Sized in `with_base` so the implied
    /// numerator `b = Σ (i0+k)·w_fix(k)` provably fits 61 bits.
    frac_bits: u32,
    /// `Σ w_fix(k)` over occupied offsets — the fixed-point `a` accumulator.
    a_fix: u64,
    /// Quotient/remainder representation of `b/a`: the invariant is
    /// `Σ (i0+k)·w_fix(k) = q·a_fix + rem` with `0 ≤ rem < a_fix`, so the
    /// lookup needs no division — `b/a = q + rem/a_fix` and only the
    /// comparison `rem ≥ thresh` of the fractional part matters.
    q: i64,
    rem: u64,
    /// Offset whose weight defines the fixed-point scale (`w_fix = 2^F`).
    /// Re-chosen at every rebuild (the occupied maximum, so no live weight
    /// exceeds `2^F` until the top rises — bounded by the rebuild-on-raise
    /// trigger in `occupy`).
    anchor: u32,
    /// `2^F · r^−(i0+anchor)` — the one float that survives: converts a
    /// bucket's f64 weight to fixed point in a single multiply per 0↔1 edge.
    anchor_inv: f64,
    /// Integer/fractional split of `shift − i0 + 0.5`: `ci = ⌊s⌋` and
    /// `theta1_fp = ⌈(1 − (s − ci))·2^32⌉`, so the rounded estimate is
    /// `q + ci + (rem ≥ (a_fix·theta1_fp) >> 32)` — the float rounding
    /// `trunc(b/a + shift − i0 + 0.5)` done entirely in integers.
    ci: i64,
    theta1_fp: u64,
    /// Cached `(found, estimate)` lookup result, valid until the next
    /// `a`/`b` change ([`EST_STALE`] when stale). The accumulators move
    /// exactly when the occupancy bitmap does, so between 0↔1 edges both
    /// the estimate *and* the miss search would reproduce themselves —
    /// repeat lookups (every pop after the first from a multi-packet
    /// bucket, or a `peek` before its `dequeue`) skip all float work and
    /// all searching. Interior-mutable so `peek_min_rank` (`&self`) warms
    /// it.
    est_cache: Cell<(i32, i32)>,
    buckets: Buckets<T>,
    granularity: Reciprocal,
    base: u64,
    nb: usize,
    stats: QueueStats,
    /// Exact occupancy bitmap, maintained on 0↔1 edges. Never consulted by
    /// the estimator's one-step lookup; it serves three support paths: the
    /// fallback search when the estimate lands on an empty bucket (same
    /// selection as the paper's alternating linear search, computed in
    /// `O(log₆₄ nb)` word ops instead of a per-bucket walk — fig19's sparse
    /// ports averaged 175 scanned buckets per miss before), the exact
    /// max-rank maintenance path (`peek_max_rank` / `dequeue_max`), and
    /// the Figure 18 error measurement.
    occ: HierBitmap,
    /// Whether lookups record the Figure 18 error statistic.
    track: bool,
    /// Accumulator updates since the last rebuild (only 0↔1 edges touch
    /// the accumulators, so only edges count). Integer arithmetic cancels
    /// exactly, so this no longer bounds *drift* — it throttles the
    /// proactive re-anchor trigger and backstops the unforeseen.
    edges_since_rebuild: u64,
    /// Highest occupied offset when the accumulators were last rebuilt
    /// (or raised above it since). Weights shrink as `r^−Δ` below the
    /// anchor, so once the live top drops `Δ` offsets the fixed-point
    /// weights have only `F − Δ/α` significant bits left — quantization
    /// error approaches bucket resolution. [`Self::locate_for_dequeue`]
    /// re-anchors at [`TOP_DROP_ALPHAS`]`·α` of drop, long before that.
    top_at_rebuild: u32,
}

/// Rebuild the accumulators after this many incremental updates. The
/// integer accumulators cancel exactly (the same `w_fix` is added and
/// subtracted), so unlike the f64 predecessor this is not a correctness
/// bound — it is a cheap backstop.
const REBUILD_PERIOD: u64 = 1 << 22;

/// Proactive re-anchor window, in units of `α` offsets of top-drop.
///
/// A weight `Δ` offsets below the anchor is stored with `F − Δ/α`
/// significant bits (`w_fix = 2^(F − Δ/α)`), so as the live maximum drops
/// away from the anchor the whole estimate is computed from ever-coarser
/// weights; at `Δ = F·α` they truncate to zero outright. Re-anchoring at
/// `Δ = 20α` keeps ≥ `F − 20` bits in the dominant terms — 8+ bits at the
/// common `F = 28..32` (≈0.4% relative error — a log-domain estimate
/// shift well under a tenth of a bucket; the `F = 16` floor needs > 32k
/// buckets and re-anchors from the starvation/reactive triggers before
/// precision decays). The window is deliberately wide: each rebuild sweeps all
/// occupied buckets, so on a monotone drain (every pop lowers the top)
/// the trigger interval *is* the amortized per-pop rebuild cost — at
/// `4α` the dense-drain Figure 16 cell spent ~80% of its time
/// re-anchoring for precision it never needed.
const TOP_DROP_ALPHAS: u32 = 20;

/// Minimum 0↔1 edges between proactive re-anchors, in α units: workloads
/// that keep spiking the top would otherwise degenerate into a rebuild per
/// spike, which costs more than the misses it prevents.
const TOP_DROP_MIN_EDGES_ALPHAS: u32 = 12;

impl<T> ApproxGradientQueue<T> {
    /// Creates a queue over ranks `[0, nb × granularity)` with an α chosen
    /// automatically for `nb`.
    pub fn new(nb: usize, granularity: u64) -> Self {
        let alpha = ApproxParams::alpha_for_buckets(nb);
        Self::with_base(nb, granularity, 0, alpha)
    }

    /// Creates a queue over ranks `[base, base + nb × granularity)` with an
    /// explicit α.
    ///
    /// # Panics
    /// Panics if `nb` exceeds [`ApproxParams::max_buckets`] for `alpha`.
    pub fn with_base(nb: usize, granularity: u64, base: u64, alpha: u32) -> Self {
        assert!(nb > 0);
        assert!(nb <= i32::MAX as usize, "lookup cache packs offsets in i32");
        assert!(granularity > 0);
        assert!(
            nb <= ApproxParams::max_buckets(alpha),
            "{nb} buckets exceed the f64 mantissa window for alpha {alpha} \
             (max {}); raise alpha",
            ApproxParams::max_buckets(alpha)
        );
        let mut params = ApproxParams::derive(alpha, 1e-4);
        let meta: Vec<Meta> = (0..nb)
            .map(|k| Meta {
                weight: params.r.powi((params.i0 + k as u32) as i32),
                count: 0,
                _pad: 0,
            })
            .collect();
        // Calibrate the shift at full occupancy so a dense queue is exact:
        // shift = Imax − b/a when every bucket is occupied.
        let (mut a, mut bsum) = (0.0f64, 0.0f64);
        for (k, m) in meta.iter().enumerate() {
            a += m.weight;
            bsum += (params.i0 + k as u32) as f64 * m.weight;
        }
        params.shift = (params.i0 + nb as u32 - 1) as f64 - bsum / a;
        // Fixed-point budget: the implied numerator is bounded by
        // `b ≤ (i0+nb) · Σ w_fix` and the weight sum by the geometric tail
        // `2^(F+8) · (2α+2)` (the `+8` headroom covers tops up to 8α above
        // the anchor before the rebuild trigger fires). Keep b under 2^61.
        let imax_bits = 64 - u64::from(params.i0 + nb as u32).leading_zeros();
        let asum_bits = 64 - u64::from(2 * alpha + 2).leading_zeros();
        let frac_bits = (61i32 - imax_bits as i32 - asum_bits as i32 - 8).clamp(16, 32) as u32;
        // Integer/fractional split of `s = shift − i0 + 0.5` for the
        // division-free rounding (see the `ci` field docs). `ceil` on the
        // fractional complement biases exact boundary cases (`rem/a` equal
        // to `1−θ` to the last bit) toward rounding down — a half-ULP
        // boundary the f64 path could land on either side of anyway.
        let s = params.shift - params.i0 as f64 + 0.5;
        let ci = s.floor() as i64;
        let theta = s - s.floor();
        let theta1_fp = (((1.0 - theta) * (1u64 << 32) as f64).ceil() as u64).min(1 << 32);
        ApproxGradientQueue {
            params,
            meta,
            nonempty: 0,
            frac_bits,
            a_fix: 0,
            q: 0,
            rem: 0,
            anchor: 0,
            anchor_inv: 0.0,
            ci,
            theta1_fp,
            est_cache: Cell::new(EST_STALE),
            buckets: Buckets::new(nb),
            granularity: Reciprocal::new(granularity),
            base,
            nb,
            stats: QueueStats::default(),
            occ: HierBitmap::new(nb),
            track: false,
            edges_since_rebuild: 0,
            top_at_rebuild: 0,
        }
    }

    /// Enables Figure 18 instrumentation: every lookup records
    /// `|selected bucket − true best bucket|` against the exact occupancy.
    pub fn track_error(mut self) -> Self {
        self.track = true;
        self
    }

    /// The derived α/I0/shift constants in use.
    pub fn params(&self) -> &ApproxParams {
        &self.params
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.nb
    }

    fn bucket_of(&self, rank: u64) -> Option<usize> {
        let off = self.granularity.div(rank.checked_sub(self.base)?);
        if (off as usize) < self.nb {
            Some(off as usize)
        } else {
            None
        }
    }

    /// Internal offset for a bucket: reverse order so max-index = min-rank.
    fn offset_of_bucket(&self, bucket: usize) -> usize {
        self.nb - 1 - bucket
    }

    /// Re-points the fixed-point scale at offset `k`: `w_fix(k) = 2^F`.
    #[inline]
    fn set_anchor(&mut self, k: u32) {
        self.anchor = k;
        self.anchor_inv = (1u64 << self.frac_bits) as f64 / self.meta[k as usize].weight;
    }

    /// Fixed-point weight of offset `k` under the current anchor. Weights
    /// more than `F·α` below the anchor truncate to zero — they could not
    /// move the estimate anyway, and `add_term`/`sub_term` skip them
    /// symmetrically (the conversion is deterministic per anchor, so an
    /// add and its matching sub always agree).
    #[inline]
    fn wf(&self, k: usize) -> u64 {
        (self.meta[k].weight * self.anchor_inv) as u64
    }

    /// Adds `w` at absolute index `idx` to the accumulators, restoring the
    /// `b = q·a + rem` invariant. The quotient shifts by at most
    /// `(idx − q)·w / a'`, ≈ 1 for the common enqueue-near-the-mean case;
    /// a bounded compare/subtract loop absorbs that, and the rare large
    /// jump falls back to one exact 128-bit division.
    fn add_term(&mut self, idx: i64, w: u64) {
        if w == 0 {
            return;
        }
        let a_new = self.a_fix + w;
        let a = a_new as i128;
        let mut rc = self.rem as i128 + (idx - self.q) as i128 * w as i128;
        let mut iters = 0u32;
        while rc < 0 || rc >= a {
            if rc < 0 {
                self.q -= 1;
                rc += a;
            } else {
                self.q += 1;
                rc -= a;
            }
            iters += 1;
            if iters >= 64 {
                let b_total = self.q as i128 * a + rc;
                self.q = b_total.div_euclid(a) as i64;
                rc = b_total.rem_euclid(a);
                break;
            }
        }
        self.a_fix = a_new;
        self.rem = rc as u64;
    }

    /// Removes `w` at absolute index `idx` — `add_term`'s exact inverse
    /// (same normalization, derived for `a' = a − w`).
    fn sub_term(&mut self, idx: i64, w: u64) {
        if w == 0 {
            return;
        }
        let a_new = self.a_fix - w;
        if a_new == 0 {
            // Every tracked weight removed (all remaining occupied offsets
            // truncate to zero, or the queue is empty): the lookup's
            // `a_fix == 0` path takes over until the next rebuild.
            self.a_fix = 0;
            self.q = 0;
            self.rem = 0;
            return;
        }
        let a = a_new as i128;
        let mut rc = self.rem as i128 + (self.q - idx) as i128 * w as i128;
        let mut iters = 0u32;
        while rc < 0 || rc >= a {
            if rc < 0 {
                self.q -= 1;
                rc += a;
            } else {
                self.q += 1;
                rc -= a;
            }
            iters += 1;
            if iters >= 64 {
                let b_total = self.q as i128 * a + rc;
                self.q = b_total.div_euclid(a) as i64;
                rc = b_total.rem_euclid(a);
                break;
            }
        }
        self.a_fix = a_new;
        self.rem = rc as u64;
    }

    #[inline]
    fn occupy(&mut self, k: usize) {
        self.meta[k].count += 1;
        if self.meta[k].count == 1 {
            self.nonempty += 1;
            self.occ.set(k);
            self.est_cache.set(EST_STALE);
            if self.nonempty == 1 {
                // First element: re-anchor directly, O(1) — the single-term
                // accumulators are exact by construction.
                self.set_anchor(k as u32);
                self.a_fix = self.wf(k);
                self.q = (self.params.i0 + k as u32) as i64;
                self.rem = 0;
                self.edges_since_rebuild = 0;
                self.top_at_rebuild = k as u32;
            } else if (k as u32) > self.anchor + 8 * self.params.alpha {
                // A weight this far above the anchor would overflow the
                // fixed-point headroom (`wf` saturates past `2^(F+8)`):
                // re-anchor first. The bit for `k` is already set, so the
                // rebuild's sweep includes it.
                self.rebuild();
            } else {
                self.add_term((self.params.i0 + k as u32) as i64, self.wf(k));
                // Raising the top re-anchors the drop window.
                self.top_at_rebuild = self.top_at_rebuild.max(k as u32);
                self.bump_edges();
            }
        }
    }

    #[inline]
    fn vacate(&mut self, k: usize) {
        debug_assert!(self.meta[k].count > 0);
        self.meta[k].count -= 1;
        if self.meta[k].count == 0 {
            self.nonempty -= 1;
            self.occ.clear(k);
            self.est_cache.set(EST_STALE);
            if self.nonempty == 0 {
                // Hard reset, exact and O(1).
                self.a_fix = 0;
                self.q = 0;
                self.rem = 0;
            } else {
                self.sub_term((self.params.i0 + k as u32) as i64, self.wf(k));
            }
            self.bump_edges();
        }
    }

    #[inline]
    fn bump_edges(&mut self) {
        self.edges_since_rebuild += 1;
        if self.edges_since_rebuild >= REBUILD_PERIOD {
            self.rebuild();
        }
    }

    /// Re-anchors the fixed-point scale at the occupied maximum and
    /// recomputes the accumulators from the occupancy bitmap (triggered by
    /// the top rising past the anchor's headroom, the top dropping far
    /// enough to starve the weights of bits, all live weights truncating
    /// to zero, or a lookup's search distance revealing a stale estimate).
    fn rebuild(&mut self) {
        self.edges_since_rebuild = 0;
        self.est_cache.set(EST_STALE);
        let Some(top) = self.occ.last_set() else {
            self.a_fix = 0;
            self.q = 0;
            self.rem = 0;
            self.top_at_rebuild = 0;
            return;
        };
        self.set_anchor(top as u32);
        let (meta, inv, i0) = (&self.meta, self.anchor_inv, self.params.i0);
        let mut a = 0u64;
        let mut b = 0u128;
        // Occupied buckets only: O(occupied + leaf words), not O(nb).
        self.occ.for_each_set(|k| {
            let w = (meta[k].weight * inv) as u64;
            a += w;
            b += (i0 + k as u32) as u128 * w as u128;
        });
        self.a_fix = a;
        if a == 0 {
            self.q = 0;
            self.rem = 0;
        } else {
            self.q = (b / a as u128) as i64;
            self.rem = (b % a as u128) as u64;
        }
        self.top_at_rebuild = top as u32;
    }

    /// One-step estimate of the maximum occupied internal offset, then the
    /// paper's linear search if the estimated bucket is empty.
    ///
    /// Returns `(offset, estimate_offset)`; the difference is the Figure 18
    /// search distance. Approximation means the returned offset may not be
    /// the true maximum — the shadow bitmap (when enabled) measures that.
    fn locate_max_offset(&self) -> Option<(usize, usize)> {
        // Cache first: a valid entry proves the accumulators (and hence the
        // occupancy, which moves in lockstep) have not changed since it was
        // computed, so every check below would reproduce itself.
        let (cached_k, cached_est) = self.est_cache.get();
        if cached_k >= 0 {
            return Some((cached_k as usize, cached_est as usize));
        }
        if self.nonempty == 0 {
            return None;
        }
        if self.a_fix == 0 {
            // Every live weight truncated to zero under the current anchor
            // (the top dropped `F·α` offsets without a rebuild): the caller
            // re-anchors; meanwhile fall back to the exact maximum.
            let k = self.occ.last_set()?;
            return Some((k, 0));
        }
        // Division-free rounding of `b/a + shift − i0`: with `b = q·a + rem`
        // and `s = shift − i0 + 0.5 = ci + θ`,
        // `trunc(b/a + s) = q + ci + (rem/a ≥ 1−θ)` — the fractional
        // comparison is `rem ≥ (a·⌈(1−θ)·2^32⌉) >> 32`, one widening
        // multiply. Negative values clamp to 0, exactly where the old
        // float path's truncate/saturate put them.
        let thresh = ((self.a_fix as u128 * self.theta1_fp as u128) >> 32) as u64;
        let est_i = self.q + self.ci + i64::from(self.rem >= thresh);
        let est_k = est_i.clamp(0, self.nb as i64 - 1) as usize;
        if self.meta[est_k].count > 0 {
            self.est_cache.set((est_k as i32, est_k as i32));
            return Some((est_k, est_k));
        }
        // Miss: the paper falls back to an alternating linear search —
        // upward first (the estimate usually undershoots when mass sits
        // below the maximum, Appendix B), then downward, one step per
        // direction per round, up winning distance ties. The bucket that
        // search selects is computed here in O(log₆₄ nb) from the occupancy
        // bitmap: the nearest occupied bucket above and below the estimate,
        // merged under the same tie rule. Identical selection (and hence
        // identical Figure 18 error), without walking empty buckets one by
        // one — fig19's sparse ports averaged 175 walked buckets per miss.
        let up = self.occ.first_set_from(est_k + 1);
        let down = self.occ.last_set_to(est_k);
        let k = match (up, down) {
            (Some(u), Some(d)) => {
                if u - est_k <= est_k - d {
                    u
                } else {
                    d
                }
            }
            (Some(u), None) => u,
            (None, Some(d)) => d,
            (None, None) => {
                unreachable!("occupancy counter says non-empty but bitmap is empty")
            }
        };
        self.est_cache.set((k as i32, est_k as i32));
        Some((k, est_k))
    }

    /// [`Self::locate_max_offset`] plus the rebuild triggers: the
    /// starvation one (`a_fix == 0` with elements live — every weight
    /// truncated under a long-stale anchor), the reactive one (a search
    /// distance beyond `8α` means the accumulators no longer reflect the
    /// occupancy at all) and the proactive top-drop one (the live top has
    /// fallen [`TOP_DROP_ALPHAS`]`·α` below the anchor, so the dominant
    /// fixed-point weights are losing significant bits — re-anchor
    /// *before* quantization reaches bucket resolution). Shared by every
    /// dequeue path so single-step and batched dequeues make identical
    /// selections.
    #[inline]
    fn locate_for_dequeue(&mut self) -> Option<(usize, usize)> {
        if self.a_fix == 0 && self.nonempty > 0 {
            self.rebuild();
        }
        let pair = self.locate_max_offset()?;
        let alpha = self.params.alpha as usize;
        // The proactive trigger is rate-limited by edges since the last
        // rebuild: in workloads that keep spiking the top (transient
        // highest-priority elements re-anchor the window on every spike) an
        // un-throttled trigger degenerates into a rebuild per spike, which
        // costs more than the misses it prevents. The reactive `8α` trigger
        // stays un-throttled — there the accumulators are outright stale.
        if pair.0.abs_diff(pair.1) > 8 * alpha
            || (self.top_at_rebuild as usize > pair.0 + TOP_DROP_ALPHAS as usize * alpha
                && self.edges_since_rebuild as usize >= TOP_DROP_MIN_EDGES_ALPHAS as usize * alpha)
        {
            self.rebuild();
            return self.locate_max_offset();
        }
        Some(pair)
    }

    /// The pre-integer f64 estimator, recomputed from scratch over the
    /// exact occupancy: accumulate `a = Σ w`, `b = Σ (i0+k)·w` in floating
    /// point, estimate `b/a + shift − i0`, round, and run the same miss
    /// search. Returns `(selected offset, estimated offset)`.
    ///
    /// This is the *reference* the conformance suite holds the fixed-point
    /// path against (`int_estimator_matches_float_reference`): for any
    /// occupancy the integer selection must match the freshly-computed
    /// float selection or sit strictly closer to the true maximum. Not a
    /// hot path — O(occupied) per call.
    pub fn float_reference_selection(&self) -> Option<(usize, usize)> {
        if self.nonempty == 0 {
            return None;
        }
        let (meta, i0) = (&self.meta, self.params.i0);
        let (mut a, mut b) = (0.0f64, 0.0f64);
        self.occ.for_each_set(|k| {
            let w = meta[k].weight;
            a += w;
            b += (i0 + k as u32) as f64 * w;
        });
        if a.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            let k = self.occ.last_set()?;
            return Some((k, 0));
        }
        let est = b / a + (self.params.shift - i0 as f64);
        let est_k = ((est + 0.5) as usize).min(self.nb - 1);
        if self.meta[est_k].count > 0 {
            return Some((est_k, est_k));
        }
        let up = self.occ.first_set_from(est_k + 1);
        let down = self.occ.last_set_to(est_k);
        let k = match (up, down) {
            (Some(u), Some(d)) => {
                if u - est_k <= est_k - d {
                    u
                } else {
                    d
                }
            }
            (Some(u), None) => u,
            (None, Some(d)) => d,
            (None, None) => {
                unreachable!("occupancy counter says non-empty but bitmap is empty")
            }
        };
        Some((k, est_k))
    }

    /// Rank lower edge of the **maximum**-rank occupied bucket, exact:
    /// one FFS descent over the occupancy bitmap.
    ///
    /// pFabric's priority-drop admission test calls this on every arrival
    /// at a full port; it used to fall back to a full counter scan inside
    /// [`ApproxGradientQueue::dequeue_max`].
    pub fn peek_max_rank(&self) -> Option<u64> {
        let k = self.occ.first_set()?;
        Some(self.base + (self.nb - 1 - k) as u64 * self.granularity.divisor())
    }

    /// Removes an element of the **maximum**-rank bucket, found exactly.
    ///
    /// This is a maintenance path, not the approximate fast path: pFabric's
    /// priority-drop eviction (drop the lowest-priority packet on overflow)
    /// needs a max lookup, and making it exact keeps the experiment focused
    /// on the approximation under study — min-extraction (documented in
    /// DESIGN.md).
    pub fn dequeue_max(&mut self) -> Option<(u64, T)> {
        let k = self.occ.first_set()?;
        let bkt = self.nb - 1 - k;
        let out = self.buckets.pop(bkt);
        debug_assert!(out.is_some());
        self.vacate(k);
        out
    }

    #[inline]
    fn record_lookup(&mut self, found_k: usize, est_k: usize) {
        self.stats.lookups += 1;
        if found_k == est_k {
            self.stats.est_hits += 1;
        } else {
            self.stats.est_misses += 1;
        }
        if self.track {
            // Figure 18 error: distance between the *selected* bucket and
            // the true best (max offset = min rank).
            let truth = self.occ.last_set().expect("bitmap tracks occupancy");
            self.stats.error_sum += truth.abs_diff(found_k) as u64;
        } else {
            // Untracked queues record search distance (a lower bound).
            self.stats.error_sum += found_k.abs_diff(est_k) as u64;
        }
    }
}

impl<T> RankedQueue<T> for ApproxGradientQueue<T> {
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>> {
        match self.bucket_of(rank) {
            Some(bkt) => {
                self.buckets.push(bkt, rank, item);
                let k = self.offset_of_bucket(bkt);
                self.occupy(k);
                Ok(())
            }
            None => Err(EnqueueError {
                kind: EnqueueErrorKind::OutOfRange,
                rank,
                item,
            }),
        }
    }

    fn dequeue_min(&mut self) -> Option<(u64, T)> {
        let (k, est_k) = self.locate_for_dequeue()?;
        self.record_lookup(k, est_k);
        let bkt = self.nb - 1 - k;
        let out = self.buckets.pop(bkt);
        debug_assert!(out.is_some(), "curvature said bucket {bkt} occupied");
        self.vacate(k); // per-element count; accumulators move only on the 1→0 edge
        out
    }

    fn dequeue_max(&mut self) -> Option<(u64, T)> {
        ApproxGradientQueue::dequeue_max(self)
    }

    /// Batched fast path: one curvature lookup per *bucket visit*, with the
    /// bucket's FIFO then popped directly — identical order to repeated
    /// [`RankedQueue::dequeue_min`] (between 1→0 edges the accumulators do
    /// not move, so a repeated lookup would re-select the same bucket).
    fn dequeue_batch(&mut self, max: usize, out: &mut Vec<(u64, T)>) -> usize {
        let mut n = 0;
        while n < max {
            let Some((k, est_k)) = self.locate_for_dequeue() else {
                break;
            };
            self.record_lookup(k, est_k);
            let bkt = self.nb - 1 - k;
            loop {
                let pair = self.buckets.pop(bkt).expect("lookup said occupied");
                out.push(pair);
                n += 1;
                self.vacate(k);
                if n >= max || self.meta[k].count == 0 {
                    break;
                }
            }
        }
        n
    }

    fn peek_min_rank(&self) -> Option<u64> {
        let (k, _) = self.locate_max_offset()?;
        Some(self.base + (self.nb - 1 - k) as u64 * self.granularity.divisor())
    }

    fn len(&self) -> usize {
        self.buckets.len()
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

impl<T> BucketCore<T> for ApproxGradientQueue<T> {
    fn push_bucket(&mut self, bucket: usize, rank: u64, item: T) {
        self.buckets.push(bucket, rank, item);
        let k = self.offset_of_bucket(bucket);
        self.occupy(k);
    }

    fn pop_min_bucket(&mut self) -> Option<(usize, u64, T)> {
        let (k, est_k) = self.locate_for_dequeue()?;
        self.record_lookup(k, est_k);
        let bkt = self.nb - 1 - k;
        let (rank, item) = self.buckets.pop(bkt)?;
        self.vacate(k); // per-element count; accumulators move only on the 1→0 edge
        Some((bkt, rank, item))
    }

    fn pop_min_batch(&mut self, max: usize, out: &mut Vec<(u64, T)>) -> usize {
        RankedQueue::dequeue_batch(self, max, out)
    }

    fn pop_max_bucket(&mut self) -> Option<(usize, u64, T)> {
        let k = self.occ.first_set()?;
        let bkt = self.nb - 1 - k;
        let (rank, item) = self.buckets.pop(bkt)?;
        self.vacate(k);
        Some((bkt, rank, item))
    }

    fn min_bucket(&self) -> Option<usize> {
        self.locate_max_offset().map(|(k, _)| self.nb - 1 - k)
    }

    fn core_len(&self) -> usize {
        self.buckets.len()
    }

    fn core_num_buckets(&self) -> usize {
        self.nb
    }

    fn core_stats(&self) -> QueueStats {
        self.stats
    }
}

/// Moving-window approximate gradient queue — "for cases of a moving range,
/// a circular approximate queue can be implemented as with cFFS" (§3.1.2).
pub type CircularApproxQueue<T> = Circular<ApproxGradientQueue<T>, T>;

impl<T> CircularApproxQueue<T> {
    /// Creates a circular approximate queue: two fixed-range halves of
    /// `num_buckets` buckets each, window starting at `start_rank`.
    pub fn new(num_buckets: usize, granularity: u64, start_rank: u64, alpha: u32) -> Self {
        Circular::from_halves(
            ApproxGradientQueue::with_base(num_buckets, granularity, 0, alpha),
            ApproxGradientQueue::with_base(num_buckets, granularity, 0, alpha),
            granularity,
            start_rank,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces the paper's α = 16 worked example: I0 = 124 and
    /// ⌊|u(α)|⌋ = 22 under the paper's decay threshold.
    #[test]
    fn paper_alpha16_parameters() {
        let p = ApproxParams::paper_alpha16();
        assert_eq!(p.i0, 124);
        assert_eq!(p.shift.floor() as u32, 22);
        // 523 buckets fit comfortably: Imax = 124 + 523 = 647 as in the paper.
        assert!(523 <= ApproxParams::max_buckets(16));
    }

    /// "This configuration results in an exact queue … when all buckets are
    /// nonempty": with a dense prefix of occupied buckets, every lookup must
    /// name the true minimum bucket.
    #[test]
    fn dense_prefix_is_exact() {
        for nb in [64usize, 523, 700] {
            let mut q: ApproxGradientQueue<u64> =
                ApproxGradientQueue::with_base(nb, 1, 0, 16).track_error();
            for r in 0..nb as u64 {
                q.enqueue(r, r).unwrap();
            }
            for want in 0..nb as u64 {
                let (r, _) = q.dequeue_min().unwrap();
                assert_eq!(r, want, "nb={nb}");
            }
            assert_eq!(
                q.stats().error_sum,
                0,
                "dense queue must be exact (nb={nb})"
            );
        }
    }

    /// Appendix B's adversarial pattern: heavy concentration at low internal
    /// indices plus one far element — the estimate is pulled away from the
    /// true extreme, error is non-zero but bounded, and nothing is lost.
    #[test]
    fn sparse_concentration_has_bounded_error_but_loses_nothing() {
        let nb = 512;
        // Min-queue: internal index N−1−b, so "concentration at the start of
        // the internal queue" = concentration at *large* ranks.
        let mut q: ApproxGradientQueue<u64> =
            ApproxGradientQueue::with_base(nb, 1, 0, 16).track_error();
        let mut inserted = 0u64;
        for r in 256..512u64 {
            q.enqueue(r, r).unwrap();
            inserted += 1;
        }
        q.enqueue(128, 128).unwrap(); // the lone high-priority element
        inserted += 1;
        let mut drained = 0u64;
        while q.dequeue_min().is_some() {
            drained += 1;
        }
        assert_eq!(drained, inserted, "approximation must not lose elements");
        assert!(q.stats().lookups >= inserted);
        // Error exists (the approximation is approximate)…
        let avg = q.stats().avg_error();
        // …but is far from the queue width.
        assert!(avg < 64.0, "avg error {avg} out of expected band");
    }

    /// "Typical scheduling policies … will generate priority values that are
    /// uniformly distributed over priority levels. For such scenarios, the
    /// approximate gradient queue will have zero error" (§3.1.2): a uniform
    /// fill keeps occupancy a dense prefix throughout the drain, so every
    /// lookup is exact.
    #[test]
    fn uniform_fill_drains_with_zero_error() {
        let nb = 523;
        let mut q: ApproxGradientQueue<u64> =
            ApproxGradientQueue::with_base(nb, 1, 0, 16).track_error();
        for pass in 0..8u64 {
            for b in 0..nb as u64 {
                q.enqueue(b, pass).unwrap();
            }
        }
        let mut prev = 0u64;
        while let Some((r, _)) = q.dequeue_min() {
            assert!(r >= prev, "uniform occupancy must also dequeue in order");
            prev = r;
        }
        assert_eq!(q.stats().error_sum, 0, "uniform occupancy ⇒ zero error");
        // While many buckets remain occupied the estimator hits; only the
        // near-empty tail of the drain (occupancy below the α·log2(1/eps)
        // decay window, where the calibrated shift overshoots) falls back
        // to the search — which still lands on the right bucket, hence the
        // zero error above.
        let s = q.stats();
        assert_eq!(s.est_hits + s.est_misses, s.lookups);
        assert!(
            s.hit_rate() > 0.7,
            "dense drain should mostly hit, got {:.2}",
            s.hit_rate()
        );
    }

    /// Steady-state churn (dequeue-min + uniform refill) carves a sparse
    /// "reaping front" near the extreme — the Appendix B concentration
    /// pattern. Error is expected (Figure 18 measures it) but must stay
    /// bounded, and no element may be lost.
    #[test]
    fn churn_error_is_bounded_and_conserves_elements() {
        let nb = 523;
        let mut q: ApproxGradientQueue<u64> =
            ApproxGradientQueue::with_base(nb, 1, 0, 16).track_error();
        let mut x: u64 = 0x853c49e6748fea9b;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..4_000 {
            let r = rnd();
            q.enqueue(r % nb as u64, r).unwrap();
        }
        for _ in 0..10_000 {
            q.dequeue_min().unwrap();
            let r = rnd();
            q.enqueue(r % nb as u64, r).unwrap();
        }
        assert_eq!(q.len(), 4_000, "churn conserves elements");
        let avg = q.stats().avg_error();
        assert!(
            avg > 0.0,
            "this adversarial pattern should show *some* error"
        );
        assert!(avg < 64.0, "error must stay bounded, got {avg}");
        // The hit/miss counters partition the lookups.
        let s = q.stats();
        assert_eq!(s.est_hits + s.est_misses, s.lookups);
        assert!(s.est_misses > 0, "sparse churn must record misses");
    }

    #[test]
    fn out_of_range_refused() {
        let mut q: ApproxGradientQueue<()> = ApproxGradientQueue::with_base(100, 10, 50, 16);
        assert!(q.enqueue(50, ()).is_ok());
        assert!(q.enqueue(1_049, ()).is_ok());
        assert_eq!(
            q.enqueue(1_050, ()).unwrap_err().kind,
            EnqueueErrorKind::OutOfRange
        );
        assert_eq!(
            q.enqueue(49, ()).unwrap_err().kind,
            EnqueueErrorKind::OutOfRange
        );
    }

    #[test]
    fn circular_approx_rotates_like_cffs() {
        let mut q: CircularApproxQueue<u64> = CircularApproxQueue::new(64, 10, 0, 16);
        for i in 0..256u64 {
            q.enqueue(i * 10, i).unwrap();
        }
        // 256 ranks of spread at granularity 10 = 2560 rank units vs window
        // 2×640: ranks ≥ 1280 clamp into the overflow bucket.
        assert!(q.stats().clamped_high > 0);
        let mut got = 0;
        while q.dequeue_min().is_some() {
            got += 1;
        }
        assert_eq!(got, 256, "rotation + overflow must conserve elements");
    }

    #[test]
    fn accumulator_rebuild_keeps_exactness_under_churn() {
        let nb = 128;
        let mut q: ApproxGradientQueue<u64> =
            ApproxGradientQueue::with_base(nb, 1, 0, 16).track_error();
        // Heavy enqueue/dequeue churn on a dense prefix; drift would show up
        // as error on a dense queue, which must stay exact.
        for round in 0..2_000u64 {
            for r in 0..nb as u64 {
                q.enqueue(r, round).unwrap();
            }
            for _ in 0..nb {
                q.dequeue_min().unwrap();
            }
        }
        assert_eq!(
            q.stats().error_sum,
            0,
            "dense queue stayed exact under churn"
        );
    }

    /// The estimate cache must never survive an accumulator change: peek
    /// then mutate then peek again across edges.
    #[test]
    fn est_cache_invalidated_on_edges() {
        let mut q: ApproxGradientQueue<u64> = ApproxGradientQueue::with_base(523, 1, 0, 16);
        for r in 0..523u64 {
            q.enqueue(r, r).unwrap();
        }
        assert_eq!(q.peek_min_rank(), Some(0)); // fills the cache
        let (r, _) = q.dequeue_min().unwrap(); // 1→0 edge: invalidates
        assert_eq!(r, 0);
        assert_eq!(q.peek_min_rank(), Some(1), "stale estimate would say 0");
        // Non-edge mutation (second element in an occupied bucket) keeps the
        // cache valid and the answer unchanged.
        q.enqueue(1, 99).unwrap();
        assert_eq!(q.peek_min_rank(), Some(1));
        assert_eq!(q.dequeue_min().unwrap().0, 1);
        assert_eq!(q.dequeue_min().unwrap().0, 1);
        assert_eq!(q.peek_min_rank(), Some(2));
    }
}
