//! The Figure 20 decision tree, as an executable function.
//!
//! §5.2 closes with "A Guide for Choosing a Priority Queue for Packet
//! Scheduling". Encoding it as code keeps the guidance testable and lets the
//! policy compiler (`eiffel-pifo`) pick a queue automatically from a policy
//! description.

/// Characteristics of a scheduling algorithm, as asked by Figure 20.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UseCase {
    /// Does the policy rank over a *moving* range (deadlines, transmission
    /// times) rather than a fixed one (flow sizes, strict priority levels)?
    pub moving_range: bool,
    /// Number of distinct priority levels (buckets) the policy needs.
    pub priority_levels: usize,
    /// Are all priority levels expected to serve a similar number of
    /// packets (highly occupied levels)?
    pub uniform_occupancy: bool,
}

/// The paper's empirically determined threshold: "we found in our
/// experiments that this threshold is 1k and that the difference in
/// performance is not significant around the threshold" (§5.2).
pub const LEVEL_THRESHOLD: usize = 1_000;

/// Which queue to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recommendation {
    /// Few priority levels: "the choice of priority queue has little impact
    /// and for most scenarios a bucket-based queue might be overkill".
    AnyPriorityQueue,
    /// Fixed range: a (hierarchical) FFS-based queue is sufficient.
    FixedRangeFfs,
    /// Moving range, uneven occupancy: the circular hierarchical FFS queue.
    Cffs,
    /// Moving range, highly/uniformly occupied levels: the approximate
    /// gradient queue wins (by up to 9%, §5.2).
    ApproxGradient,
}

/// Walks the Figure 20 decision tree.
pub fn recommend(u: &UseCase) -> Recommendation {
    if !u.moving_range {
        // Left branch: fixed range of priority values.
        if u.priority_levels <= LEVEL_THRESHOLD {
            Recommendation::AnyPriorityQueue
        } else {
            Recommendation::FixedRangeFfs
        }
    } else if u.priority_levels <= LEVEL_THRESHOLD {
        Recommendation::AnyPriorityQueue
    } else if u.uniform_occupancy {
        Recommendation::ApproxGradient
    } else {
        Recommendation::Cffs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The four canonical examples the paper attaches to each leaf.
    #[test]
    fn paper_examples_map_to_expected_leaves() {
        // "job remaining time [pFabric]" — fixed range, many levels → FFS.
        let pfabric = UseCase {
            moving_range: false,
            priority_levels: 100_000,
            uniform_occupancy: false,
        };
        assert_eq!(recommend(&pfabric), Recommendation::FixedRangeFfs);

        // "rate limiting with a wide range of limits [Carousel]" — moving
        // range, uneven levels → cFFS.
        let shaping = UseCase {
            moving_range: true,
            priority_levels: 20_000,
            uniform_occupancy: false,
        };
        assert_eq!(recommend(&shaping), Recommendation::Cffs);

        // "Least Slack Time-based or hierarchical-based schedules" — moving
        // range, highly occupied levels → approximate queue.
        let lstf = UseCase {
            moving_range: true,
            priority_levels: 10_000,
            uniform_occupancy: true,
        };
        assert_eq!(recommend(&lstf), Recommendation::ApproxGradient);

        // 8-level strict priority (802.1Q) — below the 1k threshold.
        let strict = UseCase {
            moving_range: false,
            priority_levels: 8,
            uniform_occupancy: false,
        };
        assert_eq!(recommend(&strict), Recommendation::AnyPriorityQueue);
    }

    #[test]
    fn threshold_boundary() {
        let mut u = UseCase {
            moving_range: true,
            priority_levels: LEVEL_THRESHOLD,
            uniform_occupancy: false,
        };
        assert_eq!(recommend(&u), Recommendation::AnyPriorityQueue);
        u.priority_levels += 1;
        assert_eq!(recommend(&u), Recommendation::Cffs);
    }
}
