//! Flat multi-word occupancy bitmap with sequential FFS.
//!
//! This is the O(M) structure the paper attributes to the Linux real-time
//! scheduler (§3.1.1: "FFS is applied sequentially on two words, in case of
//! 64-bit words"): the bucket occupancy of an N-bucket queue is stored in
//! `M = ceil(N/64)` words, and finding the minimum non-empty bucket scans
//! the words in order. "Very efficient for very small M", and the natural
//! stepping stone to the hierarchical bitmap of [`crate::hierbitmap`].

use crate::word;

/// A flat bitmap over `len` buckets.
#[derive(Debug, Clone)]
pub struct FlatBitmap {
    words: Vec<u64>,
    len: usize,
}

impl FlatBitmap {
    /// Creates an all-empty bitmap covering `len` buckets.
    pub fn new(len: usize) -> Self {
        FlatBitmap {
            words: vec![0; len.div_ceil(word::WORD_BITS)],
            len,
        }
    }

    /// Number of buckets covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bucket is marked occupied.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Marks bucket `i` occupied.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bucket {i} out of range {}", self.len);
        word::set_bit(&mut self.words[i / 64], (i % 64) as u32);
    }

    /// Marks bucket `i` empty.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bucket {i} out of range {}", self.len);
        word::clear_bit(&mut self.words[i / 64], (i % 64) as u32);
    }

    /// Whether bucket `i` is occupied.
    pub fn test(&self, i: usize) -> bool {
        word::test_bit(self.words[i / 64], (i % 64) as u32)
    }

    /// Lowest occupied bucket — the sequential O(M) scan.
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if let Some(b) = word::lowest_set(w) {
                return Some(wi * 64 + b as usize);
            }
        }
        None
    }

    /// Lowest occupied bucket at or after `from`.
    pub fn first_set_from(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let start_word = from / 64;
        if let Some(b) = word::lowest_set_from(self.words[start_word], (from % 64) as u32) {
            return Some(start_word * 64 + b as usize);
        }
        for wi in start_word + 1..self.words.len() {
            if let Some(b) = word::lowest_set(self.words[wi]) {
                return Some(wi * 64 + b as usize);
            }
        }
        None
    }

    /// Highest occupied bucket.
    pub fn last_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if let Some(b) = word::highest_set(w) {
                return Some(wi * 64 + b as usize);
            }
        }
        None
    }

    /// Highest occupied bucket at or before `to`.
    pub fn last_set_to(&self, to: usize) -> Option<usize> {
        let to = to.min(self.len.saturating_sub(1));
        let start_word = to / 64;
        if let Some(b) = word::highest_set_to(self.words[start_word], (to % 64) as u32) {
            return Some(start_word * 64 + b as usize);
        }
        for wi in (0..start_word).rev() {
            if let Some(b) = word::highest_set(self.words[wi]) {
                return Some(wi * 64 + b as usize);
            }
        }
        None
    }

    /// Number of occupied buckets.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_multiple_words() {
        let mut bm = FlatBitmap::new(200);
        assert!(bm.is_empty());
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(199);
        assert_eq!(bm.first_set(), Some(0));
        assert_eq!(bm.last_set(), Some(199));
        bm.clear(0);
        assert_eq!(bm.first_set(), Some(63));
        bm.clear(63);
        assert_eq!(bm.first_set(), Some(64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn first_set_from_crosses_word_boundary() {
        let mut bm = FlatBitmap::new(300);
        bm.set(10);
        bm.set(130);
        assert_eq!(bm.first_set_from(0), Some(10));
        assert_eq!(bm.first_set_from(10), Some(10));
        assert_eq!(bm.first_set_from(11), Some(130));
        assert_eq!(bm.first_set_from(131), None);
        assert_eq!(bm.first_set_from(299), None);
        assert_eq!(bm.first_set_from(300), None);
    }

    #[test]
    fn last_set_to_crosses_word_boundary() {
        let mut bm = FlatBitmap::new(300);
        bm.set(10);
        bm.set(130);
        assert_eq!(bm.last_set_to(299), Some(130));
        assert_eq!(bm.last_set_to(130), Some(130));
        assert_eq!(bm.last_set_to(129), Some(10));
        assert_eq!(bm.last_set_to(9), None);
    }

    #[test]
    fn set_clear_is_idempotent() {
        let mut bm = FlatBitmap::new(64);
        bm.set(5);
        bm.set(5);
        assert_eq!(bm.count_ones(), 1);
        bm.clear(5);
        bm.clear(5);
        assert!(bm.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let mut bm = FlatBitmap::new(64);
        bm.set(64);
    }
}
