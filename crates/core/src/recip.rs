//! Division by an invariant `u64` divisor via precomputed reciprocals.
//!
//! Every bucketed queue maps a rank to a bucket with `(rank - base) /
//! granularity`. The granularity is fixed at construction, yet the generic
//! `u64` division compiles to a hardware `div` — tens of cycles on the
//! enqueue path of every queue. This module strength-reduces that division
//! to a multiply-and-shift using the classic round-up method (Granlund &
//! Montgomery, "Division by Invariant Integers using Multiplication"):
//! pick `p = ceil(log2 d)` and `m = ceil(2^(64+p) / d)`; then
//! `floor(n / d) = floor(m·n / 2^(64+p))` for **all** `n < 2^64`, because
//! `2^(64+p) ≤ m·d < 2^(64+p) + d ≤ 2^(64+p) + 2^p`, which is exactly the
//! round-up method's error budget (Hacker's Delight §10-9).
//!
//! `m` lands in `[2^64, 2^65)`, so only its low 64 bits are stored and the
//! implicit `2^64·n` term is added back after the high multiply — one
//! `64×64→128` multiply, one add and one shift. Powers of two reduce to a
//! plain shift, and divisors above `2^63` to a single compare.

/// A precomputed reciprocal of a non-zero `u64` divisor.
///
/// ```
/// use eiffel_core::recip::Reciprocal;
/// let r = Reciprocal::new(100_000); // a 100 µs bucket granularity
/// assert_eq!(r.div(1_999_999_999), 19_999);
/// assert_eq!(r.rem(1_999_999_999), 99_999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reciprocal {
    /// The divisor itself (for `rem` and debugging).
    d: u64,
    /// Low 64 bits of the magic multiplier `m - 2^64` (multiply path only).
    magic: u64,
    /// Post shift `p` (multiply path), or the exact shift (power-of-two
    /// path).
    shift: u32,
    kind: Kind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// `d` is a power of two: `n >> shift`.
    Shift,
    /// General case: `(mulhi(magic, n) + n) >> (64 + shift)` in 128-bit.
    MulShift,
    /// `d > 2^63` and not a power of two: the quotient is 0 or 1.
    Compare,
}

impl Reciprocal {
    /// Precomputes the reciprocal of `d`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "division by zero");
        if d.is_power_of_two() {
            return Reciprocal {
                d,
                magic: 0,
                shift: d.trailing_zeros(),
                kind: Kind::Shift,
            };
        }
        // p = ceil(log2 d) for non-power-of-two d ≥ 3.
        let p = 64 - (d - 1).leading_zeros();
        if p >= 64 {
            // d > 2^63: 2^(64+p) overflows u128; quotients are 0 or 1.
            return Reciprocal {
                d,
                magic: 0,
                shift: 0,
                kind: Kind::Compare,
            };
        }
        let num = 1u128 << (64 + p);
        let m = num.div_ceil(d as u128); // in [2^64, 2^65)
        Reciprocal {
            d,
            magic: (m - (1u128 << 64)) as u64,
            shift: p,
            kind: Kind::MulShift,
        }
    }

    /// The divisor this reciprocal encodes.
    #[inline]
    pub fn divisor(&self) -> u64 {
        self.d
    }

    /// `n / d`, exactly, without a hardware divide.
    #[inline]
    pub fn div(&self, n: u64) -> u64 {
        match self.kind {
            Kind::Shift => n >> self.shift,
            Kind::MulShift => {
                let hi = ((n as u128 * self.magic as u128) >> 64) + n as u128;
                (hi >> self.shift) as u64
            }
            Kind::Compare => (n >= self.d) as u64,
        }
    }

    /// `n % d`, exactly.
    #[inline]
    pub fn rem(&self, n: u64) -> u64 {
        n - self.div(n) * self.d
    }

    /// `(n / d, n % d)` with one reciprocal evaluation.
    #[inline]
    pub fn div_rem(&self, n: u64) -> (u64, u64) {
        let q = self.div(n);
        (q, n - q * self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(d: u64, n: u64) {
        let r = Reciprocal::new(d);
        assert_eq!(r.div(n), n / d, "{n} / {d}");
        assert_eq!(r.rem(n), n % d, "{n} % {d}");
        assert_eq!(r.div_rem(n), (n / d, n % d), "{n} divmod {d}");
    }

    #[test]
    fn edge_divisors_and_numerators() {
        let divisors = [
            1u64,
            2,
            3,
            5,
            7,
            10,
            63,
            64,
            65,
            100_000,
            (1 << 32) - 1,
            1 << 32,
            (1 << 32) + 1,
            (1 << 63) - 1,
            1 << 63,
            (1 << 63) + 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &d in &divisors {
            let mut ns = vec![0u64, 1, 2, d - 1, d, u64::MAX, u64::MAX - 1];
            if let Some(x) = d.checked_add(1) {
                ns.push(x);
            }
            if let Some(x) = d.checked_mul(2) {
                ns.extend([x - 1, x, x + 1]);
            }
            if let Some(x) = d.checked_mul(1_000_003) {
                ns.extend([x - 1, x, x + 1]);
            }
            for n in ns {
                check(d, n);
            }
        }
    }

    #[test]
    fn pseudo_random_pairs() {
        let mut x: u64 = 0x6c62272e07bb0142;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200_000 {
            let d = next() | 1; // any odd divisor
            let n = next();
            check(d, n);
            check((d >> (n % 63)) | 1, n); // small divisors too
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_panics() {
        let _ = Reciprocal::new(0);
    }
}
