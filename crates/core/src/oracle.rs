//! Ideal-PIFO reference oracle and inversion accounting.
//!
//! The bake-off between backends (§5.2 figures; SP-PIFO and RIFO from the
//! related papers) needs a shared ground truth: a Push-In-First-Out queue
//! that always dequeues the true minimum rank. This module provides that
//! oracle plus the two quality metrics every conformance suite and the
//! bench `drain_quality` pass report:
//!
//! - **inversions** — dequeues whose rank exceeds a rank dequeued later
//!   (each such pop "jumped the queue" past at least one smaller rank);
//! - **rank error** — per pop, how far the dequeued rank sits above the
//!   true minimum the ideal PIFO would have served at that instant.
//!
//! An exact queue (cFFS at granularity 1, the binary heap) scores zero on
//! both; SP-PIFO and RIFO trade bounded inversions for integer-only
//! mapping, and the numbers here are what "bounded" means in practice.

use std::collections::BTreeMap;

/// Counts inversions in a dequeue sequence: pairs `(i, j)` with `i < j`
/// and `seq[i] > seq[j]`, attributed to the earlier pop. Returns
/// `(inverted_pops, max_magnitude)` where `inverted_pops` is the number of
/// positions that exceed *some* later value (not the O(n²) pair count) and
/// `max_magnitude` is the largest `seq[i] - min(later values)` gap.
///
/// Single backward pass over a suffix-minimum, O(n).
pub fn count_inversions(seq: &[u64]) -> (u64, u64) {
    let mut inverted = 0u64;
    let mut max_gap = 0u64;
    let mut suffix_min = u64::MAX;
    for &r in seq.iter().rev() {
        if r > suffix_min {
            inverted += 1;
            max_gap = max_gap.max(r - suffix_min);
        }
        suffix_min = suffix_min.min(r);
    }
    (inverted, max_gap)
}

/// Quality report produced by [`OracleAudit::finish`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleReport {
    /// Total dequeues audited.
    pub pops: u64,
    /// Pops whose rank exceeded some later-dequeued rank.
    pub inversions: u64,
    /// Largest rank gap of any inversion.
    pub max_inversion: u64,
    /// Sum over pops of `rank - true_min_at_pop`.
    pub rank_error_sum: u64,
    /// Largest single-pop rank error.
    pub max_rank_error: u64,
}

impl OracleReport {
    /// Inverted pops as a fraction of all pops.
    pub fn inversion_frac(&self) -> f64 {
        if self.pops == 0 {
            0.0
        } else {
            self.inversions as f64 / self.pops as f64
        }
    }

    /// Mean per-pop rank error.
    pub fn avg_rank_error(&self) -> f64 {
        if self.pops == 0 {
            0.0
        } else {
            self.rank_error_sum as f64 / self.pops as f64
        }
    }
}

/// Shadows a [`RankedQueue`](crate::RankedQueue) under test with an ideal
/// PIFO (a rank multiset) and scores every dequeue against the true
/// minimum.
///
/// Drive it in lockstep with the queue: [`on_enqueue`](Self::on_enqueue)
/// for every accepted enqueue, [`on_dequeue`](Self::on_dequeue) for every
/// pop. Panics if the queue emits a rank the oracle does not hold —
/// conservation violations fail loudly rather than skewing the metrics.
#[derive(Debug, Default)]
pub struct OracleAudit {
    /// Ideal-PIFO content: rank → multiplicity.
    content: BTreeMap<u64, usize>,
    len: usize,
    pops: u64,
    rank_error_sum: u64,
    max_rank_error: u64,
    popped: Vec<u64>,
}

impl OracleAudit {
    /// An empty audit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Elements currently held by the ideal PIFO.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ideal PIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The true minimum rank currently held, if any.
    pub fn true_min(&self) -> Option<u64> {
        self.content.keys().next().copied()
    }

    /// Records an accepted enqueue of `rank`.
    pub fn on_enqueue(&mut self, rank: u64) {
        *self.content.entry(rank).or_insert(0) += 1;
        self.len += 1;
    }

    /// Records a dequeue of `rank`, scoring it against the true minimum.
    /// Panics if the oracle does not hold `rank` (the queue under test
    /// fabricated or duplicated an element).
    pub fn on_dequeue(&mut self, rank: u64) {
        let true_min = *self
            .content
            .keys()
            .next()
            .expect("queue dequeued from an oracle-empty state");
        let n = self
            .content
            .get_mut(&rank)
            .unwrap_or_else(|| panic!("queue dequeued rank {rank} the oracle does not hold"));
        *n -= 1;
        if *n == 0 {
            self.content.remove(&rank);
        }
        self.len -= 1;
        self.pops += 1;
        // `rank` is in the multiset, so `rank >= true_min` always.
        let err = rank - true_min;
        self.rank_error_sum += err;
        self.max_rank_error = self.max_rank_error.max(err);
        self.popped.push(rank);
    }

    /// The dequeue sequence audited so far.
    pub fn popped(&self) -> &[u64] {
        &self.popped
    }

    /// Finalizes the audit into an [`OracleReport`].
    pub fn finish(&self) -> OracleReport {
        let (inversions, max_inversion) = count_inversions(&self.popped);
        OracleReport {
            pops: self.pops,
            inversions,
            max_inversion,
            rank_error_sum: self.rank_error_sum,
            max_rank_error: self.max_rank_error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_sequence_has_no_inversions() {
        assert_eq!(count_inversions(&[1, 2, 2, 3, 9]), (0, 0));
        assert_eq!(count_inversions(&[]), (0, 0));
        assert_eq!(count_inversions(&[7]), (0, 0));
    }

    #[test]
    fn inversions_attribute_to_early_pops() {
        // 5 jumps ahead of 1 and 3; 3 jumps ahead of nothing later.
        assert_eq!(count_inversions(&[5, 1, 3]), (1, 4));
        // Both 9s jump ahead of the final 2.
        assert_eq!(count_inversions(&[9, 9, 2]), (2, 7));
    }

    #[test]
    fn exact_queue_scores_zero() {
        let mut a = OracleAudit::new();
        for r in [4u64, 1, 9, 1] {
            a.on_enqueue(r);
        }
        for r in [1u64, 1, 4, 9] {
            a.on_dequeue(r);
        }
        let rep = a.finish();
        assert_eq!(rep.pops, 4);
        assert_eq!(rep.inversions, 0);
        assert_eq!(rep.rank_error_sum, 0);
        assert_eq!(rep.avg_rank_error(), 0.0);
        assert!(a.is_empty());
    }

    #[test]
    fn approximate_queue_scores_its_error() {
        let mut a = OracleAudit::new();
        for r in [10u64, 2, 7] {
            a.on_enqueue(r);
        }
        // Pops 7 while 2 is the true min: error 5, and it is an inversion
        // because 2 comes out later.
        a.on_dequeue(7);
        a.on_dequeue(2);
        a.on_dequeue(10);
        let rep = a.finish();
        assert_eq!(rep.pops, 3);
        assert_eq!(rep.inversions, 1);
        assert_eq!(rep.max_inversion, 5);
        assert_eq!(rep.rank_error_sum, 5);
        assert_eq!(rep.max_rank_error, 5);
        assert!((rep.inversion_frac() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn fabricated_rank_panics() {
        let mut a = OracleAudit::new();
        a.on_enqueue(3);
        a.on_dequeue(4);
    }
}
