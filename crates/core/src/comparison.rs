//! Comparison-based baselines — the O(log n) queues the paper displaces.
//!
//! §2: "inefficiencies remain because of the typical reliance on generic
//! default priority queues in modern libraries (e.g., RB-trees in kernel and
//! Binary Heaps in C++)". These two types stand in for exactly those:
//! [`HeapPq`] for C++'s `std::priority_queue` (the hClock and pFabric
//! baselines of §5.1.2/§5.1.3) and [`TreePq`] for the kernel RB-tree (the
//! FQ/pacing qdisc of §5.1.1 — Rust's `BTreeMap` is the idiomatic balanced
//! ordered tree, with identical O(log n) asymptotics).
//!
//! Both preserve FIFO order among equal ranks, matching the bucketed queues'
//! tie behaviour so dequeue orders are comparable in tests.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use crate::traits::{EnqueueError, RankedQueue};

/// Heap entry ordered by `(rank, seq)` ascending — the payload does not
/// participate in comparisons. `BinaryHeap` is a max-heap, so `Ord` is
/// reversed to pop the minimum first.
#[derive(Debug, Clone)]
struct HeapEntry<T> {
    rank: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.seq == other.seq
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.rank, other.seq).cmp(&(self.rank, self.seq)) // reversed: min-heap
    }
}

/// Binary-heap priority queue storing payloads inline — the C++
/// `std::priority_queue` stand-in.
#[derive(Debug, Clone)]
pub struct HeapPq<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    seq: u64,
}

impl<T> HeapPq<T> {
    /// Creates an empty heap queue.
    pub fn new() -> Self {
        HeapPq {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> Default for HeapPq<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RankedQueue<T> for HeapPq<T> {
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>> {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry { rank, seq, item });
        Ok(())
    }

    fn dequeue_min(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|e| (e.rank, e.item))
    }

    fn peek_min_rank(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.rank)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Balanced-tree priority queue: `BTreeMap` from rank to FIFO of items
/// (the kernel-RB-tree stand-in).
#[derive(Debug, Clone)]
pub struct TreePq<T> {
    tree: BTreeMap<u64, VecDeque<T>>,
    len: usize,
}

impl<T> TreePq<T> {
    /// Creates an empty tree queue.
    pub fn new() -> Self {
        TreePq {
            tree: BTreeMap::new(),
            len: 0,
        }
    }
}

impl<T> Default for TreePq<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RankedQueue<T> for TreePq<T> {
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>> {
        self.tree.entry(rank).or_default().push_back(item);
        self.len += 1;
        Ok(())
    }

    fn dequeue_min(&mut self) -> Option<(u64, T)> {
        let (&rank, fifo) = self.tree.iter_mut().next()?;
        let item = fifo.pop_front().expect("empty FIFOs are removed eagerly");
        if fifo.is_empty() {
            self.tree.remove(&rank);
        }
        self.len -= 1;
        Some((rank, item))
    }

    fn dequeue_max(&mut self) -> Option<(u64, T)> {
        let (&rank, fifo) = self.tree.iter_mut().next_back()?;
        // LIFO within the max rank: the youngest worst-ranked element is
        // the one overload sheds first (it has waited least).
        let item = fifo.pop_back().expect("empty FIFOs are removed eagerly");
        if fifo.is_empty() {
            self.tree.remove(&rank);
        }
        self.len -= 1;
        Some((rank, item))
    }

    fn peek_min_rank(&self) -> Option<u64> {
        self.tree.keys().next().copied()
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(q: &mut impl RankedQueue<u32>) {
        q.enqueue(9, 1).unwrap();
        q.enqueue(1, 2).unwrap();
        q.enqueue(9, 3).unwrap();
        q.enqueue(u64::MAX, 4).unwrap();
        q.enqueue(0, 5).unwrap();
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_min_rank(), Some(0));
        assert_eq!(q.dequeue_min(), Some((0, 5)));
        assert_eq!(q.dequeue_min(), Some((1, 2)));
        assert_eq!(q.dequeue_min(), Some((9, 1)), "FIFO within equal rank");
        assert_eq!(q.dequeue_min(), Some((9, 3)));
        assert_eq!(q.dequeue_min(), Some((u64::MAX, 4)));
        assert_eq!(q.dequeue_min(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn heap_pq_basic() {
        exercise(&mut HeapPq::new());
    }

    #[test]
    fn tree_pq_basic() {
        exercise(&mut TreePq::new());
    }

    #[test]
    fn heap_and_tree_agree_on_random_workload() {
        let mut h = HeapPq::new();
        let mut t = TreePq::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 4 != 0 {
                h.enqueue(x % 256, step).unwrap();
                t.enqueue(x % 256, step).unwrap();
            } else {
                assert_eq!(h.dequeue_min(), t.dequeue_min());
            }
        }
        while !h.is_empty() {
            assert_eq!(h.dequeue_min(), t.dequeue_min());
        }
        assert!(t.is_empty());
    }
}
