//! SP-PIFO: an adaptive strict-priority approximation of a PIFO.
//!
//! From *SP-PIFO: Approximating Push-In First-Out Behaviors using
//! Strict-Priority Queues* (see PAPERS.md; the "Everything Matters in
//! Programmable Packet Scheduling" line of work). The structure is `n`
//! strict-priority FIFO queues plus one **queue bound** per queue, adapted
//! online:
//!
//! - **Mapping**: an arriving rank scans queues from lowest priority to
//!   highest and joins the first queue whose bound does not exceed the
//!   rank; the bound is then raised to the rank (**push-up**).
//! - **Push-down**: if even the highest-priority queue's bound exceeds the
//!   rank, every bound is decreased by the overshoot (`bound[0] − rank`)
//!   and the packet joins the highest-priority queue — the paper's
//!   reaction to an inversion it just caused.
//!
//! Everything is integer compare/subtract — no division, no floats — which
//! is exactly why it competes in the Figure 16/17 bake-off against the
//! divide-carrying approximate gradient queue. The price is *bounded
//! unordering*: dequeues within one queue are FIFO regardless of rank, so
//! the PIFO-oracle metrics ([`crate::oracle`]) are nonzero by design.
//!
//! The bounds stay sorted (nondecreasing from the highest-priority queue
//! down): push-up raises `bound[i]` to a rank that was already below
//! `bound[i+1]`, and push-down subtracts the same amount from every bound
//! (saturating at zero, which preserves order). The conformance suite
//! asserts this invariant after every operation.

use std::collections::VecDeque;

use crate::traits::{EnqueueError, QueueStats, RankedQueue};

/// Maximum number of strict-priority queues (one occupancy word).
pub const MAX_QUEUES: usize = 64;

/// Adaptive strict-priority PIFO approximation over `n ≤ 64` FIFO queues.
#[derive(Debug, Clone)]
pub struct SpPifoQueue<T> {
    /// `queues[0]` is the highest priority (served first).
    queues: Vec<VecDeque<(u64, T)>>,
    /// Per-queue admission bound, sorted nondecreasing.
    bounds: Vec<u64>,
    /// Bit `i` set ⇔ `queues[i]` is non-empty.
    occupied: u64,
    len: usize,
    stats: QueueStats,
}

impl<T> SpPifoQueue<T> {
    /// Creates an SP-PIFO over `n` strict-priority queues (the papers
    /// evaluate 8–32; hardware offers ≤ 64). Bounds start at zero.
    pub fn new(n: usize) -> Self {
        assert!((1..=MAX_QUEUES).contains(&n), "need 1..=64 queues");
        SpPifoQueue {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            bounds: vec![0; n],
            occupied: 0,
            len: 0,
            stats: QueueStats::default(),
        }
    }

    /// Number of strict-priority queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// The current per-queue admission bounds (highest priority first).
    /// Diagnostics: the conformance suite checks they stay sorted.
    pub fn queue_bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Index of the highest-priority non-empty queue.
    fn min_queue(&self) -> Option<usize> {
        if self.occupied == 0 {
            None
        } else {
            Some(self.occupied.trailing_zeros() as usize)
        }
    }

    fn pop_front(&mut self, q: usize) -> (u64, T) {
        let pair = self.queues[q].pop_front().expect("occupancy bit said so");
        if self.queues[q].is_empty() {
            self.occupied &= !(1u64 << q);
        }
        self.len -= 1;
        pair
    }
}

impl<T> RankedQueue<T> for SpPifoQueue<T> {
    /// Never refuses: ranks are unbounded (the adaptation absorbs any
    /// range). `est_hits` counts clean mappings, `est_misses` push-downs,
    /// and `error_sum` accumulates the push-down overshoot — the
    /// structure's own estimate of the inversions it admits.
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>> {
        self.stats.lookups += 1;
        let n = self.queues.len();
        let mut target = None;
        for i in (0..n).rev() {
            if self.bounds[i] <= rank {
                target = Some(i);
                break;
            }
        }
        let q = match target {
            Some(i) => {
                self.bounds[i] = rank; // push-up
                self.stats.est_hits += 1;
                i
            }
            None => {
                // Push-down: even the top queue's bound exceeds the rank.
                let cost = self.bounds[0] - rank;
                for b in &mut self.bounds {
                    *b = b.saturating_sub(cost);
                }
                self.stats.est_misses += 1;
                self.stats.error_sum += cost;
                0
            }
        };
        self.queues[q].push_back((rank, item));
        self.occupied |= 1u64 << q;
        self.len += 1;
        Ok(())
    }

    fn dequeue_min(&mut self) -> Option<(u64, T)> {
        let q = self.min_queue()?;
        Some(self.pop_front(q))
    }

    /// Batched fast path: one `trailing_zeros` locates the serving queue,
    /// whose FIFO is then drained directly until it empties or the batch
    /// fills.
    fn dequeue_batch(&mut self, max: usize, out: &mut Vec<(u64, T)>) -> usize {
        let mut n = 0;
        while n < max {
            let Some(q) = self.min_queue() else { break };
            while n < max {
                out.push(self.queues[q].pop_front().expect("occupancy bit said so"));
                self.len -= 1;
                n += 1;
                if self.queues[q].is_empty() {
                    self.occupied &= !(1u64 << q);
                    break;
                }
            }
        }
        n
    }

    /// The rank the next dequeue will return (front of the serving queue).
    /// Like a bucket-granular peek this can exceed ranks queued behind it —
    /// that is the approximation.
    fn peek_min_rank(&self) -> Option<u64> {
        let q = self.min_queue()?;
        self.queues[q].front().map(|&(r, _)| r)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds_sorted<T>(q: &SpPifoQueue<T>) -> bool {
        q.queue_bounds().windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn maps_and_serves_strict_priority() {
        let mut q: SpPifoQueue<u32> = SpPifoQueue::new(4);
        // First arrivals land in the lowest-priority queue (all bounds 0)
        // and push its bound up.
        q.enqueue(40, 1).unwrap();
        q.enqueue(620, 2).unwrap();
        // 40 no longer fits queue 3 (bound 620): maps one queue up.
        q.enqueue(40, 3).unwrap();
        assert_eq!(q.len(), 3);
        assert!(bounds_sorted(&q));
        // Queue 2 (holding the later 40) serves before queue 3's FIFO —
        // the SP-PIFO approximation reorders equal ranks across queues.
        assert_eq!(q.dequeue_min(), Some((40, 3)));
        assert_eq!(q.dequeue_min(), Some((40, 1)));
        assert_eq!(q.dequeue_min(), Some((620, 2)));
        assert_eq!(q.dequeue_min(), None);
    }

    #[test]
    fn push_down_reacts_to_low_ranks() {
        let mut q: SpPifoQueue<&str> = SpPifoQueue::new(2);
        q.enqueue(100, "a").unwrap(); // queue 1, bound 100
        q.enqueue(200, "b").unwrap(); // queue 1, bound 200
        q.enqueue(150, "c").unwrap(); // queue 0, bound 150
                                      // 120 < bound[0]=150: push-down by 30, lands in queue 0.
        q.enqueue(120, "d").unwrap();
        assert!(bounds_sorted(&q));
        let s = q.stats();
        assert_eq!(s.lookups, 4);
        assert_eq!(s.est_misses, 1);
        assert_eq!(s.error_sum, 30);
        assert_eq!(q.queue_bounds(), &[120, 170]);
        // Queue 0 FIFO: c then d, then queue 1: a, b.
        let order: Vec<&str> = std::iter::from_fn(|| q.dequeue_min().map(|(_, v)| v)).collect();
        assert_eq!(order, ["c", "d", "a", "b"]);
    }

    #[test]
    fn batch_matches_repeated_single() {
        let ranks = [
            9u64, 3, 7, 3, 100, 42, 5, 0, 77, 6, 6, 6, 1, 88, 41, 2, 95, 13,
        ];
        let mut single: SpPifoQueue<usize> = SpPifoQueue::new(8);
        let mut batched: SpPifoQueue<usize> = SpPifoQueue::new(8);
        for (i, &r) in ranks.iter().enumerate() {
            single.enqueue(r, i).unwrap();
            batched.enqueue(r, i).unwrap();
        }
        let mut a = Vec::new();
        while let Some(p) = single.dequeue_min() {
            a.push(p);
        }
        let mut b = Vec::new();
        while batched.dequeue_batch(5, &mut b) > 0 {}
        assert_eq!(a, b);
    }

    #[test]
    fn conserves_elements_under_churn() {
        let mut q: SpPifoQueue<u64> = SpPifoQueue::new(8);
        let mut seed = 0x5eed_1234_u64;
        let mut put = 0u64;
        let mut got = 0u64;
        for _ in 0..10_000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = (seed >> 33) % 1_000;
            q.enqueue(r, r).unwrap();
            put += 1;
            assert!(bounds_sorted(&q));
            if seed & 1 == 0 {
                let (rank, item) = q.dequeue_min().unwrap();
                assert_eq!(rank, item);
                got += 1;
            }
        }
        while q.dequeue_min().is_some() {
            got += 1;
        }
        assert_eq!(put, got);
        assert!(q.is_empty());
        assert_eq!(q.stats().lookups, put);
    }

    #[test]
    fn peek_matches_next_dequeue() {
        let mut q: SpPifoQueue<u8> = SpPifoQueue::new(4);
        assert_eq!(q.peek_min_rank(), None);
        for r in [50u64, 10, 90, 30] {
            q.enqueue(r, r as u8).unwrap();
        }
        while let Some(peek) = q.peek_min_rank() {
            let (r, _) = q.dequeue_min().unwrap();
            assert_eq!(peek, r);
        }
    }
}
