//! The common ranked-queue interface, runtime queue selection, and errors.
//!
//! Every queue in this crate implements [`RankedQueue`], which is
//! deliberately minimal and object-safe so schedulers (`eiffel-pifo`) can be
//! programmed against `Box<dyn RankedQueue<T>>` and the queue implementation
//! chosen at configuration time — the paper's "choose a data structure per
//! policy" guidance (Figure 20, exposed here via [`crate::guide`]).

use std::fmt;

/// Why an enqueue was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueErrorKind {
    /// The rank is outside a fixed-range queue's `[base, base + span)` range.
    ///
    /// Only fixed-range queues ([`crate::FfsQueue`], [`crate::HierFfsQueue`],
    /// [`crate::GradientQueue`], …) refuse ranks; moving-window queues clamp
    /// instead (and count the clamp in [`QueueStats`]).
    OutOfRange,
}

/// An enqueue refusal carrying the item back to the caller, so drop policies
/// can be applied without cloning.
pub struct EnqueueError<T> {
    /// Why the enqueue was refused.
    pub kind: EnqueueErrorKind,
    /// The rank that was refused.
    pub rank: u64,
    /// The item, returned un-consumed.
    pub item: T,
}

impl<T> fmt::Debug for EnqueueError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnqueueError")
            .field("kind", &self.kind)
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

impl<T> fmt::Display for EnqueueError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            EnqueueErrorKind::OutOfRange => {
                write!(f, "rank {} outside the queue's fixed range", self.rank)
            }
        }
    }
}

impl<T> std::error::Error for EnqueueError<T> {}

/// Counters describing clamping and approximation behaviour.
///
/// These are *observability*, not control flow: moving-window queues accept
/// every rank but record when one was coerced into the representable window,
/// and the approximate gradient queue records its estimation error
/// (regenerating the paper's Figure 18).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Elements whose rank was below the window and were treated as due now.
    pub clamped_low: u64,
    /// Elements whose rank was beyond the window and landed in the overflow
    /// bucket ("enqueued at the last bucket in the secondary queue", §3.1.1).
    pub clamped_high: u64,
    /// Min-find operations answered (denominator for `error_sum`).
    pub lookups: u64,
    /// Sum over lookups of |estimated bucket − actual bucket| (approximate
    /// queues only; exact queues keep this at zero).
    pub error_sum: u64,
    /// Lookups whose curvature estimate landed on an occupied bucket — the
    /// approximate queue's O(1) fast path (`est_hits + est_misses =
    /// lookups` for approximate queues; exact queues keep both at zero).
    pub est_hits: u64,
    /// Lookups that fell back to the alternating search because the
    /// estimated bucket was empty.
    pub est_misses: u64,
}

impl QueueStats {
    /// Average bucket-index error per lookup (Figure 18's y-axis).
    pub fn avg_error(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.error_sum as f64 / self.lookups as f64
        }
    }

    /// Fraction of lookups answered by the estimator's O(1) hit path
    /// (approximate queues; 0 when no lookups were recorded).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.est_hits as f64 / self.lookups as f64
        }
    }
}

/// A priority queue keyed by integer rank, minimum first.
///
/// `dequeue_min` returns the element's *original* rank. For bucketed queues
/// the dequeue order is only bucket-granular: elements in one bucket come out
/// FIFO regardless of their sub-granularity rank (paper §2 — that is the
/// point of bucketing).
pub trait RankedQueue<T> {
    /// Inserts `item` with `rank`.
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>>;

    /// Removes and returns the minimum-bucket element (FIFO within bucket).
    fn dequeue_min(&mut self) -> Option<(u64, T)>;

    /// Removes up to `max` elements in exactly the order repeated
    /// [`RankedQueue::dequeue_min`] calls would produce, appending them to
    /// `out`. Returns how many elements were moved.
    ///
    /// The default implementation is that loop verbatim. Bucketed queues
    /// override it to amortize the min-find across the batch: one bitmap
    /// descent (or curvature estimate) locates the minimum bucket, whose
    /// FIFO is then popped repeatedly until the bucket empties or the batch
    /// fills — the per-packet cost the paper attributes to batching in §5.1
    /// (Figure 13) applied to the queue itself.
    fn dequeue_batch(&mut self, max: usize, out: &mut Vec<(u64, T)>) -> usize {
        let mut n = 0;
        while n < max {
            match self.dequeue_min() {
                Some(pair) => {
                    out.push(pair);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Removes and returns a maximum-bucket element (`ExtractMax`), for
    /// rank-aware priority-drop eviction: overload sheds the worst-ranked
    /// resident element first (pFabric's drop policy, reused by the chaos
    /// harness's admission layer).
    ///
    /// Returns `None` when the queue is empty **or** when the
    /// implementation has no exact max path (the default). Callers that
    /// need to distinguish the two check `len() > 0` first and fall back
    /// to tail drop on unsupported backends — an honest fallback beats a
    /// silent O(n) scan on a hot path.
    fn dequeue_max(&mut self) -> Option<(u64, T)> {
        None
    }

    /// Rank lower edge of the minimum non-empty bucket.
    ///
    /// This is the queue's `SoonestDeadline()` (paper §4): a timer armed for
    /// this value never fires after the true minimum element is due.
    fn peek_min_rank(&self) -> Option<u64>;

    /// Number of stored elements.
    fn len(&self) -> usize;

    /// Whether the queue holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clamping/approximation counters. Exact queues return zeros.
    fn stats(&self) -> QueueStats {
        QueueStats::default()
    }
}

/// Boxed queues forward every method (including the overridden batch and
/// max paths) to the inner implementation, so generic code can be written
/// over `Q: RankedQueue<T>` and instantiated with a boxed
/// `dyn RankedQueue<T> + Send` — the shape the threaded chaos harness
/// moves across threads.
impl<T, Q: RankedQueue<T> + ?Sized> RankedQueue<T> for Box<Q> {
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>> {
        (**self).enqueue(rank, item)
    }

    fn dequeue_min(&mut self) -> Option<(u64, T)> {
        (**self).dequeue_min()
    }

    fn dequeue_batch(&mut self, max: usize, out: &mut Vec<(u64, T)>) -> usize {
        (**self).dequeue_batch(max, out)
    }

    fn dequeue_max(&mut self) -> Option<(u64, T)> {
        (**self).dequeue_max()
    }

    fn peek_min_rank(&self) -> Option<u64> {
        (**self).peek_min_rank()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn stats(&self) -> QueueStats {
        (**self).stats()
    }
}

/// Geometry shared by bucketed queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Number of pre-allocated buckets per window.
    pub num_buckets: usize,
    /// Rank units covered by one bucket (the paper's `C/N` interval).
    pub granularity: u64,
    /// Lowest rank initially representable (moving-window queues advance it).
    pub start_rank: u64,
}

impl QueueConfig {
    /// Convenience constructor.
    pub fn new(num_buckets: usize, granularity: u64, start_rank: u64) -> Self {
        QueueConfig {
            num_buckets,
            granularity,
            start_rank,
        }
    }

    /// Rank units covered by one window (`num_buckets × granularity`).
    pub fn span(&self) -> u64 {
        self.num_buckets as u64 * self.granularity
    }
}

/// Runtime-selectable queue implementation, for policy compilers and
/// benchmarks that sweep over data structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Single-word FFS queue (≤ 64 buckets).
    Ffs,
    /// Fixed-range hierarchical FFS queue.
    HierFfs,
    /// Circular hierarchical FFS queue (the paper's cFFS).
    Cffs,
    /// Exact gradient queue (hierarchical when > 64 buckets).
    Gradient,
    /// Approximate gradient queue with curvature parameter α.
    ApproxGradient {
        /// The paper's α: weights grow as `2^(i/α)`.
        alpha: u32,
    },
    /// Circular approximate gradient queue (moving window).
    CircularApprox {
        /// The paper's α: weights grow as `2^(i/α)`.
        alpha: u32,
    },
    /// Bucketed queue indexed by a binary heap of bucket indices (the
    /// paper's "BH" baseline).
    BucketHeap,
    /// SP-PIFO adaptive strict-priority mapping (integer-only, unbounded
    /// range; ignores the bucket geometry).
    SpPifo {
        /// Number of strict-priority queues (1..=64).
        queues: u32,
    },
    /// RIFO adaptive rank-range bucket mapping (integer-only, unbounded
    /// range; uses `num_buckets`, adapts its own granularity).
    Rifo,
    /// Comparison-based binary heap over elements (C++ `std::priority_queue`
    /// stand-in).
    BinaryHeap,
    /// Comparison-based balanced tree over ranks (kernel RB-tree stand-in).
    BTree,
}

impl QueueKind {
    /// Instantiates the selected queue with the given geometry.
    ///
    /// Comparison-based kinds ignore the geometry (they are unbounded);
    /// fixed-range kinds cover `[start_rank, start_rank + span)`; circular
    /// kinds start their window at `start_rank`.
    pub fn build<T: 'static>(self, cfg: QueueConfig) -> Box<dyn RankedQueue<T>> {
        match self {
            QueueKind::Ffs => Box::new(crate::FfsQueue::with_base(cfg.granularity, cfg.start_rank)),
            QueueKind::HierFfs => Box::new(crate::HierFfsQueue::with_base(
                cfg.num_buckets,
                cfg.granularity,
                cfg.start_rank,
            )),
            QueueKind::Cffs => Box::new(crate::CffsQueue::new(
                cfg.num_buckets,
                cfg.granularity,
                cfg.start_rank,
            )),
            QueueKind::Gradient => Box::new(crate::HierGradientQueue::with_base(
                cfg.num_buckets,
                cfg.granularity,
                cfg.start_rank,
            )),
            QueueKind::ApproxGradient { alpha } => Box::new(crate::ApproxGradientQueue::with_base(
                cfg.num_buckets,
                cfg.granularity,
                cfg.start_rank,
                alpha,
            )),
            QueueKind::CircularApprox { alpha } => Box::new(crate::CircularApproxQueue::new(
                cfg.num_buckets,
                cfg.granularity,
                cfg.start_rank,
                alpha,
            )),
            QueueKind::BucketHeap => Box::new(crate::BucketHeapQueue::with_base(
                cfg.num_buckets,
                cfg.granularity,
                cfg.start_rank,
            )),
            QueueKind::SpPifo { queues } => Box::new(crate::SpPifoQueue::new(queues as usize)),
            QueueKind::Rifo => Box::new(crate::RifoQueue::new(cfg.num_buckets)),
            QueueKind::BinaryHeap => Box::new(crate::HeapPq::new()),
            QueueKind::BTree => Box::new(crate::TreePq::new()),
        }
    }

    /// [`QueueKind::build`] with a `Send` bound on the trait object, for
    /// harnesses that move the queue onto another thread (the chaos
    /// runtime's per-shard ranked qdiscs). Kept as a separate constructor
    /// — rather than tightening `build` — because `eiffel-pifo` builds
    /// queues over element types it never sends across threads.
    pub fn build_send<T: Send + 'static>(self, cfg: QueueConfig) -> Box<dyn RankedQueue<T> + Send> {
        match self {
            QueueKind::Ffs => Box::new(crate::FfsQueue::with_base(cfg.granularity, cfg.start_rank)),
            QueueKind::HierFfs => Box::new(crate::HierFfsQueue::with_base(
                cfg.num_buckets,
                cfg.granularity,
                cfg.start_rank,
            )),
            QueueKind::Cffs => Box::new(crate::CffsQueue::new(
                cfg.num_buckets,
                cfg.granularity,
                cfg.start_rank,
            )),
            QueueKind::Gradient => Box::new(crate::HierGradientQueue::with_base(
                cfg.num_buckets,
                cfg.granularity,
                cfg.start_rank,
            )),
            QueueKind::ApproxGradient { alpha } => Box::new(crate::ApproxGradientQueue::with_base(
                cfg.num_buckets,
                cfg.granularity,
                cfg.start_rank,
                alpha,
            )),
            QueueKind::CircularApprox { alpha } => Box::new(crate::CircularApproxQueue::new(
                cfg.num_buckets,
                cfg.granularity,
                cfg.start_rank,
                alpha,
            )),
            QueueKind::BucketHeap => Box::new(crate::BucketHeapQueue::with_base(
                cfg.num_buckets,
                cfg.granularity,
                cfg.start_rank,
            )),
            QueueKind::SpPifo { queues } => Box::new(crate::SpPifoQueue::new(queues as usize)),
            QueueKind::Rifo => Box::new(crate::RifoQueue::new(cfg.num_buckets)),
            QueueKind::BinaryHeap => Box::new(crate::HeapPq::new()),
            QueueKind::BTree => Box::new(crate::TreePq::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_span() {
        let cfg = QueueConfig::new(2_000, 1_000, 0);
        assert_eq!(cfg.span(), 2_000_000);
    }

    #[test]
    fn stats_avg_error_handles_zero_lookups() {
        assert_eq!(QueueStats::default().avg_error(), 0.0);
        let s = QueueStats {
            lookups: 4,
            error_sum: 6,
            ..Default::default()
        };
        assert!((s.avg_error() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn every_kind_builds_and_round_trips() {
        let cfg = QueueConfig::new(128, 10, 0);
        let kinds = [
            QueueKind::Ffs,
            QueueKind::HierFfs,
            QueueKind::Cffs,
            QueueKind::Gradient,
            QueueKind::ApproxGradient { alpha: 16 },
            QueueKind::CircularApprox { alpha: 16 },
            QueueKind::BucketHeap,
            QueueKind::Rifo,
            QueueKind::BinaryHeap,
            QueueKind::BTree,
        ];
        for kind in kinds {
            let mut q: Box<dyn RankedQueue<u32>> = kind.build(cfg);
            assert!(q.is_empty(), "{kind:?}");
            q.enqueue(40, 1).unwrap();
            q.enqueue(620, 2).unwrap();
            q.enqueue(40, 3).unwrap();
            assert_eq!(q.len(), 3, "{kind:?}");
            let (r1, v1) = q.dequeue_min().unwrap();
            assert_eq!((r1, v1), (40, 1), "{kind:?}");
            let (_, v2) = q.dequeue_min().unwrap();
            assert_eq!(v2, 3, "{kind:?} FIFO within rank");
            assert_eq!(q.dequeue_min().unwrap().1, 2, "{kind:?}");
            assert!(q.dequeue_min().is_none(), "{kind:?}");
        }
    }

    /// SP-PIFO is excluded from the strict round-trip above by design: its
    /// per-queue FIFOs reorder equal ranks across queues. It still builds
    /// through [`QueueKind`] and conserves every element.
    #[test]
    fn sp_pifo_builds_and_conserves() {
        let cfg = QueueConfig::new(128, 10, 0);
        let mut q: Box<dyn RankedQueue<u32>> = QueueKind::SpPifo { queues: 8 }.build(cfg);
        let ranks = [40u64, 620, 40, 7, 999, 40];
        for (i, &r) in ranks.iter().enumerate() {
            q.enqueue(r, i as u32).unwrap();
        }
        assert_eq!(q.len(), ranks.len());
        let mut got: Vec<u64> = Vec::new();
        while let Some((r, _)) = q.dequeue_min() {
            got.push(r);
        }
        let mut want = ranks.to_vec();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want, "every enqueued rank comes back out");
    }
}
