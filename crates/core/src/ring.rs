//! A lock-free single-producer / single-consumer ring buffer.
//!
//! The threaded host runtime (`eiffel-qdisc::threaded`) moves packets from
//! the producer/demux thread to one qdisc thread per shard. The channel on
//! that per-packet path must not take locks — the whole point of measuring
//! Eiffel on real threads is that the scheduler, not the plumbing, is the
//! bottleneck — so this is the classic bounded SPSC ring used by userspace
//! data planes (DPDK `rte_ring` SP/SC mode, BESS queues):
//!
//! * **Fixed capacity**, allocated once; no allocation on push/pop.
//! * **Monotonic head/tail counters** (`usize`, wrapping arithmetic); the
//!   slot index is `counter % capacity`, so full vs empty is unambiguous
//!   without wasting a slot.
//! * **Cache-line-padded** head and tail ([`CachePadded`]) so the producer
//!   and consumer cores never false-share.
//! * **Acquire/Release orderings** only: the producer's `Release` store of
//!   `tail` publishes the slot write; the consumer's `Acquire` load of
//!   `tail` observes it (and symmetrically for `head` when recycling
//!   slots). No sequentially-consistent fences on the hot path.
//! * Each endpoint keeps a **cached snapshot** of the other's counter and
//!   refreshes it only when the ring looks full/empty, so the common case
//!   touches one shared cache line, not two.
//!
//! This module is the one place in the workspace allowed to use `unsafe`
//! (uninitialized slot storage needs `UnsafeCell<MaybeUninit<T>>`); the
//! invariants are spelled out at each `unsafe` block and exercised by the
//! proptest suite in `crates/core/tests/ring.rs`.
//!
//! ```
//! use eiffel_core::ring::SpscRing;
//!
//! let (mut tx, mut rx) = SpscRing::new(2);
//! assert!(tx.push(1).is_ok());
//! assert!(tx.push(2).is_ok());
//! assert_eq!(tx.push(3), Err(3)); // full: value handed back
//! assert_eq!(rx.pop(), Some(1));
//! assert_eq!(rx.pop(), Some(2));
//! assert_eq!(rx.pop(), None);
//! ```
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::counters::CachePadded;

/// The shared state of one SPSC ring. Created via [`SpscRing::new`], which
/// hands back the two (and only two) endpoints; the ring itself is never
/// touched directly.
#[derive(Debug)]
pub struct SpscRing<T> {
    /// Slot storage. Slot `i % capacity` is *initialized* iff
    /// `head <= i < tail` (monotonic counters).
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Monotonic count of pops; slot owner boundary for the consumer.
    head: CachePadded<AtomicUsize>,
    /// Monotonic count of pushes; slot owner boundary for the producer.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring is shared by exactly one producer and one consumer (the
// only handles `new` creates, and they are not `Clone`). The producer
// writes slot `tail % cap` only while `tail - head < cap` and publishes
// with a `Release` store of `tail`; the consumer reads slot `head % cap`
// only while `head < tail` after an `Acquire` load of `tail`. A slot is
// therefore never accessed by both threads at once, and every cross-thread
// hand-off is ordered by a Release/Acquire pair on `tail` (values) or
// `head` (slot recycling). `T: Send` is required because values move
// between the two threads.
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// Creates a ring holding at most `capacity` elements (≥ 1) and returns
    /// its two endpoints, `mpsc::channel`-style (the ring itself is never
    /// handed out, which is what makes the two-handle safety argument hold).
    #[allow(clippy::new_ret_no_self)]
    pub fn new(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
        assert!(capacity > 0, "SPSC ring needs capacity >= 1");
        let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        let ring = Arc::new(SpscRing {
            buf,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
        });
        (
            SpscProducer {
                ring: Arc::clone(&ring),
                tail: 0,
                cached_head: 0,
            },
            SpscConsumer {
                ring,
                head: 0,
                cached_tail: 0,
            },
        )
    }

    /// Maximum number of elements the ring can hold.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Last endpoint dropping the Arc: no concurrency left (`&mut self`),
        // plain loads are fine. Initialized slots are exactly head..tail.
        let head = self.head.get().load(Ordering::Relaxed);
        let tail = self.tail.get().load(Ordering::Relaxed);
        let cap = self.buf.len();
        let mut i = head;
        while i != tail {
            // SAFETY: `head <= i < tail` ⇒ slot `i % cap` holds a live `T`
            // (see the `buf` field invariant); we have exclusive access.
            unsafe {
                (*self.buf[i % cap].get()).assume_init_drop();
            }
            i = i.wrapping_add(1);
        }
    }
}

/// The write endpoint of an [`SpscRing`]. Owned by exactly one thread.
#[derive(Debug)]
pub struct SpscProducer<T> {
    ring: Arc<SpscRing<T>>,
    /// Local mirror of the shared tail (this endpoint is its only writer).
    tail: usize,
    /// Last observed consumer head; refreshed only when the ring looks full.
    cached_head: usize,
}

/// The read endpoint of an [`SpscRing`]. Owned by exactly one thread.
#[derive(Debug)]
pub struct SpscConsumer<T> {
    ring: Arc<SpscRing<T>>,
    /// Local mirror of the shared head (this endpoint is its only writer).
    head: usize,
    /// Last observed producer tail; refreshed only when the ring looks empty.
    cached_tail: usize,
}

impl<T> SpscProducer<T> {
    /// Pushes `v`, or hands it back if the ring is full.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let cap = self.ring.buf.len();
        if self.tail.wrapping_sub(self.cached_head) == cap {
            // Looks full against the snapshot — refresh from the consumer.
            self.cached_head = self.ring.head.get().load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.cached_head) == cap {
                return Err(v);
            }
        }
        // SAFETY: `tail - head < cap`, so slot `tail % cap` is vacant
        // (consumed or never written) and owned by the producer until the
        // Release store below. The Acquire load of `head` above ordered us
        // after the consumer's read of any previous value in this slot.
        unsafe {
            (*self.ring.buf[self.tail % cap].get()).write(v);
        }
        self.tail = self.tail.wrapping_add(1);
        // Publish: everything written to the slot happens-before a consumer
        // that Acquire-loads this tail value.
        self.ring.tail.get().store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Elements currently in the ring (exact from this endpoint's view: the
    /// consumer can only have drained more since the head snapshot).
    pub fn len(&self) -> usize {
        let head = self.ring.head.get().load(Ordering::Acquire);
        self.tail.wrapping_sub(head)
    }

    /// Whether the ring is empty from the producer's view.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of elements the ring can hold.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

impl<T> SpscConsumer<T> {
    /// Pops the oldest element, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let cap = self.ring.buf.len();
        if self.head == self.cached_tail {
            // Looks empty against the snapshot — refresh from the producer.
            self.cached_tail = self.ring.tail.get().load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: `head < tail` (Acquire-loaded above or earlier), so slot
        // `head % cap` holds a value the producer fully wrote before its
        // Release store of `tail`. The producer will not touch the slot
        // again until it observes the Release store of `head` below.
        let v = unsafe { (*self.ring.buf[self.head % cap].get()).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        // Recycle: the slot read happens-before a producer that
        // Acquire-loads this head value and reuses the slot.
        self.ring.head.get().store(self.head, Ordering::Release);
        Some(v)
    }

    /// Pops up to `max` elements into `out`, returning how many were moved.
    pub fn pop_batch(&mut self, max: usize, out: &mut Vec<T>) -> usize {
        let mut n = 0;
        while n < max {
            match self.pop() {
                Some(v) => {
                    out.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Elements currently in the ring (exact from this endpoint's view: the
    /// producer can only have added more since the tail snapshot).
    pub fn len(&self) -> usize {
        let tail = self.ring.tail.get().load(Ordering::Acquire);
        tail.wrapping_sub(self.head)
    }

    /// Whether the ring is empty from the consumer's view.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of elements the ring can hold.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let (mut tx, mut rx) = SpscRing::new(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99));
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn len_tracks_occupancy_from_both_ends() {
        let (mut tx, mut rx) = SpscRing::new(3);
        assert!(tx.is_empty() && rx.is_empty());
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.pop().unwrap();
        assert_eq!(tx.len(), 1);
        assert_eq!(rx.len(), 1);
        assert_eq!(tx.capacity(), 3);
        assert_eq!(rx.capacity(), 3);
    }

    #[test]
    fn pop_batch_respects_max() {
        let (mut tx, mut rx) = SpscRing::new(8);
        for i in 0..6 {
            tx.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(4, &mut out), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.pop_batch(4, &mut out), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn drop_releases_unconsumed_elements() {
        // Non-Copy payloads left in the ring must be dropped exactly once.
        let (mut tx, mut rx) = SpscRing::new(4);
        tx.push(String::from("a")).unwrap();
        tx.push(String::from("b")).unwrap();
        assert_eq!(rx.pop().as_deref(), Some("a"));
        drop(tx);
        drop(rx); // "b" still inside: Drop for SpscRing reclaims it
    }
}
