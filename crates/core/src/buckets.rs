//! Pre-allocated FIFO bucket storage shared by all bucketed queues.
//!
//! Paper §2: "bucketed integer priority queues achieve CPU efficiency at the
//! expense of maintaining elements unsorted within a single bucket and
//! pre-allocation of memory for all buckets". Each bucket is a FIFO;
//! elements keep their exact rank alongside the payload so a dequeue can
//! report it, but ordering *within* a bucket is insertion order — "packets
//! within a single bucket effectively have equivalent rank".
//!
//! # Layout
//!
//! Buckets are intrusive singly-linked FIFOs over one shared node slab,
//! not per-bucket `VecDeque`s. The distinction matters at scale: a packet
//! scheduler configures many buckets (pFabric ports here use 4 096) but
//! holds few packets per queue, so per-bucket headers must be tiny and
//! element storage must be proportional to *occupancy*, not bucket count.
//! One bucket costs 8 bytes (head+tail indices in one array entry); nodes
//! live in a slab recycled through a free list, so steady-state churn
//! allocates nothing and keeps touching the same hot lines. The previous
//! `Vec<VecDeque>` layout cost 32 bytes per empty bucket plus one buffer
//! allocation per touched bucket — 128 KB per pFabric port before a single
//! packet arrived, and two cold cache lines per enqueue.

/// Sentinel index terminating bucket lists and the free list.
const NIL: u32 = u32::MAX;

/// Head and tail of one bucket's FIFO, packed so both land on one line.
#[derive(Debug, Clone, Copy)]
struct BucketList {
    head: u32,
    tail: u32,
}

#[derive(Debug, Clone)]
struct Node<T> {
    rank: u64,
    next: u32,
    /// `None` only while the node sits on the free list.
    item: Option<T>,
}

/// A fixed array of FIFO buckets holding `(rank, item)` pairs.
#[derive(Debug, Clone)]
pub struct Buckets<T> {
    lists: Vec<BucketList>,
    nodes: Vec<Node<T>>,
    free: u32,
    len: usize,
}

impl<T> Buckets<T> {
    /// Allocates `n` empty buckets.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one bucket");
        assert!(
            n < NIL as usize,
            "bucket index space is u32 with a sentinel"
        );
        Buckets {
            lists: vec![
                BucketList {
                    head: NIL,
                    tail: NIL
                };
                n
            ],
            nodes: Vec::new(),
            free: NIL,
            len: 0,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.lists.len()
    }

    /// Total number of stored elements across all buckets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element to bucket `i`'s FIFO.
    pub fn push(&mut self, i: usize, rank: u64, item: T) {
        let idx = if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.rank = rank;
            node.next = NIL;
            node.item = Some(item);
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx < NIL, "slab index space is u32 with a sentinel");
            self.nodes.push(Node {
                rank,
                next: NIL,
                item: Some(item),
            });
            idx
        };
        let list = &mut self.lists[i];
        if list.tail == NIL {
            list.head = idx;
        } else {
            self.nodes[list.tail as usize].next = idx;
        }
        list.tail = idx;
        self.len += 1;
    }

    /// Pops the oldest element of bucket `i`, if any.
    pub fn pop(&mut self, i: usize) -> Option<(u64, T)> {
        let list = &mut self.lists[i];
        let idx = list.head;
        if idx == NIL {
            return None;
        }
        let node = &mut self.nodes[idx as usize];
        let rank = node.rank;
        let item = node.item.take().expect("listed node holds an item");
        list.head = node.next;
        if list.head == NIL {
            list.tail = NIL;
        }
        node.next = self.free;
        self.free = idx;
        self.len -= 1;
        Some((rank, item))
    }

    /// Rank of the oldest element of bucket `i`, if any.
    pub fn front_rank(&self, i: usize) -> Option<u64> {
        let idx = self.lists[i].head;
        if idx == NIL {
            None
        } else {
            Some(self.nodes[idx as usize].rank)
        }
    }

    /// Whether bucket `i` holds no elements.
    pub fn bucket_is_empty(&self, i: usize) -> bool {
        self.lists[i].head == NIL
    }

    /// Number of elements in bucket `i` (walks the list; diagnostics only).
    pub fn bucket_len(&self, i: usize) -> usize {
        let mut n = 0;
        let mut idx = self.lists[i].head;
        while idx != NIL {
            n += 1;
            idx = self.nodes[idx as usize].next;
        }
        n
    }

    /// Drains every element of bucket `i`, oldest first. Elements not
    /// consumed by the iterator are still removed when it drops.
    pub fn drain_bucket(&mut self, i: usize) -> DrainBucket<'_, T> {
        DrainBucket { buckets: self, i }
    }

    /// Nodes ever allocated in the slab (live + free-listed). Bounded by
    /// *peak* occupancy — steady-state churn recycles instead of growing —
    /// which the churn property tests pin. Diagnostics only.
    pub fn slab_len(&self) -> usize {
        self.nodes.len()
    }

    /// Length of the free list (walks it; diagnostics only). Every slab
    /// node is either live in some bucket or on the free list, so this
    /// must always equal `slab_len() − len()` — the churn property tests
    /// assert that identity to catch leaked or double-freed nodes.
    pub fn free_list_len(&self) -> usize {
        let mut n = 0;
        let mut idx = self.free;
        while idx != NIL {
            n += 1;
            assert!(
                n <= self.nodes.len(),
                "free list longer than the slab: a node was freed twice"
            );
            idx = self.nodes[idx as usize].next;
        }
        n
    }

    /// Removes every element for which `pred` returns false from bucket `i`,
    /// preserving FIFO order of the survivors. Returns the removed elements.
    ///
    /// This is O(bucket length) and exists for *failure-injection tests* and
    /// explicit flow teardown, not the data path (the data path uses lazy
    /// invalidation instead — see `eiffel-pifo`).
    ///
    /// Allocation-free in the common case: survivors rotate in place
    /// through the bucket's own FIFO, and the returned `Vec` only allocates
    /// when something is actually removed — most calls remove nothing.
    pub fn retain_bucket<F: FnMut(u64, &T) -> bool>(
        &mut self,
        i: usize,
        mut pred: F,
    ) -> Vec<(u64, T)> {
        let mut removed = Vec::new();
        for _ in 0..self.bucket_len(i) {
            let (r, t) = self.pop(i).expect("iterating bucket length");
            if pred(r, &t) {
                self.push(i, r, t);
            } else {
                removed.push((r, t));
            }
        }
        removed
    }
}

/// Iterator returned by [`Buckets::drain_bucket`].
pub struct DrainBucket<'a, T> {
    buckets: &'a mut Buckets<T>,
    i: usize,
}

impl<T> Iterator for DrainBucket<'_, T> {
    type Item = (u64, T);

    fn next(&mut self) -> Option<(u64, T)> {
        self.buckets.pop(self.i)
    }
}

impl<T> Drop for DrainBucket<'_, T> {
    fn drop(&mut self) {
        while self.buckets.pop(self.i).is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_bucket() {
        let mut b: Buckets<char> = Buckets::new(4);
        b.push(2, 20, 'a');
        b.push(2, 21, 'b');
        b.push(2, 20, 'c');
        assert_eq!(b.len(), 3);
        assert_eq!(b.front_rank(2), Some(20));
        assert_eq!(b.pop(2), Some((20, 'a')));
        assert_eq!(b.pop(2), Some((21, 'b')));
        assert_eq!(b.pop(2), Some((20, 'c')));
        assert_eq!(b.pop(2), None);
        assert!(b.is_empty());
    }

    #[test]
    fn drain_updates_len() {
        let mut b: Buckets<u32> = Buckets::new(2);
        b.push(0, 1, 10);
        b.push(0, 2, 11);
        b.push(1, 3, 12);
        let drained: Vec<_> = b.drain_bucket(0).collect();
        assert_eq!(drained, vec![(1, 10), (2, 11)]);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn dropped_drain_still_empties_the_bucket() {
        let mut b: Buckets<u32> = Buckets::new(2);
        for v in 0..5 {
            b.push(0, v, v as u32);
        }
        b.push(1, 9, 9);
        {
            let mut d = b.drain_bucket(0);
            assert_eq!(d.next(), Some((0, 0)));
            // Dropped with four elements unconsumed.
        }
        assert!(b.bucket_is_empty(0));
        assert_eq!(b.len(), 1);
        assert_eq!(b.pop(1), Some((9, 9)));
    }

    #[test]
    fn retain_removes_and_reports() {
        let mut b: Buckets<u32> = Buckets::new(1);
        for v in 0..6 {
            b.push(0, v, v as u32);
        }
        let removed = b.retain_bucket(0, |r, _| r % 2 == 0);
        assert_eq!(removed.len(), 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.pop(0), Some((0, 0)));
        assert_eq!(b.pop(0), Some((2, 2)));
    }

    /// The slab recycles freed nodes: heavy churn must not grow storage
    /// beyond peak occupancy.
    #[test]
    fn free_list_bounds_slab_growth() {
        let mut b: Buckets<u64> = Buckets::new(64);
        for round in 0..1_000u64 {
            for k in 0..8 {
                b.push((round as usize + k) % 64, round, round);
            }
            for k in 0..8 {
                b.pop((round as usize + k) % 64).unwrap();
            }
        }
        assert!(b.is_empty());
        assert!(
            b.nodes.len() <= 8,
            "slab grew to {} nodes for peak occupancy 8",
            b.nodes.len()
        );
    }

    /// Interleaved pushes across buckets through the shared slab keep
    /// per-bucket FIFO order.
    #[test]
    fn interleaving_across_buckets_keeps_order() {
        let mut b: Buckets<u32> = Buckets::new(3);
        for v in 0..30u32 {
            b.push((v % 3) as usize, v as u64, v);
        }
        for bucket in 0..3usize {
            let mut expect = bucket as u32;
            while let Some((r, v)) = b.pop(bucket) {
                assert_eq!(v, expect);
                assert_eq!(r, expect as u64);
                expect += 3;
            }
        }
        assert!(b.is_empty());
    }
}
