//! Pre-allocated FIFO bucket storage shared by all bucketed queues.
//!
//! Paper §2: "bucketed integer priority queues achieve CPU efficiency at the
//! expense of maintaining elements unsorted within a single bucket and
//! pre-allocation of memory for all buckets". Each bucket is a FIFO
//! (`VecDeque`); elements keep their exact rank alongside the payload so a
//! dequeue can report it, but ordering *within* a bucket is insertion order —
//! "packets within a single bucket effectively have equivalent rank".

use std::collections::VecDeque;

/// A fixed array of FIFO buckets holding `(rank, item)` pairs.
#[derive(Debug, Clone)]
pub struct Buckets<T> {
    slots: Vec<VecDeque<(u64, T)>>,
    len: usize,
}

impl<T> Buckets<T> {
    /// Allocates `n` empty buckets.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one bucket");
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, VecDeque::new);
        Buckets { slots, len: 0 }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.slots.len()
    }

    /// Total number of stored elements across all buckets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element to bucket `i`'s FIFO.
    pub fn push(&mut self, i: usize, rank: u64, item: T) {
        self.slots[i].push_back((rank, item));
        self.len += 1;
    }

    /// Pops the oldest element of bucket `i`, if any.
    pub fn pop(&mut self, i: usize) -> Option<(u64, T)> {
        let out = self.slots[i].pop_front();
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Rank of the oldest element of bucket `i`, if any.
    pub fn front_rank(&self, i: usize) -> Option<u64> {
        self.slots[i].front().map(|(r, _)| *r)
    }

    /// Whether bucket `i` holds no elements.
    pub fn bucket_is_empty(&self, i: usize) -> bool {
        self.slots[i].is_empty()
    }

    /// Number of elements in bucket `i`.
    pub fn bucket_len(&self, i: usize) -> usize {
        self.slots[i].len()
    }

    /// Drains every element of bucket `i`, oldest first.
    pub fn drain_bucket(&mut self, i: usize) -> std::collections::vec_deque::Drain<'_, (u64, T)> {
        self.len -= self.slots[i].len();
        self.slots[i].drain(..)
    }

    /// Removes every element for which `pred` returns false from bucket `i`,
    /// preserving FIFO order of the survivors. Returns the removed elements.
    ///
    /// This is O(bucket length) and exists for *failure-injection tests* and
    /// explicit flow teardown, not the data path (the data path uses lazy
    /// invalidation instead — see `eiffel-pifo`).
    pub fn retain_bucket<F: FnMut(u64, &T) -> bool>(
        &mut self,
        i: usize,
        mut pred: F,
    ) -> Vec<(u64, T)> {
        let mut removed = Vec::new();
        let mut kept = VecDeque::with_capacity(self.slots[i].len());
        for (r, t) in self.slots[i].drain(..) {
            if pred(r, &t) {
                kept.push_back((r, t));
            } else {
                removed.push((r, t));
            }
        }
        self.len -= removed.len();
        self.slots[i] = kept;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_bucket() {
        let mut b: Buckets<char> = Buckets::new(4);
        b.push(2, 20, 'a');
        b.push(2, 21, 'b');
        b.push(2, 20, 'c');
        assert_eq!(b.len(), 3);
        assert_eq!(b.front_rank(2), Some(20));
        assert_eq!(b.pop(2), Some((20, 'a')));
        assert_eq!(b.pop(2), Some((21, 'b')));
        assert_eq!(b.pop(2), Some((20, 'c')));
        assert_eq!(b.pop(2), None);
        assert!(b.is_empty());
    }

    #[test]
    fn drain_updates_len() {
        let mut b: Buckets<u32> = Buckets::new(2);
        b.push(0, 1, 10);
        b.push(0, 2, 11);
        b.push(1, 3, 12);
        let drained: Vec<_> = b.drain_bucket(0).collect();
        assert_eq!(drained, vec![(1, 10), (2, 11)]);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn retain_removes_and_reports() {
        let mut b: Buckets<u32> = Buckets::new(1);
        for v in 0..6 {
            b.push(0, v, v as u32);
        }
        let removed = b.retain_bucket(0, |r, _| r % 2 == 0);
        assert_eq!(removed.len(), 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.pop(0), Some((0, 0)));
        assert_eq!(b.pop(0), Some((2, 2)));
    }
}
