//! RIFO: rank-range bucket mapping over the FFS substrate.
//!
//! From *RIFO: Pushing the Efficiency of Programmable Packet Schedulers*
//! (see PAPERS.md). Where cFFS fixes granularity and moves its window, and
//! the gradient queue estimates curvature, RIFO keeps a fixed array of `N`
//! buckets and **adapts the rank range** it spreads over them: the live
//! range `[lo, hi]` is tracked online and an arriving rank maps to bucket
//! `(rank − lo) / g` with `g = (hi − lo)/N + 1`. Ranks below the range
//! join bucket 0 (they are "due"); ranks above extend `hi`, which only
//! ever widens `g` while the queue is non-empty. When the queue drains
//! empty, the next enqueue re-bases the range — the moving-range behaviour
//! packet ranks exhibit in practice (paper §2's "limited moving range").
//!
//! The mapping divisor changes rarely (only when `hi − lo` crosses a
//! multiple of `N`), so the division is served by a cached
//! [`Reciprocal`] — the hot path is subtract + multiply-shift, integer
//! only. Min-find is the same [`HierBitmap`] FFS descent as
//! [`crate::HierFfsQueue`]; elements within a bucket are FIFO, so rank
//! error is bounded by the bucket width `g − 1` for any fixed range (the
//! conformance suite pins exactly that invariant).

use crate::buckets::Buckets;
use crate::hierbitmap::HierBitmap;
use crate::recip::Reciprocal;
use crate::traits::{EnqueueError, QueueStats, RankedQueue};

/// Adaptive rank-range bucket queue (integer-only mapping, FFS min-find).
#[derive(Debug, Clone)]
pub struct RifoQueue<T> {
    bitmap: HierBitmap,
    buckets: Buckets<T>,
    /// Live rank range covered by the bucket array.
    lo: u64,
    hi: u64,
    /// Cached divider for the current bucket width `g`.
    recip: Reciprocal,
    stats: QueueStats,
}

impl<T> RifoQueue<T> {
    /// Creates a RIFO queue over `n` buckets. The rank range is adopted
    /// from the first enqueue.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one bucket");
        RifoQueue {
            bitmap: HierBitmap::new(n),
            buckets: Buckets::new(n),
            lo: 0,
            hi: 0,
            recip: Reciprocal::new(1),
            stats: QueueStats::default(),
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.num_buckets()
    }

    /// The live rank range `(lo, hi)` and bucket width `g` — diagnostics
    /// for the conformance suite's range invariant.
    pub fn range(&self) -> (u64, u64, u64) {
        (self.lo, self.hi, self.recip.divisor())
    }

    /// Bucket for `rank`, adapting the range. Only valid to call on the
    /// enqueue path (it may rebase or widen).
    fn map(&mut self, rank: u64) -> usize {
        if self.buckets.is_empty() {
            // Fresh range: the whole array ahead of this rank.
            self.lo = rank;
            self.hi = rank;
            if self.recip.divisor() != 1 {
                self.recip = Reciprocal::new(1);
            }
            return 0;
        }
        if rank < self.lo {
            // Below the live range: due now, shares the minimum bucket.
            self.stats.clamped_low += 1;
            return 0;
        }
        if rank > self.hi {
            self.hi = rank;
            // g = (hi−lo)/N + 1 keeps every mapped index < N and never
            // overflows (no +1 inside the dividend).
            let g = (self.hi - self.lo) / self.num_buckets() as u64 + 1;
            if g != self.recip.divisor() {
                self.recip = Reciprocal::new(g);
            }
        }
        self.recip.div(rank - self.lo) as usize
    }
}

impl<T> RankedQueue<T> for RifoQueue<T> {
    /// Never refuses: the range adapts to any rank. Out-of-range-low ranks
    /// are clamped into bucket 0 and counted in `clamped_low`.
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>> {
        let b = self.map(rank);
        self.buckets.push(b, rank, item);
        self.bitmap.set(b);
        Ok(())
    }

    fn dequeue_min(&mut self) -> Option<(u64, T)> {
        let b = self.bitmap.first_set()?;
        let out = self.buckets.pop(b);
        if self.buckets.bucket_is_empty(b) {
            self.bitmap.clear(b);
        }
        out
    }

    /// Batched fast path, same shape as [`crate::HierFfsQueue`]'s: drain
    /// the minimum bucket's FIFO, then step to the next occupied bucket
    /// with `first_set_from` instead of a fresh root descent.
    fn dequeue_batch(&mut self, max: usize, out: &mut Vec<(u64, T)>) -> usize {
        let mut n = 0;
        let Some(mut b) = self.bitmap.first_set() else {
            return 0;
        };
        'batch: while n < max {
            loop {
                let pair = self.buckets.pop(b).expect("bitmap said non-empty");
                out.push(pair);
                n += 1;
                if self.buckets.bucket_is_empty(b) {
                    self.bitmap.clear(b);
                    break;
                }
                if n >= max {
                    break 'batch;
                }
            }
            match self.bitmap.first_set_from(b + 1) {
                Some(next) => b = next,
                None => break,
            }
        }
        n
    }

    /// The rank the next dequeue will return (FIFO front of the minimum
    /// occupied bucket).
    fn peek_min_rank(&self) -> Option<u64> {
        let b = self.bitmap.first_set()?;
        self.buckets.front_rank(b)
    }

    fn len(&self) -> usize {
        self.buckets.len()
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adopts_and_widens_range() {
        let mut q: RifoQueue<u32> = RifoQueue::new(128);
        q.enqueue(40, 1).unwrap();
        assert_eq!(q.range(), (40, 40, 1));
        q.enqueue(620, 2).unwrap();
        // g = (620−40)/128 + 1 = 5.
        assert_eq!(q.range(), (40, 620, 5));
        q.enqueue(40, 3).unwrap();
        assert_eq!(q.dequeue_min(), Some((40, 1)));
        assert_eq!(q.dequeue_min(), Some((40, 3)), "FIFO within bucket");
        assert_eq!(q.dequeue_min(), Some((620, 2)));
        assert_eq!(q.dequeue_min(), None);
    }

    #[test]
    fn rebases_after_draining_empty() {
        let mut q: RifoQueue<()> = RifoQueue::new(16);
        q.enqueue(1_000_000, ()).unwrap();
        q.enqueue(2_000_000, ()).unwrap();
        while q.dequeue_min().is_some() {}
        // A fresh, far-away range is adopted, not clamped.
        q.enqueue(5, ()).unwrap();
        assert_eq!(q.range(), (5, 5, 1));
        assert_eq!(q.stats().clamped_low, 0);
        assert_eq!(q.peek_min_rank(), Some(5));
    }

    #[test]
    fn below_range_ranks_clamp_to_minimum_bucket() {
        let mut q: RifoQueue<u8> = RifoQueue::new(8);
        q.enqueue(100, 0).unwrap();
        q.enqueue(900, 1).unwrap(); // g = 101
        q.enqueue(7, 2).unwrap(); // below lo=100: bucket 0
        assert_eq!(q.stats().clamped_low, 1);
        // Bucket 0 FIFO: the 100 entered first.
        assert_eq!(q.dequeue_min(), Some((100, 0)));
        assert_eq!(q.dequeue_min(), Some((7, 2)));
        assert_eq!(q.dequeue_min(), Some((900, 1)));
    }

    #[test]
    fn rank_error_bounded_by_bucket_width_for_pinned_range() {
        // Pin the range up front, then check dequeue order never inverts
        // by more than g − 1.
        let nb = 64;
        let mut q: RifoQueue<u64> = RifoQueue::new(nb);
        q.enqueue(0, 0).unwrap();
        q.enqueue(6_400, 6_400).unwrap();
        let (_, _, g) = q.range();
        assert_eq!(g, 101);
        let mut seedv = 0x1234_5678_9abc_def0u64;
        for _ in 0..500 {
            seedv = seedv.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = (seedv >> 33) % 6_401;
            q.enqueue(r, r).unwrap();
        }
        let mut popped = Vec::new();
        while let Some((r, _)) = q.dequeue_min() {
            popped.push(r);
        }
        let (_, max_gap) = crate::oracle::count_inversions(&popped);
        assert!(max_gap < g, "max inversion {max_gap} must stay below g={g}");
    }

    #[test]
    fn batch_matches_repeated_single() {
        let ranks = [
            12u64, 900, 3, 3, 77, 500_000, 41, 0, 13, 13, 260, 99, 1_000_000,
        ];
        let mut single: RifoQueue<usize> = RifoQueue::new(32);
        let mut batched: RifoQueue<usize> = RifoQueue::new(32);
        for (i, &r) in ranks.iter().enumerate() {
            single.enqueue(r, i).unwrap();
            batched.enqueue(r, i).unwrap();
        }
        let mut a = Vec::new();
        while let Some(p) = single.dequeue_min() {
            a.push(p);
        }
        let mut b = Vec::new();
        while batched.dequeue_batch(4, &mut b) > 0 {}
        assert_eq!(a, b);
    }
}
