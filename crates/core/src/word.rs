//! Find-First-Set primitives on machine words.
//!
//! The paper builds every FFS queue on the CPU's Find First Set instruction
//! ("BSR takes three cycles", §3.1.1). In Rust these are the `u64`
//! `trailing_zeros` / `leading_zeros` intrinsics, which compile to
//! `TZCNT`/`LZCNT` (or `BSF`/`BSR`) on x86-64.
//!
//! Bit `i` of a word represents bucket `i`; a set bit means "bucket
//! non-empty". The *lowest* set bit is therefore the minimum-rank bucket and
//! the *highest* set bit the maximum-rank bucket.

/// Number of buckets one word covers.
pub const WORD_BITS: usize = 64;

/// Index of the lowest set bit (the minimum non-empty bucket), if any.
///
/// ```
/// assert_eq!(eiffel_core::word::lowest_set(0b0110_0000), Some(5));
/// assert_eq!(eiffel_core::word::lowest_set(0), None);
/// ```
#[inline]
pub fn lowest_set(word: u64) -> Option<u32> {
    if word == 0 {
        None
    } else {
        Some(word.trailing_zeros())
    }
}

/// Index of the highest set bit (the maximum non-empty bucket), if any.
///
/// ```
/// assert_eq!(eiffel_core::word::highest_set(0b0110_0000), Some(6));
/// assert_eq!(eiffel_core::word::highest_set(0), None);
/// ```
#[inline]
pub fn highest_set(word: u64) -> Option<u32> {
    if word == 0 {
        None
    } else {
        Some(63 - word.leading_zeros())
    }
}

/// Index of the lowest set bit at or above `from`, if any.
///
/// Used by range scans ("find the first non-empty bucket not before X"),
/// e.g. when a shaper asks for the first packet eligible after a deadline.
#[inline]
pub fn lowest_set_from(word: u64, from: u32) -> Option<u32> {
    if from >= 64 {
        return None;
    }
    lowest_set(word & (u64::MAX << from))
}

/// Index of the highest set bit at or below `from`, if any.
#[inline]
pub fn highest_set_to(word: u64, from: u32) -> Option<u32> {
    let mask = if from >= 63 {
        u64::MAX
    } else {
        (1u64 << (from + 1)) - 1
    };
    highest_set(word & mask)
}

/// Set bit `i`, returning whether the word was previously zero
/// (i.e. whether this transition must propagate to the parent level).
#[inline]
pub fn set_bit(word: &mut u64, i: u32) -> bool {
    debug_assert!(i < 64);
    let was_zero = *word == 0;
    *word |= 1u64 << i;
    was_zero
}

/// Clear bit `i`, returning whether the word is now zero
/// (i.e. whether this transition must propagate to the parent level).
#[inline]
pub fn clear_bit(word: &mut u64, i: u32) -> bool {
    debug_assert!(i < 64);
    *word &= !(1u64 << i);
    *word == 0
}

/// Whether bit `i` is set.
#[inline]
pub fn test_bit(word: u64, i: u32) -> bool {
    debug_assert!(i < 64);
    word & (1u64 << i) != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_set_finds_minimum() {
        assert_eq!(lowest_set(1), Some(0));
        assert_eq!(lowest_set(0x8000_0000_0000_0000), Some(63));
        assert_eq!(lowest_set(0b1010), Some(1));
    }

    #[test]
    fn highest_set_finds_maximum() {
        assert_eq!(highest_set(1), Some(0));
        assert_eq!(highest_set(0x8000_0000_0000_0000), Some(63));
        assert_eq!(highest_set(0b1010), Some(3));
    }

    #[test]
    fn empty_word_has_no_set_bits() {
        assert_eq!(lowest_set(0), None);
        assert_eq!(highest_set(0), None);
        assert_eq!(lowest_set_from(0, 0), None);
        assert_eq!(highest_set_to(0, 63), None);
    }

    #[test]
    fn lowest_set_from_skips_below() {
        let w = 0b0001_0010; // bits 1, 4
        assert_eq!(lowest_set_from(w, 0), Some(1));
        assert_eq!(lowest_set_from(w, 1), Some(1));
        assert_eq!(lowest_set_from(w, 2), Some(4));
        assert_eq!(lowest_set_from(w, 5), None);
        assert_eq!(lowest_set_from(w, 64), None);
    }

    #[test]
    fn highest_set_to_skips_above() {
        let w = 0b0001_0010; // bits 1, 4
        assert_eq!(highest_set_to(w, 63), Some(4));
        assert_eq!(highest_set_to(w, 4), Some(4));
        assert_eq!(highest_set_to(w, 3), Some(1));
        assert_eq!(highest_set_to(w, 0), None);
    }

    #[test]
    fn set_and_clear_report_transitions() {
        let mut w = 0u64;
        assert!(set_bit(&mut w, 7)); // empty -> non-empty propagates
        assert!(!set_bit(&mut w, 9)); // already non-empty
        assert!(test_bit(w, 7));
        assert!(!clear_bit(&mut w, 7)); // still bit 9
        assert!(clear_bit(&mut w, 9)); // now empty, propagates
        assert_eq!(w, 0);
    }

    #[test]
    fn boundary_bit_63() {
        let mut w = 0u64;
        set_bit(&mut w, 63);
        assert!(test_bit(w, 63));
        assert_eq!(lowest_set_from(w, 63), Some(63));
        assert_eq!(highest_set_to(w, 63), Some(63));
        assert!(clear_bit(&mut w, 63));
    }
}
