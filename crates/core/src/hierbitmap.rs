//! Hierarchical occupancy bitmap — the meta-data of Figure 3.
//!
//! The leaves carry one bit per bucket. The first summary level is
//! **multi-word**: each level-1 bit covers a *group* of [`GROUP_WORDS`]
//! leaf words (256 buckets), and levels above summarize 64 child words per
//! bit as before. The wider leaf fanout cuts a level off every mid-sized
//! hierarchy — 10k buckets descend in 2 levels instead of 3, 512k in 3
//! instead of 4 — trading the saved data-dependent load for a short
//! *independent* scan of up to four adjacent leaf words, which the CPU
//! overlaps (they sit in two cache lines and have no chain between them).
//! Deep hierarchies keep the paper's `O(log_w N)` shape (a billion buckets:
//! 5 levels).
//!
//! The structure also supports `first_set_from`, the "first non-empty
//! bucket at or after X" query used by shapers and by the circular queue's
//! window logic; it costs at most two traversals.
//!
//! # Layout
//!
//! All levels live in **one** contiguous word array, leaves first, with the
//! start of each level in a small fixed table. The descent loop therefore
//! costs one data-dependent load per level — the previous `Vec<Vec<u64>>`
//! layout paid two (the level's buffer pointer, then the word), doubling
//! the load chain of the hottest loop in the repo (`CffsQueue::dequeue_min`
//! is a descent, and every queue's enqueue/dequeue maintains one of these).
//! The descent itself uses raw `trailing_zeros`/`leading_zeros` on words an
//! ancestor bit already proved non-zero, so the per-level body is
//! branch-free until the final group scan.

use crate::word;

/// Deepest supported hierarchy: 6 levels cover `4 × 64^6 ≈ 2.7×10^11`
/// buckets.
const MAX_DEPTH: usize = 6;

/// Leaf words summarized by one level-1 bit (256 buckets per bit).
pub const GROUP_WORDS: usize = 4;

/// Hierarchical bitmap over `len` buckets.
///
/// Words are stored leaves-first in one slab; `offs[l]` is the start of
/// level `l`. For `len <= 64` there is exactly one level (the root is the
/// leaf word). Level 1 (when present) holds one bit per [`GROUP_WORDS`]
/// leaf words; higher levels hold one bit per child word.
#[derive(Debug, Clone)]
pub struct HierBitmap {
    words: Vec<u64>,
    /// Start of each level inside `words`; only `..depth` are meaningful.
    offs: [u32; MAX_DEPTH],
    /// Index of the root word (`offs[depth-1]`).
    root: u32,
    depth: u32,
    len: usize,
    ones: usize,
}

impl HierBitmap {
    /// Creates an all-empty hierarchical bitmap covering `len` buckets.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "bitmap must cover at least one bucket");
        let words0 = len.div_ceil(word::WORD_BITS);
        let mut offs = [0u32; MAX_DEPTH];
        let mut total = words0;
        let mut depth = 1usize;
        if words0 > 1 {
            // Level 1 summarizes GROUP_WORDS leaf words per bit; levels
            // above summarize one child word per bit.
            let mut bits = words0.div_ceil(GROUP_WORDS);
            loop {
                let words = bits.div_ceil(word::WORD_BITS);
                assert!(depth < MAX_DEPTH, "bitmap deeper than {MAX_DEPTH} levels");
                offs[depth] = total as u32;
                total += words;
                depth += 1;
                if words == 1 {
                    break;
                }
                bits = words;
            }
        }
        HierBitmap {
            words: vec![0u64; total],
            offs,
            root: offs[depth - 1],
            depth: depth as u32,
            len,
            ones: 0,
        }
    }

    /// Number of buckets covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bucket is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words[self.root as usize] == 0
    }

    /// Number of occupied buckets (maintained incrementally).
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Number of levels in the hierarchy (1 for `len ≤ 64`; the wide leaf
    /// fanout makes this `1 + ceil(log64(ceil(len/256)))` above that).
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Whether bucket `i` is occupied.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        assert!(i < self.len, "bucket {i} out of range {}", self.len);
        word::test_bit(self.words[i / 64], (i % 64) as u32)
    }

    /// Marks bucket `i` occupied, propagating empty→non-empty transitions up.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bucket {i} out of range {}", self.len);
        if self.test(i) {
            return;
        }
        self.ones += 1;
        let wi = i / 64;
        let transition = word::set_bit(&mut self.words[wi], (i % 64) as u32);
        if !transition {
            return; // leaf word already non-empty: ancestors knew
        }
        // The level-1 bit may already be set by a sibling group word.
        let mut idx = wi / GROUP_WORDS;
        for l in 1..self.depth as usize {
            let w = self.offs[l] as usize + idx / 64;
            let transition = word::set_bit(&mut self.words[w], (idx % 64) as u32);
            if !transition {
                break; // parent already knew this subtree was non-empty
            }
            idx /= 64;
        }
    }

    /// Marks bucket `i` empty, propagating non-empty→empty transitions up.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bucket {i} out of range {}", self.len);
        if !self.test(i) {
            return;
        }
        self.ones -= 1;
        let wi = i / 64;
        let now_empty = word::clear_bit(&mut self.words[wi], (i % 64) as u32);
        if !now_empty || self.depth == 1 {
            return;
        }
        // The level-1 bit clears only when the whole group is empty.
        let g = wi / GROUP_WORDS;
        let start = g * GROUP_WORDS;
        let end = (start + GROUP_WORDS).min(self.level_words(0));
        if self.words[start..end].iter().any(|&w| w != 0) {
            return;
        }
        let mut idx = g;
        for l in 1..self.depth as usize {
            let w = self.offs[l] as usize + idx / 64;
            let now_empty = word::clear_bit(&mut self.words[w], (idx % 64) as u32);
            if !now_empty {
                break; // subtree still non-empty; parent bit stays set
            }
            idx /= 64;
        }
    }

    /// Scans leaf group `g` left-to-right for its lowest set bit. Only
    /// called under a set level-1 bit, so some word is non-zero.
    #[inline]
    fn first_in_group(&self, g: usize) -> usize {
        let start = g * GROUP_WORDS;
        let end = (start + GROUP_WORDS).min(self.level_words(0));
        for wi in start..end {
            let w = self.words[wi];
            if w != 0 {
                return wi * 64 + w.trailing_zeros() as usize;
            }
        }
        unreachable!("level-1 bit set over an empty leaf group")
    }

    /// Scans leaf group `g` right-to-left for its highest set bit.
    #[inline]
    fn last_in_group(&self, g: usize) -> usize {
        let start = g * GROUP_WORDS;
        let end = (start + GROUP_WORDS).min(self.level_words(0));
        for wi in (start..end).rev() {
            let w = self.words[wi];
            if w != 0 {
                return wi * 64 + (63 - w.leading_zeros() as usize);
            }
        }
        unreachable!("level-1 bit set over an empty leaf group")
    }

    /// Lowest occupied bucket: one FFS per level, descending from the root,
    /// then a ≤ [`GROUP_WORDS`]-word scan of the minimum leaf group.
    #[inline]
    pub fn first_set(&self) -> Option<usize> {
        let root = self.words[self.root as usize];
        if root == 0 {
            return None;
        }
        if self.depth == 1 {
            return Some(root.trailing_zeros() as usize);
        }
        // The root bit proves every word on the descent path is non-zero,
        // so each level is a plain load + trailing_zeros — no branches.
        let mut idx = root.trailing_zeros() as usize;
        for l in (1..self.depth as usize - 1).rev() {
            let w = self.words[self.offs[l] as usize + idx];
            idx = idx * 64 + w.trailing_zeros() as usize;
        }
        Some(self.first_in_group(idx))
    }

    /// Highest occupied bucket.
    #[inline]
    pub fn last_set(&self) -> Option<usize> {
        let root = self.words[self.root as usize];
        if root == 0 {
            return None;
        }
        if self.depth == 1 {
            return Some(63 - root.leading_zeros() as usize);
        }
        let mut idx = 63 - root.leading_zeros() as usize;
        for l in (1..self.depth as usize - 1).rev() {
            let w = self.words[self.offs[l] as usize + idx];
            idx = idx * 64 + (63 - w.leading_zeros() as usize);
        }
        Some(self.last_in_group(idx))
    }

    /// Lowest occupied bucket at or after `from`.
    ///
    /// Three stages: the rest of `from`'s own leaf word, the rest of its
    /// leaf group, then the classic ascend-and-descend over the summary
    /// levels — at most `2·depth` word operations plus one group scan.
    pub fn first_set_from(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let wi = from / 64;
        if let Some(b) = word::lowest_set_from(self.words[wi], (from % 64) as u32) {
            return Some(wi * 64 + b as usize);
        }
        if self.depth == 1 {
            return None;
        }
        let g = wi / GROUP_WORDS;
        let end = ((g + 1) * GROUP_WORDS).min(self.level_words(0));
        for w2 in wi + 1..end {
            let w = self.words[w2];
            if w != 0 {
                return Some(w2 * 64 + w.trailing_zeros() as usize);
            }
        }
        // Ascend: find the lowest summary level with a set bit after our
        // group, then descend back with plain FFS.
        let mut idx = g + 1;
        for (li, &off) in self.offs[1..self.depth as usize].iter().enumerate() {
            let li = li + 1;
            let lw = idx / 64;
            if lw < self.level_words(li) {
                if let Some(b) =
                    word::lowest_set_from(self.words[off as usize + lw], (idx % 64) as u32)
                {
                    let mut node = lw * 64 + b as usize;
                    for l in (1..li).rev() {
                        let child = self.words[self.offs[l] as usize + node];
                        node = node * 64 + child.trailing_zeros() as usize;
                    }
                    return Some(self.first_in_group(node));
                }
            }
            idx = lw + 1;
        }
        None
    }

    /// Highest occupied bucket at or before `to`.
    pub fn last_set_to(&self, to: usize) -> Option<usize> {
        let to = to.min(self.len - 1);
        let wi = to / 64;
        if let Some(b) = word::highest_set_to(self.words[wi], (to % 64) as u32) {
            return Some(wi * 64 + b as usize);
        }
        if self.depth == 1 {
            return None;
        }
        let g = wi / GROUP_WORDS;
        for w2 in (g * GROUP_WORDS..wi).rev() {
            let w = self.words[w2];
            if w != 0 {
                return Some(w2 * 64 + (63 - w.leading_zeros() as usize));
            }
        }
        if g == 0 {
            return None; // leftmost group: nothing before it anywhere
        }
        let mut idx = g - 1;
        for (li, &off) in self.offs[1..self.depth as usize].iter().enumerate() {
            let li = li + 1;
            let lw = idx / 64; // in bounds: idx only decreases level to level
            if let Some(b) = word::highest_set_to(self.words[off as usize + lw], (idx % 64) as u32)
            {
                let mut node = lw * 64 + b as usize;
                for l in (1..li).rev() {
                    let child = self.words[self.offs[l] as usize + node];
                    node = node * 64 + (63 - child.leading_zeros() as usize);
                }
                return Some(self.last_in_group(node));
            }
            if lw == 0 {
                break; // no word to the left at this level either
            }
            idx = lw - 1;
        }
        None
    }

    /// Calls `f` for every occupied bucket, in ascending order.
    ///
    /// Cost is `O(leaf words + set bits)` — one pass over the leaf level
    /// with a destructive bit loop per non-zero word. Used by consumers
    /// that rebuild summaries from the exact occupancy (e.g. the
    /// approximate queue's accumulator renormalization).
    pub fn for_each_set<F: FnMut(usize)>(&self, mut f: F) {
        let leaf_words = self.level_words(0);
        for (wi, &word) in self.words[..leaf_words].iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                f(wi * 64 + b);
                w &= w - 1;
            }
        }
    }

    /// Number of words in level `l`.
    #[inline]
    fn level_words(&self, l: usize) -> usize {
        let end = if l + 1 < self.depth as usize {
            self.offs[l + 1] as usize
        } else {
            self.words.len()
        };
        end - self.offs[l] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_reflects_wide_leaf_fanout() {
        assert_eq!(HierBitmap::new(64).depth(), 1);
        // 65..=16384 buckets: ≤ 256 leaf-word groups fit one level-1 word.
        assert_eq!(HierBitmap::new(65).depth(), 2);
        assert_eq!(HierBitmap::new(64 * 64).depth(), 2);
        assert_eq!(HierBitmap::new(64 * 64 + 1).depth(), 2);
        assert_eq!(HierBitmap::new(10_000).depth(), 2);
        assert_eq!(HierBitmap::new(64 * 64 * 4).depth(), 2);
        assert_eq!(HierBitmap::new(64 * 64 * 4 + 1).depth(), 3);
        // 512k buckets: 8192 leaf words, 2048 group bits, 32 level-1 words.
        assert_eq!(HierBitmap::new(512 * 1024).depth(), 3);
        // A billion buckets descend in five levels (the paper's §5.2 quotes
        // "six bit operations" for its 64-ary tree; the wide leaf saves one).
        assert_eq!(HierBitmap::new(1_000_000_000).depth(), 5);
    }

    #[test]
    fn set_clear_first_last() {
        let mut bm = HierBitmap::new(10_000);
        assert_eq!(bm.first_set(), None);
        bm.set(9_999);
        bm.set(5_000);
        bm.set(77);
        assert_eq!(bm.first_set(), Some(77));
        assert_eq!(bm.last_set(), Some(9_999));
        bm.clear(77);
        assert_eq!(bm.first_set(), Some(5_000));
        bm.clear(5_000);
        bm.clear(9_999);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn first_set_from_all_positions() {
        let mut bm = HierBitmap::new(500);
        for &i in &[3usize, 64, 65, 200, 499] {
            bm.set(i);
        }
        assert_eq!(bm.first_set_from(0), Some(3));
        assert_eq!(bm.first_set_from(3), Some(3));
        assert_eq!(bm.first_set_from(4), Some(64));
        assert_eq!(bm.first_set_from(65), Some(65));
        assert_eq!(bm.first_set_from(66), Some(200));
        assert_eq!(bm.first_set_from(201), Some(499));
        assert_eq!(bm.first_set_from(499), Some(499));
        assert_eq!(bm.first_set_from(500), None);
    }

    #[test]
    fn last_set_to_all_positions() {
        let mut bm = HierBitmap::new(500);
        for &i in &[3usize, 64, 65, 200, 499] {
            bm.set(i);
        }
        assert_eq!(bm.last_set_to(499), Some(499));
        assert_eq!(bm.last_set_to(498), Some(200));
        assert_eq!(bm.last_set_to(200), Some(200));
        assert_eq!(bm.last_set_to(199), Some(65));
        assert_eq!(bm.last_set_to(64), Some(64));
        assert_eq!(bm.last_set_to(63), Some(3));
        assert_eq!(bm.last_set_to(2), None);
    }

    /// Range scans that cross group boundaries (each level-1 bit covers
    /// 256 buckets) on a map deep enough to exercise the summary ascent.
    #[test]
    fn range_scans_cross_group_boundaries() {
        let n = 64 * 64 * 4 * 3; // depth 3
        let mut bm = HierBitmap::new(n);
        assert_eq!(bm.depth(), 3);
        for &i in &[255usize, 256, 1_024, 40_000, n - 1] {
            bm.set(i);
        }
        assert_eq!(bm.first_set_from(0), Some(255));
        assert_eq!(bm.first_set_from(256), Some(256)); // next group
        assert_eq!(bm.first_set_from(257), Some(1_024));
        assert_eq!(bm.first_set_from(1_025), Some(40_000));
        assert_eq!(bm.first_set_from(40_001), Some(n - 1));
        assert_eq!(bm.last_set_to(n - 2), Some(40_000));
        assert_eq!(bm.last_set_to(39_999), Some(1_024));
        assert_eq!(bm.last_set_to(1_023), Some(256));
        assert_eq!(bm.last_set_to(255), Some(255));
        assert_eq!(bm.last_set_to(254), None);
        bm.clear(256);
        assert_eq!(bm.first_set_from(256), Some(1_024));
        assert_eq!(bm.last_set_to(1_023), Some(255));
    }

    #[test]
    fn for_each_set_visits_ascending() {
        let mut bm = HierBitmap::new(300);
        for &i in &[0usize, 63, 64, 65, 190, 299] {
            bm.set(i);
        }
        let mut seen = Vec::new();
        bm.for_each_set(|i| seen.push(i));
        assert_eq!(seen, vec![0, 63, 64, 65, 190, 299]);
    }

    #[test]
    fn idempotent_transitions_keep_count() {
        let mut bm = HierBitmap::new(128);
        bm.set(100);
        bm.set(100);
        assert_eq!(bm.count_ones(), 1);
        bm.clear(100);
        bm.clear(100);
        assert_eq!(bm.count_ones(), 0);
        assert!(bm.is_empty());
    }

    /// Cross-check the hierarchical bitmap against the flat one over a
    /// deterministic pseudo-random workload.
    fn check_against_flat(n: usize, steps: u32) {
        use crate::bitmap::FlatBitmap;
        let mut hier = HierBitmap::new(n);
        let mut flat = FlatBitmap::new(n);
        let mut x: u64 = 0x9e3779b97f4a7c15 ^ n as u64;
        for step in 0..steps {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = (x % n as u64) as usize;
            if step % 3 == 0 {
                hier.clear(i);
                flat.clear(i);
            } else {
                hier.set(i);
                flat.set(i);
            }
            if step % 97 == 0 {
                assert_eq!(hier.first_set(), flat.first_set());
                assert_eq!(hier.last_set(), flat.last_set());
                let probe = (x >> 32) as usize % (n + 10);
                assert_eq!(
                    hier.first_set_from(probe),
                    flat.first_set_from(probe),
                    "n {n} from {probe}"
                );
                assert_eq!(
                    hier.last_set_to(probe.min(n - 1)),
                    flat.last_set_to(probe.min(n - 1)),
                    "n {n} to {probe}"
                );
            }
        }
        assert_eq!(hier.count_ones(), flat.count_ones());
    }

    #[test]
    fn agrees_with_flat_bitmap() {
        check_against_flat(70 * 64 + 13, 20_000); // 2 levels, ragged edge
        check_against_flat(5 * 64 + 1, 6_000); // partial final group
        check_against_flat(64 * 64 * 4 * 70 + 13, 20_000); // 3 levels, deep
    }
}
