//! Hierarchical occupancy bitmap — the meta-data of Figure 3.
//!
//! Each node word summarizes the occupancy of 64 child words; the leaves
//! carry one bit per bucket. Finding the minimum (or maximum) occupied
//! bucket descends from the root using one FFS per level, giving the
//! paper's `O(log_w N)` bound with `w = 64` — e.g. a million buckets in
//! four word operations, a billion in six (§5.2).
//!
//! The structure also supports `first_set_from`, the "first non-empty
//! bucket at or after X" query used by shapers and by the circular queue's
//! window logic; it costs at most two traversals.
//!
//! # Layout
//!
//! All levels live in **one** contiguous word array, leaves first, with the
//! start of each level in a small fixed table. The descent loop therefore
//! costs one data-dependent load per level — the previous `Vec<Vec<u64>>`
//! layout paid two (the level's buffer pointer, then the word), doubling
//! the load chain of the hottest loop in the repo (`CffsQueue::dequeue_min`
//! is a descent, and every queue's enqueue/dequeue maintains one of these).
//! The descent itself uses raw `trailing_zeros`/`leading_zeros` on words an
//! ancestor bit already proved non-zero, so the per-level body is
//! branch-free.

use crate::word;

/// Deepest supported hierarchy: 6 levels cover `64^6 = 6.9×10^10` buckets.
const MAX_DEPTH: usize = 6;

/// Hierarchical bitmap over `len` buckets.
///
/// Words are stored leaves-first in one slab; `offs[l]` is the start of
/// level `l`. For `len <= 64` there is exactly one level (the root is the
/// leaf word).
#[derive(Debug, Clone)]
pub struct HierBitmap {
    words: Vec<u64>,
    /// Start of each level inside `words`; only `..depth` are meaningful.
    offs: [u32; MAX_DEPTH],
    /// Index of the root word (`offs[depth-1]`).
    root: u32,
    depth: u32,
    len: usize,
    ones: usize,
}

impl HierBitmap {
    /// Creates an all-empty hierarchical bitmap covering `len` buckets.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "bitmap must cover at least one bucket");
        let mut offs = [0u32; MAX_DEPTH];
        let mut total = 0usize;
        let mut depth = 0usize;
        let mut n = len;
        loop {
            let words = n.div_ceil(word::WORD_BITS);
            assert!(depth < MAX_DEPTH, "bitmap deeper than {MAX_DEPTH} levels");
            offs[depth] = total as u32;
            total += words;
            depth += 1;
            if words == 1 {
                break;
            }
            n = words;
        }
        HierBitmap {
            words: vec![0u64; total],
            offs,
            root: offs[depth - 1],
            depth: depth as u32,
            len,
            ones: 0,
        }
    }

    /// Number of buckets covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bucket is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words[self.root as usize] == 0
    }

    /// Number of occupied buckets (maintained incrementally).
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Number of levels in the hierarchy (`ceil(log64 len)`, at least 1).
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Whether bucket `i` is occupied.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        assert!(i < self.len, "bucket {i} out of range {}", self.len);
        word::test_bit(self.words[i / 64], (i % 64) as u32)
    }

    /// Marks bucket `i` occupied, propagating empty→non-empty transitions up.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bucket {i} out of range {}", self.len);
        if self.test(i) {
            return;
        }
        self.ones += 1;
        let mut idx = i;
        for l in 0..self.depth as usize {
            let w = self.offs[l] as usize + idx / 64;
            let transition = word::set_bit(&mut self.words[w], (idx % 64) as u32);
            if !transition {
                break; // parent already knew this subtree was non-empty
            }
            idx /= 64;
        }
    }

    /// Marks bucket `i` empty, propagating non-empty→empty transitions up.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bucket {i} out of range {}", self.len);
        if !self.test(i) {
            return;
        }
        self.ones -= 1;
        let mut idx = i;
        for l in 0..self.depth as usize {
            let w = self.offs[l] as usize + idx / 64;
            let now_empty = word::clear_bit(&mut self.words[w], (idx % 64) as u32);
            if !now_empty {
                break; // subtree still non-empty; parent bit stays set
            }
            idx /= 64;
        }
    }

    /// Lowest occupied bucket: one FFS per level, descending from the root.
    #[inline]
    pub fn first_set(&self) -> Option<usize> {
        let root = self.words[self.root as usize];
        if root == 0 {
            return None;
        }
        // The root bit proves every word on the descent path is non-zero,
        // so each level is a plain load + trailing_zeros — no branches.
        let mut idx = root.trailing_zeros() as usize;
        for l in (0..self.depth as usize - 1).rev() {
            let w = self.words[self.offs[l] as usize + idx];
            idx = idx * 64 + w.trailing_zeros() as usize;
        }
        Some(idx)
    }

    /// Highest occupied bucket.
    #[inline]
    pub fn last_set(&self) -> Option<usize> {
        let root = self.words[self.root as usize];
        if root == 0 {
            return None;
        }
        let mut idx = 63 - root.leading_zeros() as usize;
        for l in (0..self.depth as usize - 1).rev() {
            let w = self.words[self.offs[l] as usize + idx];
            idx = idx * 64 + (63 - w.leading_zeros() as usize);
        }
        Some(idx)
    }

    /// Lowest occupied bucket at or after `from`.
    ///
    /// Walks up from the leaf word containing `from` until an ancestor word
    /// has a set bit to the right, then descends with plain FFS — at most
    /// `2·depth` word operations.
    pub fn first_set_from(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        // Ascend: find the lowest level where some subtree at-or-after `from`
        // (excluding the subtrees already ruled out below) is non-empty, then
        // descend back to the leaf with plain FFS.
        let mut idx = from;
        for (li, &off) in self.offs[..self.depth as usize].iter().enumerate() {
            let w = idx / 64;
            let level_words = self.level_words(li);
            if w < level_words {
                if let Some(b) =
                    word::lowest_set_from(self.words[off as usize + w], (idx % 64) as u32)
                {
                    let mut node = w * 64 + b as usize;
                    for l in (0..li).rev() {
                        let child = self.words[self.offs[l] as usize + node];
                        node = node * 64 + child.trailing_zeros() as usize;
                    }
                    return Some(node);
                }
            }
            // Nothing at-or-after within this word: the next candidate at the
            // parent level is the node right after our parent.
            idx = w + 1;
        }
        None
    }

    /// Highest occupied bucket at or before `to`.
    pub fn last_set_to(&self, to: usize) -> Option<usize> {
        let to = to.min(self.len - 1);
        let mut idx = to;
        for (li, &off) in self.offs[..self.depth as usize].iter().enumerate() {
            let w = idx / 64; // in bounds: idx only decreases level to level
            if let Some(b) = word::highest_set_to(self.words[off as usize + w], (idx % 64) as u32) {
                let mut node = w * 64 + b as usize;
                for l in (0..li).rev() {
                    let child = self.words[self.offs[l] as usize + node];
                    node = node * 64 + (63 - child.leading_zeros() as usize);
                }
                return Some(node);
            }
            if w == 0 {
                break; // no word to the left at this level either
            }
            idx = w - 1;
        }
        None
    }

    /// Calls `f` for every occupied bucket, in ascending order.
    ///
    /// Cost is `O(leaf words + set bits)` — one pass over the leaf level
    /// with a destructive bit loop per non-zero word. Used by consumers
    /// that rebuild summaries from the exact occupancy (e.g. the
    /// approximate queue's accumulator renormalization).
    pub fn for_each_set<F: FnMut(usize)>(&self, mut f: F) {
        let leaf_words = self.level_words(0);
        for (wi, &word) in self.words[..leaf_words].iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                f(wi * 64 + b);
                w &= w - 1;
            }
        }
    }

    /// Number of words in level `l`.
    #[inline]
    fn level_words(&self, l: usize) -> usize {
        let end = if l + 1 < self.depth as usize {
            self.offs[l + 1] as usize
        } else {
            self.words.len()
        };
        end - self.offs[l] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_for_small_maps() {
        let bm = HierBitmap::new(64);
        assert_eq!(bm.depth(), 1);
        let bm = HierBitmap::new(65);
        assert_eq!(bm.depth(), 2);
        let bm = HierBitmap::new(64 * 64);
        assert_eq!(bm.depth(), 2);
        let bm = HierBitmap::new(64 * 64 + 1);
        assert_eq!(bm.depth(), 3);
        // A billion buckets: 64^5 ≈ 1.07e9, so five levels of words suffice —
        // the paper's §5.2 quotes "six bit operations" for a billion buckets,
        // a one-off count of the same descent.
        let bm = HierBitmap::new(1_000_000_000);
        assert_eq!(bm.depth(), 5);
    }

    #[test]
    fn set_clear_first_last() {
        let mut bm = HierBitmap::new(10_000);
        assert_eq!(bm.first_set(), None);
        bm.set(9_999);
        bm.set(5_000);
        bm.set(77);
        assert_eq!(bm.first_set(), Some(77));
        assert_eq!(bm.last_set(), Some(9_999));
        bm.clear(77);
        assert_eq!(bm.first_set(), Some(5_000));
        bm.clear(5_000);
        bm.clear(9_999);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn first_set_from_all_positions() {
        let mut bm = HierBitmap::new(500);
        for &i in &[3usize, 64, 65, 200, 499] {
            bm.set(i);
        }
        assert_eq!(bm.first_set_from(0), Some(3));
        assert_eq!(bm.first_set_from(3), Some(3));
        assert_eq!(bm.first_set_from(4), Some(64));
        assert_eq!(bm.first_set_from(65), Some(65));
        assert_eq!(bm.first_set_from(66), Some(200));
        assert_eq!(bm.first_set_from(201), Some(499));
        assert_eq!(bm.first_set_from(499), Some(499));
        assert_eq!(bm.first_set_from(500), None);
    }

    #[test]
    fn last_set_to_all_positions() {
        let mut bm = HierBitmap::new(500);
        for &i in &[3usize, 64, 65, 200, 499] {
            bm.set(i);
        }
        assert_eq!(bm.last_set_to(499), Some(499));
        assert_eq!(bm.last_set_to(498), Some(200));
        assert_eq!(bm.last_set_to(200), Some(200));
        assert_eq!(bm.last_set_to(199), Some(65));
        assert_eq!(bm.last_set_to(64), Some(64));
        assert_eq!(bm.last_set_to(63), Some(3));
        assert_eq!(bm.last_set_to(2), None);
    }

    #[test]
    fn for_each_set_visits_ascending() {
        let mut bm = HierBitmap::new(300);
        for &i in &[0usize, 63, 64, 65, 190, 299] {
            bm.set(i);
        }
        let mut seen = Vec::new();
        bm.for_each_set(|i| seen.push(i));
        assert_eq!(seen, vec![0, 63, 64, 65, 190, 299]);
    }

    #[test]
    fn idempotent_transitions_keep_count() {
        let mut bm = HierBitmap::new(128);
        bm.set(100);
        bm.set(100);
        assert_eq!(bm.count_ones(), 1);
        bm.clear(100);
        bm.clear(100);
        assert_eq!(bm.count_ones(), 0);
        assert!(bm.is_empty());
    }

    /// Cross-check the hierarchical bitmap against the flat one over a
    /// deterministic pseudo-random workload.
    #[test]
    fn agrees_with_flat_bitmap() {
        use crate::bitmap::FlatBitmap;
        let n = 70 * 64 + 13; // three levels, ragged edge
        let mut hier = HierBitmap::new(n);
        let mut flat = FlatBitmap::new(n);
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for step in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = (x % n as u64) as usize;
            if step % 3 == 0 {
                hier.clear(i);
                flat.clear(i);
            } else {
                hier.set(i);
                flat.set(i);
            }
            if step % 97 == 0 {
                assert_eq!(hier.first_set(), flat.first_set());
                assert_eq!(hier.last_set(), flat.last_set());
                let probe = (x >> 32) as usize % (n + 10);
                assert_eq!(
                    hier.first_set_from(probe),
                    flat.first_set_from(probe),
                    "from {probe}"
                );
                assert_eq!(
                    hier.last_set_to(probe.min(n - 1)),
                    flat.last_set_to(probe.min(n - 1))
                );
            }
        }
        assert_eq!(hier.count_ones(), flat.count_ones());
    }
}
