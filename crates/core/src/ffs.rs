//! Single-word FFS queue — Figure 2 of the paper.
//!
//! "A priority queue with a number of buckets equal to or smaller than the
//! width of the word supported by the FFS operation can obtain the smallest
//! set bit, and hence the element with the smallest priority, in O(1)."
//!
//! Exactly 64 buckets, one `u64` of occupancy meta-data, and a single
//! `trailing_zeros` per min-find. This is the right structure for policies
//! with few distinct priority levels — e.g. the 8 levels of IEEE 802.1Q
//! strict priority, or the ~100 levels of the Linux real-time scheduler.

use crate::buckets::Buckets;
use crate::traits::{EnqueueError, EnqueueErrorKind, RankedQueue};
use crate::word;

/// A fixed-range bucketed queue over at most 64 buckets with one-word FFS
/// meta-data.
#[derive(Debug, Clone)]
pub struct FfsQueue<T> {
    bitmap: u64,
    buckets: Buckets<T>,
    granularity: u64,
    base: u64,
}

impl<T> FfsQueue<T> {
    /// Creates a queue covering ranks `[0, 64 × granularity)`.
    pub fn new(granularity: u64) -> Self {
        Self::with_base(granularity, 0)
    }

    /// Creates a queue covering ranks `[base, base + 64 × granularity)`.
    pub fn with_base(granularity: u64, base: u64) -> Self {
        assert!(granularity > 0, "granularity must be positive");
        FfsQueue {
            bitmap: 0,
            buckets: Buckets::new(64),
            granularity,
            base,
        }
    }

    /// The number of buckets (always 64: one machine word).
    pub fn num_buckets(&self) -> usize {
        64
    }

    fn bucket_of(&self, rank: u64) -> Option<usize> {
        let off = rank.checked_sub(self.base)? / self.granularity;
        if off < 64 {
            Some(off as usize)
        } else {
            None
        }
    }

    /// Removes and returns the element of the *maximum* non-empty bucket —
    /// both directions are one word-op on a single word.
    pub fn dequeue_max(&mut self) -> Option<(u64, T)> {
        let b = word::highest_set(self.bitmap)? as usize;
        let out = self.buckets.pop(b);
        if self.buckets.bucket_is_empty(b) {
            word::clear_bit(&mut self.bitmap, b as u32);
        }
        out
    }

    /// Rank lower edge of the maximum non-empty bucket.
    pub fn peek_max_rank(&self) -> Option<u64> {
        word::highest_set(self.bitmap).map(|b| self.base + b as u64 * self.granularity)
    }
}

impl<T> RankedQueue<T> for FfsQueue<T> {
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>> {
        match self.bucket_of(rank) {
            Some(b) => {
                self.buckets.push(b, rank, item);
                word::set_bit(&mut self.bitmap, b as u32);
                Ok(())
            }
            None => Err(EnqueueError {
                kind: EnqueueErrorKind::OutOfRange,
                rank,
                item,
            }),
        }
    }

    fn dequeue_min(&mut self) -> Option<(u64, T)> {
        let b = word::lowest_set(self.bitmap)? as usize;
        let out = self.buckets.pop(b);
        if self.buckets.bucket_is_empty(b) {
            word::clear_bit(&mut self.bitmap, b as u32);
        }
        out
    }

    fn dequeue_max(&mut self) -> Option<(u64, T)> {
        FfsQueue::dequeue_max(self)
    }

    fn peek_min_rank(&self) -> Option<u64> {
        word::lowest_set(self.bitmap).map(|b| self.base + b as u64 * self.granularity)
    }

    fn len(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_order_with_fifo_ties() {
        let mut q = FfsQueue::new(1);
        q.enqueue(5, "a").unwrap();
        q.enqueue(3, "b").unwrap();
        q.enqueue(5, "c").unwrap();
        q.enqueue(0, "d").unwrap();
        assert_eq!(q.peek_min_rank(), Some(0));
        assert_eq!(q.dequeue_min(), Some((0, "d")));
        assert_eq!(q.dequeue_min(), Some((3, "b")));
        assert_eq!(q.dequeue_min(), Some((5, "a")));
        assert_eq!(q.dequeue_min(), Some((5, "c")));
        assert_eq!(q.dequeue_min(), None);
    }

    #[test]
    fn max_extraction() {
        let mut q = FfsQueue::new(1);
        for r in [7u64, 2, 63, 9] {
            q.enqueue(r, r).unwrap();
        }
        assert_eq!(q.peek_max_rank(), Some(63));
        assert_eq!(q.dequeue_max(), Some((63, 63)));
        assert_eq!(q.dequeue_max(), Some((9, 9)));
        assert_eq!(q.peek_min_rank(), Some(2));
    }

    #[test]
    fn granularity_groups_ranks() {
        // 100 µs granularity: "a queue with a granularity of 100 microseconds
        // cannot insert gaps between packets that are smaller" (§5.2).
        let mut q = FfsQueue::new(100);
        q.enqueue(10, "first").unwrap();
        q.enqueue(99, "second").unwrap(); // same bucket, FIFO
        q.enqueue(100, "third").unwrap(); // next bucket
        assert_eq!(q.dequeue_min(), Some((10, "first")));
        assert_eq!(q.dequeue_min(), Some((99, "second")));
        assert_eq!(q.dequeue_min(), Some((100, "third")));
    }

    #[test]
    fn out_of_range_is_refused_with_item_back() {
        let mut q = FfsQueue::with_base(1, 100);
        let err = q.enqueue(64 + 100, "late").unwrap_err();
        assert_eq!(err.kind, EnqueueErrorKind::OutOfRange);
        assert_eq!(err.item, "late");
        let err = q.enqueue(99, "early").unwrap_err();
        assert_eq!(err.kind, EnqueueErrorKind::OutOfRange);
        assert!(q.is_empty());
        q.enqueue(100, "ok").unwrap();
        q.enqueue(163, "ok2").unwrap();
        assert_eq!(q.len(), 2);
    }
}
