//! Hierarchical FFS-based queue — Figure 3 of the paper (PIQ-style).
//!
//! A fixed-range bucketed queue whose occupancy is a [`HierBitmap`]: finding
//! the minimum element costs one FFS per level, `O(log₆₄ N)` — constant for a
//! configured policy, because "once an implementation is created N does not
//! change" (§3.1.1).
//!
//! This fixed-range structure is the right choice when priority values do
//! *not* move — e.g. pFabric's remaining-flow-size ranks (Figure 20: "if the
//! priority levels are over a fixed range then an FFS-based priority queue is
//! sufficient"). For moving ranges, see [`crate::CffsQueue`], which is built
//! out of two of these.

use crate::buckets::Buckets;
use crate::cffs::BucketCore;
use crate::hierbitmap::HierBitmap;
use crate::recip::Reciprocal;
use crate::traits::{EnqueueError, EnqueueErrorKind, RankedQueue};

/// Fixed-range hierarchical FFS queue over `n` buckets.
#[derive(Debug, Clone)]
pub struct HierFfsQueue<T> {
    bitmap: HierBitmap,
    buckets: Buckets<T>,
    granularity: Reciprocal,
    base: u64,
}

impl<T> HierFfsQueue<T> {
    /// Creates a queue covering ranks `[0, n × granularity)`.
    pub fn new(n: usize, granularity: u64) -> Self {
        Self::with_base(n, granularity, 0)
    }

    /// Creates a queue covering ranks `[base, base + n × granularity)`.
    pub fn with_base(n: usize, granularity: u64, base: u64) -> Self {
        assert!(granularity > 0, "granularity must be positive");
        HierFfsQueue {
            bitmap: HierBitmap::new(n),
            buckets: Buckets::new(n),
            granularity: Reciprocal::new(granularity),
            base,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.num_buckets()
    }

    /// Lowest representable rank.
    pub fn base(&self) -> u64 {
        self.base
    }

    fn bucket_of(&self, rank: u64) -> Option<usize> {
        let off = self.granularity.div(rank.checked_sub(self.base)?);
        if (off as usize) < self.num_buckets() {
            Some(off as usize)
        } else {
            None
        }
    }

    /// Removes and returns the element of the maximum non-empty bucket
    /// (`ExtractMax` — Timing Wheels cannot do this, §2).
    pub fn dequeue_max(&mut self) -> Option<(u64, T)> {
        let b = self.bitmap.last_set()?;
        let out = self.buckets.pop(b);
        if self.buckets.bucket_is_empty(b) {
            self.bitmap.clear(b);
        }
        out
    }

    /// Rank lower edge of the maximum non-empty bucket.
    pub fn peek_max_rank(&self) -> Option<u64> {
        self.bitmap
            .last_set()
            .map(|b| self.base + b as u64 * self.granularity.divisor())
    }

    /// Pops the oldest element of bucket `bucket` directly, maintaining the
    /// occupancy bitmap. The fast half of a fused find-then-pop: callers
    /// that already located the minimum bucket (and perhaps rejected it
    /// against an eligibility bound) pop it without a second FFS descent —
    /// see [`crate::CffsQueue::dequeue_min_le`].
    pub fn pop_bucket(&mut self, bucket: usize) -> Option<(u64, T)> {
        let out = self.buckets.pop(bucket);
        if out.is_some() && self.buckets.bucket_is_empty(bucket) {
            self.bitmap.clear(bucket);
        }
        out
    }

    /// Rank lower edge of the first non-empty bucket whose rank is ≥ `rank`.
    pub fn peek_min_rank_from(&self, rank: u64) -> Option<u64> {
        let from = match rank.checked_sub(self.base) {
            Some(off) => self.granularity.div(off) as usize,
            None => 0,
        };
        self.bitmap
            .first_set_from(from)
            .map(|b| self.base + b as u64 * self.granularity.divisor())
    }
}

impl<T> RankedQueue<T> for HierFfsQueue<T> {
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>> {
        match self.bucket_of(rank) {
            Some(b) => {
                self.buckets.push(b, rank, item);
                self.bitmap.set(b);
                Ok(())
            }
            None => Err(EnqueueError {
                kind: EnqueueErrorKind::OutOfRange,
                rank,
                item,
            }),
        }
    }

    fn dequeue_min(&mut self) -> Option<(u64, T)> {
        let b = self.bitmap.first_set()?;
        let out = self.buckets.pop(b);
        if self.buckets.bucket_is_empty(b) {
            self.bitmap.clear(b);
        }
        out
    }

    fn dequeue_max(&mut self) -> Option<(u64, T)> {
        HierFfsQueue::dequeue_max(self)
    }

    /// Batched fast path: one root descent locates the minimum bucket, the
    /// bucket FIFO is drained directly, and the *next* bucket is found with
    /// `first_set_from` (at most `2·depth` word ops, usually one leaf word)
    /// instead of a fresh root descent per element.
    fn dequeue_batch(&mut self, max: usize, out: &mut Vec<(u64, T)>) -> usize {
        BucketCore::pop_min_batch(self, max, out)
    }

    fn peek_min_rank(&self) -> Option<u64> {
        self.bitmap
            .first_set()
            .map(|b| self.base + b as u64 * self.granularity.divisor())
    }

    fn len(&self) -> usize {
        self.buckets.len()
    }
}

/// [`BucketCore`] lets two `HierFfsQueue`-equivalents form the circular cFFS.
impl<T> BucketCore<T> for HierFfsQueue<T> {
    fn push_bucket(&mut self, bucket: usize, rank: u64, item: T) {
        self.buckets.push(bucket, rank, item);
        self.bitmap.set(bucket);
    }

    fn pop_min_bucket(&mut self) -> Option<(usize, u64, T)> {
        let b = self.bitmap.first_set()?;
        let (rank, item) = self.buckets.pop(b).expect("bitmap said non-empty");
        if self.buckets.bucket_is_empty(b) {
            self.bitmap.clear(b);
        }
        Some((b, rank, item))
    }

    fn pop_max_bucket(&mut self) -> Option<(usize, u64, T)> {
        let b = self.bitmap.last_set()?;
        let (rank, item) = self.buckets.pop(b).expect("bitmap said non-empty");
        if self.buckets.bucket_is_empty(b) {
            self.bitmap.clear(b);
        }
        Some((b, rank, item))
    }

    fn pop_min_batch(&mut self, max: usize, out: &mut Vec<(u64, T)>) -> usize {
        let mut n = 0;
        let Some(mut b) = self.bitmap.first_set() else {
            return 0;
        };
        'batch: while n < max {
            loop {
                let pair = self.buckets.pop(b).expect("bitmap said non-empty");
                out.push(pair);
                n += 1;
                if self.buckets.bucket_is_empty(b) {
                    self.bitmap.clear(b);
                    break;
                }
                if n >= max {
                    break 'batch;
                }
            }
            if n >= max {
                break;
            }
            // The emptied bucket was the minimum, so the next minimum is
            // strictly above it — no full root descent needed.
            match self.bitmap.first_set_from(b + 1) {
                Some(next) => b = next,
                None => break,
            }
        }
        n
    }

    fn min_bucket(&self) -> Option<usize> {
        self.bitmap.first_set()
    }

    fn core_len(&self) -> usize {
        self.buckets.len()
    }

    fn core_num_buckets(&self) -> usize {
        self.num_buckets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_range_min_and_max() {
        // 20k buckets as in the paper's kernel shaper configuration (§5.1.1).
        let mut q = HierFfsQueue::new(20_000, 100_000); // 100 µs granularity, 2 s horizon
        q.enqueue(1_999_999_999, "last").unwrap();
        q.enqueue(0, "first").unwrap();
        q.enqueue(1_000_000_000, "mid").unwrap();
        assert_eq!(q.peek_min_rank(), Some(0));
        assert_eq!(q.peek_max_rank(), Some(1_999_900_000));
        assert_eq!(q.dequeue_min().unwrap().1, "first");
        assert_eq!(q.dequeue_max().unwrap().1, "last");
        assert_eq!(q.dequeue_min().unwrap().1, "mid");
        assert!(q.is_empty());
    }

    #[test]
    fn rejects_out_of_range() {
        let mut q: HierFfsQueue<()> = HierFfsQueue::new(100, 10);
        assert!(q.enqueue(999, ()).is_ok());
        let err = q.enqueue(1_000, ()).unwrap_err();
        assert_eq!(err.kind, EnqueueErrorKind::OutOfRange);
    }

    #[test]
    fn peek_min_from_skips_earlier_buckets() {
        let mut q = HierFfsQueue::new(1_000, 10);
        q.enqueue(50, ()).unwrap();
        q.enqueue(777, ()).unwrap();
        assert_eq!(q.peek_min_rank_from(0), Some(50));
        // 51 falls inside bucket [50,60): that bucket may still hold ranks
        // ≥ 51, so the bucket-granular answer is its lower edge.
        assert_eq!(q.peek_min_rank_from(51), Some(50));
        assert_eq!(q.peek_min_rank_from(60), Some(770));
        assert_eq!(q.peek_min_rank_from(780), None);
    }

    #[test]
    fn drains_in_nondecreasing_bucket_order() {
        let mut q = HierFfsQueue::new(512, 1);
        let ranks = [400u64, 3, 3, 511, 0, 128, 64, 65, 127];
        for &r in &ranks {
            q.enqueue(r, r).unwrap();
        }
        let mut prev = 0;
        let mut n = 0;
        while let Some((r, _)) = q.dequeue_min() {
            assert!(r >= prev);
            prev = r;
            n += 1;
        }
        assert_eq!(n, ranks.len());
    }
}
