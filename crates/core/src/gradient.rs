//! Exact Gradient Queue — §3.1.2 and Appendix A of the paper.
//!
//! The Gradient Queue computes Find-First-Set *algebraically*: each
//! non-empty bucket `i` contributes a weight function `2^i·(x−i)²` to the
//! queue's "curvature" `a·x² − b·x + c` with `a = Σ 2^i` and `b = Σ i·2^i`
//! (factor 2 absorbed). The critical point `b/a` is dominated by the largest
//! occupied index, and **Theorem 1** states the maximum non-empty bucket is
//! exactly `ceil(b/a)`. Maintenance is two add/subs per bucket transition;
//! lookup is one division.
//!
//! Exact gradient arithmetic needs `i·2^i` to be representable, capping a
//! single [`GradientWord`] at 64 buckets (mirroring FFS word width, well
//! within `u128`). [`HierGradientQueue`] stacks words into a fanout-64 tree —
//! "an equivalent of FFS-based queue with more expensive operations (division
//! vs bit ops)" — whose real payoff is that the algebra admits the
//! *approximation* in [`crate::approx`].

use crate::buckets::Buckets;
use crate::recip::Reciprocal;
use crate::traits::{EnqueueError, EnqueueErrorKind, RankedQueue};

/// Curvature accumulator over up to 64 bucket indices: the exact Gradient
/// Queue meta-data (replaces one FFS bitmap word).
#[derive(Debug, Clone, Copy, Default)]
pub struct GradientWord {
    /// `a = Σ_{i occupied} 2^i`.
    a: u128,
    /// `b = Σ_{i occupied} i·2^i`.
    b: u128,
    /// Shadow occupancy used for transition detection (not for lookups).
    occupied: u64,
}

impl GradientWord {
    /// An all-empty word.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no index is occupied.
    pub fn is_empty(&self) -> bool {
        self.a == 0
    }

    /// Marks index `i` occupied. Returns `true` if the word was empty before
    /// (transition to propagate in a hierarchy).
    pub fn set(&mut self, i: u32) -> bool {
        assert!(i < 64, "gradient word covers 64 indices");
        let was_empty = self.a == 0;
        if self.occupied & (1 << i) == 0 {
            self.occupied |= 1 << i;
            self.a += 1u128 << i;
            self.b += (i as u128) << i;
        }
        was_empty
    }

    /// Marks index `i` empty. Returns `true` if the word is now empty.
    pub fn clear(&mut self, i: u32) -> bool {
        assert!(i < 64, "gradient word covers 64 indices");
        if self.occupied & (1 << i) != 0 {
            self.occupied &= !(1 << i);
            self.a -= 1u128 << i;
            self.b -= (i as u128) << i;
        }
        self.a == 0
    }

    /// Whether index `i` is occupied.
    pub fn test(&self, i: u32) -> bool {
        self.occupied & (1 << i) != 0
    }

    /// Maximum occupied index via **Theorem 1**: `ceil(b/a)`.
    ///
    /// The division need not be executed: with weights `2^i`, the
    /// accumulator `a = Σ_{i occupied} 2^i` *is* the occupancy polynomial
    /// evaluated at 2, so its most significant bit is the maximum occupied
    /// index — and Theorem 1 proves `ceil(b/a)` equals exactly that. The
    /// 128-bit hardware division this used to run (~40 cycles, once per
    /// hierarchy level per lookup) is replaced by one `leading_zeros` on
    /// the same curvature accumulator; `theorem1_division_agrees` keeps the
    /// two forms provably interchangeable.
    pub fn max_index(&self) -> Option<u32> {
        if self.a == 0 {
            None
        } else {
            let top = 127 - self.a.leading_zeros();
            debug_assert_eq!(top as u128, self.b.div_ceil(self.a), "Theorem 1");
            Some(top)
        }
    }

    /// `ceil(b/a)` with the division actually performed — the literal
    /// Theorem 1 expression, kept for tests that pin [`Self::max_index`]
    /// to it.
    pub fn max_index_by_division(&self) -> Option<u32> {
        if self.a == 0 {
            None
        } else {
            Some(self.b.div_ceil(self.a) as u32)
        }
    }
}

/// Hierarchical curvature meta-data: a fanout-64 tree of [`GradientWord`]s.
#[derive(Debug, Clone)]
struct HierGradient {
    /// `levels[0]` is the leaf level (one index per bucket).
    levels: Vec<Vec<GradientWord>>,
    len: usize,
}

impl HierGradient {
    fn new(len: usize) -> Self {
        assert!(len > 0);
        let mut levels = Vec::new();
        let mut n = len;
        loop {
            let words = n.div_ceil(64);
            levels.push(vec![GradientWord::new(); words]);
            if words == 1 {
                break;
            }
            n = words;
        }
        HierGradient { levels, len }
    }

    fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        let mut idx = i;
        for level in &mut self.levels {
            let transition = level[idx / 64].set((idx % 64) as u32);
            if !transition {
                break;
            }
            idx /= 64;
        }
    }

    fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        let mut idx = i;
        for level in &mut self.levels {
            let now_empty = level[idx / 64].clear((idx % 64) as u32);
            if !now_empty {
                break;
            }
            idx /= 64;
        }
    }

    fn max_index(&self) -> Option<usize> {
        let root = &self.levels.last().expect("at least one level")[0];
        root.max_index()?;
        let mut idx = 0usize;
        for level in self.levels.iter().rev() {
            let j = level[idx]
                .max_index()
                .expect("parent weight guaranteed a child");
            idx = idx * 64 + j as usize;
        }
        Some(idx)
    }
}

/// Exact gradient **min**-queue over at most 64 buckets.
///
/// Bucket `b` maps to internal index `(n−1)−b`, so Theorem 1's max-index
/// lookup yields the minimum-rank bucket — packet schedulers dequeue
/// smallest-rank-first.
#[derive(Debug, Clone)]
pub struct GradientQueue<T> {
    word: GradientWord,
    buckets: Buckets<T>,
    granularity: Reciprocal,
    base: u64,
    nb: usize,
}

impl<T> GradientQueue<T> {
    /// Creates a queue covering ranks `[0, n × granularity)`, `n ≤ 64`.
    pub fn new(n: usize, granularity: u64) -> Self {
        Self::with_base(n, granularity, 0)
    }

    /// Creates a queue covering ranks `[base, base + n × granularity)`.
    pub fn with_base(n: usize, granularity: u64, base: u64) -> Self {
        assert!(
            n > 0 && n <= 64,
            "single gradient word covers at most 64 buckets"
        );
        assert!(granularity > 0);
        GradientQueue {
            word: GradientWord::new(),
            buckets: Buckets::new(n),
            granularity: Reciprocal::new(granularity),
            base,
            nb: n,
        }
    }

    fn bucket_of(&self, rank: u64) -> Option<usize> {
        let off = self.granularity.div(rank.checked_sub(self.base)?);
        if (off as usize) < self.nb {
            Some(off as usize)
        } else {
            None
        }
    }

    fn internal(&self, bucket: usize) -> u32 {
        (self.nb - 1 - bucket) as u32
    }
}

impl<T> RankedQueue<T> for GradientQueue<T> {
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>> {
        match self.bucket_of(rank) {
            Some(b) => {
                self.buckets.push(b, rank, item);
                self.word.set(self.internal(b));
                Ok(())
            }
            None => Err(EnqueueError {
                kind: EnqueueErrorKind::OutOfRange,
                rank,
                item,
            }),
        }
    }

    fn dequeue_min(&mut self) -> Option<(u64, T)> {
        let j = self.word.max_index()?;
        let b = self.nb - 1 - j as usize;
        let out = self.buckets.pop(b);
        if self.buckets.bucket_is_empty(b) {
            self.word.clear(j);
        }
        out
    }

    fn peek_min_rank(&self) -> Option<u64> {
        self.word
            .max_index()
            .map(|j| self.base + (self.nb - 1 - j as usize) as u64 * self.granularity.divisor())
    }

    fn len(&self) -> usize {
        self.buckets.len()
    }
}

/// Exact gradient min-queue over any number of buckets (fanout-64 hierarchy).
#[derive(Debug, Clone)]
pub struct HierGradientQueue<T> {
    grad: HierGradient,
    buckets: Buckets<T>,
    granularity: Reciprocal,
    base: u64,
    nb: usize,
}

impl<T> HierGradientQueue<T> {
    /// Creates a queue covering ranks `[0, n × granularity)`.
    pub fn new(n: usize, granularity: u64) -> Self {
        Self::with_base(n, granularity, 0)
    }

    /// Creates a queue covering ranks `[base, base + n × granularity)`.
    pub fn with_base(n: usize, granularity: u64, base: u64) -> Self {
        assert!(n > 0);
        assert!(granularity > 0);
        HierGradientQueue {
            grad: HierGradient::new(n),
            buckets: Buckets::new(n),
            granularity: Reciprocal::new(granularity),
            base,
            nb: n,
        }
    }

    fn bucket_of(&self, rank: u64) -> Option<usize> {
        let off = self.granularity.div(rank.checked_sub(self.base)?);
        if (off as usize) < self.nb {
            Some(off as usize)
        } else {
            None
        }
    }
}

impl<T> RankedQueue<T> for HierGradientQueue<T> {
    fn enqueue(&mut self, rank: u64, item: T) -> Result<(), EnqueueError<T>> {
        match self.bucket_of(rank) {
            Some(b) => {
                self.buckets.push(b, rank, item);
                self.grad.set(self.nb - 1 - b);
                Ok(())
            }
            None => Err(EnqueueError {
                kind: EnqueueErrorKind::OutOfRange,
                rank,
                item,
            }),
        }
    }

    fn dequeue_min(&mut self) -> Option<(u64, T)> {
        let j = self.grad.max_index()?;
        let b = self.nb - 1 - j;
        let out = self.buckets.pop(b);
        if self.buckets.bucket_is_empty(b) {
            self.grad.clear(j);
        }
        out
    }

    fn peek_min_rank(&self) -> Option<u64> {
        self.grad
            .max_index()
            .map(|j| self.base + (self.nb - 1 - j) as u64 * self.granularity.divisor())
    }

    fn len(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Theorem 1, exhaustively for every occupancy pattern of 16 indices and
    /// pseudo-randomly for 64-bit patterns: `ceil(b/a)` equals the highest
    /// set index.
    #[test]
    fn theorem1_exhaustive_small_random_large() {
        for mask in 1u64..(1 << 16) {
            let mut w = GradientWord::new();
            for i in 0..16 {
                if mask & (1 << i) != 0 {
                    w.set(i);
                }
            }
            let expect = 63 - mask.leading_zeros();
            assert_eq!(w.max_index(), Some(expect), "mask {mask:#x}");
        }
        let mut x: u64 = 0x243f6a8885a308d3;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x == 0 {
                continue;
            }
            let mut w = GradientWord::new();
            for i in 0..64 {
                if x & (1 << i) != 0 {
                    w.set(i);
                }
            }
            assert_eq!(w.max_index(), Some(63 - x.leading_zeros()), "mask {x:#x}");
        }
    }

    /// Pins the FFS-form `max_index` to the literal `ceil(b/a)` division —
    /// the Theorem 1 identity the release-mode shortcut relies on.
    #[test]
    fn theorem1_division_agrees() {
        let mut w = GradientWord::new();
        assert_eq!(w.max_index(), w.max_index_by_division());
        let mut x: u64 = 0xa076_1d64_78bd_642f;
        for _ in 0..50_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = (x % 64) as u32;
            if x & (1 << 40) != 0 {
                w.set(i);
            } else {
                w.clear(i);
            }
            assert_eq!(w.max_index(), w.max_index_by_division());
        }
    }

    #[test]
    fn word_transitions_match_emptiness() {
        let mut w = GradientWord::new();
        assert!(w.set(10));
        assert!(!w.set(10)); // duplicate set: no transition, no double-count
        assert!(!w.set(63));
        assert_eq!(w.max_index(), Some(63));
        assert!(!w.clear(63));
        assert_eq!(w.max_index(), Some(10));
        assert!(w.clear(10));
        assert!(w.is_empty());
        // `clear` reports "is the word empty now": a no-op clear on an empty
        // word answers true (idempotent for hierarchy propagation).
        assert!(w.clear(10));
        assert!(w.max_index().is_none());
    }

    #[test]
    fn min_queue_dequeues_smallest_rank() {
        let mut q = GradientQueue::new(64, 1);
        for r in [40u64, 7, 63, 7, 0] {
            q.enqueue(r, r).unwrap();
        }
        assert_eq!(q.peek_min_rank(), Some(0));
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue_min().map(|(r, _)| r)).collect();
        assert_eq!(order, vec![0, 7, 7, 40, 63]);
    }

    #[test]
    fn hierarchical_gradient_matches_flat_behaviour() {
        let mut q = HierGradientQueue::new(5_000, 1);
        let ranks = [4_999u64, 0, 64, 63, 65, 4_095, 4_096, 2_500, 2_500];
        for &r in &ranks {
            q.enqueue(r, r).unwrap();
        }
        let mut order: Vec<u64> = std::iter::from_fn(|| q.dequeue_min().map(|(r, _)| r)).collect();
        let mut expect = ranks.to_vec();
        expect.sort_unstable();
        assert_eq!(order.len(), expect.len());
        order.sort_unstable(); // FIFO ties make the full orders equal anyway
        assert_eq!(order, expect);
    }

    #[test]
    fn hierarchical_dequeue_is_sorted() {
        let mut q = HierGradientQueue::new(70 * 64 + 3, 1);
        let mut x: u64 = 0xdeadbeefcafef00d;
        let mut inserted = 0u32;
        for _ in 0..3_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let r = x % (70 * 64 + 3);
            q.enqueue(r, ()).unwrap();
            inserted += 1;
        }
        let mut prev = 0u64;
        let mut n = 0u32;
        while let Some((r, _)) = q.dequeue_min() {
            assert!(r >= prev, "sorted dequeue");
            prev = r;
            n += 1;
        }
        assert_eq!(n, inserted);
    }

    #[test]
    fn out_of_range_refused() {
        let mut q: GradientQueue<()> = GradientQueue::new(32, 10);
        assert!(q.enqueue(319, ()).is_ok());
        assert_eq!(
            q.enqueue(320, ()).unwrap_err().kind,
            EnqueueErrorKind::OutOfRange
        );
        let mut q: HierGradientQueue<()> = HierGradientQueue::new(100, 10);
        assert_eq!(
            q.enqueue(1_000, ()).unwrap_err().kind,
            EnqueueErrorKind::OutOfRange
        );
    }
}
