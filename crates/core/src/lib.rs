//! # eiffel-core — integer bucketed priority queues
//!
//! This crate implements the data-structure contribution of *Eiffel:
//! Efficient and Flexible Software Packet Scheduling* (NSDI 2019, §3.1):
//! priority queues for packet scheduling that exploit three properties of
//! packet ranks — they are **integers**, they fall in a **limited moving
//! range**, and **many packets share a rank** — to replace the O(log n)
//! comparison-based queues (RB-trees, binary heaps) used by software
//! schedulers with O(1)-per-packet bucketed integer queues.
//!
//! ## Queue families
//!
//! | Type | Paper | Range | Min-find cost |
//! |---|---|---|---|
//! | [`FfsQueue`] | Fig 2 | fixed, ≤ 64 buckets | one `trailing_zeros` |
//! | [`HierFfsQueue`] | Fig 3 (PIQ-style) | fixed, any N | `log₆₄ N` word ops |
//! | [`CffsQueue`] | Fig 4, the flagship **cFFS** | moving window | `log₆₄ N` word ops |
//! | [`GradientQueue`] | §3.1.2 exact | fixed, ≤ 64/level | one division |
//! | [`ApproxGradientQueue`] | §3.1.2 approximate | fixed, ~52·α buckets | integer add/compare, no division (+ search on miss) |
//! | [`CircularApproxQueue`] | §3.1.2 "as with cFFS" | moving window | integer add/compare, no division |
//! | [`BucketHeapQueue`] | §5.2 baseline "BH" | fixed | O(log N) heap op |
//! | [`SpPifoQueue`] | SP-PIFO (related work, PAPERS.md) | unbounded, adaptive | one `trailing_zeros` |
//! | [`RifoQueue`] | RIFO (related work, PAPERS.md) | unbounded, adaptive | `log₆₄ N` word ops |
//! | [`HeapPq`], [`TreePq`] | §2 baselines | unbounded | O(log n) comparisons |
//! | [`TimingWheel`] | Carousel's structure | moving window | none (time-driven only) |
//!
//! All bucketed queues share the same bucket semantics (paper §2): the rank
//! space is divided into `N` buckets of `granularity` rank units each;
//! elements inside one bucket are FIFO because "packets within a single
//! bucket effectively have equivalent rank".
//!
//! ## Quick example
//!
//! ```
//! use eiffel_core::{CffsQueue, RankedQueue};
//!
//! // A shaper horizon: 2_000 buckets of 1_000 ns each (2 ms per window half).
//! let mut q: CffsQueue<&'static str> = CffsQueue::new(2_000, 1_000, 0);
//! q.enqueue(5_000, "pkt-a").unwrap();
//! q.enqueue(1_200, "pkt-b").unwrap();
//! q.enqueue(5_100, "pkt-c").unwrap();
//! assert_eq!(q.dequeue_min().unwrap().1, "pkt-b");
//! assert_eq!(q.dequeue_min().unwrap().1, "pkt-a"); // same bucket as pkt-c: FIFO
//! assert_eq!(q.dequeue_min().unwrap().1, "pkt-c");
//! ```

// `deny` rather than `forbid`: the lock-free SPSC ring ([`ring`]) is the
// one audited module allowed to use `unsafe` (uninitialized slot storage +
// a `Sync` impl); it opts in locally with documented invariants. Everything
// else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod bitmap;
pub mod bucket_heap;
pub mod buckets;
pub mod cffs;
pub mod comparison;
pub mod counters;
pub mod ffs;
pub mod gradient;
pub mod guide;
pub mod hffs;
pub mod hierbitmap;
pub mod membudget;
pub mod oracle;
pub mod recip;
pub mod rifo;
pub mod ring;
pub mod sp_pifo;
pub mod timing_wheel;
pub mod traits;
pub mod word;

pub use approx::{ApproxGradientQueue, ApproxParams, CircularApproxQueue};
pub use bucket_heap::BucketHeapQueue;
pub use cffs::{CffsQueue, Circular};
pub use comparison::{HeapPq, TreePq};
pub use counters::{CachePadded, CounterBlock};
pub use ffs::FfsQueue;
pub use gradient::{GradientQueue, GradientWord, HierGradientQueue};
pub use guide::{recommend, Recommendation, UseCase};
pub use hffs::HierFfsQueue;
pub use hierbitmap::HierBitmap;
pub use membudget::{DegradeTier, MemBudget, FLOW_SETUP_BYTES, PKT_SLAB_BYTES};
pub use oracle::{count_inversions, OracleAudit, OracleReport};
pub use recip::Reciprocal;
pub use rifo::RifoQueue;
pub use ring::{SpscConsumer, SpscProducer, SpscRing};
pub use sp_pifo::SpPifoQueue;
pub use timing_wheel::TimingWheel;
pub use traits::{EnqueueError, EnqueueErrorKind, QueueConfig, QueueKind, QueueStats, RankedQueue};
