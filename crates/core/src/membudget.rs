//! Bounded-memory accounting with graceful degradation tiers.
//!
//! Eiffel's deployment target is a first-party server carrying hundreds
//! of thousands to millions of flows per machine (paper §1, §5.1.1);
//! at that scale the scheduler's failure mode of interest is not a bad
//! sort — it is the kernel OOM-killing the host because flow and packet
//! state grew without bound. This module is the workspace-wide memory
//! accountant the host runtimes charge for everything whose size scales
//! with load: flow setup state, in-flight packet (skb-like) slabs,
//! bucket arrays, and SPSC ring capacity.
//!
//! [`MemBudget`] never allocates anything itself; it is a ledger. The
//! rule that makes the bound *hard* is structural: only the producer
//! side mints flows and packets, and it must [`MemBudget::try_charge`]
//! **before** creating the object — a refused charge means the object is
//! simply not created (the emission is deferred, or the flow setup is
//! refused). Consumers release on disposal. Since nothing is ever built
//! without a successful charge, `in_use ≤ budget` holds at every
//! instant, and `peak()` is an exact high-water mark rather than a
//! sampled approximation.
//!
//! Degradation is tiered by utilization rather than cliff-edged
//! ([`DegradeTier`]): under pressure the admission layer ECN-marks
//! harder (sources back off sooner), past that it sheds the
//! lowest-priority backlog via the bucketed queues' `dequeue_max` path,
//! and as a last resort the host refuses new flow setup. The process
//! degrades; it never OOMs.

use core::sync::atomic::{AtomicU64, Ordering};

/// Modeled resident cost of one in-flight packet: a 2 KiB skb-like slab
/// object (header + payload room), the granularity Linux itself charges
/// socket buffers at.
pub const PKT_SLAB_BYTES: u64 = 2048;

/// Modeled resident cost of one established flow: socket + flow-table
/// entry + scheduler per-flow state.
pub const FLOW_SETUP_BYTES: u64 = 512;

/// Degradation tier derived from budget utilization, ordered by
/// severity. Each tier subsumes the measures of the ones before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum DegradeTier {
    /// Utilization below the pressure threshold: no intervention.
    Normal = 0,
    /// First tier: ECN-mark harder (lower mark threshold) so closed-loop
    /// sources back off before memory becomes critical.
    Pressure = 1,
    /// Second tier: shed lowest-priority backlog (`dequeue_max` /
    /// `evict_worst`) to convert memory pressure into targeted loss.
    Shed = 2,
    /// Last tier: refuse new flow setup; existing flows keep draining.
    Refuse = 3,
}

impl DegradeTier {
    /// Number of tiers (for per-tier counter arrays).
    pub const COUNT: usize = 4;

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DegradeTier::Normal => "normal",
            DegradeTier::Pressure => "pressure",
            DegradeTier::Shed => "shed",
            DegradeTier::Refuse => "refuse",
        }
    }

    /// Tier from a counter-array index (inverse of `as usize`).
    pub fn from_index(i: usize) -> DegradeTier {
        match i {
            0 => DegradeTier::Normal,
            1 => DegradeTier::Pressure,
            2 => DegradeTier::Shed,
            _ => DegradeTier::Refuse,
        }
    }
}

/// Shared memory ledger: a fixed byte budget, an atomic in-use count,
/// and an exact high-water mark. Thread-safe; the host runtimes share
/// one instance across the producer and every shard via `Arc`.
#[derive(Debug)]
pub struct MemBudget {
    budget: u64,
    pressure_at: u64,
    shed_at: u64,
    refuse_at: u64,
    in_use: AtomicU64,
    peak: AtomicU64,
}

impl MemBudget {
    /// Default tier thresholds as percent of budget: pressure at 60%,
    /// shed at 80%, refuse at 95%.
    pub const DEFAULT_THRESHOLDS: (u64, u64, u64) = (60, 80, 95);

    /// A budget of `bytes` with the default tier thresholds.
    pub fn new(bytes: u64) -> MemBudget {
        let (p, s, r) = Self::DEFAULT_THRESHOLDS;
        MemBudget::with_thresholds(bytes, p, s, r)
    }

    /// A budget with explicit tier thresholds in percent of `bytes`
    /// (must be ordered `pressure ≤ shed ≤ refuse ≤ 100`).
    pub fn with_thresholds(bytes: u64, pressure: u64, shed: u64, refuse: u64) -> MemBudget {
        assert!(
            pressure <= shed && shed <= refuse && refuse <= 100,
            "tier thresholds must be ordered percentages"
        );
        MemBudget {
            budget: bytes,
            pressure_at: bytes / 100 * pressure + bytes % 100 * pressure / 100,
            shed_at: bytes / 100 * shed + bytes % 100 * shed / 100,
            refuse_at: bytes / 100 * refuse + bytes % 100 * refuse / 100,
            in_use: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Configured budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently charged.
    pub fn in_use(&self) -> u64 {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Exact high-water mark of `in_use` over the ledger's lifetime.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Try to charge `bytes`; returns `false` (charging nothing) if the
    /// charge would push `in_use` past the budget. The caller must not
    /// create the object on `false`.
    pub fn try_charge(&self, bytes: u64) -> bool {
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = match cur.checked_add(bytes) {
                Some(n) if n <= self.budget => n,
                _ => return false,
            };
            match self
                .in_use
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Release `bytes` previously charged. Releasing more than is in
    /// use indicates an accounting bug and panics in debug builds.
    pub fn release(&self, bytes: u64) {
        let prev = self.in_use.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(
            prev >= bytes,
            "MemBudget::release of {bytes} > in_use {prev}"
        );
    }

    /// Current degradation tier from utilization. Pure read; the tier
    /// can differ between two calls if other threads charge/release in
    /// between, which is fine — admission treats it as a hint per
    /// decision, and the hard bound is enforced by `try_charge` alone.
    pub fn tier(&self) -> DegradeTier {
        let used = self.in_use.load(Ordering::Relaxed);
        if used >= self.refuse_at {
            DegradeTier::Refuse
        } else if used >= self.shed_at {
            DegradeTier::Shed
        } else if used >= self.pressure_at {
            DegradeTier::Pressure
        } else {
            DegradeTier::Normal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_and_peak_are_exact() {
        let m = MemBudget::new(1_000);
        assert!(m.try_charge(400));
        assert!(m.try_charge(600));
        assert!(!m.try_charge(1), "budget is a hard ceiling");
        assert_eq!(m.in_use(), 1_000);
        m.release(600);
        assert_eq!(m.in_use(), 400);
        assert!(m.try_charge(100));
        assert_eq!(m.peak(), 1_000, "peak is the high-water mark");
    }

    #[test]
    fn tiers_follow_utilization() {
        let m = MemBudget::new(100);
        assert_eq!(m.tier(), DegradeTier::Normal);
        assert!(m.try_charge(60));
        assert_eq!(m.tier(), DegradeTier::Pressure);
        assert!(m.try_charge(20));
        assert_eq!(m.tier(), DegradeTier::Shed);
        assert!(m.try_charge(15));
        assert_eq!(m.tier(), DegradeTier::Refuse);
        m.release(95);
        assert_eq!(m.tier(), DegradeTier::Normal);
    }

    #[test]
    fn thresholds_avoid_overflow_on_large_budgets() {
        // 100 GiB budget: naive bytes*pct would overflow u64 at ~184 EB,
        // but the split-form multiply must stay exact well below that.
        let m = MemBudget::with_thresholds(100 << 30, 60, 80, 95);
        assert_eq!(m.pressure_at, (100u64 << 30) / 100 * 60);
        assert!(m.try_charge(m.budget()));
        assert_eq!(m.tier(), DegradeTier::Refuse);
    }

    #[test]
    fn tier_labels_and_indices_round_trip() {
        for i in 0..DegradeTier::COUNT {
            let t = DegradeTier::from_index(i);
            assert_eq!(t as usize, i);
            assert!(!t.label().is_empty());
        }
        assert!(DegradeTier::Normal < DegradeTier::Refuse);
    }

    #[test]
    fn concurrent_charges_never_exceed_budget() {
        use std::sync::Arc;
        let m = Arc::new(MemBudget::new(10_000));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut held = 0u64;
                    for _ in 0..10_000 {
                        if m.try_charge(7) {
                            held += 7;
                            if held > 70 {
                                m.release(70);
                                held -= 70;
                            }
                        }
                        assert!(m.in_use() <= m.budget());
                    }
                    m.release(held);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(m.in_use(), 0);
        assert!(m.peak() <= m.budget());
    }
}
