//! Conformance: hClock expressed as a ~100-line flow-leaf program on the
//! generic PIFO tree ([`eiffel_pifo::HClockFlow`]) tracks the dedicated
//! bess engine ([`eiffel_bess::HClockEiffel`]) under the same QoS specs
//! and arrivals.
//!
//! Exact sequence equality is not the contract — the engine's share pass
//! uses 1500-byte cFFS buckets (FIFO within a bucket) while the tree's
//! two-band queue keeps exact virtual-time order, and reservation
//! eligibility is bucket-quantized in slightly different places. What must
//! agree is the service *allocation*: per-flow cumulative service counts
//! at every checkpoint of a paced virtual-clock drive, within tolerance.

use eiffel_bess::{FlowSpec, HClockEiffel};
use eiffel_core::{QueueConfig, QueueKind};
use eiffel_pifo::{HClockFlow, PifoTree, QosSpec, TreeBuilder};
use eiffel_sim::{Nanos, Packet, Rate};
use proptest::prelude::*;

/// `(reservation mbps, limit mbps, share)` for a heterogeneous mix.
const MIX: &[(u64, u64, u64)] = &[
    (20, 40, 1),
    (10, 40, 2),
    (5, 15, 4),
    (1, 8, 1),
    (15, 100, 8),
    (2, 10, 2),
];

fn engine() -> HClockEiffel {
    let specs: Vec<FlowSpec> = MIX
        .iter()
        .map(|&(r, l, s)| FlowSpec {
            reservation: Rate::mbps(r),
            limit: Rate::mbps(l),
            share: s,
        })
        .collect();
    HClockEiffel::new(&specs)
}

fn tree() -> PifoTree {
    let specs: Vec<QosSpec> = MIX
        .iter()
        .map(|&(r, l, s)| QosSpec {
            reservation: Rate::mbps(r),
            limit: Rate::mbps(l),
            share: s,
        })
        .collect();
    let mut b = TreeBuilder::new();
    b.flow_leaf(
        "root",
        None,
        Box::new(HClockFlow::new(specs)),
        // Two-band ranks (quantized deadlines ⊕ virtual times) span the
        // whole u64: keep ordering exact.
        QueueKind::BTree.build(QueueConfig::new(1, 1, 0)),
        None,
    );
    b.build().unwrap()
}

/// Drives both schedulers through the same arrivals under the same paced
/// virtual clock and asserts per-flow counts stay within `tol_frac` (plus
/// a small absolute floor) at every checkpoint.
fn assert_allocations_track(arrivals: &[(Nanos, u32)], step: Nanos, tol_frac: f64) {
    let mut eng = engine();
    let mut t = tree();
    let root = t.node_by_name("root").unwrap();

    let mut eng_counts = [0usize; 6];
    let mut tree_counts = [0usize; 6];
    let mut ai = 0;
    let mut now: Nanos = 0;
    let mut checks = 0usize;
    loop {
        while ai < arrivals.len() && arrivals[ai].0 <= now {
            let (at, flow) = arrivals[ai];
            eng.enqueue(at, Packet::mtu(ai as u64, flow, at));
            t.enqueue(at, root, Packet::mtu(ai as u64, flow, at))
                .unwrap();
            ai += 1;
        }
        while let Some(p) = eng.dequeue(now) {
            eng_counts[p.flow as usize] += 1;
        }
        while let Some(p) = t.dequeue(now) {
            tree_counts[p.flow as usize] += 1;
        }
        // Checkpoint: allocations so far must agree per flow.
        for f in 0..MIX.len() {
            let (a, b) = (eng_counts[f], tree_counts[f]);
            let bound = ((a.max(b) as f64) * tol_frac).ceil() as usize + 3;
            assert!(
                a.abs_diff(b) <= bound,
                "flow {f} at t={now}: engine served {a}, tree served {b} (bound {bound})"
            );
        }
        checks += 1;
        if ai >= arrivals.len() && eng.is_empty() && t.is_empty() {
            break;
        }
        now += step;
        assert!(
            now < 30_000_000_000,
            "drain must converge (engine {} / tree {} left)",
            eng.len(),
            t.len()
        );
    }
    assert_eq!(eng_counts, tree_counts, "both drained everything");
    assert!(checks > 2, "drive must span several checkpoints");
}

#[test]
fn heavy_backlog_allocations_track() {
    // 30 packets to every flow up front: reservations, limits and shares
    // all bind at some point of the drain.
    let mut arrivals = Vec::new();
    for f in 0..MIX.len() as u32 {
        for _ in 0..30 {
            arrivals.push((0, f));
        }
    }
    assert_allocations_track(&arrivals, 250_000, 0.25);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random staggered arrival mixes: the tree program and the dedicated
    /// engine allocate service identically (within bucket-tie tolerance)
    /// at every virtual-clock checkpoint.
    #[test]
    fn staggered_allocations_track(
        arrivals in prop::collection::vec(
            // (arrival step × 500µs, flow)
            (0u64..40, 0u32..6), 30..180),
        step in prop_oneof![Just(200_000u64), Just(500_000)],
    ) {
        let mut arrivals: Vec<(Nanos, u32)> = arrivals
            .iter()
            .map(|&(s, f)| (s * 500_000, f))
            .collect();
        arrivals.sort();
        assert_allocations_track(&arrivals, step, 0.25);
    }
}
