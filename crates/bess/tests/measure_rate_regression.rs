//! Regression pin for `measure_rate`'s behaviour under heavy rate
//! limiting (PR 2, tightened in PR 10).
//!
//! PR 2 made `measure_rate` discard the first `WARMUP_FRACTION` of the run
//! untimed, because the pre-filled backlog is stamped at `now = 0` and
//! drains as one burst before rate limits bind. A residual over-limit
//! reading of up to ~8% survived at 120k-packet occupancy: 30k equal flows
//! fire their limit clocks in synchronized ~72 ms bursts, and a fixed
//! 400 ms window straddles up to one extra burst (6 observed where the
//! limit owes 5.55 — exactly +8%). PR 10 removed the aliasing by rating
//! edge-to-edge over whole burst periods (`EdgeWindow` in the harness), so
//! the bound here is down from 1.10× to 1.04× (wall-clock noise only).

use std::time::Duration;

use eiffel_bess::{
    measure_rate, measure_rate_batched, FlowSpec, HClockEiffel, RoundRobinGen, WARMUP_FRACTION,
};
use eiffel_sim::Rate;

/// Equal per-flow specs splitting `agg_mbps` in kbps resolution.
fn flat_specs(flows: usize, agg_mbps: u64) -> Vec<FlowSpec> {
    let per_kbps = (agg_mbps * 1_000 / flows as u64).max(1);
    (0..flows)
        .map(|_| FlowSpec {
            reservation: Rate::kbps(1),
            limit: Rate::kbps(per_kbps),
            share: 1,
        })
        .collect()
}

/// The PR 2 operating point: 120k packets queued, a 5 Gbps aggregate limit
/// that one core can trivially saturate — the reading must hug the limit.
#[test]
fn overlimit_residual_at_120k_occupancy_stays_bounded() {
    const AGG_MBPS: u64 = 5_000;
    let specs = flat_specs(30_000, AGG_MBPS);
    let mut gen = RoundRobinGen::new(30_000, 1_500);
    let mut s = HClockEiffel::new(&specs);
    let r = measure_rate(
        &mut s,
        &mut gen,
        &mut |_| {},
        120_000,
        Duration::from_millis(400),
    );
    let limit = AGG_MBPS as f64;
    // The limit must bind (CPU is not the constraint at 5 Gbps)…
    assert!(
        r.mbps > 0.80 * limit,
        "limit should bind, got {:.0} of {:.0} Mbps",
        r.mbps,
        limit
    );
    // …and with burst-period accounting the reading must sit at the limit:
    // 4% headroom covers wall-clock noise on a shared vCPU, nothing else.
    // If this fails high, the burst-edge estimator (or the warmup discard,
    // WARMUP_FRACTION = {WARMUP_FRACTION}) regressed.
    assert!(
        r.mbps < 1.04 * limit,
        "over-limit residual returned: {:.0} vs {:.0} Mbps (+{:.1}%, warmup {:.0}%)",
        r.mbps,
        limit,
        100.0 * (r.mbps - limit) / limit,
        100.0 * WARMUP_FRACTION
    );
}

/// The batched consumer path at the same operating point: batching changes
/// per-packet cost, not shaping, so the same bound applies.
#[test]
fn batched_overlimit_residual_at_120k_occupancy_stays_bounded() {
    const AGG_MBPS: u64 = 5_000;
    let specs = flat_specs(30_000, AGG_MBPS);
    let mut gen = RoundRobinGen::new(30_000, 1_500);
    let mut s = HClockEiffel::new(&specs);
    let r = measure_rate_batched(
        &mut s,
        &mut gen,
        &mut |_| {},
        120_000,
        Duration::from_millis(400),
        16,
    );
    let limit = AGG_MBPS as f64;
    assert!(r.mbps > 0.80 * limit, "got {:.0} Mbps", r.mbps);
    assert!(
        r.mbps < 1.04 * limit,
        "batched over-limit residual returned: {:.0} vs {:.0} Mbps",
        r.mbps,
        limit
    );
}
