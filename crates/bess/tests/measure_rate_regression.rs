//! Regression pin for the `measure_rate` warmup-discard residual (PR 2).
//!
//! PR 2 made `measure_rate` discard the first `WARMUP_FRACTION` of the run
//! untimed, because the pre-filled backlog is stamped at `now = 0` and
//! drains as one burst before rate limits bind (see the warmup notes on
//! `harness::measure_rate`). A residual over-limit reading of up to ~8%
//! survives at 120k-packet occupancy: flows whose limit clocks lag the
//! measured window keep a (shrinking) eligibility surplus past the warmup.
//! This test pins that behaviour with an explicit tolerance so a future
//! change to the warmup/discard logic that *worsens* the residual fails
//! loudly — and one that fixes it can tighten the bound.

use std::time::Duration;

use eiffel_bess::{
    measure_rate, measure_rate_batched, FlowSpec, HClockEiffel, RoundRobinGen, WARMUP_FRACTION,
};
use eiffel_sim::Rate;

/// Equal per-flow specs splitting `agg_mbps` in kbps resolution.
fn flat_specs(flows: usize, agg_mbps: u64) -> Vec<FlowSpec> {
    let per_kbps = (agg_mbps * 1_000 / flows as u64).max(1);
    (0..flows)
        .map(|_| FlowSpec {
            reservation: Rate::kbps(1),
            limit: Rate::kbps(per_kbps),
            share: 1,
        })
        .collect()
}

/// The PR 2 operating point: 120k packets queued, a 5 Gbps aggregate limit
/// that one core can trivially saturate — the reading must hug the limit
/// from above by at most the documented residual.
#[test]
fn overlimit_residual_at_120k_occupancy_stays_bounded() {
    const AGG_MBPS: u64 = 5_000;
    let specs = flat_specs(30_000, AGG_MBPS);
    let mut gen = RoundRobinGen::new(30_000, 1_500);
    let mut s = HClockEiffel::new(&specs);
    let r = measure_rate(
        &mut s,
        &mut gen,
        &mut |_| {},
        120_000,
        Duration::from_millis(400),
    );
    let limit = AGG_MBPS as f64;
    // The limit must bind (CPU is not the constraint at 5 Gbps)…
    assert!(
        r.mbps > 0.80 * limit,
        "limit should bind, got {:.0} of {:.0} Mbps",
        r.mbps,
        limit
    );
    // …and the over-limit residual must stay within the ≤8% PR 2 noted,
    // plus 2% wall-clock headroom for the shared vCPU. If this fails low,
    // the warmup discard (WARMUP_FRACTION = {WARMUP_FRACTION}) regressed.
    assert!(
        r.mbps < 1.10 * limit,
        "over-limit residual grew: {:.0} vs {:.0} Mbps (+{:.1}%, warmup {:.0}%)",
        r.mbps,
        limit,
        100.0 * (r.mbps - limit) / limit,
        100.0 * WARMUP_FRACTION
    );
}

/// The batched consumer path at the same operating point: batching changes
/// per-packet cost, not shaping, so the same bound applies.
#[test]
fn batched_overlimit_residual_at_120k_occupancy_stays_bounded() {
    const AGG_MBPS: u64 = 5_000;
    let specs = flat_specs(30_000, AGG_MBPS);
    let mut gen = RoundRobinGen::new(30_000, 1_500);
    let mut s = HClockEiffel::new(&specs);
    let r = measure_rate_batched(
        &mut s,
        &mut gen,
        &mut |_| {},
        120_000,
        Duration::from_millis(400),
        16,
    );
    let limit = AGG_MBPS as f64;
    assert!(r.mbps > 0.80 * limit, "got {:.0} Mbps", r.mbps);
    assert!(
        r.mbps < 1.10 * limit,
        "batched over-limit residual grew: {:.0} vs {:.0} Mbps",
        r.mbps,
        limit
    );
}
