//! Property: `BessScheduler::dequeue_batch` releases the exact same packet
//! sequence as repeated `BessScheduler::dequeue`, for the Eiffel fast
//! paths (hClock's once-per-batch gated release, pFabric's per-flow
//! transaction short-circuit) and the heap baselines on the default loop.

use eiffel_bess::{BessScheduler, FlowSpec, HClockEiffel, HClockHeap, PfabricEiffel, PfabricHeap};
use eiffel_sim::{Nanos, Packet, Rate};
use proptest::prelude::*;

/// Feed both instances the same enqueues; at each probe instant drain one
/// via `dequeue_batch` and mirror it against repeated `dequeue`.
fn assert_batch_matches_single<S: BessScheduler>(
    mut batched: S,
    mut single: S,
    arrivals: &[Packet],
    batches: &[usize],
    step: Nanos,
) {
    let mut now: Nanos = 0;
    let mut round = 0usize;
    let mut out: Vec<Packet> = Vec::new();
    for chunk in arrivals.chunks(8) {
        for pkt in chunk {
            batched.enqueue(now, pkt.clone());
            single.enqueue(now, pkt.clone());
        }
        let max = batches[round % batches.len()];
        round += 1;
        out.clear();
        let got = batched.dequeue_batch(now, max, &mut out);
        assert_eq!(got, out.len());
        assert!(got <= max, "overfilled batch");
        for p in &out {
            assert_eq!(Some(p.clone()), single.dequeue(now), "at t={now}");
        }
        if got < max {
            assert!(single.dequeue(now).is_none(), "batch stopped early");
        }
        assert_eq!(batched.len(), single.len());
        now += step;
    }
    // Final drain: alternate batch sizes until both report empty.
    while !batched.is_empty() || !single.is_empty() {
        let max = batches[round % batches.len()];
        round += 1;
        out.clear();
        let got = batched.dequeue_batch(now, max, &mut out);
        for p in &out {
            assert_eq!(Some(p.clone()), single.dequeue(now), "drain at t={now}");
        }
        if got == 0 {
            assert!(single.dequeue(now).is_none());
            now += step; // rate-gated: advance the clock and retry
        }
        assert!(now < 1_000_000_000_000, "drain must converge");
    }
}

/// hClock specs with mixed reservations/limits/shares, deterministic from
/// the case's flow count.
fn mixed_specs(flows: usize) -> Vec<FlowSpec> {
    (0..flows)
        .map(|i| FlowSpec {
            reservation: Rate::kbps(50 + 40 * (i as u64 % 3)),
            limit: Rate::mbps(2 + 3 * (i as u64 % 4)),
            share: 1 + (i as u64 % 5),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// pFabric: remaining-size ranks walk downward per flow (the SRPT
    /// shape that exercises the strict-minimum short-circuit) with random
    /// flow interleavings and batch sizes.
    #[test]
    fn pfabric_dequeue_batch_matches_repeated_dequeue(
        emissions in prop::collection::vec((0u32..10, 1u64..80), 8..200),
        batches in prop::collection::vec(1usize..33, 1..16),
    ) {
        let mut remaining = [0u64; 10];
        let mut arrivals = Vec::with_capacity(emissions.len());
        for (i, (flow, size)) in emissions.into_iter().enumerate() {
            let r = &mut remaining[flow as usize];
            if *r == 0 {
                *r = size; // a fresh synthetic flow of `size` packets
            }
            let mut p = Packet::mtu(i as u64, flow, 0);
            p.rank = *r;
            *r -= 1;
            arrivals.push(p);
        }
        assert_batch_matches_single(
            PfabricEiffel::new(),
            PfabricEiffel::new(),
            &arrivals,
            &batches,
            1_000,
        );
        assert_batch_matches_single(
            PfabricHeap::new(),
            PfabricHeap::new(),
            &arrivals,
            &batches,
            1_000,
        );
    }

    /// hClock: mixed QoS specs, limits that gate and release as the clock
    /// advances between batches.
    #[test]
    fn hclock_dequeue_batch_matches_repeated_dequeue(
        emissions in prop::collection::vec(0u32..12, 8..200),
        batches in prop::collection::vec(1usize..33, 1..16),
        step in prop_oneof![Just(50_000u64), Just(400_000), Just(2_000_000)],
    ) {
        let specs = mixed_specs(12);
        let arrivals: Vec<Packet> = emissions
            .into_iter()
            .enumerate()
            .map(|(i, flow)| Packet::mtu(i as u64, flow, 0))
            .collect();
        assert_batch_matches_single(
            HClockEiffel::new(&specs),
            HClockEiffel::new(&specs),
            &arrivals,
            &batches,
            step,
        );
        assert_batch_matches_single(
            HClockHeap::new(&specs),
            HClockHeap::new(&specs),
            &arrivals,
            &batches,
            step,
        );
    }
}
