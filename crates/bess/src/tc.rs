//! The BESS traffic-control (tc) baseline of Figure 12.
//!
//! "We also attempt to replicate hClock's behavior using the traffic
//! control (tc) mechanisms in BESS. However, this requires instantiating a
//! module corresponding to every flow which incurs a large overhead for a
//! large number of flows."
//!
//! The model mirrors BESS's scheduler: every flow is a class *module* with
//! its own token-bucket limit and per-traversal resource accounting (BESS
//! charges cycles/packets/bits to every node on the path through the class
//! tree). Runnable classes round-robin; throttled classes park in a heap
//! keyed by token-refill time. The per-packet constant — stats writes
//! across many per-class cache lines plus heap churn for every
//! block/unblock cycle — is what makes module-per-flow collapse at high
//! flow counts.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use eiffel_sim::{Nanos, Packet, Rate};

/// BESS-style resource accounting per class node (cycles, packets, bits,
/// and the five scheduling bookkeeping words bess tracks per traversal).
#[derive(Debug, Default, Clone)]
struct ClassStats {
    cnt: [u64; 8],
}

struct TcClass {
    fifo: VecDeque<Packet>,
    limit: Rate,
    /// Token bucket: bytes available and last refill instant.
    tokens: f64,
    last_refill: Nanos,
    stats: ClassStats,
    state: ClassState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClassState {
    Idle,
    Runnable,
    Blocked,
}

/// Module-per-flow traffic control.
pub struct BessTc {
    classes: Vec<TcClass>,
    runnable: VecDeque<u32>,
    blocked: BinaryHeap<Reverse<(Nanos, u32)>>,
    /// Root + one intermediate level of accounting, as in a typical BESS
    /// class tree (root → group → leaf).
    root_stats: ClassStats,
    group_stats: Vec<ClassStats>,
    len: usize,
}

/// Token bucket depth in packets' worth of bytes.
const BUCKET_DEPTH_PKTS: f64 = 2.0;

impl BessTc {
    /// One class per flow, each with `limit`; groups of 64 classes share an
    /// intermediate accounting node.
    pub fn new(flows: usize, limit: Rate) -> Self {
        let classes = (0..flows)
            .map(|_| TcClass {
                fifo: VecDeque::new(),
                limit,
                tokens: BUCKET_DEPTH_PKTS * 1_500.0,
                last_refill: 0,
                stats: ClassStats::default(),
                state: ClassState::Idle,
            })
            .collect();
        BessTc {
            classes,
            runnable: VecDeque::new(),
            blocked: BinaryHeap::new(),
            root_stats: ClassStats::default(),
            group_stats: vec![ClassStats::default(); flows.div_ceil(64)],
            len: 0,
        }
    }

    /// Queued packets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn account(&mut self, class: u32, bytes: u64) {
        // Tree walk: leaf, group, root — eight counter updates each, the
        // BESS per-traversal bookkeeping.
        let c = &mut self.classes[class as usize].stats;
        for i in 0..8 {
            c.cnt[i] = c.cnt[i].wrapping_add(bytes + i as u64);
        }
        let g = &mut self.group_stats[class as usize / 64];
        for i in 0..8 {
            g.cnt[i] = g.cnt[i].wrapping_add(bytes + i as u64);
        }
        for i in 0..8 {
            self.root_stats.cnt[i] = self.root_stats.cnt[i].wrapping_add(bytes + i as u64);
        }
    }

    fn refill(&mut self, class: u32, now: Nanos) {
        let c = &mut self.classes[class as usize];
        let dt = now.saturating_sub(c.last_refill);
        c.last_refill = now;
        let add = c.limit.as_bps() as f64 * dt as f64 / 8e9;
        c.tokens = (c.tokens + add).min(BUCKET_DEPTH_PKTS * 1_500.0);
    }

    /// Enqueues a packet to its flow's class module.
    pub fn enqueue(&mut self, now: Nanos, pkt: Packet) {
        let id = pkt.flow;
        let c = &mut self.classes[id as usize];
        c.fifo.push_back(pkt);
        self.len += 1;
        if c.state == ClassState::Idle {
            c.state = ClassState::Runnable;
            self.runnable.push_back(id);
        }
        let _ = now;
    }

    /// Serves the next runnable, token-eligible class (round-robin).
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        // Wake classes whose tokens have refilled.
        while let Some(&Reverse((at, id))) = self.blocked.peek() {
            if at > now {
                break;
            }
            self.blocked.pop();
            let c = &mut self.classes[id as usize];
            if c.state == ClassState::Blocked {
                c.state = ClassState::Runnable;
                self.runnable.push_back(id);
            }
        }
        // Round-robin over runnable classes; block the token-starved.
        let mut scanned = 0;
        let runnable_now = self.runnable.len();
        while scanned < runnable_now {
            scanned += 1;
            let id = self.runnable.pop_front()?;
            self.refill(id, now);
            let c = &mut self.classes[id as usize];
            let head_bytes = match c.fifo.front() {
                Some(p) => p.bytes as u64,
                None => {
                    c.state = ClassState::Idle;
                    continue;
                }
            };
            if c.tokens < head_bytes as f64 {
                // Blocked until the deficit refills.
                let deficit = head_bytes as f64 - c.tokens;
                let wait = (deficit * 8e9 / c.limit.as_bps() as f64) as Nanos;
                c.state = ClassState::Blocked;
                self.blocked.push(Reverse((now + wait.max(1), id)));
                continue;
            }
            c.tokens -= head_bytes as f64;
            let pkt = c.fifo.pop_front().expect("checked head");
            self.len -= 1;
            if c.fifo.is_empty() {
                c.state = ClassState::Idle;
            } else {
                self.runnable.push_back(id);
            }
            self.account(id, head_bytes);
            return Some(pkt);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robins_unthrottled_classes() {
        let mut tc = BessTc::new(3, Rate::gbps(100));
        for i in 0..9u64 {
            tc.enqueue(0, Packet::mtu(i, (i % 3) as u32, 0));
        }
        // Clock advances 1 µs per poll: at 100 Gbps a token bucket refills
        // an MTU every 120 ns, so the limit never binds.
        let mut now = 1_000_000;
        let mut flows = Vec::new();
        while !tc.is_empty() {
            if let Some(p) = tc.dequeue(now) {
                flows.push(p.flow);
            }
            now += 1_000;
        }
        assert_eq!(flows, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn token_bucket_enforces_limit() {
        // 12 Mbps: 1 ms per MTU after the 2-packet bucket drains.
        let mut tc = BessTc::new(1, Rate::mbps(12));
        for i in 0..6u64 {
            tc.enqueue(0, Packet::mtu(i, 0, 0));
        }
        let mut sent_at = Vec::new();
        let mut now = 0;
        while !tc.is_empty() {
            if let Some(_p) = tc.dequeue(now) {
                sent_at.push(now);
            } else {
                now += 50_000; // poll every 50 µs
            }
            assert!(now < 1_000_000_000, "must finish");
        }
        assert_eq!(sent_at.len(), 6);
        // Long-run rate ≈ limit: 6 MTU = 72 kbit at 12 Mbps ⇒ ≥ ~4 ms minus
        // the 2-packet burst allowance.
        let span = *sent_at.last().unwrap();
        assert!(span >= 3_500_000, "drained too fast: {span} ns");
    }

    #[test]
    fn blocked_classes_do_not_starve_others() {
        let mut tc = BessTc::new(2, Rate::mbps(12));
        // Class 0 heavily backlogged; class 1 one packet.
        for i in 0..5u64 {
            tc.enqueue(0, Packet::mtu(i, 0, 0));
        }
        tc.enqueue(0, Packet::mtu(100, 1, 0));
        // After class 0's bucket empties, class 1 must still be served.
        let mut served1 = false;
        let mut now = 0;
        for _ in 0..200 {
            if let Some(p) = tc.dequeue(now) {
                if p.flow == 1 {
                    served1 = true;
                    break;
                }
            } else {
                now += 100_000;
            }
        }
        assert!(served1, "class 1 starved behind blocked class 0");
    }
}
