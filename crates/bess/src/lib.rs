//! # eiffel-bess — the busy-polling software-switch use cases
//!
//! The paper's userspace evaluation (§5.1.2, §5.1.3) runs inside BESS: a
//! single core busy-polls scheduler modules and the metric is the maximum
//! sustainable rate. This crate rebuilds those experiments:
//!
//! * [`hclock`] — hierarchical QoS (reservations/limits/shares): the
//!   min-heap baseline and the paper's Figure 11 Eiffel implementation;
//! * [`pfabric`] — least-remaining-first flow scheduling: the binary-heap
//!   baseline (O(n) re-heapify per rank change) and Eiffel's per-flow
//!   transaction over a hierarchical FFS queue;
//! * [`tc`] — BESS's module-per-flow traffic control, the second baseline
//!   of Figure 12;
//! * [`pktgen`] — the round-robin generator/annotator, with per-flow
//!   batching for Figure 13;
//! * [`harness`] — the one-core busy-poll rate measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod hclock;
pub mod pfabric;
pub mod pktgen;
pub mod tc;

pub use harness::{
    measure_rate, measure_rate_batched, measure_rate_sharded, measure_rate_threaded, BessScheduler,
    RateReport, ShardedRateReport, ThreadedRateReport, BATCH, WARMUP_FRACTION,
};
pub use hclock::{FlowSpec, HClockEiffel, HClockHeap};
pub use pfabric::{PfabricEiffel, PfabricHeap};
pub use pktgen::RoundRobinGen;
pub use tc::BessTc;
