//! pFabric scheduling — the §5.1.3 "Least/Largest X First" use case.
//!
//! Flows are ranked by *remaining size in packets*; "every incoming and
//! outgoing packet changes the rank of all other packets belonging to the
//! same flow, requiring on-dequeue ranking" (Figure 14). Two
//! implementations:
//!
//! * [`PfabricEiffel`] — the paper's: Eiffel per-flow ranking over a
//!   fixed-range hierarchical FFS queue (remaining size is a fixed-range
//!   integer; moving flows between buckets is O(1));
//! * [`PfabricHeap`] — the baseline "using O(log n) priority queue based on
//!   a Binary Heap": a flow's rank change re-heapifies, which "has an
//!   overhead of O(n) as it requires re-heapifying the heap every time".

use std::collections::VecDeque;

use eiffel_core::{QueueConfig, QueueKind};
use eiffel_pifo::policies::{ObjFlowPolicy, Pfabric};
use eiffel_pifo::FlowScheduler;
use eiffel_sim::{Nanos, Packet};

/// Maximum remaining size (in packets) the rank space must represent.
pub const MAX_REMAINING: u64 = 1 << 20;

/// Eiffel's pFabric: per-flow transaction + on-dequeue ranking over HFFS.
pub struct PfabricEiffel {
    inner: FlowScheduler<Box<dyn ObjFlowPolicy>>,
}

impl PfabricEiffel {
    /// Creates the scheduler.
    pub fn new() -> Self {
        PfabricEiffel {
            // `with_kind` (not `new`) so the scheduler knows the HFFS
            // backing is exact and keeps the batched-dequeue shortcut.
            inner: FlowScheduler::with_kind(
                Box::new(Pfabric) as Box<dyn ObjFlowPolicy>,
                QueueKind::HierFfs,
                QueueConfig::new(MAX_REMAINING as usize, 1, 0),
            ),
        }
    }

    /// Enqueues a packet whose `rank` field carries the flow's remaining
    /// size at emission.
    pub fn enqueue(&mut self, now: Nanos, pkt: Packet) {
        self.inner.enqueue(now, pkt);
    }

    /// Dequeues the packet of the flow with the least remaining size.
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.inner.dequeue(now)
    }

    /// Dequeues up to `max` packets in repeated-[`PfabricEiffel::dequeue`]
    /// order — the per-flow transaction's batched fast path: while the
    /// served flow's recomputed remaining size stays the strict minimum
    /// (the common case mid-flow, since serving only shrinks it), its next
    /// packet is handed out without the HFFS round trip.
    pub fn dequeue_batch(&mut self, now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        self.inner.dequeue_batch(now, max, out)
    }

    /// Queued packets.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Default for PfabricEiffel {
    fn default() -> Self {
        Self::new()
    }
}

/// Baseline: flows in one binary heap keyed by flow rank, re-heapified on
/// every rank change (the comparison-based cost the paper measures).
pub struct PfabricHeap {
    /// `(rank, flow)` heap array; re-built on rank changes.
    heap: Vec<(u64, u32)>,
    flows: Vec<FlowSlot>,
    len: usize,
}

#[derive(Debug, Default)]
struct FlowSlot {
    fifo: VecDeque<Packet>,
    rank: u64,
}

impl PfabricHeap {
    /// Creates the baseline scheduler.
    pub fn new() -> Self {
        PfabricHeap {
            heap: Vec::new(),
            flows: Vec::new(),
            len: 0,
        }
    }

    fn flow_mut(&mut self, id: u32) -> &mut FlowSlot {
        let idx = id as usize;
        if self.flows.len() <= idx {
            self.flows.resize_with(idx + 1, FlowSlot::default);
        }
        &mut self.flows[idx]
    }

    /// Restores the min-heap property over the whole array — the O(n)
    /// rebuild the paper attributes to this baseline.
    fn reheapify(&mut self) {
        let n = self.heap.len();
        for i in (0..n / 2).rev() {
            self.sift_down(i);
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut m = i;
            if l < n && self.heap[l] < self.heap[m] {
                m = l;
            }
            if r < n && self.heap[r] < self.heap[m] {
                m = r;
            }
            if m == i {
                return;
            }
            self.heap.swap(i, m);
            i = m;
        }
    }

    /// Enqueues a packet (`rank` = remaining size at emission).
    pub fn enqueue(&mut self, _now: Nanos, pkt: Packet) {
        let id = pkt.flow;
        let rank = pkt.rank;
        self.len += 1;
        let f = self.flow_mut(id);
        f.fifo.push_back(pkt);
        if f.fifo.len() == 1 {
            f.rank = rank;
            self.heap.push((rank, id));
            // Insertion at the tail: restore heap order.
            self.reheapify();
        } else if rank < f.rank {
            // Figure 14: f.rank = min(p.rank, f.rank) — rank changed, and
            // the heap must be fixed around the moved flow.
            f.rank = rank;
            if let Some(slot) = self.heap.iter_mut().find(|(_, fid)| *fid == id) {
                slot.0 = rank;
            }
            self.reheapify();
        }
    }

    /// Dequeues from the least-remaining flow, re-ranking it (on-dequeue).
    pub fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        if self.heap.is_empty() {
            return None;
        }
        let (_, id) = self.heap[0];
        let f = &mut self.flows[id as usize];
        let pkt = f.fifo.pop_front().expect("heap tracks backlogged flows");
        self.len -= 1;
        if let Some(head) = f.fifo.front() {
            // On-dequeue re-rank: min remaining is now the head's.
            f.rank = head.rank;
            self.heap[0].0 = head.rank;
            self.sift_down(0);
        } else {
            let last = self.heap.len() - 1;
            self.heap.swap(0, last);
            self.heap.pop();
            self.sift_down(0);
        }
        Some(pkt)
    }

    /// Queued packets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for PfabricHeap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, flow: u32, remaining: u64) -> Packet {
        let mut p = Packet::mtu(id, flow, 0);
        p.rank = remaining;
        p
    }

    /// Feed both implementations the same workload; dequeue order must
    /// agree on *flow remaining sizes* (SRPT behaviour).
    ///
    /// A pre-buffered burst is stamped with the flow's remaining size at
    /// emission time — constant (= total size) until transmissions start,
    /// exactly as a transport stamps packets in flight.
    #[test]
    fn heap_and_eiffel_agree_on_srpt_order() {
        let mut e = PfabricEiffel::new();
        let mut h = PfabricHeap::new();
        // Three flows with remaining sizes 3, 1, 2 packets.
        for (flow, size) in [(0u32, 3u64), (1, 1), (2, 2)] {
            for k in 0..size {
                e.enqueue(0, pkt(flow as u64 * 100 + k, flow, size));
                h.enqueue(0, pkt(flow as u64 * 100 + k, flow, size));
            }
        }
        let eo: Vec<u32> = std::iter::from_fn(|| e.dequeue(0))
            .map(|p| p.flow)
            .collect();
        let ho: Vec<u32> = std::iter::from_fn(|| h.dequeue(0))
            .map(|p| p.flow)
            .collect();
        // Shortest-remaining flow 1 first, then 2, then 0 — entirely.
        assert_eq!(eo, vec![1, 2, 2, 0, 0, 0]);
        assert_eq!(ho, eo);
    }

    /// Preemption: a new short flow must jump ahead of a long one mid-drain.
    #[test]
    fn short_flow_preempts_long_one_eiffel() {
        let mut e = PfabricEiffel::new();
        for k in 0..5u64 {
            e.enqueue(0, pkt(k, 0, 5));
        }
        assert_eq!(e.dequeue(0).unwrap().flow, 0);
        e.enqueue(0, pkt(100, 1, 1)); // short flow: 1 packet remaining
        assert_eq!(e.dequeue(0).unwrap().flow, 1, "short flow preempts");
        assert_eq!(e.dequeue(0).unwrap().flow, 0);
    }

    /// Same preemption behaviour from the heap baseline.
    #[test]
    fn short_flow_preempts_long_one_heap() {
        let mut h = PfabricHeap::new();
        for k in 0..5u64 {
            h.enqueue(0, pkt(k, 0, 5));
        }
        assert_eq!(h.dequeue(0).unwrap().flow, 0);
        h.enqueue(0, pkt(100, 1, 1));
        assert_eq!(h.dequeue(0).unwrap().flow, 1, "short flow preempts");
        assert_eq!(h.dequeue(0).unwrap().flow, 0);
    }

    #[test]
    fn conservation_under_churn() {
        let mut e = PfabricEiffel::new();
        let mut h = PfabricHeap::new();
        let mut x: u64 = 0xabcdef12345;
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 3 != 0 {
                let flow = (x % 64) as u32;
                let rem = 1 + (x >> 8) % 1_000;
                e.enqueue(0, pkt(step, flow, rem));
                h.enqueue(0, pkt(step, flow, rem));
                pushed += 1;
            } else {
                let a = e.dequeue(0);
                let b = h.dequeue(0);
                assert_eq!(a.is_some(), b.is_some());
                if a.is_some() {
                    popped += 1;
                }
            }
        }
        assert_eq!(e.len() as u64, pushed - popped);
        assert_eq!(h.len() as u64, pushed - popped);
    }
}
