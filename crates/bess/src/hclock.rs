//! hClock — hierarchical QoS with reservations, limits and shares
//! (Billaud & Gulati, EuroSys'13), the §5.1.2 use case.
//!
//! Two implementations of the same scheduling semantics:
//!
//! * [`HClockHeap`] — the baseline, "implemented based on its original
//!   specs": comparison-based min-heaps over flow tags, O(log n) per
//!   operation, with the limit check forcing pop-and-defer scans;
//! * [`HClockEiffel`] — the paper's Figure 11: the three per-flow ranks
//!   (`r_rank` reservation, `l_rank` limit, `s_rank` share) maintained by
//!   Eiffel primitives — time-indexed cFFS queues for the reservation and
//!   limit clocks (the "arbitrary shaper"), a bucketed queue with lazy
//!   epoch invalidation for the share rank (the per-flow transaction).
//!
//! Scheduling semantics (both implementations):
//! 1. *Reservation pass*: if some backlogged flow's `r_rank ≤ now`, serve
//!    the smallest `r_rank` (flows behind their guaranteed rate first);
//! 2. *Shares pass*: otherwise serve the smallest `s_rank` among flows
//!    whose `l_rank ≤ now` (limit-gated flows wait);
//! 3. nothing eligible → idle (limits make the scheduler non-work-
//!    conserving).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use eiffel_core::{CffsQueue, RankedQueue};
use eiffel_sim::{Nanos, Packet, Rate};

/// Per-flow QoS contract.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Guaranteed minimum rate.
    pub reservation: Rate,
    /// Maximum rate.
    pub limit: Rate,
    /// Proportional share weight.
    pub share: u64,
}

/// Per-flow scheduling state shared by both implementations.
#[derive(Debug)]
struct FlowState {
    spec: FlowSpec,
    fifo: VecDeque<Packet>,
    /// Reservation clock: next instant the flow is owed reserved service.
    r_rank: Nanos,
    /// Limit clock: next instant the flow may be served at all.
    l_rank: Nanos,
    /// Share virtual time (weighted virtual bytes).
    s_rank: u64,
    /// Packet size the memoized per-packet costs below were computed for
    /// (`u64::MAX` = none yet; packet sizes are `u32` so it can't collide).
    cost_bytes: u64,
    /// Memoized `tx_time` of `cost_bytes` on the reservation clock.
    r_cost: Nanos,
    /// Memoized `tx_time` of `cost_bytes` on the limit clock.
    l_cost: Nanos,
    /// Memoized `cost_bytes / share`.
    s_cost: u64,
}

impl FlowState {
    fn new(spec: FlowSpec) -> Self {
        FlowState {
            spec,
            fifo: VecDeque::new(),
            r_rank: 0,
            l_rank: 0,
            s_rank: 0,
            cost_bytes: u64::MAX,
            r_cost: 0,
            l_cost: 0,
            s_cost: 0,
        }
    }

    /// Advances the three clocks after serving `bytes` at `now` — the
    /// Figure 11 transaction body:
    /// `f.r_rank += p.size / f.reservation` (ns),
    /// `f.l_rank += p.size / f.limit` (ns),
    /// `f.s_rank += p.size / f.share` (virtual bytes).
    ///
    /// The three divisions depend only on `(spec, bytes)`, and a flow's
    /// packets are overwhelmingly one size (MTU or min-frame in every §5.1
    /// workload), so the costs are memoized per flow and recomputed only
    /// when the packet size changes — this halved the per-packet charge
    /// cost in the Figure 12 hot path (see EXPERIMENTS.md).
    fn charge(&mut self, now: Nanos, bytes: u64) {
        if bytes != self.cost_bytes {
            self.cost_bytes = bytes;
            self.r_cost = self
                .spec
                .reservation
                .tx_time(bytes)
                .unwrap_or(Nanos::MAX / 4);
            self.l_cost = self.spec.limit.tx_time(bytes).unwrap_or(Nanos::MAX / 4);
            self.s_cost = bytes / self.spec.share.max(1);
        }
        self.r_rank = self.r_rank.max(now) + self.r_cost;
        self.l_rank = self.l_rank.max(now) + self.l_cost;
        self.s_rank += self.s_cost;
    }
}

// ---------------------------------------------------------------------------
// Baseline: comparison-based heaps.
// ---------------------------------------------------------------------------

/// hClock on binary min-heaps (the original implementation's shape).
pub struct HClockHeap {
    flows: Vec<FlowState>,
    /// Min-heap over `(r_rank, flow)` of backlogged flows.
    res_heap: BinaryHeap<Reverse<(Nanos, u32)>>,
    /// Min-heap over `(s_rank, flow)` of backlogged flows.
    share_heap: BinaryHeap<Reverse<(u64, u32)>>,
    len: usize,
}

impl HClockHeap {
    /// Creates the scheduler with one spec per flow.
    pub fn new(specs: &[FlowSpec]) -> Self {
        HClockHeap {
            flows: specs.iter().map(|s| FlowState::new(*s)).collect(),
            res_heap: BinaryHeap::new(),
            share_heap: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Queued packets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues a packet to its flow.
    pub fn enqueue(&mut self, pkt: Packet) {
        let id = pkt.flow;
        let f = &mut self.flows[id as usize];
        f.fifo.push_back(pkt);
        self.len += 1;
        if f.fifo.len() == 1 {
            // Newly backlogged: enter both heaps (stale entries of earlier
            // busy periods are skipped lazily on pop).
            self.res_heap.push(Reverse((f.r_rank, id)));
            self.share_heap.push(Reverse((f.s_rank, id)));
        }
    }

    fn serve(&mut self, now: Nanos, id: u32) -> Packet {
        let f = &mut self.flows[id as usize];
        let pkt = f.fifo.pop_front().expect("chosen flows hold packets");
        self.len -= 1;
        f.charge(now, pkt.bytes as u64);
        if !f.fifo.is_empty() {
            self.res_heap.push(Reverse((f.r_rank, id)));
            self.share_heap.push(Reverse((f.s_rank, id)));
        }
        pkt
    }

    /// Dequeues per the two-pass semantics.
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        // Reservation pass: pop stale entries, serve an eligible minimum.
        while let Some(&Reverse((r, id))) = self.res_heap.peek() {
            let f = &self.flows[id as usize];
            if f.fifo.is_empty() || f.r_rank != r {
                self.res_heap.pop(); // stale
                continue;
            }
            if r <= now {
                self.res_heap.pop();
                // Its twin share entry goes stale and is skipped later.
                return Some(self.serve(now, id));
            }
            break; // earliest reservation is in the future
        }
        // Shares pass: smallest s_rank whose limit clock has passed; flows
        // still limit-gated are deferred and re-pushed (the heap cost the
        // paper calls out).
        let mut deferred: Vec<(u64, u32)> = Vec::new();
        let mut chosen: Option<u32> = None;
        while let Some(&Reverse((s, id))) = self.share_heap.peek() {
            let f = &self.flows[id as usize];
            if f.fifo.is_empty() || f.s_rank != s {
                self.share_heap.pop(); // stale
                continue;
            }
            if f.l_rank <= now {
                self.share_heap.pop();
                chosen = Some(id);
                break;
            }
            self.share_heap.pop();
            deferred.push((s, id));
        }
        for (s, id) in deferred {
            self.share_heap.push(Reverse((s, id)));
        }
        chosen.map(|id| self.serve(now, id))
    }

    /// Earliest instant anything could become eligible (for idle hosts).
    pub fn next_eligible(&self) -> Option<Nanos> {
        self.flows
            .iter()
            .filter(|f| !f.fifo.is_empty())
            .map(|f| f.r_rank.min(f.l_rank))
            .min()
    }
}

// ---------------------------------------------------------------------------
// Eiffel implementation (Figure 11).
// ---------------------------------------------------------------------------

/// hClock on Eiffel primitives: cFFS time queues for `r_rank`/`l_rank`,
/// epoch-stamped bucketed queue for `s_rank`.
pub struct HClockEiffel {
    flows: Vec<FlowState>,
    /// Epoch per flow for lazy invalidation in the share queue.
    epoch: Vec<u64>,
    /// Reservation clock queue: (flow, epoch) at rank `r_rank`.
    res_q: CffsQueue<(u32, u64)>,
    /// Share queue: (flow, epoch) at rank `s_rank`.
    share_q: CffsQueue<(u32, u64)>,
    /// Limit-gated flows parked until `l_rank` (the unified shaper).
    gated_q: CffsQueue<(u32, u64)>,
    /// Where each backlogged flow's valid entry lives.
    location: Vec<Location>,
    len: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Location {
    Idle,
    Shares,
    Gated,
}

impl HClockEiffel {
    /// Creates the scheduler.
    ///
    /// The time-indexed queues (reservation clock, limit gate) are sized
    /// from the *slowest* configured limit: one window half must cover the
    /// largest per-packet limit step, or gated flows would clamp into the
    /// overflow bucket and release early — "ranges for the queues are
    /// typically easy to figure out given a specific scheduling policy"
    /// (paper §3.1.1); this constructor figures them out.
    pub fn new(specs: &[FlowSpec]) -> Self {
        let n = specs.len();
        // Largest time advance a single MTU causes on any flow's l_rank.
        let max_step = specs
            .iter()
            .filter_map(|s| s.limit.tx_time(1_500))
            .max()
            .unwrap_or(1_000_000);
        let time_gran = (2 * max_step).div_ceil(65_536).max(1_000);
        HClockEiffel {
            flows: specs.iter().map(|s| FlowState::new(*s)).collect(),
            epoch: vec![0; n],
            res_q: CffsQueue::new(65_536, time_gran, 0),
            gated_q: CffsQueue::new(65_536, time_gran, 0),
            // Share ranks advance by bytes/weight: MTU-sized buckets.
            share_q: CffsQueue::new(65_536, 1_500, 0),
            location: vec![Location::Idle; n],
            len: 0,
        }
    }

    /// Queued packets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push_entries(&mut self, id: u32, now: Nanos) {
        // One valid entry in res_q (keyed by time) and one in either
        // share_q or gated_q depending on the limit clock.
        let f = &self.flows[id as usize];
        let e = self.epoch[id as usize];
        self.res_q
            .enqueue(f.r_rank, (id, e))
            .unwrap_or_else(|_| unreachable!("cFFS clamps"));
        if f.l_rank <= now {
            self.share_q
                .enqueue(f.s_rank, (id, e))
                .unwrap_or_else(|_| unreachable!("cFFS clamps"));
            self.location[id as usize] = Location::Shares;
        } else {
            self.gated_q
                .enqueue(f.l_rank, (id, e))
                .unwrap_or_else(|_| unreachable!("cFFS clamps"));
            self.location[id as usize] = Location::Gated;
        }
    }

    /// Enqueues a packet to its flow.
    pub fn enqueue(&mut self, now: Nanos, pkt: Packet) {
        let id = pkt.flow;
        self.flows[id as usize].fifo.push_back(pkt);
        self.len += 1;
        if self.flows[id as usize].fifo.len() == 1 {
            self.epoch[id as usize] += 1;
            self.push_entries(id, now);
        }
    }

    /// Moves limit-gated flows whose `l_rank` arrived into the share queue.
    fn release_gated(&mut self, now: Nanos) {
        // `dequeue_min_le` fuses the eligibility peek with the pop: one
        // bitmap descent per released flow instead of two.
        while let Some((_, (id, e))) = self.gated_q.dequeue_min_le(now) {
            if self.epoch[id as usize] != e || self.location[id as usize] != Location::Gated {
                continue; // stale
            }
            let f = &self.flows[id as usize];
            self.share_q
                .enqueue(f.s_rank, (id, e))
                .unwrap_or_else(|_| unreachable!("cFFS clamps"));
            self.location[id as usize] = Location::Shares;
        }
    }

    fn serve(&mut self, now: Nanos, id: u32) -> Packet {
        let f = &mut self.flows[id as usize];
        let pkt = f.fifo.pop_front().expect("chosen flows hold packets");
        self.len -= 1;
        f.charge(now, pkt.bytes as u64);
        self.epoch[id as usize] += 1; // all previous entries go stale
        if self.flows[id as usize].fifo.is_empty() {
            self.location[id as usize] = Location::Idle;
        } else {
            self.push_entries(id, now);
        }
        pkt
    }

    /// Dequeues per the two-pass semantics — every step O(1) word ops.
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.release_gated(now);
        self.dequeue_released(now)
    }

    /// The two passes, with the gated release already done.
    fn dequeue_released(&mut self, now: Nanos) -> Option<Packet> {
        // Reservation pass (fused peek+pop, as in `release_gated`).
        while let Some((_, (id, e))) = self.res_q.dequeue_min_le(now) {
            if self.epoch[id as usize] != e {
                continue; // stale
            }
            return Some(self.serve(now, id));
        }
        // Shares pass: skip stale entries lazily; valid entries here are
        // limit-eligible by construction (gated flows live in gated_q).
        while let Some((_, (id, e))) = self.share_q.dequeue_min() {
            if self.epoch[id as usize] != e || self.location[id as usize] != Location::Shares {
                continue; // stale
            }
            return Some(self.serve(now, id));
        }
        None
    }

    /// Dequeues up to `max` packets in repeated-[`HClockEiffel::dequeue`]
    /// order, appending them to `out`.
    ///
    /// The amortization: the gated→shares release scan runs once per batch
    /// instead of once per packet. That is exact, not approximate —
    /// between same-instant dequeues the only entries `serve` adds to the
    /// gate carry `l_rank > now`, which a repeated release scan at `now`
    /// would skip anyway (pinned by the bess batch-equivalence property
    /// test).
    pub fn dequeue_batch(&mut self, now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        if max == 0 {
            return 0;
        }
        self.release_gated(now);
        let mut n = 0;
        while n < max {
            match self.dequeue_released(now) {
                Some(p) => {
                    out.push(p);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Earliest instant anything could become eligible.
    pub fn next_eligible(&self) -> Option<Nanos> {
        let r = self.res_q.peek_min_rank();
        let g = self.gated_q.peek_min_rank();
        match (r, g) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: usize, res_mbps: u64, lim_mbps: u64, share: u64) -> Vec<FlowSpec> {
        (0..n)
            .map(|_| FlowSpec {
                reservation: Rate::mbps(res_mbps),
                limit: Rate::mbps(lim_mbps),
                share,
            })
            .collect()
    }

    fn mtu(id: u64, flow: u32) -> Packet {
        Packet::mtu(id, flow, 0)
    }

    /// Drive a scheduler to completion under a virtual clock, returning
    /// `(time, flow)` of each service.
    fn drain_heap(s: &mut HClockHeap, horizon: Nanos, step: Nanos) -> Vec<(Nanos, u32)> {
        let mut out = Vec::new();
        let mut now = 0;
        while now < horizon && !s.is_empty() {
            while let Some(p) = s.dequeue(now) {
                out.push((now, p.flow));
            }
            now += step;
        }
        out
    }

    fn drain_eiffel(s: &mut HClockEiffel, horizon: Nanos, step: Nanos) -> Vec<(Nanos, u32)> {
        let mut out = Vec::new();
        let mut now = 0;
        while now < horizon && !s.is_empty() {
            while let Some(p) = s.dequeue(now) {
                out.push((now, p.flow));
            }
            now += step;
        }
        out
    }

    /// Limits must cap throughput identically in both implementations.
    #[test]
    fn limits_cap_rate_in_both_implementations() {
        // One flow limited to 12 Mbps = 1 ms per MTU; 10 packets ⇒ ~9 ms.
        let sp = specs(1, 1, 12, 1);
        let mut heap = HClockHeap::new(&sp);
        let mut eiff = HClockEiffel::new(&sp);
        for i in 0..10 {
            heap.enqueue(mtu(i, 0));
            eiff.enqueue(0, mtu(i, 0));
        }
        let h = drain_heap(&mut heap, 100_000_000, 100_000);
        let e = drain_eiffel(&mut eiff, 100_000_000, 100_000);
        assert_eq!(h.len(), 10);
        assert_eq!(e.len(), 10);
        let h_last = h.last().unwrap().0 as f64;
        let e_last = e.last().unwrap().0 as f64;
        // Reservation of 1 Mbps lets the first ms go early; the bulk paces
        // at the 12 Mbps limit: total ≈ 9 ms.
        for (name, last) in [("heap", h_last), ("eiffel", e_last)] {
            assert!(
                (6.0e6..11.0e6).contains(&last),
                "{name}: drained in {last} ns, expected ≈9 ms"
            );
        }
    }

    /// Reservations get met before shares: a tiny-share flow with a big
    /// reservation must still receive its guaranteed rate.
    #[test]
    fn reservations_trump_shares() {
        let mut sp = specs(2, 1, 1_000, 100);
        sp[1] = FlowSpec {
            reservation: Rate::mbps(60),
            limit: Rate::mbps(1_000),
            share: 1,
        };
        let mut eiff = HClockEiffel::new(&sp);
        for i in 0..200 {
            eiff.enqueue(0, mtu(i, 0));
            eiff.enqueue(0, mtu(1_000 + i, 1));
        }
        // Serve at 120 Mbps total (one MTU per 100 µs) for 10 ms.
        let mut served = [0u32; 2];
        let mut now = 0;
        for _ in 0..100 {
            now += 100_000;
            if let Some(p) = eiff.dequeue(now) {
                served[p.flow as usize] += 1;
            }
        }
        // Flow 1 reserved 60 Mbps of the ~120 Mbps service: ≈ half the
        // packets despite 1/100th the share weight.
        assert!(
            served[1] >= 35,
            "reserved flow got {}/100 services, expected ≈50",
            served[1]
        );
    }

    /// With equal specs and backlogs, shares split service evenly in both
    /// implementations.
    #[test]
    fn equal_shares_split_evenly() {
        let sp = specs(4, 1, 1_000, 1);
        let mut heap = HClockHeap::new(&sp);
        let mut eiff = HClockEiffel::new(&sp);
        for i in 0..400u64 {
            let flow = (i % 4) as u32;
            heap.enqueue(mtu(i, flow));
            eiff.enqueue(0, mtu(i, flow));
        }
        for (name, counts) in [
            ("heap", {
                let v = drain_heap(&mut heap, 1_000_000_000, 10_000);
                let mut c = [0u32; 4];
                for (_, f) in v {
                    c[f as usize] += 1;
                }
                c
            }),
            ("eiffel", {
                let v = drain_eiffel(&mut eiff, 1_000_000_000, 10_000);
                let mut c = [0u32; 4];
                for (_, f) in v {
                    c[f as usize] += 1;
                }
                c
            }),
        ] {
            for (f, &c) in counts.iter().enumerate() {
                assert_eq!(c, 100, "{name}: flow {f} served {c}/100");
            }
        }
    }

    /// Weighted shares: weight-3 flow gets ~3x the service of weight-1.
    #[test]
    fn weighted_shares_divide_proportionally() {
        let mut sp = specs(2, 1, 10_000, 1);
        sp[0].share = 3;
        let mut eiff = HClockEiffel::new(&sp);
        for i in 0..800u64 {
            eiff.enqueue(0, mtu(i, (i % 2) as u32));
        }
        // Serve 200 packets under no meaningful limit.
        let mut served = [0u32; 2];
        let mut now = 0;
        for _ in 0..200 {
            now += 10_000;
            if let Some(p) = eiff.dequeue(now) {
                served[p.flow as usize] += 1;
            }
        }
        let ratio = served[0] as f64 / served[1].max(1) as f64;
        assert!(
            (2.0..4.5).contains(&ratio),
            "weight-3 flow got {}:{} (ratio {ratio}), expected ≈3",
            served[0],
            served[1]
        );
    }
}
