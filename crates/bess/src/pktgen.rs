//! The packet generator and round-robin annotator of §5.1.2.
//!
//! "We use a simple packet generator implemented in BESS and a simple
//! round robin annotator to distribute packets over traffic classes."
//! Per-flow batching (Figure 13) emits runs of packets from one flow
//! before advancing, modelling the Buffer modules the paper places before
//! Eiffel "per traffic class".

use eiffel_sim::{FlowId, Packet};

/// Round-robin generator over `flows` flows, optionally emitting per-flow
/// batches.
#[derive(Debug, Clone)]
pub struct RoundRobinGen {
    flows: u32,
    bytes: u32,
    /// Packets emitted from the current flow before advancing.
    batch: u32,
    cur_flow: u32,
    in_batch: u32,
    next_id: u64,
}

impl RoundRobinGen {
    /// Unbatched round-robin (`batch = 1`).
    pub fn new(flows: usize, bytes: u32) -> Self {
        Self::with_batch(flows, bytes, 1)
    }

    /// Per-flow batching: emit `batch` packets per flow before advancing.
    pub fn with_batch(flows: usize, bytes: u32, batch: u32) -> Self {
        assert!(flows > 0 && flows <= u32::MAX as usize);
        assert!(batch > 0);
        RoundRobinGen {
            flows: flows as u32,
            bytes,
            batch,
            cur_flow: 0,
            in_batch: 0,
            next_id: 0,
        }
    }

    /// Number of flows.
    pub fn flows(&self) -> u32 {
        self.flows
    }

    /// Emits the next packet at virtual time `now`.
    pub fn next(&mut self, now: u64) -> Packet {
        let p = Packet::new(self.next_id, self.cur_flow as FlowId, self.bytes, now);
        self.next_id += 1;
        self.in_batch += 1;
        if self.in_batch >= self.batch {
            self.in_batch = 0;
            self.cur_flow = (self.cur_flow + 1) % self.flows;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbatched_round_robin() {
        let mut g = RoundRobinGen::new(3, 1_500);
        let flows: Vec<u32> = (0..7).map(|_| g.next(0).flow).collect();
        assert_eq!(flows, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(g.next(0).id, 7);
    }

    #[test]
    fn per_flow_batching_emits_runs() {
        let mut g = RoundRobinGen::with_batch(2, 60, 3);
        let flows: Vec<u32> = (0..8).map(|_| g.next(0).flow).collect();
        assert_eq!(flows, vec![0, 0, 0, 1, 1, 1, 0, 0]);
        assert_eq!(g.next(0).bytes, 60);
    }
}
