//! Busy-polling rate measurement — the §5.1.2/§5.1.3 methodology.
//!
//! "A userspace implementation relies on busy polling on one or more CPU
//! cores to support different packet rates. Hence … we fix the number of
//! cores used, to one core …, and compare the different scheduler
//! implementations based on the maximum achievable rate."
//!
//! [`measure_rate`] runs a scheduler in a tight single-threaded loop for a
//! real-time duration: keep the backlog topped up from a generator, drain
//! in batches of 32 (BESS's batch unit), clock the scheduler with real
//! elapsed nanoseconds (so rate *limits* bind in real time), and report the
//! achieved rate. A CPU-bound scheduler lands below its configured limit;
//! an efficient one saturates it (capped at line rate by the caller).

use std::time::{Duration, Instant};

use eiffel_sim::{Nanos, Packet};

use crate::pktgen::RoundRobinGen;

/// Uniform face over the BESS scheduler modules.
pub trait BessScheduler {
    /// Accepts a packet.
    fn enqueue(&mut self, now: Nanos, pkt: Packet);
    /// Releases the next eligible packet, if any.
    fn dequeue(&mut self, now: Nanos) -> Option<Packet>;
    /// Queued packets.
    fn len(&self) -> usize;
    /// Whether no packets are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accepts a whole generator batch in one call, draining `pkts` in
    /// order — BESS hands schedulers `PacketBatch`es, not single packets.
    /// The default is the enqueue loop verbatim.
    fn enqueue_batch(&mut self, now: Nanos, pkts: &mut Vec<Packet>) {
        for pkt in pkts.drain(..) {
            self.enqueue(now, pkt);
        }
    }

    /// Releases up to `max` eligible packets in exactly the order repeated
    /// [`BessScheduler::dequeue`] calls would produce, appending them to
    /// `out`. Returns how many packets were moved.
    ///
    /// The default is the dequeue loop verbatim. The Eiffel modules
    /// override it with the queue-layer `dequeue_batch` fast paths (one
    /// min-find per bucket visit, per-flow transaction short-circuits);
    /// order equivalence is pinned by property test
    /// (`crates/bess/tests/batch_equivalence.rs`).
    fn dequeue_batch(&mut self, now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        let mut n = 0;
        while n < max {
            match self.dequeue(now) {
                Some(p) => {
                    out.push(p);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

impl BessScheduler for crate::hclock::HClockHeap {
    fn enqueue(&mut self, _now: Nanos, pkt: Packet) {
        crate::hclock::HClockHeap::enqueue(self, pkt);
    }
    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        crate::hclock::HClockHeap::dequeue(self, now)
    }
    fn len(&self) -> usize {
        crate::hclock::HClockHeap::len(self)
    }
}

impl BessScheduler for crate::hclock::HClockEiffel {
    fn enqueue(&mut self, now: Nanos, pkt: Packet) {
        crate::hclock::HClockEiffel::enqueue(self, now, pkt);
    }
    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        crate::hclock::HClockEiffel::dequeue(self, now)
    }
    fn len(&self) -> usize {
        crate::hclock::HClockEiffel::len(self)
    }
    fn dequeue_batch(&mut self, now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        crate::hclock::HClockEiffel::dequeue_batch(self, now, max, out)
    }
}

impl BessScheduler for crate::pfabric::PfabricEiffel {
    fn enqueue(&mut self, now: Nanos, pkt: Packet) {
        crate::pfabric::PfabricEiffel::enqueue(self, now, pkt);
    }
    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        crate::pfabric::PfabricEiffel::dequeue(self, now)
    }
    fn len(&self) -> usize {
        crate::pfabric::PfabricEiffel::len(self)
    }
    fn dequeue_batch(&mut self, now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        crate::pfabric::PfabricEiffel::dequeue_batch(self, now, max, out)
    }
}

impl BessScheduler for crate::pfabric::PfabricHeap {
    fn enqueue(&mut self, now: Nanos, pkt: Packet) {
        crate::pfabric::PfabricHeap::enqueue(self, now, pkt);
    }
    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        crate::pfabric::PfabricHeap::dequeue(self, now)
    }
    fn len(&self) -> usize {
        crate::pfabric::PfabricHeap::len(self)
    }
}

impl BessScheduler for crate::tc::BessTc {
    fn enqueue(&mut self, now: Nanos, pkt: Packet) {
        crate::tc::BessTc::enqueue(self, now, pkt);
    }
    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        crate::tc::BessTc::dequeue(self, now)
    }
    fn len(&self) -> usize {
        crate::tc::BessTc::len(self)
    }
}

/// Outcome of a busy-poll run.
#[derive(Debug, Clone, Copy)]
pub struct RateReport {
    /// Achieved packets per second.
    pub pps: f64,
    /// Achieved megabits per second.
    pub mbps: f64,
    /// Packets transmitted during the run.
    pub packets: u64,
}

/// BESS processes packets in batches of 32.
pub const BATCH: usize = 32;

/// Fraction of a [`measure_rate`] run spent as untimed warmup (see there).
pub const WARMUP_FRACTION: f64 = 0.1;

/// Burst-edge accounting for the measured window.
///
/// Heavily rate-limited workloads serve in synchronized bursts: at 120k
/// occupancy over 30k equal flows every limit clock fires ~72 ms apart, so
/// the wire carries ~360 Mbit spikes with silence between. A fixed window
/// then over- or under-counts by up to one burst — the ≤8% over-limit
/// residual PR 2 pinned was exactly a 400 ms window straddling 6 burst
/// instants where the limit owed 5.55.
///
/// The unbiased estimator clips the window to an integral number of burst
/// periods: snapshot `(elapsed, packets, bytes)` at every idle→busy
/// transition and rate over first-edge→last-edge. Smooth workloads (CPU-
/// bound, or gaps shorter than one poll iteration) produce no usable edge
/// span and fall back to the plain window, which is unbiased for them.
struct EdgeWindow {
    prev_idle: bool,
    first: Option<(Duration, u64, u64)>,
    last: Option<(Duration, u64, u64)>,
}

impl EdgeWindow {
    fn new() -> Self {
        EdgeWindow {
            prev_idle: false,
            first: None,
            last: None,
        }
    }

    /// Forgets warmup-era edges (call where the counters reset).
    fn reset(&mut self) {
        self.prev_idle = false;
        self.first = None;
        self.last = None;
    }

    /// Feeds one poll iteration: `pkts`/`bytes` are the counters *before*
    /// this iteration's drain, so an idle→busy edge snapshot sits exactly
    /// on the burst boundary.
    fn observe(&mut self, at: Duration, pkts: u64, bytes: u64, drained: usize) {
        if drained > 0 && self.prev_idle {
            let snap = (at, pkts, bytes);
            if self.first.is_none() {
                self.first = Some(snap);
            }
            self.last = Some(snap);
        }
        self.prev_idle = drained == 0;
    }

    /// `(seconds, packets, bytes)` to rate over: the edge-to-edge span when
    /// it covers at least half the window (enough periods to be
    /// representative), else the full window.
    fn span(&self, window: Duration, pkts: u64, bytes: u64) -> (f64, u64, u64) {
        if let (Some((t0, p0, b0)), Some((t1, p1, b1))) = (self.first, self.last) {
            let span = t1.saturating_sub(t0);
            if !span.is_zero() && span >= window / 2 {
                return (span.as_secs_f64(), p1 - p0, b1 - b0);
            }
        }
        (window.as_secs_f64().max(1e-9), pkts, bytes)
    }
}

/// Busy-polls `sched` for `duration` (real time), topping the backlog up to
/// `occupancy` packets from `gen` and draining in batches of [`BATCH`].
///
/// `stamp` is the annotator hook: it ranks packets before they enter the
/// scheduler (pFabric stamps remaining sizes here).
///
/// The first [`WARMUP_FRACTION`] of `duration` runs the same loop untimed:
/// the pre-filled backlog is stamped at `now = 0`, so every flow's limit
/// clock starts eligible and the whole backlog drains as one burst before
/// rate limits bind. Counting only after the warmup keeps that artifact
/// out of the reported steady-state rate (without it, reported rates
/// exceed the configured aggregate limit at high occupancy). Within the
/// measured window, bursty service is rated edge-to-edge over whole burst
/// periods (`EdgeWindow`) — this removes the partial-period aliasing
/// that used to read up to ~8% over the configured limit at 120k
/// occupancy (pinned by `tests/measure_rate_regression.rs`).
pub fn measure_rate<S: BessScheduler>(
    sched: &mut S,
    gen: &mut RoundRobinGen,
    stamp: &mut impl FnMut(&mut Packet),
    occupancy: usize,
    duration: Duration,
) -> RateReport {
    // Pre-fill to the working occupancy so the measured loop runs at the
    // intended backlog — the paper's schedulers hold thousands of queued
    // packets, and the baselines' costs scale with that backlog.
    {
        let now0 = 0;
        while sched.len() < occupancy {
            let mut p = gen.next(now0);
            stamp(&mut p);
            sched.enqueue(now0, p);
        }
    }
    let warmup = duration.mul_f64(WARMUP_FRACTION);
    let total = duration + warmup;
    let start = Instant::now();
    let mut sent_pkts = 0u64;
    let mut sent_bytes = 0u64;
    let mut measured_from = Duration::ZERO;
    let mut warming = true;
    let mut edges = EdgeWindow::new();
    loop {
        let elapsed = start.elapsed();
        if elapsed >= total {
            break;
        }
        if warming && elapsed >= warmup {
            // Steady state reached: discard the warmup burst and start
            // the measured window here.
            warming = false;
            sent_pkts = 0;
            sent_bytes = 0;
            measured_from = elapsed;
            edges.reset();
        }
        let now = elapsed.as_nanos() as Nanos;
        let (pre_pkts, pre_bytes) = (sent_pkts, sent_bytes);
        // Consumer side: one batch.
        let mut drained = 0;
        for _ in 0..BATCH {
            match sched.dequeue(now) {
                Some(p) => {
                    sent_pkts += 1;
                    sent_bytes += p.bytes as u64;
                    drained += 1;
                }
                None => break,
            }
        }
        edges.observe(elapsed, pre_pkts, pre_bytes, drained);
        // Producer side: replace what left, keeping occupancy constant
        // (enqueue cost stays inside the measured loop, as in BESS).
        for _ in 0..drained {
            let mut p = gen.next(now);
            stamp(&mut p);
            sched.enqueue(now, p);
        }
    }
    let window = start.elapsed() - measured_from;
    let (secs, pkts, bytes) = edges.span(window, sent_pkts, sent_bytes);
    RateReport {
        pps: pkts as f64 / secs,
        mbps: bytes as f64 * 8.0 / secs / 1e6,
        packets: sent_pkts,
    }
}

/// [`measure_rate`] with the batched trait entry points: the consumer side
/// drains up to `batch` packets per [`BessScheduler::dequeue_batch`] call
/// and the producer refills through [`BessScheduler::enqueue_batch`] —
/// the per-flow-batching machinery of Figure 13 applied to the scheduler's
/// own dequeue path. `batch = 1` degenerates to packet-at-a-time polling.
pub fn measure_rate_batched<S: BessScheduler>(
    sched: &mut S,
    gen: &mut RoundRobinGen,
    stamp: &mut impl FnMut(&mut Packet),
    occupancy: usize,
    duration: Duration,
    batch: usize,
) -> RateReport {
    let batch = batch.max(1);
    {
        let now0 = 0;
        while sched.len() < occupancy {
            let mut p = gen.next(now0);
            stamp(&mut p);
            sched.enqueue(now0, p);
        }
    }
    let warmup = duration.mul_f64(WARMUP_FRACTION);
    let total = duration + warmup;
    let start = Instant::now();
    let mut sent_pkts = 0u64;
    let mut sent_bytes = 0u64;
    let mut measured_from = Duration::ZERO;
    let mut warming = true;
    let mut edges = EdgeWindow::new();
    let mut outbuf: Vec<Packet> = Vec::with_capacity(batch);
    let mut inbuf: Vec<Packet> = Vec::with_capacity(batch);
    loop {
        let elapsed = start.elapsed();
        if elapsed >= total {
            break;
        }
        if warming && elapsed >= warmup {
            warming = false;
            sent_pkts = 0;
            sent_bytes = 0;
            measured_from = elapsed;
            edges.reset();
        }
        let now = elapsed.as_nanos() as Nanos;
        let (pre_pkts, pre_bytes) = (sent_pkts, sent_bytes);
        outbuf.clear();
        let drained = sched.dequeue_batch(now, batch, &mut outbuf);
        for p in &outbuf {
            sent_pkts += 1;
            sent_bytes += p.bytes as u64;
        }
        edges.observe(elapsed, pre_pkts, pre_bytes, drained);
        for _ in 0..drained {
            let mut p = gen.next(now);
            stamp(&mut p);
            inbuf.push(p);
        }
        sched.enqueue_batch(now, &mut inbuf);
    }
    let window = start.elapsed() - measured_from;
    let (secs, pkts, bytes) = edges.span(window, sent_pkts, sent_bytes);
    RateReport {
        pps: pkts as f64 / secs,
        mbps: bytes as f64 * 8.0 / secs / 1e6,
        packets: sent_pkts,
    }
}

/// Outcome of a sharded busy-poll run.
#[derive(Debug, Clone)]
pub struct ShardedRateReport {
    /// Aggregate across all shards.
    pub total: RateReport,
    /// Per-shard achieved packets per second.
    pub per_shard_pps: Vec<f64>,
}

/// Busy-polls `shards.len()` scheduler instances round-robin on one
/// physical core, flows pinned to shards by [`eiffel_sim::shard_of`].
///
/// This is the scale-out shape of the §5.1.2/§5.1.3 deployments: each
/// simulated core owns one scheduler over `flows / N` of the flow set, so
/// per-shard structures shrink with the shard count (a heap gets shallower;
/// Eiffel's bucket walk was never depth-bound to begin with — the contrast
/// Figure 15's sharded panels record). The shards time-slice *one* physical
/// core here, so the aggregate is the core's total scheduling capacity, not
/// an N-core extrapolation; per-shard rates are reported for that reading.
pub fn measure_rate_sharded<S: BessScheduler>(
    shards: &mut [S],
    gen: &mut RoundRobinGen,
    stamp: &mut impl FnMut(&mut Packet),
    occupancy: usize,
    duration: Duration,
    batch: usize,
) -> ShardedRateReport {
    assert!(!shards.is_empty(), "at least one shard");
    let n_shards = shards.len();
    let batch = batch.max(1);
    {
        let now0 = 0;
        let mut held = 0;
        while held < occupancy {
            let mut p = gen.next(now0);
            stamp(&mut p);
            shards[eiffel_sim::shard_of(p.flow, n_shards)].enqueue(now0, p);
            held += 1;
        }
    }
    let warmup = duration.mul_f64(WARMUP_FRACTION);
    let total = duration + warmup;
    let start = Instant::now();
    let mut sent_pkts = vec![0u64; n_shards];
    let mut sent_bytes = 0u64;
    let mut measured_from = Duration::ZERO;
    let mut warming = true;
    let mut outbuf: Vec<Packet> = Vec::with_capacity(batch);
    let mut inbufs: Vec<Vec<Packet>> = vec![Vec::with_capacity(batch); n_shards];
    let mut cursor = 0usize;
    loop {
        let elapsed = start.elapsed();
        if elapsed >= total {
            break;
        }
        if warming && elapsed >= warmup {
            warming = false;
            sent_pkts.iter_mut().for_each(|c| *c = 0);
            sent_bytes = 0;
            measured_from = elapsed;
        }
        let now = elapsed.as_nanos() as Nanos;
        // Consumer side: one batch from the shard whose turn it is (the
        // round-robin core schedule). Exactly one shard visit per clock
        // read, whatever the shard count — otherwise the harness overhead
        // per packet would shrink with N and inflate sharded readings.
        let s = cursor;
        cursor = (cursor + 1) % n_shards;
        outbuf.clear();
        let drained = shards[s].dequeue_batch(now, batch, &mut outbuf);
        sent_pkts[s] += drained as u64;
        for p in &outbuf {
            sent_bytes += p.bytes as u64;
        }
        // Producer side: replace what left, routed by the flow hash (the
        // refill may land on any shard; totals stay at `occupancy`).
        for _ in 0..drained {
            let mut p = gen.next(now);
            stamp(&mut p);
            inbufs[eiffel_sim::shard_of(p.flow, n_shards)].push(p);
        }
        for (s, shard) in shards.iter_mut().enumerate() {
            if !inbufs[s].is_empty() {
                shard.enqueue_batch(now, &mut inbufs[s]);
            }
        }
    }
    let secs = (start.elapsed() - measured_from).as_secs_f64();
    let packets: u64 = sent_pkts.iter().sum();
    ShardedRateReport {
        total: RateReport {
            pps: packets as f64 / secs,
            mbps: sent_bytes as f64 * 8.0 / secs / 1e6,
            packets,
        },
        per_shard_pps: sent_pkts.iter().map(|&c| c as f64 / secs).collect(),
    }
}

/// Outcome of a threaded busy-poll run.
#[derive(Debug, Clone)]
pub struct ThreadedRateReport {
    /// Aggregate across all shard threads, over the **wall-clock** measured
    /// window.
    pub total: RateReport,
    /// Per-shard achieved packets per second.
    pub per_shard_pps: Vec<f64>,
    /// Times the feeder found a shard's ring full (backpressure, retried).
    pub ring_full_retries: u64,
}

/// Per-shard statistics slots for [`measure_rate_threaded`].
const TC_PKTS: usize = 0;
const TC_BYTES: usize = 1;
type RateCounters = eiffel_core::CounterBlock<2>;

/// Busy-polls `shards.len()` scheduler instances on **real OS threads**,
/// one scheduler per thread, flows pinned to shards by
/// [`eiffel_sim::shard_of`] — the actual multi-worker BESS deployment shape,
/// where [`measure_rate_sharded`] only time-slices one core.
///
/// The calling thread plays the feeder: it keeps each shard's backlog
/// (SPSC ring + scheduler) topped up to its share of `occupancy`, reading
/// each shard's transmit counters lock-free ([`eiffel_core::CounterBlock`])
/// to size the refill. Shard threads pop arrivals from their ring, drain
/// their scheduler in `batch`es, and publish packet/byte counters; there
/// are no locks anywhere — rings and single-writer atomics only.
///
/// On a machine with fewer physical cores than `shards.len() + 1` the
/// threads time-slice, so the aggregate reads as the machine's total
/// scheduling capacity (like the round-robin harness) rather than a
/// per-core multiple; per-shard rates are reported for that reading.
pub fn measure_rate_threaded<S: BessScheduler + Send>(
    shards: Vec<S>,
    gen: &mut RoundRobinGen,
    stamp: &mut impl FnMut(&mut Packet),
    occupancy: usize,
    duration: Duration,
    batch: usize,
) -> ThreadedRateReport {
    use eiffel_core::ring::SpscRing;

    assert!(!shards.is_empty(), "at least one shard");
    let n_shards = shards.len();
    let batch = batch.max(1);
    let ring_cap = (occupancy / n_shards).max(BATCH) * 2;

    let mut data_tx = Vec::with_capacity(n_shards);
    let mut data_rx = Vec::with_capacity(n_shards);
    let mut stop_tx = Vec::with_capacity(n_shards);
    let mut stop_rx = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let (tx, rx) = SpscRing::<Packet>::new(ring_cap);
        data_tx.push(tx);
        data_rx.push(rx);
        let (tx, rx) = SpscRing::<()>::new(1);
        stop_tx.push(tx);
        stop_rx.push(rx);
    }
    let counters: Vec<RateCounters> = (0..n_shards).map(|_| RateCounters::new()).collect();

    // Pre-fill each scheduler to its occupancy share at now = 0, exactly
    // like the single-threaded harnesses, and remember how much each shard
    // holds (ring + scheduler) for the refill arithmetic.
    let mut shards = shards;
    let mut pushed = vec![0u64; n_shards];
    {
        let now0 = 0;
        let mut held = 0;
        while held < occupancy {
            let mut p = gen.next(now0);
            stamp(&mut p);
            let s = eiffel_sim::shard_of(p.flow, n_shards);
            shards[s].enqueue(now0, p);
            pushed[s] += 1;
            held += 1;
        }
    }

    let warmup = duration.mul_f64(WARMUP_FRACTION);
    let total = duration + warmup;
    let start = Instant::now();
    let mut ring_full_retries = 0u64;
    let mut warm_pkts = vec![0u64; n_shards];
    let mut warm_bytes = vec![0u64; n_shards];
    let mut warming = true;
    let mut measured_from = Duration::ZERO;
    let mut measured_secs = 0.0f64;
    let mut finals: Vec<(u64, u64)> = Vec::with_capacity(n_shards);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_shards);
        for (i, mut sched) in shards.into_iter().enumerate().rev() {
            let mut ring = data_rx.pop().expect("one ring per shard");
            let mut stop = stop_rx.pop().expect("one stop ring per shard");
            let stats = &counters[i];
            handles.push(scope.spawn(move || {
                let mut inbuf: Vec<Packet> = Vec::with_capacity(BATCH);
                let mut outbuf: Vec<Packet> = Vec::with_capacity(batch);
                let mut pkts = 0u64;
                let mut bytes = 0u64;
                loop {
                    if stop.pop().is_some() {
                        break;
                    }
                    let now = start.elapsed().as_nanos() as Nanos;
                    // Arrivals from the feeder.
                    inbuf.clear();
                    if ring.pop_batch(BATCH, &mut inbuf) > 0 {
                        sched.enqueue_batch(now, &mut inbuf);
                    }
                    // One drain batch per clock read, as in the
                    // single-threaded harnesses.
                    outbuf.clear();
                    let drained = sched.dequeue_batch(now, batch, &mut outbuf);
                    if drained == 0 {
                        // Nothing eligible: share the core (single-CPU
                        // machines run the feeder on the same core).
                        std::thread::yield_now();
                        continue;
                    }
                    pkts += drained as u64;
                    for p in &outbuf {
                        bytes += p.bytes as u64;
                    }
                    stats.set(TC_PKTS, pkts);
                    stats.set(TC_BYTES, bytes);
                }
                (pkts, bytes)
            }));
        }
        handles.reverse();

        // Feeder loop: replace what left, routed by the flow hash exactly
        // as in `measure_rate_sharded`. A packet whose ring is full waits
        // in a per-shard pending buffer (it counts as held, so the global
        // occupancy target still bounds everything outstanding).
        let mut pending: Vec<std::collections::VecDeque<Packet>> =
            vec![std::collections::VecDeque::new(); n_shards];
        loop {
            let elapsed = start.elapsed();
            if elapsed >= total {
                break;
            }
            if warming && elapsed >= warmup {
                warming = false;
                measured_from = elapsed;
                for (s, c) in counters.iter().enumerate() {
                    warm_pkts[s] = c.read(TC_PKTS);
                    warm_bytes[s] = c.read(TC_BYTES);
                }
            }
            let now = elapsed.as_nanos() as Nanos;
            let mut fed = false;
            // Flush pending arrivals first (FIFO per shard).
            for (s, q) in pending.iter_mut().enumerate() {
                while let Some(p) = q.pop_front() {
                    match data_tx[s].push(p) {
                        Ok(()) => {
                            pushed[s] += 1;
                            fed = true;
                        }
                        Err(back) => {
                            q.push_front(back);
                            ring_full_retries += 1;
                            break;
                        }
                    }
                }
            }
            // Held anywhere = (pushed − transmitted) + still pending.
            let held: u64 = (0..n_shards)
                .map(|s| {
                    pushed[s].saturating_sub(counters[s].read(TC_PKTS)) + pending[s].len() as u64
                })
                .sum();
            for _ in held..occupancy as u64 {
                let mut p = gen.next(now);
                stamp(&mut p);
                let s = eiffel_sim::shard_of(p.flow, n_shards);
                match data_tx[s].push(p) {
                    Ok(()) => {
                        pushed[s] += 1;
                        fed = true;
                    }
                    Err(back) => {
                        ring_full_retries += 1;
                        pending[s].push_back(back);
                    }
                }
            }
            if !fed {
                std::thread::yield_now();
            }
        }
        let end = start.elapsed();
        measured_secs = (end - measured_from).as_secs_f64();
        for tx in stop_tx.iter_mut() {
            let _ = tx.push(());
        }
        for h in handles {
            finals.push(h.join().expect("shard thread panicked"));
        }
    });

    let secs = measured_secs.max(1e-9);
    let mut per_shard_pps = Vec::with_capacity(n_shards);
    let mut pkts_total = 0u64;
    let mut bytes_total = 0u64;
    for (s, &(pkts, bytes)) in finals.iter().enumerate() {
        let p = pkts.saturating_sub(warm_pkts[s]);
        pkts_total += p;
        bytes_total += bytes.saturating_sub(warm_bytes[s]);
        per_shard_pps.push(p as f64 / secs);
    }
    ThreadedRateReport {
        total: RateReport {
            pps: pkts_total as f64 / secs,
            mbps: bytes_total as f64 * 8.0 / secs / 1e6,
            packets: pkts_total,
        },
        per_shard_pps,
        ring_full_retries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hclock::{FlowSpec, HClockEiffel};
    use crate::pfabric::PfabricEiffel;
    use eiffel_sim::Rate;

    /// Equal per-flow specs whose limits sum to `agg_mbps`.
    pub fn flat_specs(flows: usize, agg_mbps: u64) -> Vec<FlowSpec> {
        let per = (agg_mbps / flows as u64).max(1);
        (0..flows)
            .map(|_| FlowSpec {
                reservation: Rate::kbps(100),
                limit: Rate::mbps(per),
                share: 1,
            })
            .collect()
    }

    #[test]
    fn limits_bind_in_real_time() {
        // 16 flows, 160 Mbps aggregate limit: any modern core can saturate
        // this, so the measured rate must sit *at* the limit, not above.
        let specs = flat_specs(16, 160);
        let mut s = HClockEiffel::new(&specs);
        let mut gen = RoundRobinGen::new(16, 1_500);
        let r = measure_rate(
            &mut s,
            &mut gen,
            &mut |_| {},
            64,
            Duration::from_millis(200),
        );
        assert!(
            r.mbps > 100.0 && r.mbps < 200.0,
            "rate {:.1} Mbps should hug the 160 Mbps limit",
            r.mbps
        );
    }

    #[test]
    fn batched_rate_limits_still_bind() {
        // The batched consumer path must not let a rate-limited scheduler
        // exceed its configured aggregate.
        let specs = flat_specs(16, 160);
        let mut s = HClockEiffel::new(&specs);
        let mut gen = RoundRobinGen::new(16, 1_500);
        let r = measure_rate_batched(
            &mut s,
            &mut gen,
            &mut |_| {},
            64,
            Duration::from_millis(200),
            16,
        );
        assert!(
            r.mbps > 100.0 && r.mbps < 200.0,
            "batched rate {:.1} Mbps should hug the 160 Mbps limit",
            r.mbps
        );
    }

    #[test]
    fn sharded_rate_sums_shard_contributions() {
        let mut shards: Vec<PfabricEiffel> = (0..4).map(|_| PfabricEiffel::new()).collect();
        let mut gen = RoundRobinGen::new(64, 1_500);
        let mut remaining = vec![0u64; 64];
        let mut stamper = |p: &mut Packet| {
            let rem = &mut remaining[p.flow as usize];
            if *rem == 0 {
                *rem = 64;
            }
            p.rank = *rem;
            *rem -= 1;
        };
        let r = measure_rate_sharded(
            &mut shards,
            &mut gen,
            &mut stamper,
            256,
            Duration::from_millis(100),
            8,
        );
        assert_eq!(r.per_shard_pps.len(), 4);
        let sum: f64 = r.per_shard_pps.iter().sum();
        assert!(
            (sum - r.total.pps).abs() / r.total.pps < 1e-6,
            "per-shard rates sum to the aggregate"
        );
        assert!(r.total.pps > 100_000.0, "got {}", r.total.pps);
        // Every shard with flows hashed to it made progress.
        assert!(r.per_shard_pps.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn threaded_rate_runs_real_threads_and_limits_bind() {
        // 2 shard threads, rate-limited schedulers: the wall-clock rate
        // must hug the configured aggregate (160 Mbps), proving the rings
        // keep the backlog fed and the limit clocks run on real time.
        let specs = flat_specs(16, 160);
        let shards: Vec<HClockEiffel> = (0..2).map(|_| HClockEiffel::new(&specs)).collect();
        let mut gen = RoundRobinGen::new(16, 1_500);
        let r = measure_rate_threaded(
            shards,
            &mut gen,
            &mut |_| {},
            64,
            Duration::from_millis(200),
            8,
        );
        assert_eq!(r.per_shard_pps.len(), 2);
        assert!(
            r.total.mbps > 100.0 && r.total.mbps < 220.0,
            "threaded rate {:.1} Mbps should hug the 160 Mbps limit",
            r.total.mbps
        );
        let sum: f64 = r.per_shard_pps.iter().sum();
        assert!(
            (sum - r.total.pps).abs() / r.total.pps.max(1.0) < 1e-6,
            "per-shard rates sum to the aggregate"
        );
    }

    #[test]
    fn unlimited_scheduler_is_cpu_bound_not_zero() {
        let mut s = PfabricEiffel::new();
        let mut gen = RoundRobinGen::new(100, 1_500);
        let mut remaining = vec![0u64; 100];
        let mut stamper = |p: &mut Packet| {
            // Simple decreasing-remaining stamper.
            let rem = &mut remaining[p.flow as usize];
            if *rem == 0 {
                *rem = 100;
            }
            p.rank = *rem;
            *rem -= 1;
        };
        let r = measure_rate(
            &mut s,
            &mut gen,
            &mut stamper,
            256,
            Duration::from_millis(100),
        );
        assert!(
            r.pps > 100_000.0,
            "an FFS scheduler must push >100kpps, got {}",
            r.pps
        );
    }
}
