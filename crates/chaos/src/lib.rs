//! # eiffel-chaos — deterministic fault injection and overload control
//!
//! The figure harnesses assume a well-behaved world: shards never stall,
//! rings never stay full, timers never slip. This crate is the seeded
//! counterfactual. A [`FaultPlan`] is a list of per-shard fault windows
//! (stalls, timer jitter, consumer slowdown, ring squeezes, completion
//! loss) generated from a seed so the virtual-clock and OS-thread
//! runtimes in `eiffel-qdisc` can replay the *same* plan; an
//! [`AdmitPolicy`] decides what happens when a qdisc backlog exceeds its
//! budget (tail drop, rank-aware priority drop, ECN-style marking); a
//! [`WatchdogConfig`] sizes the heartbeat-based stall detector that
//! drives drain-and-redistribute recovery in the threaded runtime.
//!
//! Everything here is plain data plus cheap pure queries — the injection
//! itself happens at the `Shard::{ingress,softirq,rearm}` seams in
//! `eiffel-qdisc`, which asks a compiled per-shard [`ShardFaults`] view
//! "am I stalled now?", "how late does this timer fire?", and so on.
//! Determinism is load-bearing: every query is a pure function of
//! (seed, shard, time, sequence number), so a failing chaos run can be
//! replayed bit-for-bit from its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod plan;
pub mod watchdog;

pub use admission::{Admission, AdmitPolicy};
pub use plan::{FaultFamily, FaultKind, FaultPlan, FaultWindow, ShardFaults};
pub use watchdog::WatchdogConfig;

/// Everything the runtimes need to run one chaos experiment: the fault
/// plan to replay, the admission policy guarding every qdisc enqueue, and
/// (for the threaded runtime) the watchdog that detects stalled shards.
///
/// The `Default` value is the well-behaved world: no faults, unlimited
/// admission, no watchdog — configs that embed a `ChaosConfig` behave
/// exactly as before when left at default.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// Fault windows to replay (empty = no faults).
    pub plan: FaultPlan,
    /// Admission policy applied on every qdisc enqueue.
    pub admit: AdmitPolicy,
    /// Heartbeat watchdog for the threaded runtime; `None` disables
    /// detection and redistribution (faulted shards are simply waited on).
    pub watchdog: Option<WatchdogConfig>,
}

impl ChaosConfig {
    /// True when this config changes nothing about a run: no fault
    /// windows, unlimited admission, and no watchdog.
    pub fn is_noop(&self) -> bool {
        self.plan.is_empty()
            && matches!(self.admit, AdmitPolicy::Unlimited)
            && self.watchdog.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_noop() {
        assert!(ChaosConfig::default().is_noop());
        let c = ChaosConfig {
            plan: FaultPlan::new(7).stall(0, 10, 20),
            ..Default::default()
        };
        assert!(!c.is_noop());
        let c = ChaosConfig {
            admit: AdmitPolicy::TailDrop { cap: 4 },
            ..Default::default()
        };
        assert!(!c.is_noop());
    }
}
