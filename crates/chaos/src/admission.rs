//! Overload admission policies for qdisc enqueue.
//!
//! The shaping qdiscs historically grew without bound under overload —
//! every emitted packet was admitted and backlog was only limited by the
//! producer's TSQ budget. Under fault injection that assumption breaks
//! (a stalled shard's qdisc keeps receiving redirected or pre-rung
//! packets), so admission becomes an explicit, counted decision:
//!
//! * **tail drop** — classic `pfifo`-style: arriving packet is dropped
//!   once the backlog hits the cap;
//! * **priority drop** — pFabric-style: the *worst-ranked* resident
//!   packet is evicted (via the backend's `dequeue_max` path) to make
//!   room for the arrival, so overload sheds low-value traffic first;
//! * **ECN marking** — RED-lite: arrivals above `mark_at` are admitted
//!   but counted as marked, and dropped only at the hard cap. The mark
//!   rides the packet ([`Packet::ecn`](eiffel_sim::Packet)) back to the
//!   source on the completion path, where closed-loop transports
//!   (`eiffel_workloads::ClosedLoopSource`) react to it.
//!
//! The decision is a pure function of the backlog length so both
//! runtimes apply identical policy, and the caller does the actual
//! dropping/evicting/marking plus counter accounting.
//!
//! ## Memory-pressure tiers
//!
//! When the host runs under a [`MemBudget`](eiffel_core::MemBudget),
//! admission additionally consults the budget's
//! [`DegradeTier`] and tightens itself ([`AdmitPolicy::decide_tiered`]):
//!
//! * **pressure** — mark harder: the ECN threshold drops to a quarter of
//!   its configured value, so closed-loop sources back off while memory
//!   is still available;
//! * **shed** — the effective cap halves and over-cap arrivals evict
//!   the *worst-ranked* resident packet (the bucketed queues'
//!   `dequeue_max` path) instead of tail-dropping, converting memory
//!   pressure into targeted lowest-priority loss;
//! * **refuse** — admission stays in shed mode; refusing *new flow
//!   setup* is the producer's job (it consults the same tier before
//!   establishing a flow), because admission only ever sees packets of
//!   flows that already exist.
//!
//! `Unlimited` ignores the tiers: it exists to model the historical
//! unbounded rig and stays unbounded. Tiering it would silently turn
//! baseline runs into capped ones.

use eiffel_core::DegradeTier;

/// Admission policy applied on every qdisc enqueue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmitPolicy {
    /// Admit everything (the historical behavior).
    #[default]
    Unlimited,
    /// Drop the arriving packet once `cap` packets are resident.
    TailDrop {
        /// Maximum resident packets.
        cap: usize,
    },
    /// At `cap`, evict the worst-ranked resident packet to admit the
    /// arrival; callers fall back to tail drop when the backend has no
    /// max-eviction path.
    PriorityDrop {
        /// Maximum resident packets.
        cap: usize,
    },
    /// Admit-and-mark above `mark_at`, drop at `cap`.
    EcnMark {
        /// Hard cap: arrivals are dropped at this backlog.
        cap: usize,
        /// Marking threshold: arrivals at or above this backlog are
        /// admitted but ECN-marked.
        mark_at: usize,
    },
}

/// What to do with one arriving packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueue normally.
    Enqueue,
    /// Enqueue, counting an ECN mark.
    EnqueueMarked,
    /// Drop the arriving packet.
    DropArriving,
    /// Evict the worst-ranked resident packet, then enqueue the arrival.
    EvictWorst,
}

impl AdmitPolicy {
    /// Decides admission for one arrival given the current backlog (in
    /// packets) of the target qdisc.
    pub fn decide(&self, backlog: usize) -> Admission {
        match *self {
            AdmitPolicy::Unlimited => Admission::Enqueue,
            AdmitPolicy::TailDrop { cap } => {
                if backlog >= cap.max(1) {
                    Admission::DropArriving
                } else {
                    Admission::Enqueue
                }
            }
            AdmitPolicy::PriorityDrop { cap } => {
                if backlog >= cap.max(1) {
                    Admission::EvictWorst
                } else {
                    Admission::Enqueue
                }
            }
            AdmitPolicy::EcnMark { cap, mark_at } => {
                if backlog >= cap.max(1) {
                    Admission::DropArriving
                } else if backlog >= mark_at {
                    Admission::EnqueueMarked
                } else {
                    Admission::Enqueue
                }
            }
        }
    }

    /// Decides admission for one arrival under a memory-pressure tier.
    /// `DegradeTier::Normal` is exactly [`AdmitPolicy::decide`]; higher
    /// tiers tighten the policy as described in the module docs.
    pub fn decide_tiered(&self, backlog: usize, tier: DegradeTier) -> Admission {
        match (*self, tier) {
            (_, DegradeTier::Normal) | (AdmitPolicy::Unlimited, _) => self.decide(backlog),
            (AdmitPolicy::EcnMark { cap, mark_at }, DegradeTier::Pressure) => {
                AdmitPolicy::EcnMark {
                    cap,
                    mark_at: (mark_at / 4).max(1),
                }
                .decide(backlog)
            }
            (p, DegradeTier::Pressure) => p.decide(backlog),
            // Shed and Refuse: halve the cap, evict-worst past it, and
            // (for ECN) mark from an eighth of the tightened cap.
            (p, DegradeTier::Shed | DegradeTier::Refuse) => {
                let cap = p.cap().expect("non-Unlimited has a cap").div_ceil(2);
                if backlog >= cap {
                    Admission::EvictWorst
                } else if matches!(p, AdmitPolicy::EcnMark { .. }) && backlog >= (cap / 8).max(1) {
                    Admission::EnqueueMarked
                } else {
                    Admission::Enqueue
                }
            }
        }
    }

    /// The hard backlog cap, if the policy has one.
    pub fn cap(&self) -> Option<usize> {
        match *self {
            AdmitPolicy::Unlimited => None,
            AdmitPolicy::TailDrop { cap }
            | AdmitPolicy::PriorityDrop { cap }
            | AdmitPolicy::EcnMark { cap, .. } => Some(cap.max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_admits() {
        assert_eq!(
            AdmitPolicy::Unlimited.decide(usize::MAX),
            Admission::Enqueue
        );
        assert_eq!(AdmitPolicy::Unlimited.cap(), None);
    }

    #[test]
    fn tail_drop_at_cap() {
        let p = AdmitPolicy::TailDrop { cap: 4 };
        assert_eq!(p.decide(3), Admission::Enqueue);
        assert_eq!(p.decide(4), Admission::DropArriving);
        assert_eq!(p.decide(400), Admission::DropArriving);
        assert_eq!(p.cap(), Some(4));
    }

    #[test]
    fn priority_drop_evicts_at_cap() {
        let p = AdmitPolicy::PriorityDrop { cap: 4 };
        assert_eq!(p.decide(3), Admission::Enqueue);
        assert_eq!(p.decide(4), Admission::EvictWorst);
    }

    #[test]
    fn ecn_marks_then_drops() {
        let p = AdmitPolicy::EcnMark { cap: 8, mark_at: 4 };
        assert_eq!(p.decide(3), Admission::Enqueue);
        assert_eq!(p.decide(4), Admission::EnqueueMarked);
        assert_eq!(p.decide(7), Admission::EnqueueMarked);
        assert_eq!(p.decide(8), Admission::DropArriving);
    }

    #[test]
    fn normal_tier_is_identical_to_untiered() {
        let policies = [
            AdmitPolicy::Unlimited,
            AdmitPolicy::TailDrop { cap: 16 },
            AdmitPolicy::PriorityDrop { cap: 16 },
            AdmitPolicy::EcnMark {
                cap: 16,
                mark_at: 8,
            },
        ];
        for p in policies {
            for backlog in 0..40 {
                assert_eq!(
                    p.decide_tiered(backlog, DegradeTier::Normal),
                    p.decide(backlog)
                );
            }
        }
    }

    #[test]
    fn pressure_tier_marks_harder() {
        let p = AdmitPolicy::EcnMark {
            cap: 64,
            mark_at: 32,
        };
        assert_eq!(
            p.decide_tiered(7, DegradeTier::Pressure),
            Admission::Enqueue
        );
        assert_eq!(
            p.decide_tiered(8, DegradeTier::Pressure),
            Admission::EnqueueMarked,
            "mark threshold drops to mark_at/4"
        );
        assert_eq!(
            p.decide_tiered(63, DegradeTier::Pressure),
            Admission::EnqueueMarked,
            "hard cap unchanged under pressure"
        );
        assert_eq!(
            p.decide_tiered(64, DegradeTier::Pressure),
            Admission::DropArriving
        );
        // Non-ECN policies are untouched by the pressure tier.
        let t = AdmitPolicy::TailDrop { cap: 16 };
        assert_eq!(t.decide_tiered(15, DegradeTier::Pressure), t.decide(15));
    }

    #[test]
    fn shed_tier_halves_cap_and_evicts_worst() {
        let p = AdmitPolicy::EcnMark {
            cap: 64,
            mark_at: 32,
        };
        for tier in [DegradeTier::Shed, DegradeTier::Refuse] {
            assert_eq!(p.decide_tiered(3, tier), Admission::Enqueue);
            assert_eq!(
                p.decide_tiered(4, tier),
                Admission::EnqueueMarked,
                "marks from an eighth of the tightened cap"
            );
            assert_eq!(
                p.decide_tiered(32, tier),
                Admission::EvictWorst,
                "over the halved cap, shed lowest priority"
            );
        }
        let t = AdmitPolicy::TailDrop { cap: 16 };
        assert_eq!(t.decide_tiered(8, DegradeTier::Shed), Admission::EvictWorst);
        assert_eq!(t.decide_tiered(7, DegradeTier::Shed), Admission::Enqueue);
    }

    #[test]
    fn unlimited_ignores_tiers() {
        for tier in [
            DegradeTier::Pressure,
            DegradeTier::Shed,
            DegradeTier::Refuse,
        ] {
            assert_eq!(
                AdmitPolicy::Unlimited.decide_tiered(1 << 20, tier),
                Admission::Enqueue
            );
        }
    }

    #[test]
    fn zero_caps_are_clamped_to_one() {
        // A zero cap would otherwise admit nothing and wedge finite
        // workloads silently; clamp to "at least one resident packet".
        assert_eq!(
            AdmitPolicy::TailDrop { cap: 0 }.decide(0),
            Admission::Enqueue
        );
        assert_eq!(AdmitPolicy::TailDrop { cap: 0 }.cap(), Some(1));
    }
}
