//! Overload admission policies for qdisc enqueue.
//!
//! The shaping qdiscs historically grew without bound under overload —
//! every emitted packet was admitted and backlog was only limited by the
//! producer's TSQ budget. Under fault injection that assumption breaks
//! (a stalled shard's qdisc keeps receiving redirected or pre-rung
//! packets), so admission becomes an explicit, counted decision:
//!
//! * **tail drop** — classic `pfifo`-style: arriving packet is dropped
//!   once the backlog hits the cap;
//! * **priority drop** — pFabric-style: the *worst-ranked* resident
//!   packet is evicted (via the backend's `dequeue_max` path) to make
//!   room for the arrival, so overload sheds low-value traffic first;
//! * **ECN marking** — RED-lite: arrivals above `mark_at` are admitted
//!   but counted as marked (we model the mark signal, not the sender's
//!   response — no closed congestion loop in this rig), and dropped only
//!   at the hard cap.
//!
//! The decision is a pure function of the backlog length so both
//! runtimes apply identical policy, and the caller does the actual
//! dropping/evicting/marking plus counter accounting.

/// Admission policy applied on every qdisc enqueue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmitPolicy {
    /// Admit everything (the historical behavior).
    #[default]
    Unlimited,
    /// Drop the arriving packet once `cap` packets are resident.
    TailDrop {
        /// Maximum resident packets.
        cap: usize,
    },
    /// At `cap`, evict the worst-ranked resident packet to admit the
    /// arrival; callers fall back to tail drop when the backend has no
    /// max-eviction path.
    PriorityDrop {
        /// Maximum resident packets.
        cap: usize,
    },
    /// Admit-and-mark above `mark_at`, drop at `cap`.
    EcnMark {
        /// Hard cap: arrivals are dropped at this backlog.
        cap: usize,
        /// Marking threshold: arrivals at or above this backlog are
        /// admitted but ECN-marked.
        mark_at: usize,
    },
}

/// What to do with one arriving packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueue normally.
    Enqueue,
    /// Enqueue, counting an ECN mark.
    EnqueueMarked,
    /// Drop the arriving packet.
    DropArriving,
    /// Evict the worst-ranked resident packet, then enqueue the arrival.
    EvictWorst,
}

impl AdmitPolicy {
    /// Decides admission for one arrival given the current backlog (in
    /// packets) of the target qdisc.
    pub fn decide(&self, backlog: usize) -> Admission {
        match *self {
            AdmitPolicy::Unlimited => Admission::Enqueue,
            AdmitPolicy::TailDrop { cap } => {
                if backlog >= cap.max(1) {
                    Admission::DropArriving
                } else {
                    Admission::Enqueue
                }
            }
            AdmitPolicy::PriorityDrop { cap } => {
                if backlog >= cap.max(1) {
                    Admission::EvictWorst
                } else {
                    Admission::Enqueue
                }
            }
            AdmitPolicy::EcnMark { cap, mark_at } => {
                if backlog >= cap.max(1) {
                    Admission::DropArriving
                } else if backlog >= mark_at {
                    Admission::EnqueueMarked
                } else {
                    Admission::Enqueue
                }
            }
        }
    }

    /// The hard backlog cap, if the policy has one.
    pub fn cap(&self) -> Option<usize> {
        match *self {
            AdmitPolicy::Unlimited => None,
            AdmitPolicy::TailDrop { cap }
            | AdmitPolicy::PriorityDrop { cap }
            | AdmitPolicy::EcnMark { cap, .. } => Some(cap.max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_admits() {
        assert_eq!(
            AdmitPolicy::Unlimited.decide(usize::MAX),
            Admission::Enqueue
        );
        assert_eq!(AdmitPolicy::Unlimited.cap(), None);
    }

    #[test]
    fn tail_drop_at_cap() {
        let p = AdmitPolicy::TailDrop { cap: 4 };
        assert_eq!(p.decide(3), Admission::Enqueue);
        assert_eq!(p.decide(4), Admission::DropArriving);
        assert_eq!(p.decide(400), Admission::DropArriving);
        assert_eq!(p.cap(), Some(4));
    }

    #[test]
    fn priority_drop_evicts_at_cap() {
        let p = AdmitPolicy::PriorityDrop { cap: 4 };
        assert_eq!(p.decide(3), Admission::Enqueue);
        assert_eq!(p.decide(4), Admission::EvictWorst);
    }

    #[test]
    fn ecn_marks_then_drops() {
        let p = AdmitPolicy::EcnMark { cap: 8, mark_at: 4 };
        assert_eq!(p.decide(3), Admission::Enqueue);
        assert_eq!(p.decide(4), Admission::EnqueueMarked);
        assert_eq!(p.decide(7), Admission::EnqueueMarked);
        assert_eq!(p.decide(8), Admission::DropArriving);
    }

    #[test]
    fn zero_caps_are_clamped_to_one() {
        // A zero cap would otherwise admit nothing and wedge finite
        // workloads silently; clamp to "at least one resident packet".
        assert_eq!(
            AdmitPolicy::TailDrop { cap: 0 }.decide(0),
            Admission::Enqueue
        );
        assert_eq!(AdmitPolicy::TailDrop { cap: 0 }.cap(), Some(1));
    }
}
