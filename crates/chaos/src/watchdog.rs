//! Heartbeat watchdog configuration.
//!
//! Every shard thread bumps a heartbeat counter each scheduling loop
//! iteration while it is making progress; the producer samples those
//! counters every `check_every` of wall time. A shard whose heartbeat
//! has not moved for `stall_after` is declared *suspect*: new packets
//! for flows homed there are redistributed to live shards via the same
//! stable `shard_of` hash the normal path uses (restricted to the live
//! set), and lost completion credits are reconciled against the shard's
//! published transmit counters. When the heartbeat moves again the shard
//! is restored and its flows return home. Packets already inside a
//! suspect shard are not stolen — injected stalls are pauses, not kills,
//! so draining in place preserves per-shard FIFO for what was already
//! rung; conservation (not cross-shard ordering) is the invariant the
//! recovery path maintains.

use eiffel_sim::time::WallNanos;

/// Watchdog tuning for the threaded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// How often the producer samples shard heartbeats.
    pub check_every: WallNanos,
    /// How long a heartbeat must be flat before the shard is suspect.
    /// Must be ≥ `check_every` (detection happens at sample points).
    pub stall_after: WallNanos,
}

impl Default for WatchdogConfig {
    /// 1 ms sampling, 5 ms stall threshold — an order of magnitude above
    /// the scheduler-jitter pauses a healthy busy-polling shard shows,
    /// two orders below the injected stalls the chaos tests use.
    fn default() -> Self {
        WatchdogConfig {
            check_every: WallNanos::from_nanos(1_000_000),
            stall_after: WallNanos::from_nanos(5_000_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_are_ordered() {
        let w = WatchdogConfig::default();
        assert!(w.check_every.as_nanos() > 0);
        assert!(w.stall_after >= w.check_every);
    }
}
