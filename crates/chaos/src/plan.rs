//! Seeded fault plans and their compiled per-shard views.
//!
//! A [`FaultPlan`] is a flat list of [`FaultWindow`]s — "shard 2 is
//! stalled from t=3ms to t=7ms", "shard 0's timers fire up to 200µs late
//! between t=1ms and t=4ms". Plans are built either explicitly through
//! the builder methods (tests pin exact scenarios) or by [`FaultPlan::storm`],
//! which derives a whole storm of windows from `(seed, intensity)` so a
//! sweep can turn one scalar knob and stay reproducible.
//!
//! Runtimes never scan the flat list on the hot path: they call
//! [`FaultPlan::compile`] once per shard and query the resulting
//! [`ShardFaults`], which holds only that shard's windows sorted by start
//! time (typically zero to a handful — a linear scan is cheaper than any
//! index).

use eiffel_sim::{Nanos, SplitMix64};

/// What a fault window does to its shard while active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The shard makes no progress at all: no ingress, no softirq, no
    /// timer fires. Models a descheduled/paused core. In the threaded
    /// runtime the shard thread parks; its rings fill and the producer
    /// sees backpressure, and (if configured) the watchdog redistributes
    /// new work to live shards.
    Stall,
    /// Softirq timers fire late by a deterministic per-fire jitter in
    /// `[0, max_delay]`. Models timer coalescing / late hrtimer callbacks.
    TimerJitter {
        /// Upper bound on the added delay per fire.
        max_delay: Nanos,
    },
    /// Each packet released by softirq costs an extra `per_packet_ns` of
    /// consumer time. Models a slow downstream (NIC descriptor pressure,
    /// cache-cold peer) without stopping progress entirely.
    SlowConsumer {
        /// Added cost per released packet.
        per_packet_ns: Nanos,
    },
    /// The shard's ingress ring behaves as if its capacity were
    /// `min(real, capacity)`. Models memory pressure / shrunken descriptor
    /// rings; the producer sees early backpressure.
    RingSqueeze {
        /// Effective ring capacity during the window (≥ 1 enforced at
        /// query time).
        capacity: usize,
    },
    /// One in `drop_1_in` completion messages from this shard is lost
    /// (deterministically, by completion sequence number). Models a lossy
    /// completion path; without reconciliation the producer's TSQ budget
    /// leaks and flows wedge. Threaded runtime only — the virtual-clock
    /// runtime has no completion ring to lose messages on.
    CompletionLoss {
        /// Drop every `drop_1_in`-th completion (≥ 2 enforced at query
        /// time).
        drop_1_in: u32,
    },
}

/// A fault applied to one shard over a half-open time window `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// Target shard index.
    pub shard: usize,
    /// Window start (inclusive), in the runtime's clock domain — virtual
    /// nanoseconds for `sharded::drive`, wall nanoseconds since run start
    /// for the threaded runtime. Plans are clock-agnostic; the same plan
    /// replays on both.
    pub from: Nanos,
    /// Window end (exclusive). Windows always end: an injected stall is a
    /// pause, never a permanent kill, so every plan terminates.
    pub until: Nanos,
    /// What the window does.
    pub kind: FaultKind,
}

impl FaultWindow {
    fn active(&self, now: Nanos) -> bool {
        self.from <= now && now < self.until
    }
}

/// The five fault families, for storm generation and sweep axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFamily {
    /// Shard pause windows.
    Stall,
    /// Late timer fires.
    TimerJitter,
    /// Per-packet consumer slowdown.
    SlowConsumer,
    /// Ring capacity squeezes.
    RingSqueeze,
    /// Lost completion messages.
    CompletionLoss,
}

impl FaultFamily {
    /// All five families, in a stable order.
    pub const ALL: [FaultFamily; 5] = [
        FaultFamily::Stall,
        FaultFamily::TimerJitter,
        FaultFamily::SlowConsumer,
        FaultFamily::RingSqueeze,
        FaultFamily::CompletionLoss,
    ];

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultFamily::Stall => "stall",
            FaultFamily::TimerJitter => "timer-jitter",
            FaultFamily::SlowConsumer => "slow-consumer",
            FaultFamily::RingSqueeze => "ring-squeeze",
            FaultFamily::CompletionLoss => "completion-loss",
        }
    }
}

/// A seeded list of fault windows.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the deterministic per-fire draws (timer jitter) — kept
    /// even for hand-built plans so replays are pinned by the plan alone.
    pub seed: u64,
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// Empty plan with a seed for per-fire draws.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            windows: Vec::new(),
        }
    }

    /// True when no windows are present (fast-path guard for runtimes).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// All windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    fn push(mut self, shard: usize, from: Nanos, until: Nanos, kind: FaultKind) -> Self {
        assert!(
            from < until,
            "fault window must be non-empty: {from}..{until}"
        );
        self.windows.push(FaultWindow {
            shard,
            from,
            until,
            kind,
        });
        self
    }

    /// Adds a stall window.
    pub fn stall(self, shard: usize, from: Nanos, until: Nanos) -> Self {
        self.push(shard, from, until, FaultKind::Stall)
    }

    /// Adds a timer-jitter window.
    pub fn timer_jitter(self, shard: usize, from: Nanos, until: Nanos, max_delay: Nanos) -> Self {
        self.push(shard, from, until, FaultKind::TimerJitter { max_delay })
    }

    /// Adds a consumer-slowdown window.
    pub fn slow_consumer(
        self,
        shard: usize,
        from: Nanos,
        until: Nanos,
        per_packet_ns: Nanos,
    ) -> Self {
        self.push(
            shard,
            from,
            until,
            FaultKind::SlowConsumer { per_packet_ns },
        )
    }

    /// Adds a ring-squeeze window.
    pub fn ring_squeeze(self, shard: usize, from: Nanos, until: Nanos, capacity: usize) -> Self {
        self.push(shard, from, until, FaultKind::RingSqueeze { capacity })
    }

    /// Adds a completion-loss window.
    pub fn completion_loss(self, shard: usize, from: Nanos, until: Nanos, drop_1_in: u32) -> Self {
        self.push(shard, from, until, FaultKind::CompletionLoss { drop_1_in })
    }

    /// Generates a storm of fault windows over `[0, horizon)` across
    /// `shards` shards, scaled by `intensity` in `[0, 1]`, drawing only
    /// from the given `families`. Zero intensity yields an empty plan; at
    /// intensity 1 roughly a third of each shard's timeline is under some
    /// fault. Fully deterministic in `(seed, shards, horizon, intensity,
    /// families)`.
    pub fn storm(
        seed: u64,
        shards: usize,
        horizon: Nanos,
        intensity: f64,
        families: &[FaultFamily],
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "intensity must be in [0,1]"
        );
        let mut plan = FaultPlan::new(seed);
        if intensity == 0.0 || horizon == 0 || families.is_empty() {
            return plan;
        }
        let mut rng = SplitMix64::new(seed ^ 0xc4a0_5eed);
        for shard in 0..shards {
            for &family in families {
                // 1–3 windows per (shard, family), more at higher intensity.
                let count = 1 + rng.next_below(1 + (intensity * 2.0) as u64) as usize;
                for _ in 0..count {
                    // Window length: up to intensity/3 of the horizon so even
                    // a full-intensity storm leaves every shard live most of
                    // the time (stalls must be recoverable, not kills).
                    let max_len = ((horizon as f64) * intensity / 3.0) as u64;
                    let len = 1 + rng.next_below(max_len.max(1));
                    let from = rng.next_below(horizon.saturating_sub(len).max(1));
                    let until = (from + len).min(horizon);
                    if from >= until {
                        continue;
                    }
                    let kind = match family {
                        FaultFamily::Stall => FaultKind::Stall,
                        FaultFamily::TimerJitter => FaultKind::TimerJitter {
                            max_delay: 1 + (intensity * 200_000.0) as u64, // ≤ 200µs
                        },
                        FaultFamily::SlowConsumer => FaultKind::SlowConsumer {
                            per_packet_ns: 1 + (intensity * 2_000.0) as u64, // ≤ 2µs/pkt
                        },
                        FaultFamily::RingSqueeze => FaultKind::RingSqueeze {
                            capacity: 2 + rng.next_below(14) as usize, // 2..16 slots
                        },
                        FaultFamily::CompletionLoss => FaultKind::CompletionLoss {
                            // Higher intensity → more frequent loss (1-in-16
                            // down to 1-in-2).
                            drop_1_in: (16.0 - intensity * 14.0) as u32,
                        },
                    };
                    plan.windows.push(FaultWindow {
                        shard,
                        from,
                        until,
                        kind,
                    });
                }
            }
        }
        plan
    }

    /// Compiles the per-shard view used on the hot path.
    pub fn compile(&self, shard: usize) -> ShardFaults {
        let mut windows: Vec<FaultWindow> = self
            .windows
            .iter()
            .filter(|w| w.shard == shard)
            .copied()
            .collect();
        windows.sort_by_key(|w| (w.from, w.until));
        ShardFaults {
            shard,
            seed: self.seed,
            windows,
        }
    }

    /// Every window edge (start or end), sorted and deduplicated — the
    /// "fault boundaries" at which conservation audits run.
    pub fn boundaries(&self) -> Vec<Nanos> {
        let mut edges: Vec<Nanos> = self
            .windows
            .iter()
            .flat_map(|w| [w.from, w.until])
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}

/// One shard's compiled fault view. All queries are pure functions of
/// `(plan seed, shard, now, sequence numbers)`, so both runtimes replay
/// identical fault behavior for identical plans.
#[derive(Debug, Clone)]
pub struct ShardFaults {
    shard: usize,
    seed: u64,
    windows: Vec<FaultWindow>,
}

impl ShardFaults {
    /// A view with no faults (for shards outside any plan).
    pub fn none(shard: usize) -> Self {
        ShardFaults {
            shard,
            seed: 0,
            windows: Vec::new(),
        }
    }

    /// True when this shard has no windows at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Is the shard inside a stall window at `now`?
    pub fn stalled(&self, now: Nanos) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::Stall) && w.active(now))
    }

    /// End of the stall window covering `now`, if any. When nested or
    /// overlapping stalls cover `now`, the latest end wins.
    pub fn stall_until(&self, now: Nanos) -> Option<Nanos> {
        self.windows
            .iter()
            .filter(|w| matches!(w.kind, FaultKind::Stall) && w.active(now))
            .map(|w| w.until)
            .max()
    }

    /// Extra delay for the `fire_seq`-th timer fire at `now`: zero outside
    /// jitter windows, otherwise a deterministic draw in `[0, max_delay]`
    /// keyed by `(seed, shard, fire_seq)`.
    pub fn timer_extra_delay(&self, now: Nanos, fire_seq: u64) -> Nanos {
        let max_delay = self
            .windows
            .iter()
            .filter_map(|w| match w.kind {
                FaultKind::TimerJitter { max_delay } if w.active(now) => Some(max_delay),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        if max_delay == 0 {
            return 0;
        }
        let mut rng =
            SplitMix64::new(self.seed ^ (self.shard as u64).wrapping_mul(0x9e37_79b9) ^ fire_seq);
        rng.next_below(max_delay + 1)
    }

    /// Extra consumer cost per released packet at `now` (sum of active
    /// slowdown windows — overlapping slowdowns compound).
    pub fn consumer_penalty_ns(&self, now: Nanos) -> Nanos {
        self.windows
            .iter()
            .filter_map(|w| match w.kind {
                FaultKind::SlowConsumer { per_packet_ns } if w.active(now) => Some(per_packet_ns),
                _ => None,
            })
            .sum()
    }

    /// Effective ingress-ring capacity at `now` given the real capacity
    /// `base` (tightest active squeeze wins; never below 1).
    pub fn ring_capacity(&self, now: Nanos, base: usize) -> usize {
        self.windows
            .iter()
            .filter_map(|w| match w.kind {
                FaultKind::RingSqueeze { capacity } if w.active(now) => Some(capacity.max(1)),
                _ => None,
            })
            .min()
            .unwrap_or(base)
            .min(base)
    }

    /// Should the `seq`-th completion message sent at `now` be lost?
    pub fn lose_completion(&self, now: Nanos, seq: u64) -> bool {
        self.windows.iter().any(|w| match w.kind {
            FaultKind::CompletionLoss { drop_1_in } if w.active(now) => {
                seq % u64::from(drop_1_in.max(2)) == 0
            }
            _ => false,
        })
    }

    /// The next window edge strictly after `after`, if any — where the
    /// shard's fault behavior next changes.
    pub fn next_change(&self, after: Nanos) -> Option<Nanos> {
        self.windows
            .iter()
            .flat_map(|w| [w.from, w.until])
            .filter(|&t| t > after)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let f = FaultPlan::new(1).stall(0, 10, 20).compile(0);
        assert!(!f.stalled(9));
        assert!(f.stalled(10));
        assert!(f.stalled(19));
        assert!(!f.stalled(20));
        assert_eq!(f.stall_until(15), Some(20));
        assert_eq!(f.stall_until(20), None);
    }

    #[test]
    fn compile_filters_by_shard() {
        let plan = FaultPlan::new(1).stall(0, 0, 10).stall(2, 5, 15);
        assert!(plan.compile(0).stalled(5));
        assert!(!plan.compile(1).stalled(5));
        assert!(plan.compile(2).stalled(5));
        assert!(plan.compile(7).is_empty());
    }

    #[test]
    fn overlapping_stalls_take_latest_end() {
        let f = FaultPlan::new(1).stall(0, 0, 10).stall(0, 5, 30).compile(0);
        assert_eq!(f.stall_until(6), Some(30));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let f = FaultPlan::new(42).timer_jitter(1, 100, 200, 50).compile(1);
        for fire in 0..100 {
            let d = f.timer_extra_delay(150, fire);
            assert!(d <= 50, "delay {d} over bound");
            assert_eq!(d, f.timer_extra_delay(150, fire), "same fire, same delay");
        }
        assert_eq!(f.timer_extra_delay(99, 0), 0, "outside window");
        assert_eq!(f.timer_extra_delay(200, 0), 0, "window end is exclusive");
        // Not all fires get the same delay (the draw is per-fire).
        let distinct: std::collections::HashSet<_> =
            (0..100).map(|k| f.timer_extra_delay(150, k)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn slowdowns_compound_and_squeezes_tighten() {
        let f = FaultPlan::new(1)
            .slow_consumer(0, 0, 100, 10)
            .slow_consumer(0, 50, 100, 5)
            .ring_squeeze(0, 0, 100, 8)
            .ring_squeeze(0, 50, 100, 4)
            .compile(0);
        assert_eq!(f.consumer_penalty_ns(10), 10);
        assert_eq!(f.consumer_penalty_ns(60), 15);
        assert_eq!(f.ring_capacity(10, 1024), 8);
        assert_eq!(f.ring_capacity(60, 1024), 4);
        assert_eq!(f.ring_capacity(10, 4), 4, "squeeze never grows the ring");
        assert_eq!(
            f.ring_capacity(200, 1024),
            1024,
            "no squeeze outside windows"
        );
    }

    #[test]
    fn completion_loss_is_periodic_in_seq() {
        let f = FaultPlan::new(1).completion_loss(0, 0, 100, 4).compile(0);
        let lost: Vec<u64> = (0..16).filter(|&s| f.lose_completion(50, s)).collect();
        assert_eq!(lost, vec![0, 4, 8, 12]);
        assert!(!f.lose_completion(100, 0), "outside window nothing is lost");
    }

    #[test]
    fn storm_is_deterministic_and_scales_with_intensity() {
        let a = FaultPlan::storm(9, 4, 1_000_000, 0.5, &FaultFamily::ALL);
        let b = FaultPlan::storm(9, 4, 1_000_000, 0.5, &FaultFamily::ALL);
        assert_eq!(a.windows(), b.windows());
        assert!(!a.is_empty());
        assert!(FaultPlan::storm(9, 4, 1_000_000, 0.0, &FaultFamily::ALL).is_empty());
        // Every window is inside the horizon and targets a valid shard.
        for w in a.windows() {
            assert!(w.shard < 4);
            assert!(w.from < w.until && w.until <= 1_000_000);
        }
        // Single-family storms only contain that family.
        let s = FaultPlan::storm(9, 2, 1_000_000, 1.0, &[FaultFamily::RingSqueeze]);
        assert!(s
            .windows()
            .iter()
            .all(|w| matches!(w.kind, FaultKind::RingSqueeze { .. })));
    }

    #[test]
    fn boundaries_are_sorted_dedup_edges() {
        let plan = FaultPlan::new(1).stall(0, 10, 20).stall(1, 10, 30);
        assert_eq!(plan.boundaries(), vec![10, 20, 30]);
    }

    #[test]
    fn next_change_walks_edges() {
        let f = FaultPlan::new(1).stall(0, 10, 20).compile(0);
        assert_eq!(f.next_change(0), Some(10));
        assert_eq!(f.next_change(10), Some(20));
        assert_eq!(f.next_change(20), None);
    }
}
