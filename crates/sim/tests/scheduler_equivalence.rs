//! Property suite: the FFS-bucketed wheel scheduler must be
//! observationally identical to the binary-heap event queue.
//!
//! Both backends promise exact `(time, insertion order)` pop order — the
//! property every simulation result depends on. The scripts here include
//! the hard cases: same-instant ties, events exactly at `now`, deltas that
//! straddle the wheel horizon, deep overflow timers (RTO-scale), and long
//! pop droughts that force multi-revolution wheel wraps.

use proptest::prelude::*;

use eiffel_sim::{BucketedEventQueue, EventQueue, EventScheduler, Nanos};

#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event `delta` ns after the current virtual time.
    Schedule(Nanos),
    /// Pop the next event.
    Pop,
    /// Compare `peek_time` (and lengths) without popping.
    Peek,
}

/// Delta distribution spanning all scheduler regimes relative to a
/// 1024-slot test wheel: ties at `now`, in-wheel, horizon-straddling, and
/// far-future overflow (the RTO case).
fn delta() -> impl Strategy<Value = Nanos> {
    prop_oneof![
        2 => Just(0u64),
        4 => 1u64..1_000,
        3 => 1_000u64..70_000,
        1 => 1_000_000u64..10_000_000,
    ]
}

fn ops(n: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            5 => delta().prop_map(Op::Schedule),
            3 => Just(Op::Pop),
            1 => Just(Op::Peek),
        ],
        1..n,
    )
}

/// Runs one script against both backends, asserting identical observable
/// behaviour after every operation, then drains both to the end.
fn check_equivalence(script: &[Op], wheel_slots: usize) {
    let mut heap: EventQueue<u64> = EventQueue::new();
    let mut wheel: BucketedEventQueue<u64> = BucketedEventQueue::with_slots(wheel_slots);
    let mut id = 0u64;
    for op in script {
        match op {
            Op::Schedule(d) => {
                let at = EventScheduler::<u64>::now(&heap) + d;
                heap.schedule(at, id);
                EventScheduler::schedule(&mut wheel, at, id);
                id += 1;
            }
            Op::Pop => {
                let (h, w) = (EventScheduler::pop(&mut heap), wheel.pop());
                assert_eq!(h, w, "pop diverged");
                assert_eq!(
                    EventScheduler::<u64>::now(&heap),
                    wheel.now(),
                    "virtual clocks diverged"
                );
            }
            Op::Peek => {
                assert_eq!(
                    EventScheduler::<u64>::peek_time(&heap),
                    wheel.peek_time(),
                    "peek diverged"
                );
                assert_eq!(EventScheduler::<u64>::len(&heap), wheel.len());
            }
        }
    }
    loop {
        let (h, w) = (EventScheduler::pop(&mut heap), wheel.pop());
        assert_eq!(h, w, "drain diverged");
        if h.is_none() {
            break;
        }
    }
    assert!(EventScheduler::<u64>::is_empty(&heap));
    assert!(wheel.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wheel_matches_heap(script in ops(600)) {
        check_equivalence(&script, 1024);
    }

    /// A tiny wheel maximizes wraparound and overflow-migration traffic.
    #[test]
    fn tiny_wheel_matches_heap(script in ops(400)) {
        check_equivalence(&script, 64);
    }

    /// Burst-of-ties stress: many events at identical instants must pop in
    /// exact insertion order through both backends.
    #[test]
    fn tie_bursts_keep_insertion_order(bursts in prop::collection::vec((0u64..5_000, 1usize..12), 1..60)) {
        let mut heap: EventQueue<u64> = EventQueue::new();
        let mut wheel: BucketedEventQueue<u64> = BucketedEventQueue::with_slots(1024);
        let mut id = 0u64;
        for (delta, count) in bursts {
            let at = EventScheduler::<u64>::now(&heap) + delta;
            for _ in 0..count {
                heap.schedule(at, id);
                EventScheduler::schedule(&mut wheel, at, id);
                id += 1;
            }
            // Pop roughly half after each burst to keep clocks moving.
            for _ in 0..count / 2 {
                prop_assert_eq!(EventScheduler::pop(&mut heap), wheel.pop());
            }
        }
        loop {
            let (h, w) = (EventScheduler::pop(&mut heap), wheel.pop());
            prop_assert_eq!(h, w);
            if h.is_none() { break; }
        }
    }
}
