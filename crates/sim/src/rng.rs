//! Deterministic pseudo-random numbers for reproducible simulations.
//!
//! A SplitMix64 generator: tiny state, excellent statistical quality for
//! simulation purposes, and — unlike thread-local RNGs — identical streams
//! for identical seeds on every platform. Every experiment harness takes a
//! seed and threads it through one of these.

/// SplitMix64 PRNG (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire's multiply-shift rejection-free mapping is fine for
        // simulation (bias < 2^-64 per draw).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// arrival processes).
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        let mut u = self.next_f64();
        if u <= f64::MIN_POSITIVE {
            u = f64::MIN_POSITIVE; // avoid ln(0)
        }
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean ≈ 0.5, got {mean}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SplitMix64::new(11);
        let mean = 250.0;
        let sum: f64 = (0..20_000).map(|_| r.next_exp(mean)).sum();
        let got = sum / 20_000.0;
        assert!(
            (got - mean).abs() < mean * 0.05,
            "exp mean ≈ {mean}, got {got}"
        );
    }
}
