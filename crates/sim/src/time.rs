//! Virtual time and rates.
//!
//! All simulation time is `u64` nanoseconds (`Nanos`). Rates convert bytes
//! to wire time; all integer arithmetic rounds up so simulated links never
//! run faster than configured.

/// Virtual time in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// Real, wall-clock nanoseconds — measured with the monotonic OS clock, as
/// opposed to the virtual simulation clock ([`Nanos`]).
///
/// The two units flow through the same meters (a [`crate::CpuMeter`] bins
/// *wall* nanoseconds of executed code by *virtual* event time) and, in the
/// threaded host runtime, wall time even becomes the event axis itself —
/// so confusing them is the easiest way to produce a wrong "cores" number.
/// The newtype keeps them apart at the type level: anything measured by
/// `Instant` is a `WallNanos`; anything advanced by a simulator is a
/// [`Nanos`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct WallNanos(pub u64);

impl WallNanos {
    /// Zero elapsed wall time.
    pub const ZERO: WallNanos = WallNanos(0);

    /// From a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        WallNanos(ns)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        WallNanos(ms * MILLISECOND)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        WallNanos(s * SECOND)
    }

    /// From a [`std::time::Duration`] (saturating at `u64::MAX` ns).
    pub fn from_duration(d: std::time::Duration) -> Self {
        WallNanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for rates and report fields).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SECOND as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: WallNanos) -> WallNanos {
        WallNanos(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Add for WallNanos {
    type Output = WallNanos;
    fn add(self, rhs: WallNanos) -> WallNanos {
        WallNanos(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for WallNanos {
    fn add_assign(&mut self, rhs: WallNanos) {
        self.0 += rhs.0;
    }
}

impl std::fmt::Display for WallNanos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

/// A transmission rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rate(u64);

impl Rate {
    /// Constructs from bits per second.
    pub const fn bps(bits_per_second: u64) -> Self {
        Rate(bits_per_second)
    }

    /// Constructs from kilobits per second.
    pub const fn kbps(k: u64) -> Self {
        Rate(k * 1_000)
    }

    /// Constructs from megabits per second.
    pub const fn mbps(m: u64) -> Self {
        Rate(m * 1_000_000)
    }

    /// Constructs from gigabits per second.
    pub const fn gbps(g: u64) -> Self {
        Rate(g * 1_000_000_000)
    }

    /// Bits per second.
    pub fn as_bps(self) -> u64 {
        self.0
    }

    /// Time to serialize `bytes` at this rate, rounded up; `None` for a
    /// zero rate (nothing can ever be sent — callers must handle it).
    pub fn tx_time(self, bytes: u64) -> Option<Nanos> {
        if self.0 == 0 {
            return None;
        }
        let bits = bytes * 8;
        // ns = bits / (bits/s) * 1e9, computed as bits*1e9/rate rounded up.
        Some((bits.saturating_mul(SECOND)).div_ceil(self.0))
    }

    /// Bytes fully serializable in `dur` nanoseconds.
    pub fn bytes_in(self, dur: Nanos) -> u64 {
        (self.0 as u128 * dur as u128 / (8 * SECOND as u128)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_rounds_up() {
        // 1500B at 10 Gbps = 1.2 µs exactly.
        assert_eq!(Rate::gbps(10).tx_time(1_500), Some(1_200));
        // 1 byte at 3 bps: 8/3 s → rounds up.
        assert_eq!(Rate::bps(3).tx_time(1), Some(8 * SECOND / 3 + 1));
        assert_eq!(Rate::bps(0).tx_time(1), None);
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let r = Rate::mbps(100);
        let t = r.tx_time(12_345).unwrap();
        let b = r.bytes_in(t);
        assert!(
            (12_345..=12_346).contains(&b),
            "round trip within a byte, got {b}"
        );
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(Rate::kbps(1_000), Rate::mbps(1));
        assert_eq!(Rate::mbps(1_000), Rate::gbps(1));
        assert_eq!(Rate::gbps(24).as_bps(), 24_000_000_000);
    }

    #[test]
    fn wall_nanos_constructors_and_arithmetic() {
        assert_eq!(WallNanos::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(WallNanos::from_secs(2), WallNanos::from_nanos(2 * SECOND));
        assert_eq!(
            WallNanos::from_duration(std::time::Duration::from_micros(5)),
            WallNanos(5_000)
        );
        assert_eq!(WallNanos(40) + WallNanos(100), WallNanos(140));
        assert_eq!(
            WallNanos(40).saturating_sub(WallNanos(100)),
            WallNanos::ZERO
        );
        assert!((WallNanos::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_rates_do_not_overflow() {
        // 100 Gbps, 9000B jumbo: 720 ns.
        assert_eq!(Rate::gbps(100).tx_time(9_000), Some(720));
        // A second of traffic at 100 Gbps.
        assert_eq!(Rate::gbps(100).bytes_in(SECOND), 12_500_000_000);
    }
}
