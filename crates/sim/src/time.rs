//! Virtual time and rates.
//!
//! All simulation time is `u64` nanoseconds (`Nanos`). Rates convert bytes
//! to wire time; all integer arithmetic rounds up so simulated links never
//! run faster than configured.

/// Virtual time in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// A transmission rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rate(u64);

impl Rate {
    /// Constructs from bits per second.
    pub const fn bps(bits_per_second: u64) -> Self {
        Rate(bits_per_second)
    }

    /// Constructs from kilobits per second.
    pub const fn kbps(k: u64) -> Self {
        Rate(k * 1_000)
    }

    /// Constructs from megabits per second.
    pub const fn mbps(m: u64) -> Self {
        Rate(m * 1_000_000)
    }

    /// Constructs from gigabits per second.
    pub const fn gbps(g: u64) -> Self {
        Rate(g * 1_000_000_000)
    }

    /// Bits per second.
    pub fn as_bps(self) -> u64 {
        self.0
    }

    /// Time to serialize `bytes` at this rate, rounded up; `None` for a
    /// zero rate (nothing can ever be sent — callers must handle it).
    pub fn tx_time(self, bytes: u64) -> Option<Nanos> {
        if self.0 == 0 {
            return None;
        }
        let bits = bytes * 8;
        // ns = bits / (bits/s) * 1e9, computed as bits*1e9/rate rounded up.
        Some((bits.saturating_mul(SECOND)).div_ceil(self.0))
    }

    /// Bytes fully serializable in `dur` nanoseconds.
    pub fn bytes_in(self, dur: Nanos) -> u64 {
        (self.0 as u128 * dur as u128 / (8 * SECOND as u128)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_rounds_up() {
        // 1500B at 10 Gbps = 1.2 µs exactly.
        assert_eq!(Rate::gbps(10).tx_time(1_500), Some(1_200));
        // 1 byte at 3 bps: 8/3 s → rounds up.
        assert_eq!(Rate::bps(3).tx_time(1), Some(8 * SECOND / 3 + 1));
        assert_eq!(Rate::bps(0).tx_time(1), None);
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let r = Rate::mbps(100);
        let t = r.tx_time(12_345).unwrap();
        let b = r.bytes_in(t);
        assert!(
            (12_345..=12_346).contains(&b),
            "round trip within a byte, got {b}"
        );
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(Rate::kbps(1_000), Rate::mbps(1));
        assert_eq!(Rate::mbps(1_000), Rate::gbps(1));
        assert_eq!(Rate::gbps(24).as_bps(), 24_000_000_000);
    }

    #[test]
    fn large_rates_do_not_overflow() {
        // 100 Gbps, 9000B jumbo: 720 ns.
        assert_eq!(Rate::gbps(100).tx_time(9_000), Some(720));
        // A second of traffic at 100 Gbps.
        assert_eq!(Rate::gbps(100).bytes_in(SECOND), 12_500_000_000);
    }
}
