//! The packet representation shared by the scheduling substrates.
//!
//! Deliberately small: schedulers only look at flow identity, size, and
//! rank. Substrates with richer needs (the datacenter simulator's sequence
//! numbers and ECN bits) define their own frame types and carry a `Packet`
//! only where they meet a scheduler.

use crate::time::Nanos;

/// Identifies a flow (paper: "unit of scheduling" may be flows or packets).
pub type FlowId = u32;

/// A packet as seen by a scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique, monotonically assigned by the source.
    pub id: u64,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Wire size in bytes (including headers).
    pub bytes: u32,
    /// Creation (enqueue at the host stack) virtual time.
    pub created_at: Nanos,
    /// The scheduler-assigned rank (deadline, slack, virtual time…).
    /// Written by enqueue transactions; 0 until ranked.
    pub rank: u64,
    /// Traffic class set by the packet annotator (Figure 1).
    pub class: u32,
}

impl Packet {
    /// Convenience constructor for a packet awaiting ranking.
    pub fn new(id: u64, flow: FlowId, bytes: u32, created_at: Nanos) -> Self {
        Packet {
            id,
            flow,
            bytes,
            created_at,
            rank: 0,
            class: 0,
        }
    }

    /// MTU-sized packet (the evaluation's 1500B default).
    pub fn mtu(id: u64, flow: FlowId, created_at: Nanos) -> Self {
        Packet::new(id, flow, 1_500, created_at)
    }

    /// Minimum-sized packet (the evaluation's 60B small-packet case).
    pub fn min_sized(id: u64, flow: FlowId, created_at: Nanos) -> Self {
        Packet::new(id, flow, 60, created_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_sizes() {
        assert_eq!(Packet::mtu(1, 2, 3).bytes, 1_500);
        assert_eq!(Packet::min_sized(1, 2, 3).bytes, 60);
        let p = Packet::new(7, 9, 100, 55);
        assert_eq!(
            (p.id, p.flow, p.bytes, p.created_at, p.rank, p.class),
            (7, 9, 100, 55, 0, 0)
        );
    }
}
