//! The packet representation shared by the scheduling substrates.
//!
//! Deliberately small: schedulers only look at flow identity, size, and
//! rank. Substrates with richer needs (the datacenter simulator's sequence
//! numbers and ECN bits) define their own frame types and carry a `Packet`
//! only where they meet a scheduler.

use crate::time::Nanos;

/// Identifies a flow (paper: "unit of scheduling" may be flows or packets).
pub type FlowId = u32;

/// A packet as seen by a scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique, monotonically assigned by the source.
    pub id: u64,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Wire size in bytes (including headers).
    pub bytes: u32,
    /// Creation (enqueue at the host stack) virtual time.
    pub created_at: Nanos,
    /// The scheduler-assigned rank (deadline, slack, virtual time…).
    /// Written by enqueue transactions; 0 until ranked.
    pub rank: u64,
    /// Traffic class set by the packet annotator (Figure 1).
    pub class: u32,
    /// ECN congestion-experienced mark, set by the admission layer when
    /// it admits the packet into a congested queue. Delivered back to
    /// the source on the completion path; closed-loop transports react
    /// to the echoed mark fraction.
    pub ecn: bool,
}

/// Stable flow→shard assignment shared by every multi-core harness.
///
/// A fixed bit-mixer (the splitmix64 finalizer) over the flow id, reduced
/// modulo the shard count: the same flow always lands on the same simulated
/// core, independent of arrival order or shard load — the property the
/// shard-equivalence tests rely on. Plain `flow % shards` would do for the
/// round-robin generators, but real flow ids arrive clustered (ports,
/// connection hashes); the mixer keeps the assignment balanced either way.
pub fn shard_of(flow: FlowId, shards: usize) -> usize {
    debug_assert!(shards > 0, "at least one shard");
    let mut z = (flow as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

impl Packet {
    /// Convenience constructor for a packet awaiting ranking.
    pub fn new(id: u64, flow: FlowId, bytes: u32, created_at: Nanos) -> Self {
        Packet {
            id,
            flow,
            bytes,
            created_at,
            rank: 0,
            class: 0,
            ecn: false,
        }
    }

    /// MTU-sized packet (the evaluation's 1500B default).
    pub fn mtu(id: u64, flow: FlowId, created_at: Nanos) -> Self {
        Packet::new(id, flow, 1_500, created_at)
    }

    /// Minimum-sized packet (the evaluation's 60B small-packet case).
    pub fn min_sized(id: u64, flow: FlowId, created_at: Nanos) -> Self {
        Packet::new(id, flow, 60, created_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_sizes() {
        assert_eq!(Packet::mtu(1, 2, 3).bytes, 1_500);
        assert_eq!(Packet::min_sized(1, 2, 3).bytes, 60);
        let p = Packet::new(7, 9, 100, 55);
        assert_eq!(
            (p.id, p.flow, p.bytes, p.created_at, p.rank, p.class, p.ecn),
            (7, 9, 100, 55, 0, 0, false)
        );
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for flow in 0..10_000u32 {
            for shards in [1usize, 2, 3, 4, 7, 16] {
                let s = shard_of(flow, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(flow, shards), "deterministic");
            }
        }
    }

    #[test]
    fn shard_of_balances_sequential_flow_ids() {
        // Sequential ids (the round-robin generators) must spread evenly:
        // no shard more than 25% off the ideal share over 8k flows.
        let shards = 4;
        let mut counts = [0usize; 4];
        for flow in 0..8_000u32 {
            counts[shard_of(flow, shards)] += 1;
        }
        for &c in &counts {
            assert!((1_500..=2_500).contains(&c), "imbalanced: {counts:?}");
        }
    }
}
