//! FFS-bucketed event scheduler — Eiffel's own machinery driving the
//! simulator's event loop.
//!
//! [`EventQueue`](crate::EventQueue) is the comparison-based priority queue
//! the paper's bucketed-FFS design (§3.1) exists to beat; using it to drive
//! the `dcsim` harness means every simulated packet pays `O(log n)` sift
//! costs twice. [`BucketedEventQueue`] replaces it with the paper's own
//! structure: a rotating timing wheel of 1 ns slots whose occupancy is an
//! [`eiffel_core::HierBitmap`] (one FFS word-descent per pop, `O(log₆₄ N)`),
//! plus an **overflow level** — a small `(time, insertion-order)` min-heap —
//! for far-future timers such as RTOs that land beyond the wheel horizon.
//!
//! # Determinism
//!
//! Both schedulers fire events in exactly `(time, insertion order)` order —
//! the property every simulation result depends on. For the wheel this holds
//! structurally:
//!
//! * Slots are 1 ns wide, so every event in one slot shares one timestamp
//!   and the slot's FIFO *is* insertion order — provided insertions into a
//!   slot happen in global sequence order.
//! * Overflow events are keyed `(time, seq)` and migrate into the wheel the
//!   moment the horizon reaches them, which is re-established after every
//!   cursor advance (`pop`). A direct insertion at time `t` is only possible
//!   while `t` is inside the horizon; any earlier-sequenced overflow event at
//!   the same `t` entered the wheel at the horizon advance that first covered
//!   `t` — strictly before the direct insertion. Hence slot FIFOs always
//!   accumulate in sequence order.
//!
//! The property suite (`crates/sim/tests/scheduler_equivalence.rs`) drives
//! both implementations with identical random schedules — same-instant ties,
//! far-future overflow timers, interleaved pops — and asserts identical pop
//! sequences.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use eiffel_core::HierBitmap;

use crate::time::Nanos;

/// A deterministic discrete-event scheduler: events fire in
/// `(time, insertion order)` order.
///
/// Implemented by the [`EventQueue`](crate::EventQueue) binary heap (the
/// baseline) and by [`BucketedEventQueue`] (the FFS-bucketed wheel), so
/// harnesses can run on either backend and be compared.
pub trait EventScheduler<E> {
    /// Current virtual time: the timestamp of the last popped event.
    fn now(&self) -> Nanos;

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current virtual time.
    fn schedule(&mut self, at: Nanos, event: E);

    /// Pops the next event, advancing virtual time to its timestamp.
    fn pop(&mut self) -> Option<(Nanos, E)>;

    /// Timestamp of the next event without popping it.
    fn peek_time(&self) -> Option<Nanos>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An overflow entry: explicit `(time, seq)` key for far-future events.
struct Far<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Far<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Far<E> {}

impl<E> PartialOrd for Far<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Far<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour on BinaryHeap.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Default wheel span: 2¹⁶ slots of 1 ns ≈ 65.5 µs of horizon — covers
/// serialization times, propagation delays, fabric RTTs and pFabric RTOs;
/// millisecond-scale timers (DCTCP RTOs, pre-generated arrival processes)
/// take the overflow level.
pub const DEFAULT_WHEEL_SLOTS: usize = 1 << 16;

// The slot storage mirrors `eiffel_core::buckets::Buckets`' slab-FIFO
// layout, minus the per-node rank (a wheel slot's timestamp is implied by
// its index). Kept separate rather than generalized so each stays exactly
// as wide as its payload; change them in tandem.

/// Sentinel index terminating slot FIFOs and the free list.
const NIL: u32 = u32::MAX;

/// Head and tail of one slot's FIFO, packed so both land on one line.
#[derive(Debug, Clone, Copy)]
struct SlotList {
    head: u32,
    tail: u32,
}

struct WheelNode<E> {
    next: u32,
    /// `None` only while the node sits on the free list.
    event: Option<E>,
}

/// FFS-bucketed discrete-event scheduler: a rotating timing wheel of 1 ns
/// slots over a hierarchical-FFS occupancy bitmap, with a `(time, seq)`
/// min-heap as the overflow level for events beyond the horizon.
///
/// Slots are intrusive singly-linked FIFOs over one shared node slab
/// (8 bytes per slot, nodes recycled through a free list), so the wheel's
/// footprint is slots × 8 B plus memory proportional to the number of
/// *pending* events — not per-slot buffers.
///
/// Pop order is exactly `(time, insertion order)` — see the
/// [module docs](self) for the determinism argument.
pub struct BucketedEventQueue<E> {
    /// One FIFO per 1 ns slot; all events in a slot share one timestamp.
    slots: Vec<SlotList>,
    /// Shared node slab behind the slot FIFOs.
    nodes: Vec<WheelNode<E>>,
    /// Free-list head into `nodes`.
    free: u32,
    /// Occupancy of `slots`, searched by FFS word-descent.
    occupied: HierBitmap,
    /// `slots.len() - 1`; slot count is a power of two.
    mask: u64,
    /// Events with `at >= now + slots.len()` wait here until the horizon
    /// reaches them.
    overflow: BinaryHeap<Far<E>>,
    /// Cached `overflow.peek().at` (`u64::MAX` when empty), so the per-pop
    /// migration check is a register compare, not a heap access.
    overflow_min: Nanos,
    /// Events currently stored in wheel slots.
    wheel_len: usize,
    /// Global insertion sequence (keys the overflow level).
    seq: u64,
    now: Nanos,
}

impl<E> Default for BucketedEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BucketedEventQueue<E> {
    /// An empty scheduler at time zero with the default wheel span.
    pub fn new() -> Self {
        Self::with_slots(DEFAULT_WHEEL_SLOTS)
    }

    /// An empty scheduler whose wheel spans `slots` nanoseconds (rounded up
    /// to a power of two, minimum 64).
    pub fn with_slots(slots: usize) -> Self {
        let n = slots.next_power_of_two().max(64);
        BucketedEventQueue {
            slots: vec![
                SlotList {
                    head: NIL,
                    tail: NIL
                };
                n
            ],
            nodes: Vec::new(),
            free: NIL,
            occupied: HierBitmap::new(n),
            mask: n as u64 - 1,
            overflow: BinaryHeap::new(),
            overflow_min: u64::MAX,
            wheel_len: 0,
            seq: 0,
            now: 0,
        }
    }

    /// Wheel span in nanoseconds (= slot count at 1 ns granularity).
    pub fn horizon(&self) -> Nanos {
        self.slots.len() as Nanos
    }

    /// Events currently parked at the overflow level (diagnostics).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    #[inline]
    fn slot_of(&self, at: Nanos) -> usize {
        (at & self.mask) as usize
    }

    /// Absolute timestamp of wheel slot `idx`, given that every wheel event
    /// lies in `[now, now + horizon)`.
    #[inline]
    fn slot_time(&self, idx: usize) -> Nanos {
        let base = self.now & !self.mask;
        let t = base + idx as Nanos;
        if t < self.now {
            t + self.horizon()
        } else {
            t
        }
    }

    /// First occupied slot in wheel time order (at or after `now`, wrapping).
    #[inline]
    fn first_slot(&self) -> Option<usize> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = self.slot_of(self.now);
        self.occupied
            .first_set_from(start)
            .or_else(|| self.occupied.first_set())
    }

    /// Appends an event to slot `idx`'s FIFO through the shared slab.
    fn slot_push(&mut self, idx: usize, event: E) {
        let node = if self.free != NIL {
            let node = self.free;
            let n = &mut self.nodes[node as usize];
            self.free = n.next;
            n.next = NIL;
            n.event = Some(event);
            node
        } else {
            let node = self.nodes.len() as u32;
            assert!(node < NIL, "slab index space is u32 with a sentinel");
            self.nodes.push(WheelNode {
                next: NIL,
                event: Some(event),
            });
            node
        };
        let list = &mut self.slots[idx];
        if list.tail == NIL {
            list.head = node;
        } else {
            self.nodes[list.tail as usize].next = node;
        }
        list.tail = node;
        self.occupied.set(idx);
        self.wheel_len += 1;
    }

    /// Pops the oldest event of slot `idx`, maintaining the bitmap.
    fn slot_pop(&mut self, idx: usize) -> E {
        let list = &mut self.slots[idx];
        let node = list.head;
        debug_assert_ne!(node, NIL, "bitmap said occupied");
        let n = &mut self.nodes[node as usize];
        let event = n.event.take().expect("listed node holds an event");
        list.head = n.next;
        if list.head == NIL {
            list.tail = NIL;
            self.occupied.clear(idx);
        }
        n.next = self.free;
        self.free = node;
        self.wheel_len -= 1;
        event
    }

    /// Moves every overflow event the horizon now covers into its slot.
    /// Called after every advance of `now` so slot FIFOs accumulate in
    /// global sequence order (see the module docs).
    fn migrate_overflow(&mut self) {
        let limit = self.now.saturating_add(self.horizon());
        while self.overflow_min < limit {
            let far = self.overflow.pop().expect("cached min says non-empty");
            let idx = self.slot_of(far.at);
            self.slot_push(idx, far.event);
            self.overflow_min = self.overflow.peek().map_or(u64::MAX, |f| f.at);
        }
    }
}

impl<E> EventScheduler<E> for BucketedEventQueue<E> {
    fn now(&self) -> Nanos {
        self.now
    }

    fn schedule(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past ({at} < {})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        if at - self.now < self.horizon() {
            let idx = self.slot_of(at);
            self.slot_push(idx, event);
        } else {
            if at < self.overflow_min {
                self.overflow_min = at;
            }
            self.overflow.push(Far { at, seq, event });
        }
    }

    fn pop(&mut self) -> Option<(Nanos, E)> {
        let idx = match self.first_slot() {
            Some(idx) => idx,
            None => {
                // Wheel empty: jump the cursor to the earliest far-future
                // event and pull everything the new horizon covers in.
                if self.overflow_min == u64::MAX {
                    return None;
                }
                self.now = self.overflow_min;
                self.migrate_overflow();
                self.first_slot().expect("migration filled the wheel")
            }
        };
        let at = self.slot_time(idx);
        let event = self.slot_pop(idx);
        if at > self.now {
            self.now = at;
            if self.overflow_min < at + self.horizon() {
                self.migrate_overflow();
            }
        }
        Some((at, event))
    }

    fn peek_time(&self) -> Option<Nanos> {
        match self.first_slot() {
            Some(idx) => Some(self.slot_time(idx)),
            None if self.overflow_min == u64::MAX => None,
            None => Some(self.overflow_min),
        }
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_then_fifo_order() {
        let mut q: BucketedEventQueue<&str> = BucketedEventQueue::with_slots(64);
        q.schedule(10, "b");
        q.schedule(5, "a");
        q.schedule(10, "c");
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.now(), 5);
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), Some((10, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = BucketedEventQueue::with_slots(64);
        q.schedule(7, 1);
        q.pop();
        q.schedule(7, 2); // same instant as `now`: fine (fires next)
        assert_eq!(q.pop(), Some((7, 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = BucketedEventQueue::with_slots(64);
        q.schedule(10, ());
        q.pop();
        q.schedule(9, ());
    }

    #[test]
    fn far_future_events_take_the_overflow_level() {
        let mut q = BucketedEventQueue::with_slots(64);
        q.schedule(1_000_000, "rto"); // far beyond the 64 ns horizon
        q.schedule(3, "soon");
        assert_eq!(q.overflow_len(), 1);
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop(), Some((3, "soon")));
        assert_eq!(q.peek_time(), Some(1_000_000));
        assert_eq!(q.pop(), Some((1_000_000, "rto")));
        assert_eq!(q.now(), 1_000_000);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_ties_keep_insertion_order_through_migration() {
        let mut q = BucketedEventQueue::with_slots(64);
        // Both far future, same instant: must pop in insertion order.
        q.schedule(500, 1);
        q.schedule(500, 2);
        // This one is near and fires first, advancing the horizon past 500.
        q.schedule(1, 0);
        assert_eq!(q.pop(), Some((1, 0)));
        // After the horizon advance, a direct insertion at 500 must still
        // land *behind* the migrated pair.
        q.schedule(500, 3);
        assert_eq!(q.pop(), Some((500, 1)));
        assert_eq!(q.pop(), Some((500, 2)));
        assert_eq!(q.pop(), Some((500, 3)));
    }

    #[test]
    fn wheel_wraps_many_revolutions() {
        let mut q = BucketedEventQueue::with_slots(64);
        let mut expect = Vec::new();
        for i in 0..1_000u64 {
            q.schedule(i * 7, i);
            expect.push((i * 7, i));
            if i % 3 == 0 {
                let got = q.pop().unwrap();
                assert_eq!(got, expect.remove(0));
            }
        }
        while let Some(got) = q.pop() {
            assert_eq!(got, expect.remove(0));
        }
        assert!(expect.is_empty());
    }

    #[test]
    fn len_counts_both_levels() {
        let mut q = BucketedEventQueue::with_slots(64);
        q.schedule(1, ());
        q.schedule(2, ());
        q.schedule(1_000_000, ());
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.len(), 2);
    }
}
