//! # eiffel-sim — discrete-event simulation substrate
//!
//! The paper evaluates Eiffel inside a Linux kernel (qdisc), a busy-polling
//! userspace switch (BESS), and ns-2. None of those environments are part of
//! this reproduction's target platform, so the experiment harnesses run on
//! this substrate instead: a virtual-time clock, a deterministic event loop,
//! a CPU meter that attributes *real, measured* nanoseconds of executed
//! data-structure code to virtual-time bins (plus documented modelled
//! constants for hardware effects like interrupt entry), token-bucket links,
//! and a deterministic RNG.
//!
//! Design follows the smoltcp school: explicit `poll`-style control flow, no
//! hidden threads, no async — packet scheduling is CPU-bound work and the
//! simulations must be reproducible given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod events;
pub mod link;
pub mod packet;
pub mod rng;
pub mod sched;
pub mod time;

pub use cpu::{CpuCategory, CpuMeter};
pub use events::EventQueue;
pub use link::Link;
pub use packet::{shard_of, FlowId, Packet};
pub use rng::SplitMix64;
pub use sched::{BucketedEventQueue, EventScheduler, DEFAULT_WHEEL_SLOTS};
pub use time::{Nanos, Rate, WallNanos, MICROSECOND, MILLISECOND, SECOND};
