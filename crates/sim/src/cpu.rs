//! CPU metering: real measured nanoseconds, binned by virtual time.
//!
//! The kernel experiments (Figures 9 and 10) compare *CPU cores used for
//! networking* across three qdiscs. The substrate cannot run a kernel, but
//! it can do something more direct: execute the real data-structure code of
//! each qdisc and measure it with the monotonic clock, attributing the cost
//! to the virtual second in which the simulated event occurred. Hardware
//! effects that cannot be executed (interrupt entry/exit, qdisc spinlock
//! acquisition) are *modelled* as constants — identical constants for every
//! compared system, so they shift all curves equally and never reorder a
//! comparison. The constants live here, visible and documented:
//!
//! | Constant | Value | Source |
//! |---|---|---|
//! | [`IRQ_ENTRY_NS`] | 1 200 ns | order-of-magnitude cost of a hrtimer softirq wakeup on x86 servers |
//! | [`LOCK_NS`] | 40 ns | uncontended qdisc spinlock acquire+release |
//! | [`PER_PACKET_STACK_NS`] | 100 ns | skb alloc + header work per packet common to all qdiscs |
//!
//! Each measurement subtracts the calibrated overhead of the timer read
//! itself, so ~30 ns data-structure operations are not drowned by
//! `Instant::now`.

use std::time::Instant;

use crate::time::{Nanos, WallNanos};

/// Modelled cost of taking a timer interrupt / softirq wakeup.
pub const IRQ_ENTRY_NS: WallNanos = WallNanos(1_200);
/// Modelled cost of one uncontended qdisc-lock acquire+release pair.
pub const LOCK_NS: WallNanos = WallNanos(40);
/// Modelled per-packet network-stack cost outside the scheduler.
pub const PER_PACKET_STACK_NS: WallNanos = WallNanos(100);

/// Where CPU time was spent, mirroring the paper's Figure 10 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuCategory {
    /// Work on the sender's system-call path (enqueue side) — the paper's
    /// "system processes" panel.
    System,
    /// Work in timer/softirq context (dequeue side) — the paper's "IRQ"
    /// panel.
    SoftIrq,
}

/// Accumulates busy **wall** nanoseconds into fixed-width bins along an
/// event-time axis.
///
/// The two clocks are kept explicit: what gets *charged* is always real
/// executed time, [`WallNanos`]; what selects the *bin* is the event clock
/// the harness runs on — virtual [`Nanos`] in the simulated hosts, wall
/// nanoseconds-since-start in the threaded runtime (where the event clock
/// *is* the wall clock). "Cores" per bin is then busy wall time divided by
/// the bin width, comparable across both harnesses.
#[derive(Debug)]
pub struct CpuMeter {
    bin_width: Nanos,
    /// `bins[i] = (system, softirq)` busy wall ns for event-time window `i`.
    bins: Vec<(WallNanos, WallNanos)>,
    /// Calibrated cost of an empty `measure` call, subtracted per sample.
    probe_overhead: WallNanos,
}

impl CpuMeter {
    /// Creates a meter that bins into windows of `bin_width` virtual time,
    /// covering `horizon` of virtual time in total.
    pub fn new(bin_width: Nanos, horizon: Nanos) -> Self {
        assert!(bin_width > 0);
        let nbins = horizon.div_ceil(bin_width) as usize;
        let probe_overhead = Self::calibrate();
        CpuMeter {
            bin_width,
            bins: vec![(WallNanos::ZERO, WallNanos::ZERO); nbins],
            probe_overhead,
        }
    }

    /// Median cost of a no-op measurement, to subtract from every sample.
    fn calibrate() -> WallNanos {
        let mut samples: Vec<WallNanos> = (0..4_096)
            .map(|_| {
                let t = Instant::now();
                WallNanos::from_duration(t.elapsed())
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    }

    /// The calibrated per-measurement overhead.
    pub fn probe_overhead(&self) -> WallNanos {
        self.probe_overhead
    }

    /// Runs `f`, measures its real wall duration, and charges it to the bin
    /// for event time `now` under `cat`. Returns `f`'s result.
    pub fn measure<R>(&mut self, now: Nanos, cat: CpuCategory, f: impl FnOnce() -> R) -> R {
        let t = Instant::now();
        let r = f();
        let ns = WallNanos::from_duration(t.elapsed()).saturating_sub(self.probe_overhead);
        self.charge(now, cat, ns);
        r
    }

    /// Charges `wall` nanoseconds of (measured or modelled) cost to the bin
    /// for event time `now`.
    pub fn charge(&mut self, now: Nanos, cat: CpuCategory, wall: WallNanos) {
        let idx = ((now / self.bin_width) as usize).min(self.bins.len() - 1);
        match cat {
            CpuCategory::System => self.bins[idx].0 += wall,
            CpuCategory::SoftIrq => self.bins[idx].1 += wall,
        }
    }

    /// Per-bin utilization in "cores": busy nanoseconds divided by the bin
    /// width. Returns `(system_cores, softirq_cores)` per bin.
    pub fn cores_per_bin(&self) -> Vec<(f64, f64)> {
        self.bins
            .iter()
            .map(|&(s, i)| {
                (
                    s.as_nanos() as f64 / self.bin_width as f64,
                    i.as_nanos() as f64 / self.bin_width as f64,
                )
            })
            .collect()
    }

    /// Sorted total-cores samples (the CDF input of Figure 9).
    pub fn total_cores_sorted(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.cores_per_bin().iter().map(|&(s, i)| s + i).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in accounting"));
        v
    }

    /// Median of the total-cores samples.
    pub fn median_cores(&self) -> f64 {
        let v = self.total_cores_sorted();
        if v.is_empty() {
            0.0
        } else {
            v[v.len() / 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SECOND;

    #[test]
    fn charges_land_in_the_right_bins() {
        let mut m = CpuMeter::new(SECOND, 3 * SECOND);
        m.charge(0, CpuCategory::System, WallNanos(100_000_000)); // 0.1 cores in bin 0
        m.charge(SECOND + 1, CpuCategory::SoftIrq, WallNanos(500_000_000)); // bin 1
        m.charge(10 * SECOND, CpuCategory::System, WallNanos(1)); // clamped to last bin
        let bins = m.cores_per_bin();
        assert_eq!(bins.len(), 3);
        assert!((bins[0].0 - 0.1).abs() < 1e-9);
        assert!((bins[1].1 - 0.5).abs() < 1e-9);
        assert!(bins[2].0 > 0.0);
    }

    #[test]
    fn measure_returns_value_and_accumulates() {
        let mut m = CpuMeter::new(SECOND, SECOND);
        let out = m.measure(0, CpuCategory::System, || {
            // Do something real so the duration is non-trivial.
            let mut acc = 0u64;
            for i in 0..50_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(out > 0);
        let cores = m.cores_per_bin()[0].0;
        assert!(cores > 0.0, "measured work must register");
    }

    #[test]
    fn median_and_cdf_ordering() {
        let mut m = CpuMeter::new(SECOND, 4 * SECOND);
        for (bin, ns) in [(0u64, 4u64), (1, 1), (2, 3), (3, 2)] {
            m.charge(
                bin * SECOND,
                CpuCategory::SoftIrq,
                WallNanos(ns * 100_000_000),
            );
        }
        let sorted = m.total_cores_sorted();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert!((m.median_cores() - 0.3).abs() < 1e-9);
    }
}
