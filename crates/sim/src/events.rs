//! A deterministic discrete-event queue.
//!
//! Events fire in `(time, insertion order)` order, so simulations are
//! reproducible: two events at the same instant fire in the order they were
//! scheduled.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::sched::EventScheduler;
use crate::time::Nanos;

struct Scheduled<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour on BinaryHeap.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Min-heap of timestamped events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current virtual time — an event in the
    /// past is always a simulation bug, and failing fast beats silent
    /// causality violations.
    pub fn schedule(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past ({at} < {})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the next event, advancing virtual time to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The baseline backend of the [`EventScheduler`] trait (see
/// [`crate::sched`] for the FFS-bucketed alternative).
impl<E> EventScheduler<E> for EventQueue<E> {
    fn now(&self) -> Nanos {
        EventQueue::now(self)
    }

    fn schedule(&mut self, at: Nanos, event: E) {
        EventQueue::schedule(self, at, event);
    }

    fn pop(&mut self) -> Option<(Nanos, E)> {
        EventQueue::pop(self)
    }

    fn peek_time(&self) -> Option<Nanos> {
        EventQueue::peek_time(self)
    }

    fn len(&self) -> usize {
        EventQueue::len(self)
    }

    fn is_empty(&self) -> bool {
        EventQueue::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(10, "b");
        q.schedule(5, "a");
        q.schedule(10, "c");
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.now(), 5);
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), Some((10, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(7, 1);
        q.pop();
        q.schedule(7, 2); // same instant as `now`: fine (fires next)
        assert_eq!(q.pop(), Some((7, 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(9, ());
    }
}
