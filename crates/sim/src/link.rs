//! A serializing link: one packet on the wire at a time, at a fixed rate.

use crate::time::{Nanos, Rate};

/// Output link with a serialization rate and a busy-until horizon.
#[derive(Debug, Clone)]
pub struct Link {
    rate: Rate,
    /// The link is serializing a previous packet until this instant.
    busy_until: Nanos,
    /// Total bytes ever accepted (for utilization accounting).
    bytes_sent: u64,
}

impl Link {
    /// Creates an idle link of the given rate.
    pub fn new(rate: Rate) -> Self {
        Link {
            rate,
            busy_until: 0,
            bytes_sent: 0,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// When the link next becomes idle.
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Total bytes accepted so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Whether a packet handed over at `now` would start serializing
    /// immediately.
    pub fn is_idle_at(&self, now: Nanos) -> bool {
        self.busy_until <= now
    }

    /// Accepts a packet at `now`; returns the instant its last bit leaves.
    ///
    /// If the link is still busy the packet starts after the current one —
    /// the caller models any queueing above this point.
    pub fn transmit(&mut self, now: Nanos, bytes: u64) -> Nanos {
        let start = self.busy_until.max(now);
        let tx = self
            .rate
            .tx_time(bytes)
            .expect("links must have a non-zero rate");
        self.busy_until = start + tx;
        self.bytes_sent += bytes;
        self.busy_until
    }

    /// Achieved throughput in bits per second over `[0, now]`.
    pub fn throughput_bps(&self, now: Nanos) -> f64 {
        if now == 0 {
            return 0.0;
        }
        self.bytes_sent as f64 * 8.0 / (now as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SECOND;

    #[test]
    fn serializes_back_to_back() {
        let mut l = Link::new(Rate::gbps(10));
        // 1500B at 10G = 1200 ns each.
        assert_eq!(l.transmit(0, 1_500), 1_200);
        assert_eq!(l.transmit(0, 1_500), 2_400); // queued behind the first
        assert_eq!(l.transmit(10_000, 1_500), 11_200); // idle gap
        assert!(l.is_idle_at(11_200));
        assert!(!l.is_idle_at(11_199));
    }

    #[test]
    fn throughput_accounting() {
        let mut l = Link::new(Rate::gbps(10));
        for i in 0..1_000u64 {
            l.transmit(i * 1_200, 1_500);
        }
        let bps = l.throughput_bps(SECOND);
        assert!(
            (bps - 12_000_000.0).abs() < 1.0,
            "1000×1500B in 1s = 12 Mbps, got {bps}"
        );
    }
}
