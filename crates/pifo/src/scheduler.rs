//! The Figure 1 facade: annotator → enqueue → queue → dequeue.
//!
//! "Eiffel['s architecture has] four main components: 1) a packet annotator
//! to set the input to the enqueue component, 2) an enqueue component that
//! calculates a rank, 3) a queue that holds packets sorted based on their
//! rank, and 4) a dequeue component which is triggered to re-rank elements."
//!
//! [`EiffelScheduler`] wires a packet annotator (classification +
//! leaf-selection function) in front of a compiled [`PifoTree`]. Hosts in
//! either deployment style drive it the same way: event-driven kernels ask
//! for [`EiffelScheduler::soonest_deadline`] and arm one timer; busy-polling
//! switches just call [`EiffelScheduler::dequeue`] in their task loop.

use eiffel_sim::{Nanos, Packet};

use crate::tree::{NodeId, PifoTree, TreeError};

/// Annotates packets (sets class/rank) and picks the leaf they enter.
pub trait Annotator {
    /// Inspects and optionally rewrites the packet, returning the target
    /// leaf.
    fn annotate(&mut self, now: Nanos, pkt: &mut Packet) -> NodeId;
}

/// Any closure can be an annotator.
impl<F: FnMut(Nanos, &mut Packet) -> NodeId> Annotator for F {
    fn annotate(&mut self, now: Nanos, pkt: &mut Packet) -> NodeId {
        self(now, pkt)
    }
}

/// The assembled programmable scheduler.
pub struct EiffelScheduler<A: Annotator> {
    annotator: A,
    tree: PifoTree,
}

impl<A: Annotator> EiffelScheduler<A> {
    /// Wires an annotator in front of a scheduling tree.
    pub fn new(annotator: A, tree: PifoTree) -> Self {
        EiffelScheduler { annotator, tree }
    }

    /// The underlying tree (for inspection and tests).
    pub fn tree(&self) -> &PifoTree {
        &self.tree
    }

    /// Accepts a packet: annotate, rank, enqueue.
    pub fn enqueue(&mut self, now: Nanos, mut pkt: Packet) -> Result<(), TreeError> {
        let leaf = self.annotator.annotate(now, &mut pkt);
        self.tree.enqueue(now, leaf, pkt)
    }

    /// Releases due shaper work and pops the next transmittable packet.
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.tree.dequeue(now)
    }

    /// Pops up to `max` transmittable packets in repeated-dequeue order
    /// (the amortized descent — see [`PifoTree::dequeue_batch`]).
    pub fn dequeue_batch(&mut self, now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        self.tree.dequeue_batch(now, max, out)
    }

    /// When a timer-driven host should wake next.
    pub fn soonest_deadline(&self, now: Nanos) -> Option<Nanos> {
        self.tree.soonest_deadline(now)
    }

    /// Packets currently held.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the scheduler holds no packets.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::compile;

    #[test]
    fn annotator_routes_by_class() {
        let t = compile(
            "node root kind=childprio\n\
             node rt   parent=root kind=fifo prio=0\n\
             node bulk parent=root kind=fifo prio=1\n",
        )
        .unwrap();
        let rt = t.node_by_name("rt").unwrap();
        let bulk = t.node_by_name("bulk").unwrap();
        // The annotator: small packets are "real-time", the rest bulk.
        let mut s = EiffelScheduler::new(
            move |_now: Nanos, p: &mut Packet| {
                if p.bytes <= 100 {
                    p.class = 0;
                    rt
                } else {
                    p.class = 1;
                    bulk
                }
            },
            t,
        );
        s.enqueue(0, Packet::mtu(0, 0, 0)).unwrap();
        s.enqueue(0, Packet::min_sized(1, 1, 0)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.dequeue(0).unwrap().id,
            1,
            "small packet classed real-time"
        );
        assert_eq!(s.dequeue(0).unwrap().id, 0);
        assert!(s.is_empty());
        assert_eq!(s.soonest_deadline(0), None);
    }

    #[test]
    fn timer_driven_host_pattern() {
        // A paced root: the host sleeps until soonest_deadline and drains.
        let t = compile("node root kind=fifo limit=12mbps\n").unwrap();
        let root = t.node_by_name("root").unwrap();
        let mut s = EiffelScheduler::new(move |_: Nanos, _: &mut Packet| root, t);
        for i in 0..3 {
            s.enqueue(0, Packet::mtu(i, 0, 0)).unwrap();
        }
        let mut now = 0;
        let mut sent = Vec::new();
        while !s.is_empty() {
            now = s.soonest_deadline(now).expect("packets pending").max(now);
            while let Some(p) = s.dequeue(now) {
                sent.push((now, p.id));
            }
            now += 1; // timers re-arm strictly in the future
        }
        assert_eq!(sent.len(), 3);
        // 12 Mbps MTU pacing = 1 ms spacing (bucket-granular).
        let gap = sent[2].0 - sent[1].0;
        assert!((900_000..=1_100_000).contains(&gap), "pacing gap {gap} ns");
    }
}
