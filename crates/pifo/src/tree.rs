//! The scheduling tree: PIFO's hierarchy plus Eiffel's extensions.
//!
//! A tree of nodes, each carrying a scheduling transaction
//! ([`crate::policies::Transaction`]) and a ranked queue of entries:
//!
//! * **inner nodes** order references to children — PIFO semantics: every
//!   packet arrival pushes one child reference per un-shaped ancestor, so
//!   dequeue is a rank-guided descent from the root;
//! * **packet leaves** order packets directly (per-packet transactions);
//! * **flow leaves** embed a [`FlowScheduler`] — Eiffel's per-flow ranking
//!   and on-dequeue ranking (§3.2.1);
//! * any node may carry a **rate limit**: its sub-tree's traffic is then
//!   gated by the hierarchy-wide [`Shaper`] (§3.2.2). A packet below shaped
//!   nodes clears one shaper stage per limit on its path — the Figure 8
//!   journey — and each stage re-enters the work-conserving hierarchy one
//!   level up, at a rank computed by that level's transaction.
//!
//! The tree is driven in poll style: `advance(now)` fires due shaper
//! releases, `dequeue(now)` pops the best transmittable packet,
//! `soonest_deadline()` tells a timer-driven host when to wake up.

use std::collections::VecDeque;

use eiffel_core::RankedQueue;
use eiffel_sim::{Nanos, Packet, Rate};

use crate::flow::FlowScheduler;
use crate::policies::{NodeProgram, ObjFlowPolicy, RankCtx};
use crate::shaper::{Shaper, TokenStamper};

/// Node handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// What a node's queue orders.
enum Entry {
    /// A packet promoted (or directly enqueued) into this node.
    Packet(Packet),
    /// A reference to the child subtree holding the next element.
    Child(usize),
}

/// What a node holds besides its queue.
enum Body {
    /// Inner node / per-packet leaf: the ranked queue of [`Entry`].
    Queue(Box<dyn RankedQueue<Entry>>),
    /// Per-flow leaf (Eiffel extension #1/#2).
    Flows(FlowScheduler<Box<dyn ObjFlowPolicy>>),
}

struct Node {
    name: String,
    parent: Option<usize>,
    tx: Box<dyn NodeProgram>,
    body: Body,
    /// Rate limit: if present, elements below this node are invisible to
    /// the parent until the shaper releases them.
    limit: Option<TokenStamper>,
    /// Whether a shaper credit for this node is already pending.
    credit_pending: bool,
}

impl Node {
    /// Elements visible inside this node (packets for leaves, entries for
    /// inner nodes — one per packet below, by construction).
    fn backlog(&self) -> usize {
        match &self.body {
            Body::Queue(q) => q.len(),
            Body::Flows(f) => f.len(),
        }
    }
}

/// Error raised when a policy tree is assembled inconsistently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Enqueue targeted a node that is not a leaf.
    NotALeaf(String),
    /// A node name was not found.
    UnknownNode(String),
    /// The tree has no nodes.
    Empty,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::NotALeaf(n) => write!(f, "node '{n}' is not a leaf"),
            TreeError::UnknownNode(n) => write!(f, "unknown node '{n}'"),
            TreeError::Empty => write!(f, "tree has no nodes"),
        }
    }
}

impl std::error::Error for TreeError {}

/// The assembled scheduler.
pub struct PifoTree {
    nodes: Vec<Node>,
    shaper: Shaper<usize>,
    /// Packets that cleared the root's own rate limit (if any) and are
    /// ready for the wire.
    ready: VecDeque<Packet>,
    packets: usize,
    /// Reusable buffer for due shaper releases (hoisted off the hot
    /// `advance` path).
    due_scratch: Vec<(Nanos, usize)>,
    /// Pool of entry buffers for the batched descent (one per recursion
    /// depth in flight).
    entry_scratch: Vec<Vec<(u64, Entry)>>,
    /// Indices of flow leaves (their policies get `advance` on each poll).
    flow_leaves: Vec<usize>,
    /// Indices of nodes whose program asked for wall-time advances.
    advancing: Vec<usize>,
}

impl std::fmt::Debug for PifoTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PifoTree")
            .field("nodes", &self.nodes.len())
            .field("packets", &self.packets)
            .field("shaper_pending", &self.shaper.len())
            .field("ready", &self.ready.len())
            .finish()
    }
}

/// Builder for [`PifoTree`].
pub struct TreeBuilder {
    nodes: Vec<Node>,
    shaper_buckets: usize,
    shaper_granularity: Nanos,
}

impl TreeBuilder {
    /// Starts a builder; the shaper geometry covers the longest rate-limit
    /// horizon the policy needs (default: 64k buckets of 1 µs — a 65 ms
    /// half-window, fine for multi-Mbps limits; override for slower ones).
    pub fn new() -> Self {
        TreeBuilder {
            nodes: Vec::new(),
            shaper_buckets: 65_536,
            shaper_granularity: 1_000,
        }
    }

    /// Overrides the shared shaper's geometry.
    pub fn shaper_geometry(mut self, buckets: usize, granularity: Nanos) -> Self {
        self.shaper_buckets = buckets;
        self.shaper_granularity = granularity;
        self
    }

    fn push(
        &mut self,
        name: &str,
        parent: Option<NodeId>,
        tx: Box<dyn NodeProgram>,
        body: Body,
        limit: Option<Rate>,
    ) -> NodeId {
        let id = self.nodes.len();
        if let Some(p) = parent {
            assert!(p.0 < id, "parent must be created before child");
            assert!(
                matches!(self.nodes[p.0].body, Body::Queue(_)),
                "flow leaves cannot have children"
            );
        }
        self.nodes.push(Node {
            name: name.to_string(),
            parent: parent.map(|p| p.0),
            tx,
            body,
            limit: limit.map(TokenStamper::new),
            credit_pending: false,
        });
        NodeId(id)
    }

    /// Adds an inner or per-packet-leaf node (usable as either: a node with
    /// children never receives direct enqueues).
    pub fn node(
        &mut self,
        name: &str,
        parent: Option<NodeId>,
        tx: Box<dyn NodeProgram>,
        limit: Option<Rate>,
    ) -> NodeId {
        let (kind, cfg) = tx.queue_hint();
        let queue = kind.build(cfg);
        self.push(name, parent, tx, Body::Queue(queue), limit)
    }

    /// Adds a per-flow leaf (Eiffel extension): `policy` ranks flows, and
    /// the flows are ordered by a queue built from `policy_queue`.
    pub fn flow_leaf(
        &mut self,
        name: &str,
        parent: Option<NodeId>,
        policy: Box<dyn ObjFlowPolicy>,
        flow_queue: Box<dyn RankedQueue<(u32, u64)>>,
        limit: Option<Rate>,
    ) -> NodeId {
        // A parking policy keeps backlogged flows with *no* queue entry,
        // which would break the one-entry-per-packet invariant ancestors
        // rely on for their descent: only an unshaped root may park.
        assert!(
            !policy.may_park() || (parent.is_none() && limit.is_none()),
            "parking flow policies are only sound at an unshaped root"
        );
        let fs = FlowScheduler::new(policy, flow_queue);
        // Flow leaves rank flows internally; the node-level program is
        // unused, a FIFO placeholder keeps the type uniform.
        self.push(
            name,
            parent,
            Box::new(crate::policies::Fifo::new()),
            Body::Flows(fs),
            limit,
        )
    }

    /// Finalizes the tree. Node 0 must be the root.
    pub fn build(self) -> Result<PifoTree, TreeError> {
        if self.nodes.is_empty() {
            return Err(TreeError::Empty);
        }
        assert!(self.nodes[0].parent.is_none(), "node 0 must be the root");
        let flow_leaves: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.body, Body::Flows(_)))
            .map(|(i, _)| i)
            .collect();
        let advancing: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.tx.needs_advance())
            .map(|(i, _)| i)
            .collect();
        Ok(PifoTree {
            nodes: self.nodes,
            shaper: Shaper::new(self.shaper_buckets, self.shaper_granularity, 0),
            ready: VecDeque::new(),
            packets: 0,
            due_scratch: Vec::new(),
            entry_scratch: Vec::new(),
            flow_leaves,
            advancing,
        })
    }
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PifoTree {
    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Result<NodeId, TreeError> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId)
            .ok_or_else(|| TreeError::UnknownNode(name.to_string()))
    }

    /// Total packets held anywhere in the tree (including shaper stages and
    /// the ready line).
    pub fn len(&self) -> usize {
        self.packets
    }

    /// Whether the tree holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets == 0
    }

    /// Enqueues `pkt` at leaf `leaf` (chosen by the packet annotator).
    pub fn enqueue(&mut self, now: Nanos, leaf: NodeId, pkt: Packet) -> Result<(), TreeError> {
        let idx = leaf.0;
        let meta = pkt.clone();
        if matches!(self.nodes[idx].body, Body::Flows(_)) {
            let Body::Flows(fs) = &mut self.nodes[idx].body else {
                unreachable!()
            };
            fs.enqueue(now, pkt);
        } else {
            let ctx = RankCtx {
                now,
                pkt: &meta,
                key: meta.flow as u64,
            };
            let rank = self.nodes[idx].tx.rank(&ctx);
            let Body::Queue(q) = &mut self.nodes[idx].body else {
                unreachable!()
            };
            q.enqueue(rank, Entry::Packet(pkt))
                .unwrap_or_else(|e| panic!("rank {} outside node queue range", e.rank));
        }
        self.packets += 1;
        self.propagate_up(now, idx, &meta);
        Ok(())
    }

    /// After an element landed in `idx`, make it visible upward: push child
    /// references at each un-shaped ancestor; stop at a shaped node and arm
    /// its shaper credit instead (§3.2.2 decoupling).
    fn propagate_up(&mut self, now: Nanos, mut idx: usize, meta: &Packet) {
        loop {
            if self.nodes[idx].limit.is_some() {
                self.ensure_credit(now, idx);
                return;
            }
            let Some(parent) = self.nodes[idx].parent else {
                return;
            };
            let ctx = RankCtx {
                now,
                pkt: meta,
                key: idx as u64,
            };
            let rank = self.nodes[parent].tx.rank(&ctx);
            let Body::Queue(q) = &mut self.nodes[parent].body else {
                unreachable!("flow leaves have no children")
            };
            q.enqueue(rank, Entry::Child(idx))
                .unwrap_or_else(|e| panic!("rank {} outside node queue range", e.rank));
            idx = parent;
        }
    }

    /// Arms a shaper credit for node `idx` if none is pending.
    fn ensure_credit(&mut self, now: Nanos, idx: usize) {
        if self.nodes[idx].credit_pending {
            return;
        }
        let st = self.nodes[idx]
            .limit
            .as_ref()
            .expect("only shaped nodes get credits");
        let release = st.next_eligible().max(now);
        self.nodes[idx].credit_pending = true;
        self.shaper.schedule(release, idx);
    }

    /// Pops the best packet *within* node `idx`'s subtree (rank-guided
    /// descent; never crosses a shaped descendant — its elements are not
    /// visible here until released).
    fn pop_local(&mut self, now: Nanos, idx: usize) -> Packet {
        let (rank, entry) = match &mut self.nodes[idx].body {
            Body::Flows(fs) => return fs.dequeue(now).expect("descent reached an empty flow leaf"),
            Body::Queue(q) => q.dequeue_min().expect("descent reached an empty node"),
        };
        self.nodes[idx].tx.on_dequeue(rank);
        match entry {
            Entry::Packet(p) => p,
            Entry::Child(c) => self.pop_local(now, c),
        }
    }

    /// Applies every time-driven state change due at or before `now`:
    /// node-program and flow-policy advances (virtual-time promotions,
    /// limit gates opening), then every due shaper release — each release
    /// pops the best packet of the shaped node's subtree and re-inserts it
    /// one level up (or into the ready line if the node is the root).
    ///
    /// Idempotent at a fixed `now` once the shaper has no more due work
    /// (releases processed at `ts` can schedule follow-up credits still
    /// due at `now`; callers polling transmittability should loop on
    /// [`PifoTree::dequeue`], which re-advances).
    pub fn advance(&mut self, now: Nanos) {
        for i in 0..self.advancing.len() {
            let idx = self.advancing[i];
            self.nodes[idx].tx.advance(now);
        }
        for i in 0..self.flow_leaves.len() {
            let idx = self.flow_leaves[i];
            let Body::Flows(fs) = &mut self.nodes[idx].body else {
                unreachable!("flow_leaves indexes flow leaves")
            };
            fs.advance(now);
        }
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        self.shaper.release_due(now, &mut due);
        for (ts, idx) in due.drain(..) {
            self.nodes[idx].credit_pending = false;
            debug_assert!(self.nodes[idx].backlog() > 0, "credit without backlog");
            // The release happened at `ts`: pop, stamp and re-rank in that
            // instant's context, not the (possibly later) poll time — a
            // later-released packet must not rank ahead of one released
            // earlier just because both were observed in the same poll.
            let pkt = self.pop_local(ts, idx);
            // Advance the node's rate-limit clock by this packet's cost.
            let st = self.nodes[idx]
                .limit
                .as_mut()
                .expect("credit on unshaped node");
            let _ = st.stamp(ts, pkt.bytes as u64);
            // More backlog ⇒ next credit at the limit's new eligibility.
            if self.nodes[idx].backlog() > 0 {
                self.ensure_credit(ts, idx);
            }
            match self.nodes[idx].parent {
                None => self.ready.push_back(pkt),
                Some(parent) => {
                    let meta = pkt.clone();
                    let ctx = RankCtx {
                        now: ts,
                        pkt: &meta,
                        key: idx as u64,
                    };
                    let rank = self.nodes[parent].tx.rank(&ctx);
                    let Body::Queue(q) = &mut self.nodes[parent].body else {
                        unreachable!("flow leaves have no children")
                    };
                    q.enqueue(rank, Entry::Packet(pkt))
                        .unwrap_or_else(|e| panic!("rank {} outside node queue range", e.rank));
                    self.propagate_up(ts, parent, &meta);
                }
            }
        }
        self.due_scratch = due;
    }

    /// Removes the next transmittable packet: the ready line first (root
    /// shaping), then the root's work-conserving order.
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        loop {
            self.advance(now);
            if let Some(p) = self.ready.pop_front() {
                self.packets -= 1;
                return Some(p);
            }
            if self.nodes[0].limit.is_some() {
                // Root is paced: everything must flow through the shaper.
                // A release at `ts` can schedule a follow-up credit still
                // due at `now` (nested limits chain one hop per advance
                // pass), so quiesce before declaring nothing transmittable.
                if self.shaper_due(now) {
                    continue;
                }
                return None;
            }
            if let Body::Flows(fs) = &mut self.nodes[0].body {
                // Root flow leaf: the policy may hold everything parked.
                let p = fs.dequeue(now)?;
                self.packets -= 1;
                return Some(p);
            }
            if self.nodes[0].backlog() == 0 {
                if self.shaper_due(now) {
                    continue;
                }
                return None;
            }
            let p = self.pop_local(now, 0);
            self.packets -= 1;
            return Some(p);
        }
    }

    /// Whether the shaper holds a release due at or before `now`.
    fn shaper_due(&self, now: Nanos) -> bool {
        self.shaper.soonest_deadline().is_some_and(|d| d <= now)
    }

    /// Dequeues up to `max` packets in exactly the order repeated
    /// [`PifoTree::dequeue`] calls at `now` would produce, appending them
    /// to `out`. Returns how many packets were moved.
    ///
    /// The amortization is the batched descent (`pop_local_batch`):
    /// one bucketed-queue `dequeue_batch` per visited node per batch
    /// instead of one full root-to-leaf descent per packet. Whenever
    /// shaper work is due at `now` — where repeated single dequeues would
    /// interleave releases with pops — the loop falls back to single
    /// steps, so the emitted order stays identical (proptest-pinned in
    /// `tests/tree_batch_equivalence.rs`).
    pub fn dequeue_batch(&mut self, now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        let mut n = 0;
        while n < max {
            self.advance(now);
            while n < max {
                let Some(p) = self.ready.pop_front() else {
                    break;
                };
                self.packets -= 1;
                out.push(p);
                n += 1;
            }
            if n >= max {
                break;
            }
            if self.nodes[0].limit.is_some() {
                // Paced root: only the shaper feeds `ready`; more due work
                // means another advance pass, else nothing transmits now.
                if self.shaper_due(now) {
                    continue;
                }
                break;
            }
            if let Body::Flows(fs) = &mut self.nodes[0].body {
                // Childless root: the shaper is necessarily empty, and the
                // flow scheduler's own batch path is proven equivalent.
                let got = fs.dequeue_batch(now, max - n, out);
                self.packets -= got;
                n += got;
                break;
            }
            if self.nodes[0].backlog() == 0 {
                if self.shaper_due(now) {
                    continue;
                }
                break;
            }
            if self.shaper_due(now) {
                // Releases due at `now` interleave with root pops under
                // repeated dequeue: single-step to keep the order identical.
                let p = self.pop_local(now, 0);
                self.packets -= 1;
                out.push(p);
                n += 1;
                continue;
            }
            let got = self.pop_local_batch(now, 0, max - n, out);
            self.packets -= got;
            n += got;
            if got == 0 {
                break;
            }
        }
        n
    }

    /// Batched descent: pops up to `max` packets from node `idx`'s subtree
    /// in exactly repeated-[`PifoTree::pop_local`] order, with one queue
    /// `dequeue_batch` per visited node. Runs of consecutive entries
    /// pointing at the same child become one recursive call — by the
    /// one-entry-per-packet invariant, a run of `k` child references is
    /// exactly `k` packets below.
    fn pop_local_batch(
        &mut self,
        now: Nanos,
        idx: usize,
        max: usize,
        out: &mut Vec<Packet>,
    ) -> usize {
        let Body::Queue(_) = &self.nodes[idx].body else {
            let Body::Flows(fs) = &mut self.nodes[idx].body else {
                unreachable!()
            };
            return fs.dequeue_batch(now, max, out);
        };
        let mut entries = self.entry_scratch.pop().unwrap_or_default();
        entries.clear();
        let Body::Queue(q) = &mut self.nodes[idx].body else {
            unreachable!()
        };
        let got = q.dequeue_batch(max, &mut entries);
        let mut it = entries.drain(..).peekable();
        while let Some((rank, entry)) = it.next() {
            self.nodes[idx].tx.on_dequeue(rank);
            match entry {
                Entry::Packet(p) => out.push(p),
                Entry::Child(c) => {
                    let mut run = 1;
                    while let Some((r2, Entry::Child(c2))) = it.peek() {
                        if *c2 != c {
                            break;
                        }
                        self.nodes[idx].tx.on_dequeue(*r2);
                        it.next();
                        run += 1;
                    }
                    let sub = self.pop_local_batch(now, c, run, out);
                    debug_assert_eq!(sub, run, "child entries must match backlog");
                }
            }
        }
        drop(it);
        self.entry_scratch.push(entries);
        got
    }

    /// When a timer-driven host should wake next: immediately if something
    /// is transmittable, else the earliest of the shaper's releases and
    /// the flow policies' wakeups (parked flows, pending promotions).
    pub fn soonest_deadline(&self, now: Nanos) -> Option<Nanos> {
        if !self.ready.is_empty() {
            return Some(now);
        }
        if self.nodes[0].limit.is_none() {
            match &self.nodes[0].body {
                // Entries exist only for packets visible at the root —
                // backlog parked behind shaped descendants (or a parking
                // policy) does not count, so no busy-wake here.
                Body::Queue(q) if !q.is_empty() => return Some(now),
                Body::Flows(fs) if fs.has_queued_flows() => return Some(now),
                _ => {}
            }
        }
        let mut best = self.shaper.soonest_deadline();
        for &i in &self.flow_leaves {
            let Body::Flows(fs) = &self.nodes[i].body else {
                unreachable!("flow_leaves indexes flow leaves")
            };
            if let Some(w) = fs.soonest_wakeup() {
                best = Some(best.map_or(w, |b| b.min(w)));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{ChildPriority, Fifo, Lqf, StrictPriority};
    use eiffel_core::{QueueConfig, QueueKind};

    fn pkt(id: u64, flow: u32, class: u32, at: Nanos) -> Packet {
        let mut p = Packet::mtu(id, flow, at);
        p.class = class;
        p
    }

    #[test]
    fn single_fifo_leaf_acts_as_fifo() {
        let mut b = TreeBuilder::new();
        let root = b.node("root", None, Box::new(Fifo::new()), None);
        let mut t = b.build().unwrap();
        for i in 0..5 {
            t.enqueue(0, root, pkt(i, 0, 0, 0)).unwrap();
        }
        let ids: Vec<u64> = std::iter::from_fn(|| t.dequeue(0).map(|p| p.id)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(t.is_empty());
    }

    #[test]
    fn strict_priority_between_leaves() {
        // root(ChildPriority) ── hi(Fifo), lo(Fifo)
        let mut b = TreeBuilder::new();
        let root = b.node(
            "root",
            None,
            Box::new(ChildPriority::new(&[(1, 0), (2, 1)])),
            None,
        );
        let hi = b.node("hi", Some(root), Box::new(Fifo::new()), None);
        let lo = b.node("lo", Some(root), Box::new(Fifo::new()), None);
        let mut t = b.build().unwrap();
        t.enqueue(0, lo, pkt(0, 0, 0, 0)).unwrap();
        t.enqueue(0, lo, pkt(1, 0, 0, 0)).unwrap();
        t.enqueue(0, hi, pkt(2, 1, 0, 0)).unwrap();
        // High-priority child drains first even though it arrived last.
        assert_eq!(t.dequeue(0).unwrap().id, 2);
        assert_eq!(t.dequeue(0).unwrap().id, 0);
        assert_eq!(t.dequeue(0).unwrap().id, 1);
    }

    #[test]
    fn leaf_rate_limit_gates_release() {
        // One leaf limited to 12 Mbps (1 ms per MTU), unshaped root.
        let mut b = TreeBuilder::new();
        let root = b.node("root", None, Box::new(Fifo::new()), None);
        let leaf = b.node(
            "leaf",
            Some(root),
            Box::new(Fifo::new()),
            Some(Rate::mbps(12)),
        );
        let mut t = b.build().unwrap();
        for i in 0..3 {
            t.enqueue(0, leaf, pkt(i, 0, 0, 0)).unwrap();
        }
        // t=0: first packet released immediately (idle limiter).
        assert_eq!(t.dequeue(0).map(|p| p.id), Some(0));
        assert_eq!(t.dequeue(0), None, "second packet still shaped");
        // Soonest deadline points at the next release (bucket-granular ≤ 1ms).
        let d = t.soonest_deadline(0).unwrap();
        assert!(d <= 1_000_000);
        assert_eq!(t.dequeue(1_000_000).map(|p| p.id), Some(1));
        assert_eq!(t.dequeue(1_999_999), None);
        assert_eq!(t.dequeue(2_000_000).map(|p| p.id), Some(2));
    }

    #[test]
    fn figure7_two_nested_limits_and_paced_root() {
        // The paper's Figure 7/8 example: leaf at 7 Mbps under an inner node
        // at 10 Mbps under a paced root. A packet must clear three shaper
        // stages; the total rate is min(7, 10, pace).
        let mut b = TreeBuilder::new();
        let root = b.node("root", None, Box::new(Fifo::new()), Some(Rate::mbps(20)));
        let inner = b.node(
            "pq2",
            Some(root),
            Box::new(Fifo::new()),
            Some(Rate::mbps(10)),
        );
        let leaf = b.node(
            "pq3",
            Some(inner),
            Box::new(Fifo::new()),
            Some(Rate::mbps(7)),
        );
        let mut t = b.build().unwrap();
        let n = 20u64;
        for i in 0..n {
            t.enqueue(0, leaf, pkt(i, 0, 0, 0)).unwrap();
        }
        // Drain with a 1 µs-stepped clock for 3 simulated seconds.
        let mut got = Vec::new();
        let mut now = 0;
        while got.len() < n as usize && now < 3_000_000_000 {
            now += 100_000;
            while let Some(p) = t.dequeue(now) {
                got.push((now, p.id));
            }
        }
        assert_eq!(got.len(), n as usize, "all packets eventually released");
        // In order (single flow through FIFOs).
        assert!(got.windows(2).all(|w| w[0].1 < w[1].1));
        // Effective rate ≈ 7 Mbps: 20 MTU = 240 kbit / 7 Mbps ≈ 34.3 ms.
        let last = got.last().unwrap().0;
        let expect = 8 * 1_500 * (n - 1) * 1_000 / 7; // ns
        let rel = (last as f64 - expect as f64).abs() / expect as f64;
        assert!(rel < 0.05, "drain took {last} ns, expected ≈{expect} ns");
    }

    #[test]
    fn flow_leaf_inside_tree() {
        let mut b = TreeBuilder::new();
        let root = b.node("root", None, Box::new(StrictPriority), None);
        let lqf = b.flow_leaf(
            "lqf",
            Some(root),
            Box::new(Lqf),
            QueueKind::Cffs.build(QueueConfig::new(4_096, 1, crate::policies::LQF_CAP - 4_096)),
            None,
        );
        let mut t = b.build().unwrap();
        t.enqueue(0, lqf, pkt(0, 0, 0, 0)).unwrap();
        t.enqueue(0, lqf, pkt(1, 0, 0, 0)).unwrap();
        t.enqueue(0, lqf, pkt(2, 1, 0, 0)).unwrap();
        // Flow 0 is longer: LQF serves it first.
        assert_eq!(t.dequeue(0).unwrap().flow, 0);
        let mut rest = Vec::new();
        while let Some(p) = t.dequeue(0) {
            rest.push(p.flow);
        }
        assert_eq!(rest.len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn unknown_node_lookup_fails() {
        let mut b = TreeBuilder::new();
        b.node("root", None, Box::new(Fifo::new()), None);
        let t = b.build().unwrap();
        assert!(matches!(
            t.node_by_name("nope"),
            Err(TreeError::UnknownNode(_))
        ));
        assert!(t.node_by_name("root").is_ok());
    }

    #[test]
    fn empty_build_fails() {
        assert!(matches!(TreeBuilder::new().build(), Err(TreeError::Empty)));
    }
}
