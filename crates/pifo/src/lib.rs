//! # eiffel-pifo — Eiffel's programmable scheduler model
//!
//! This crate implements §3.2 of *Eiffel: Efficient and Flexible Software
//! Packet Scheduling* (NSDI 2019): the PIFO scheduler programming model
//! (scheduling transactions arranged in a tree, shaping transactions)
//! **plus** Eiffel's three extensions:
//!
//! 1. **Per-flow ranking** ([`flow::FlowScheduler`]) — a PIFO block that
//!    orders *flows* (each an internal FIFO) by a flow rank the policy
//!    maintains;
//! 2. **On-dequeue ranking** ([`flow::FlowPolicy::rank_on_dequeue`]) —
//!    policies like pFabric and LQF re-rank a flow when a packet *leaves*;
//! 3. **Arbitrary shaping** ([`shaper::Shaper`]) — one hierarchy-wide
//!    time-indexed priority queue carries every rate limit as per-packet
//!    timestamps, decoupled from the work-conserving tree.
//!
//! Policies are described in a small textual language ([`lang::compile`])
//! standing in for the PIFO DOT compiler the paper extends, and assembled
//! behind the Figure 1 facade ([`scheduler::EiffelScheduler`]).
//!
//! ```
//! use eiffel_pifo::lang::compile;
//! use eiffel_sim::Packet;
//!
//! // Longest-Queue-First over flows — Figure 6 of the paper, which plain
//! // PIFO cannot express.
//! let mut tree = compile("node root kind=flow:lqf").unwrap();
//! let root = tree.node_by_name("root").unwrap();
//! tree.enqueue(0, root, Packet::mtu(0, /*flow=*/7, 0)).unwrap();
//! tree.enqueue(0, root, Packet::mtu(1, 7, 0)).unwrap();
//! tree.enqueue(0, root, Packet::mtu(2, /*flow=*/9, 0)).unwrap();
//! // Flow 7 is the longest queue: served first.
//! assert_eq!(tree.dequeue(0).unwrap().flow, 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod lang;
pub mod policies;
pub mod scheduler;
pub mod shaper;
pub mod tree;

pub use flow::{FlowPolicy, FlowScheduler, FlowState, PARK};
pub use lang::{compile, ParseError};
pub use policies::{
    CurveSpec, HClockFlow, HfscCurves, Lstf, NodeProgram, ObjFlowPolicy, QosSpec, RankCtx,
    Transaction, Wfq,
};
pub use scheduler::{Annotator, EiffelScheduler};
pub use shaper::{Shaper, TokenStamper};
pub use tree::{NodeId, PifoTree, TreeBuilder, TreeError};
