//! Per-flow ranking and on-dequeue ranking — Eiffel extensions #1 and #2
//! (§3.2.1).
//!
//! PIFO ranks each packet individually on enqueue; it "doesn't support
//! reordering packets already enqueued based on changes in their flow
//! ranking" nor "ranking of elements on packet dequeue". Eiffel adds both:
//! a per-flow transaction keeps one FIFO per flow and lets the policy
//! recompute the *flow's* rank on every enqueue **and** dequeue; "a single
//! PIFO block orders flows, rather than packets, based on their rank".
//!
//! Re-ranking an enqueued flow uses the bucketed queues' O(1) (re)move:
//! entries are epoch-stamped and stale ones are skipped lazily at dequeue,
//! so a rank change costs one enqueue, never a scan.

use std::collections::VecDeque;

use eiffel_core::{QueueConfig, QueueKind, RankedQueue};
use eiffel_sim::{FlowId, Nanos, Packet};

/// Per-flow state visible to policies.
#[derive(Debug)]
pub struct FlowState<D> {
    /// Flow identity.
    pub id: FlowId,
    /// Packets of this flow, in arrival order (never reordered within a
    /// flow — §3.2.1's assumption).
    fifo: VecDeque<Packet>,
    /// Current flow rank (`f.rank` in the paper's Figures 6/11/14).
    pub rank: u64,
    /// Bytes currently queued.
    pub bytes: u64,
    /// Policy-private state (virtual times, deficit counters…).
    pub data: D,
    /// Stamp matching the flow's one valid entry in the flow queue.
    epoch: u64,
    /// Whether a valid entry for this flow is present in the flow queue.
    active: bool,
}

impl<D> FlowState<D> {
    /// Number of queued packets (`f.len` in the paper's LQF example).
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the flow has no queued packets.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// The head packet (`f.front()` in the paper's pFabric example).
    pub fn front(&self) -> Option<&Packet> {
        self.fifo.front()
    }

    /// The most recently enqueued packet.
    pub fn back(&self) -> Option<&Packet> {
        self.fifo.back()
    }
}

/// A scheduling policy over flows.
///
/// Both hooks may read the whole flow state (length, head packet, private
/// data) — this is exactly the expressiveness PIFO lacks.
pub trait FlowPolicy {
    /// Policy-private per-flow state.
    type Data: Default;

    /// New rank for flow `f` after packet `p` was appended to it.
    fn rank_on_enqueue(&mut self, now: Nanos, f: &FlowState<Self::Data>, p: &Packet) -> u64;

    /// New rank for flow `f` after its head packet was removed (`f` is
    /// non-empty). Returning `None` keeps the current rank — policies that
    /// only rank on enqueue (plain PIFO behaviour) use the default.
    fn rank_on_dequeue(&mut self, now: Nanos, f: &FlowState<Self::Data>) -> Option<u64> {
        let _ = (now, f);
        None
    }
}

/// Queue entry: flow id + epoch stamp for lazy invalidation.
type FlowEntry = (FlowId, u64);

/// The per-flow transaction: one ranked queue ordering flows, one FIFO per
/// flow.
pub struct FlowScheduler<P: FlowPolicy> {
    policy: P,
    queue: Box<dyn RankedQueue<FlowEntry>>,
    flows: Vec<FlowState<P::Data>>,
    packets: usize,
    /// Stale entries skipped so far (observability for tests/benches).
    stale_skipped: u64,
}

impl<P: FlowPolicy> FlowScheduler<P> {
    /// Creates a scheduler with the given flow-ordering queue.
    pub fn new(policy: P, queue: Box<dyn RankedQueue<FlowEntry>>) -> Self {
        FlowScheduler {
            policy,
            queue,
            flows: Vec::new(),
            packets: 0,
            stale_skipped: 0,
        }
    }

    /// Creates a scheduler with a queue chosen via [`QueueKind`].
    pub fn with_kind(policy: P, kind: QueueKind, cfg: QueueConfig) -> Self {
        Self::new(policy, kind.build(cfg))
    }

    fn flow_mut(&mut self, id: FlowId) -> &mut FlowState<P::Data> {
        let idx = id as usize;
        while self.flows.len() <= idx {
            let new_id = self.flows.len() as FlowId;
            self.flows.push(FlowState {
                id: new_id,
                fifo: VecDeque::new(),
                rank: 0,
                bytes: 0,
                data: P::Data::default(),
                epoch: 0,
                active: false,
            });
        }
        &mut self.flows[idx]
    }

    /// Read access to a flow's state (allocating it if never seen).
    pub fn flow(&mut self, id: FlowId) -> &FlowState<P::Data> {
        self.flow_mut(id)
    }

    /// Total queued packets.
    pub fn len(&self) -> usize {
        self.packets
    }

    /// Whether no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.packets == 0
    }

    /// Stale (lazily invalidated) entries skipped so far.
    pub fn stale_skipped(&self) -> u64 {
        self.stale_skipped
    }

    /// Access to the policy (e.g. to adjust weights at runtime).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Enqueues `p` into its flow, re-ranking the flow per the policy.
    pub fn enqueue(&mut self, now: Nanos, p: Packet) {
        let id = p.flow;
        // Compute the new rank against the state *including* the new packet
        // (the paper's `f.rank = f.len` reads the updated length).
        let f = self.flow_mut(id);
        f.bytes += p.bytes as u64;
        f.fifo.push_back(p);
        let f = &self.flows[id as usize];
        let new_rank = self
            .policy
            .rank_on_enqueue(now, f, f.back().expect("just pushed"));
        let f = &mut self.flows[id as usize];
        let needs_entry = !f.active || new_rank != f.rank;
        f.rank = new_rank;
        if needs_entry {
            // Invalidate any previous entry and insert the fresh one: the
            // O(1) re-rank.
            f.epoch += 1;
            f.active = true;
            let entry = (id, f.epoch);
            self.queue
                .enqueue(new_rank, entry)
                .unwrap_or_else(|e| panic!("flow rank {} outside queue range", e.rank));
        }
        self.packets += 1;
    }

    /// Dequeues the head packet of the minimum-rank flow, re-ranking the
    /// flow per the policy's on-dequeue hook.
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        loop {
            let (_, (id, epoch)) = self.queue.dequeue_min()?;
            let f = &mut self.flows[id as usize];
            if !f.active || f.epoch != epoch {
                self.stale_skipped += 1;
                continue; // lazily dropped re-rank leftover
            }
            // Valid entry: this flow is the scheduler's choice.
            f.active = false;
            let pkt = f.fifo.pop_front().expect("active flows hold packets");
            f.bytes -= pkt.bytes as u64;
            self.packets -= 1;
            if !f.fifo.is_empty() {
                let fr = &self.flows[id as usize];
                let new_rank = self.policy.rank_on_dequeue(now, fr).unwrap_or(fr.rank);
                let f = &mut self.flows[id as usize];
                f.rank = new_rank;
                f.epoch += 1;
                f.active = true;
                let entry = (id, f.epoch);
                self.queue
                    .enqueue(new_rank, entry)
                    .unwrap_or_else(|e| panic!("flow rank {} outside queue range", e.rank));
            }
            return Some(pkt);
        }
    }

    /// Rank of the best flow, skipping stale entries (read-only best effort:
    /// may report a stale bucket edge until the next dequeue cleans it).
    pub fn peek_min_rank(&self) -> Option<u64> {
        self.queue.peek_min_rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shortest-queue-first (inverse LQF) for testing: rank = queue length.
    struct SqfPolicy;

    impl FlowPolicy for SqfPolicy {
        type Data = ();
        fn rank_on_enqueue(&mut self, _now: Nanos, f: &FlowState<()>, _p: &Packet) -> u64 {
            f.len() as u64
        }
        fn rank_on_dequeue(&mut self, _now: Nanos, f: &FlowState<()>) -> Option<u64> {
            Some(f.len() as u64)
        }
    }

    fn pkt(id: u64, flow: FlowId) -> Packet {
        Packet::mtu(id, flow, 0)
    }

    fn sched() -> FlowScheduler<SqfPolicy> {
        FlowScheduler::with_kind(SqfPolicy, QueueKind::Cffs, QueueConfig::new(1_024, 1, 0))
    }

    #[test]
    fn per_flow_fifo_is_preserved() {
        let mut s = sched();
        for i in 0..5 {
            s.enqueue(0, pkt(i, 0));
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(0).map(|p| p.id)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4], "no intra-flow reordering");
    }

    #[test]
    fn enqueue_rerank_moves_flow() {
        let mut s = sched();
        // Flow 0 gets 3 packets (rank 3), flow 1 gets 1 packet (rank 1):
        // shortest-queue-first must pick flow 1.
        s.enqueue(0, pkt(0, 0));
        s.enqueue(0, pkt(1, 0));
        s.enqueue(0, pkt(2, 0));
        s.enqueue(0, pkt(3, 1));
        assert_eq!(s.dequeue(0).unwrap().flow, 1);
        assert!(
            s.stale_skipped() >= 1,
            "flow 0's re-ranks left stale entries"
        );
    }

    #[test]
    fn dequeue_rerank_keeps_policy_consistent() {
        let mut s = sched();
        for i in 0..4 {
            s.enqueue(0, pkt(i, 0)); // flow 0: 4 pkts → rank 4
        }
        s.enqueue(0, pkt(10, 1));
        s.enqueue(0, pkt(11, 1)); // flow 1: 2 pkts → rank 2
                                  // SQF drains: f1 (2) → f1 becomes 1 → still min → f1 (1) → f1 empty
                                  // → f0 (rank recomputed downward as it drains).
        let flows: Vec<FlowId> = std::iter::from_fn(|| s.dequeue(0).map(|p| p.flow)).collect();
        assert_eq!(flows, vec![1, 1, 0, 0, 0, 0]);
        assert!(s.is_empty());
    }

    #[test]
    fn interleaves_flows_with_equal_ranks_fairly() {
        let mut s = sched();
        // Two flows with one packet each: both rank 1, FIFO between them.
        s.enqueue(0, pkt(0, 0));
        s.enqueue(0, pkt(1, 1));
        assert_eq!(s.dequeue(0).unwrap().flow, 0);
        assert_eq!(s.dequeue(0).unwrap().flow, 1);
    }

    #[test]
    fn flow_count_grows_on_demand() {
        let mut s = sched();
        s.enqueue(0, pkt(0, 500));
        assert_eq!(s.len(), 1);
        assert_eq!(s.flow(500).len(), 1);
        assert_eq!(s.flow(499).len(), 0);
        assert_eq!(s.dequeue(0).unwrap().flow, 500);
    }
}
