//! Per-flow ranking and on-dequeue ranking — Eiffel extensions #1 and #2
//! (§3.2.1).
//!
//! PIFO ranks each packet individually on enqueue; it "doesn't support
//! reordering packets already enqueued based on changes in their flow
//! ranking" nor "ranking of elements on packet dequeue". Eiffel adds both:
//! a per-flow transaction keeps one FIFO per flow and lets the policy
//! recompute the *flow's* rank on every enqueue **and** dequeue; "a single
//! PIFO block orders flows, rather than packets, based on their rank".
//!
//! Re-ranking an enqueued flow uses the bucketed queues' O(1) (re)move:
//! entries are epoch-stamped and stale ones are skipped lazily at dequeue,
//! so a rank change costs one enqueue, never a scan.

use std::collections::VecDeque;

use eiffel_core::{QueueConfig, QueueKind, RankedQueue};
use eiffel_sim::{FlowId, Nanos, Packet};

/// Sentinel rank meaning "park this flow": it stays backlogged but takes no
/// entry in the flow queue until the policy surfaces it again through
/// [`FlowPolicy::advance`]. Non-work-conserving policies (hClock's limit
/// gate) return it from their rank hooks.
///
/// Contract: a policy parking a flow at time `now` must report a wakeup
/// strictly after `now` (bucket-granular early wakeups are fine) — a parked
/// flow that is already serviceable would stall until the next poll.
pub const PARK: u64 = u64::MAX;

/// Per-flow state visible to policies.
#[derive(Debug)]
pub struct FlowState<D> {
    /// Flow identity.
    pub id: FlowId,
    /// Packets of this flow, in arrival order (never reordered within a
    /// flow — §3.2.1's assumption).
    fifo: VecDeque<Packet>,
    /// Current flow rank (`f.rank` in the paper's Figures 6/11/14).
    pub rank: u64,
    /// Bytes currently queued.
    pub bytes: u64,
    /// Policy-private state (virtual times, deficit counters…).
    pub data: D,
    /// Stamp matching the flow's one valid entry in the flow queue.
    epoch: u64,
    /// Whether a valid entry for this flow is present in the flow queue.
    active: bool,
}

impl<D> FlowState<D> {
    /// Number of queued packets (`f.len` in the paper's LQF example).
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the flow has no queued packets.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// The head packet (`f.front()` in the paper's pFabric example).
    pub fn front(&self) -> Option<&Packet> {
        self.fifo.front()
    }

    /// The most recently enqueued packet.
    pub fn back(&self) -> Option<&Packet> {
        self.fifo.back()
    }
}

/// A scheduling policy over flows.
///
/// Both hooks may read the whole flow state (length, head packet, private
/// data) — this is exactly the expressiveness PIFO lacks.
pub trait FlowPolicy {
    /// Policy-private per-flow state.
    type Data: Default;

    /// New rank for flow `f` after packet `p` was appended to it.
    fn rank_on_enqueue(&mut self, now: Nanos, f: &FlowState<Self::Data>, p: &Packet) -> u64;

    /// New rank for flow `f` after its head packet was removed (`f` is
    /// non-empty). Returning `None` keeps the current rank — policies that
    /// only rank on enqueue (plain PIFO behaviour) use the default.
    fn rank_on_dequeue(&mut self, now: Nanos, f: &FlowState<Self::Data>) -> Option<u64> {
        let _ = (now, f);
        None
    }

    /// Observes every served packet, *including* the one that empties its
    /// flow ([`FlowPolicy::rank_on_dequeue`] only fires while the flow
    /// stays backlogged). Virtual-time policies charge their clocks here.
    fn on_serve(&mut self, now: Nanos, f: &FlowState<Self::Data>, p: &Packet) {
        let _ = (now, f, p);
    }

    /// Whether this policy may return [`PARK`] ranks. Parking leaves are
    /// only sound at the tree root (see [`crate::tree::TreeBuilder`]).
    fn may_park(&self) -> bool {
        false
    }

    /// Poll hook: appends the ids of flows whose rank must be recomputed at
    /// `now` (limit gates opening, reservations coming due…). The scheduler
    /// then asks [`FlowPolicy::rank_now`] for each and re-ranks it.
    fn advance(&mut self, now: Nanos, rerank: &mut Vec<FlowId>) {
        let _ = (now, rerank);
    }

    /// Current rank of backlogged flow `f` at `now`, for flows surfaced by
    /// [`FlowPolicy::advance`]. Defaults to keeping the stored rank.
    fn rank_now(&mut self, now: Nanos, f: &FlowState<Self::Data>) -> u64 {
        let _ = now;
        f.rank
    }

    /// Earliest future instant at which [`FlowPolicy::advance`] could
    /// change anything (bucket-granular: may be early, never late).
    fn soonest_wakeup(&self) -> Option<Nanos> {
        None
    }
}

/// Queue entry: flow id + epoch stamp for lazy invalidation.
type FlowEntry = (FlowId, u64);

/// The per-flow transaction: one ranked queue ordering flows, one FIFO per
/// flow.
pub struct FlowScheduler<P: FlowPolicy> {
    policy: P,
    queue: Box<dyn RankedQueue<FlowEntry>>,
    flows: Vec<FlowState<P::Data>>,
    packets: usize,
    /// Stale entries skipped so far (observability for tests/benches).
    stale_skipped: u64,
    /// Reusable id buffer for [`FlowScheduler::advance`].
    rerank_scratch: Vec<FlowId>,
    /// Whether [`FlowScheduler::dequeue_batch`] may use the strict-minimum
    /// shortcut. Sound only for queues that place and find ranks *exactly*
    /// (no low-clamping moving window, no approximate min-find) — see
    /// [`FlowScheduler::with_kind`], which derives it from the kind.
    /// [`FlowScheduler::new`] cannot inspect a boxed queue and stays
    /// conservative (`false`: the batch path degenerates to the exact
    /// dequeue loop).
    batch_shortcut: bool,
}

impl<P: FlowPolicy> FlowScheduler<P> {
    /// Creates a scheduler with the given flow-ordering queue.
    pub fn new(policy: P, queue: Box<dyn RankedQueue<FlowEntry>>) -> Self {
        FlowScheduler {
            policy,
            queue,
            flows: Vec::new(),
            packets: 0,
            stale_skipped: 0,
            rerank_scratch: Vec::new(),
            batch_shortcut: false,
        }
    }

    /// Creates a scheduler with a queue chosen via [`QueueKind`], enabling
    /// the batched-dequeue shortcut exactly when the kind is safe for it.
    pub fn with_kind(policy: P, kind: QueueKind, cfg: QueueConfig) -> Self {
        let mut s = Self::new(policy, kind.build(cfg));
        // Safe kinds place every rank in its true bucket and answer
        // min-queries exactly. Unsafe: circular windows clamp overdue
        // ranks into the current minimum bucket (FIFO order against its
        // occupants would be violated), approximate queues may answer the
        // min-find from a neighbouring bucket.
        s.batch_shortcut = matches!(
            kind,
            QueueKind::Ffs
                | QueueKind::HierFfs
                | QueueKind::Gradient
                | QueueKind::BucketHeap
                | QueueKind::BinaryHeap
                | QueueKind::BTree
        );
        s
    }

    fn flow_mut(&mut self, id: FlowId) -> &mut FlowState<P::Data> {
        let idx = id as usize;
        while self.flows.len() <= idx {
            let new_id = self.flows.len() as FlowId;
            self.flows.push(FlowState {
                id: new_id,
                fifo: VecDeque::new(),
                rank: 0,
                bytes: 0,
                data: P::Data::default(),
                epoch: 0,
                active: false,
            });
        }
        &mut self.flows[idx]
    }

    /// Read access to a flow's state (allocating it if never seen).
    pub fn flow(&mut self, id: FlowId) -> &FlowState<P::Data> {
        self.flow_mut(id)
    }

    /// Total queued packets.
    pub fn len(&self) -> usize {
        self.packets
    }

    /// Whether no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.packets == 0
    }

    /// Stale (lazily invalidated) entries skipped so far.
    pub fn stale_skipped(&self) -> u64 {
        self.stale_skipped
    }

    /// Access to the policy (e.g. to adjust weights at runtime).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Enqueues `p` into its flow, re-ranking the flow per the policy.
    pub fn enqueue(&mut self, now: Nanos, p: Packet) {
        let id = p.flow;
        // Compute the new rank against the state *including* the new packet
        // (the paper's `f.rank = f.len` reads the updated length).
        let f = self.flow_mut(id);
        f.bytes += p.bytes as u64;
        f.fifo.push_back(p);
        let f = &self.flows[id as usize];
        let new_rank = self
            .policy
            .rank_on_enqueue(now, f, f.back().expect("just pushed"));
        self.apply_rank(id, new_rank);
        self.packets += 1;
    }

    /// Installs `new_rank` for flow `id`: parks on [`PARK`], otherwise
    /// (re-)inserts the flow's epoch-stamped entry when the rank changed.
    fn apply_rank(&mut self, id: FlowId, new_rank: u64) {
        let f = &mut self.flows[id as usize];
        if new_rank == PARK {
            // Parked: no queue entry until the policy's advance surfaces
            // the flow again; any live entry goes stale.
            f.rank = PARK;
            f.active = false;
            return;
        }
        let needs_entry = !f.active || new_rank != f.rank;
        f.rank = new_rank;
        if needs_entry {
            // Invalidate any previous entry and insert the fresh one: the
            // O(1) re-rank.
            f.epoch += 1;
            f.active = true;
            let entry = (id, f.epoch);
            self.queue
                .enqueue(new_rank, entry)
                .unwrap_or_else(|e| panic!("flow rank {} outside queue range", e.rank));
        }
    }

    /// Fires the policy's poll hook: flows whose eligibility changed at
    /// `now` (limit gates opening, reservations coming due) are re-ranked —
    /// or unparked — through [`FlowPolicy::rank_now`].
    pub fn advance(&mut self, now: Nanos) {
        let mut ids = std::mem::take(&mut self.rerank_scratch);
        ids.clear();
        self.policy.advance(now, &mut ids);
        for &id in &ids {
            let idx = id as usize;
            if idx >= self.flows.len() || self.flows[idx].is_empty() {
                continue; // idle flows have nothing to re-rank
            }
            let new_rank = self.policy.rank_now(now, &self.flows[idx]);
            self.apply_rank(id, new_rank);
        }
        self.rerank_scratch = ids;
    }

    /// Earliest future instant the policy could surface parked or
    /// promotable work (`None` for enqueue-only policies).
    pub fn soonest_wakeup(&self) -> Option<Nanos> {
        self.policy.soonest_wakeup()
    }

    /// Whether the flow queue holds any entry at all. Entries may be stale
    /// (lazily invalidated re-ranks), so `true` can be a false positive —
    /// one dequeue pass cleans it up — but `false` is authoritative: with
    /// no entry, nothing is serviceable until a wakeup.
    pub fn has_queued_flows(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Dequeues the head packet of the minimum-rank flow, re-ranking the
    /// flow per the policy's on-dequeue hook. Fires the policy's
    /// [`FlowScheduler::advance`] first, so time-driven promotions and
    /// unparks are visible to this very selection.
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.advance(now);
        loop {
            let (_, (id, epoch)) = self.queue.dequeue_min()?;
            let f = &mut self.flows[id as usize];
            if !f.active || f.epoch != epoch {
                self.stale_skipped += 1;
                continue; // lazily dropped re-rank leftover
            }
            // Valid entry: this flow is the scheduler's choice.
            f.active = false;
            let pkt = f.fifo.pop_front().expect("active flows hold packets");
            f.bytes -= pkt.bytes as u64;
            self.packets -= 1;
            let fr = &self.flows[id as usize];
            self.policy.on_serve(now, fr, &pkt);
            if !self.flows[id as usize].fifo.is_empty() {
                let fr = &self.flows[id as usize];
                let new_rank = self.policy.rank_on_dequeue(now, fr).unwrap_or(fr.rank);
                self.apply_rank(id, new_rank);
            }
            return Some(pkt);
        }
    }

    /// Rank of the best flow, skipping stale entries (read-only best effort:
    /// may report a stale bucket edge until the next dequeue cleans it).
    pub fn peek_min_rank(&self) -> Option<u64> {
        self.queue.peek_min_rank()
    }

    /// Dequeues up to `max` packets in exactly the order repeated
    /// [`FlowScheduler::dequeue`] calls would produce, appending them to
    /// `out`. Returns how many packets were moved.
    ///
    /// The amortization is the per-flow transaction itself: when the chosen
    /// flow's recomputed rank stays *strictly below* every queued bucket
    /// edge, the next single dequeue would pop this same flow again — its
    /// fresh entry would sit alone in a new minimum bucket — so the batch
    /// path keeps serving it without the enqueue/dequeue round trip. The
    /// moment the recomputed rank reaches another bucket (where FIFO order
    /// against already-queued entries matters) or the batch fills, the flow
    /// re-enters the queue exactly as the single-dequeue path would have
    /// left it. Stale entries make `peek_min_rank` read low, which only
    /// falls back to the exact path — never past it.
    ///
    /// The shortcut assumes the backing queue places and finds ranks
    /// exactly; [`FlowScheduler::with_kind`] enables it only for such
    /// kinds, and schedulers built over clamping/approximate queues (or
    /// via [`FlowScheduler::new`], which cannot tell) run this method as
    /// the plain dequeue loop — batched in call shape, identical in order
    /// by construction.
    pub fn dequeue_batch(&mut self, now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        let mut n = 0;
        'select: while n < max {
            self.advance(now);
            let Some((_, (id, epoch))) = self.queue.dequeue_min() else {
                break;
            };
            let f = &mut self.flows[id as usize];
            if !f.active || f.epoch != epoch {
                self.stale_skipped += 1;
                continue; // lazily dropped re-rank leftover
            }
            f.active = false;
            loop {
                let f = &mut self.flows[id as usize];
                let pkt = f.fifo.pop_front().expect("chosen flows hold packets");
                f.bytes -= pkt.bytes as u64;
                self.packets -= 1;
                let fr = &self.flows[id as usize];
                self.policy.on_serve(now, fr, &pkt);
                out.push(pkt);
                n += 1;
                if self.flows[id as usize].fifo.is_empty() {
                    continue 'select; // flow drained: pick the next minimum
                }
                let fr = &self.flows[id as usize];
                let new_rank = self.policy.rank_on_dequeue(now, fr).unwrap_or(fr.rank);
                // PARK must never take the strict-minimum shortcut: an
                // empty queue reads as "still minimal" there, which would
                // keep serving a flow the policy just gated off.
                let parked = new_rank == PARK;
                // A wakeup due at `now` means the single-dequeue path's
                // per-pop advance could surface a better-ranked flow —
                // fall back to a fresh selection rather than keep serving.
                let still_strict_min = !parked
                    && self.batch_shortcut
                    && n < max
                    && self
                        .queue
                        .peek_min_rank()
                        .map_or(true, |edge| new_rank < edge)
                    && self.policy.soonest_wakeup().map_or(true, |w| w > now);
                if !still_strict_min {
                    // Re-enter (or park) the flow exactly as `dequeue` would.
                    self.apply_rank(id, new_rank);
                    continue 'select;
                }
                let f = &mut self.flows[id as usize];
                f.rank = new_rank;
                // Strictly minimal: serving again now is what the next
                // dequeue_min would do anyway.
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shortest-queue-first (inverse LQF) for testing: rank = queue length.
    struct SqfPolicy;

    impl FlowPolicy for SqfPolicy {
        type Data = ();
        fn rank_on_enqueue(&mut self, _now: Nanos, f: &FlowState<()>, _p: &Packet) -> u64 {
            f.len() as u64
        }
        fn rank_on_dequeue(&mut self, _now: Nanos, f: &FlowState<()>) -> Option<u64> {
            Some(f.len() as u64)
        }
    }

    fn pkt(id: u64, flow: FlowId) -> Packet {
        Packet::mtu(id, flow, 0)
    }

    fn sched() -> FlowScheduler<SqfPolicy> {
        FlowScheduler::with_kind(SqfPolicy, QueueKind::Cffs, QueueConfig::new(1_024, 1, 0))
    }

    #[test]
    fn per_flow_fifo_is_preserved() {
        let mut s = sched();
        for i in 0..5 {
            s.enqueue(0, pkt(i, 0));
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(0).map(|p| p.id)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4], "no intra-flow reordering");
    }

    #[test]
    fn enqueue_rerank_moves_flow() {
        let mut s = sched();
        // Flow 0 gets 3 packets (rank 3), flow 1 gets 1 packet (rank 1):
        // shortest-queue-first must pick flow 1.
        s.enqueue(0, pkt(0, 0));
        s.enqueue(0, pkt(1, 0));
        s.enqueue(0, pkt(2, 0));
        s.enqueue(0, pkt(3, 1));
        assert_eq!(s.dequeue(0).unwrap().flow, 1);
        assert!(
            s.stale_skipped() >= 1,
            "flow 0's re-ranks left stale entries"
        );
    }

    #[test]
    fn dequeue_rerank_keeps_policy_consistent() {
        let mut s = sched();
        for i in 0..4 {
            s.enqueue(0, pkt(i, 0)); // flow 0: 4 pkts → rank 4
        }
        s.enqueue(0, pkt(10, 1));
        s.enqueue(0, pkt(11, 1)); // flow 1: 2 pkts → rank 2
                                  // SQF drains: f1 (2) → f1 becomes 1 → still min → f1 (1) → f1 empty
                                  // → f0 (rank recomputed downward as it drains).
        let flows: Vec<FlowId> = std::iter::from_fn(|| s.dequeue(0).map(|p| p.flow)).collect();
        assert_eq!(flows, vec![1, 1, 0, 0, 0, 0]);
        assert!(s.is_empty());
    }

    #[test]
    fn interleaves_flows_with_equal_ranks_fairly() {
        let mut s = sched();
        // Two flows with one packet each: both rank 1, FIFO between them.
        s.enqueue(0, pkt(0, 0));
        s.enqueue(0, pkt(1, 1));
        assert_eq!(s.dequeue(0).unwrap().flow, 0);
        assert_eq!(s.dequeue(0).unwrap().flow, 1);
    }

    /// A scheduler whose backing enables the strict-minimum batch
    /// shortcut (fixed-range exact queue), unlike `sched()`'s moving
    /// window.
    fn sched_exact() -> FlowScheduler<SqfPolicy> {
        FlowScheduler::with_kind(SqfPolicy, QueueKind::HierFfs, QueueConfig::new(1_024, 1, 0))
    }

    #[test]
    fn dequeue_batch_matches_repeated_dequeue() {
        // Both backings: HierFfs exercises the strict-minimum shortcut,
        // Cffs (clamping window, shortcut disabled) the exact loop.
        dequeue_batch_matches_repeated_dequeue_on(sched_exact(), sched_exact());
        dequeue_batch_matches_repeated_dequeue_on(sched(), sched());
    }

    fn dequeue_batch_matches_repeated_dequeue_on(
        mut batched: FlowScheduler<SqfPolicy>,
        mut single: FlowScheduler<SqfPolicy>,
    ) {
        // Mirror two schedulers through an interleaved workload; the
        // batched one must emit the exact same packet sequence.
        let mut x: u64 = 0x5eed;
        let mut feed = |b: &mut FlowScheduler<SqfPolicy>, s: &mut FlowScheduler<SqfPolicy>, k| {
            for _ in 0..k {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let p = pkt(x, (x % 7) as FlowId);
                b.enqueue(0, p.clone());
                s.enqueue(0, p);
            }
        };
        feed(&mut batched, &mut single, 40);
        let mut out = Vec::new();
        for round in 0..50usize {
            let max = 1 + round % 9;
            out.clear();
            let got = batched.dequeue_batch(0, max, &mut out);
            assert_eq!(got, out.len());
            for p in &out {
                assert_eq!(Some(p.clone()), single.dequeue(0));
            }
            if got < max {
                assert!(single.dequeue(0).is_none());
            }
            feed(&mut batched, &mut single, round % 4);
        }
        while !batched.is_empty() {
            out.clear();
            batched.dequeue_batch(0, 5, &mut out);
            for p in &out {
                assert_eq!(Some(p.clone()), single.dequeue(0));
            }
        }
        assert!(single.dequeue(0).is_none());
    }

    #[test]
    fn flow_count_grows_on_demand() {
        let mut s = sched();
        s.enqueue(0, pkt(0, 500));
        assert_eq!(s.len(), 1);
        assert_eq!(s.flow(500).len(), 1);
        assert_eq!(s.flow(499).len(), 0);
        assert_eq!(s.dequeue(0).unwrap().flow, 500);
    }
}
