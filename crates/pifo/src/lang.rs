//! A textual policy language compiled into a scheduling tree.
//!
//! The paper configures Eiffel by compiling PIFO-model policy descriptions
//! (DOT graphs) into scheduler code (§4, "Policy Creation"). This module is
//! that compiler for the Rust implementation: a line-based description of
//! the scheduling tree, its transactions, per-flow leaves and rate limits,
//! compiled into a ready [`PifoTree`].
//!
//! ```text
//! # A hierarchy: weighted sharing at the root, a rate-limited video class,
//! # an LQF-scheduled interactive class (Eiffel per-flow extension).
//! node root  kind=stfq
//! node video parent=root kind=fifo     weight=4 limit=10mbps
//! node web   parent=root kind=flow:lqf weight=1
//! ```
//!
//! Grammar per line: `node <name> [parent=<name>] kind=<kind> [attr=value]…`
//! (blank lines and `#` comments ignored). Kinds:
//!
//! | kind | transaction | notes |
//! |---|---|---|
//! | `fifo` | [`Fifo`] | |
//! | `strict` | [`StrictPriority`] | ranks by the packet's class |
//! | `childprio` | [`ChildPriority`] | children declare `prio=N` |
//! | `stfq` | [`Stfq`] | children declare `weight=N` |
//! | `wfq` | [`Wfq`] | finish-tag WFQ; children declare `weight=N` |
//! | `edf` | [`Edf`] | `deadlines=1ms,10ms,…` per class |
//! | `slack` | [`SlackRank`] | annotator-provided ranks |
//! | `lstf` | [`Lstf`] | deadline = `created_at` + annotated slack |
//! | `flow:fifo` | per-flow round robin | Eiffel flow leaf |
//! | `flow:lqf` | Figure 6 LQF | Eiffel flow leaf |
//! | `flow:pfabric` | Figure 14 pFabric | Eiffel flow leaf |
//! | `flow:hclock` | [`HClockFlow`] | `res=`, `lim=` rates, `share=N` |
//! | `flow:hfsc` | [`HfscCurves`] | `m1=`, `m2=` rates, `burst=BYTES`, `share=N` |
//!
//! `limit=<rate>` (e.g. `500kbps`, `10mbps`, `2gbps`) attaches the node to
//! the hierarchy-wide shaper; on the root it means pacing. The QoS flow
//! leaves (`flow:hclock`, `flow:hfsc`) apply one spec uniformly to every
//! flow — per-flow spec tables are built through the library API.

use std::collections::HashMap;

use eiffel_core::{QueueConfig, QueueKind};
use eiffel_sim::Rate;

use crate::policies::{
    ChildPriority, CurveSpec, Edf, Fifo, FlowFifo, HClockFlow, HfscCurves, Lqf, Lstf,
    ObjFlowPolicy, Pfabric, QosSpec, SlackRank, Stfq, StrictPriority, Wfq, LQF_CAP,
};
use crate::tree::{NodeId, PifoTree, TreeBuilder};

/// A compile error with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line in the policy text.
    pub line: usize,
    /// Human-readable reason.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone)]
struct NodeSpec {
    line: usize,
    name: String,
    parent: Option<String>,
    kind: String,
    weight: Option<u64>,
    prio: Option<u64>,
    limit: Option<Rate>,
    deadlines: Option<Vec<u64>>,
    /// `flow:hclock` reservation rate.
    res: Option<Rate>,
    /// `flow:hclock` limit rate (per flow, unlike the node-level `limit=`).
    lim: Option<Rate>,
    /// `flow:hclock` / `flow:hfsc` proportional share.
    share: Option<u64>,
    /// `flow:hfsc` burst-phase rate.
    m1: Option<Rate>,
    /// `flow:hfsc` steady-state rate.
    m2: Option<Rate>,
    /// `flow:hfsc` burst bytes at `m1` per backlog period.
    burst: Option<u64>,
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a rate like `750kbps`, `10mbps`, `2gbps`, `1000bps`.
pub fn parse_rate(s: &str, line: usize) -> Result<Rate, ParseError> {
    let lower = s.to_ascii_lowercase();
    let (num, mult) = if let Some(n) = lower.strip_suffix("gbps") {
        (n, 1_000_000_000u64)
    } else if let Some(n) = lower.strip_suffix("mbps") {
        (n, 1_000_000)
    } else if let Some(n) = lower.strip_suffix("kbps") {
        (n, 1_000)
    } else if let Some(n) = lower.strip_suffix("bps") {
        (n, 1)
    } else {
        return Err(err(
            line,
            format!("rate '{s}' needs a bps/kbps/mbps/gbps suffix"),
        ));
    };
    let v: f64 = num
        .parse()
        .map_err(|_| err(line, format!("bad rate number '{num}'")))?;
    if v <= 0.0 {
        return Err(err(line, format!("rate '{s}' must be positive")));
    }
    Ok(Rate::bps((v * mult as f64) as u64))
}

/// Parses a duration like `500ns`, `10us`, `3ms`, `2s` into nanoseconds.
pub fn parse_duration(s: &str, line: usize) -> Result<u64, ParseError> {
    let lower = s.to_ascii_lowercase();
    let (num, mult) = if let Some(n) = lower.strip_suffix("ns") {
        (n, 1u64)
    } else if let Some(n) = lower.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = lower.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = lower.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        return Err(err(
            line,
            format!("duration '{s}' needs an ns/us/ms/s suffix"),
        ));
    };
    let v: f64 = num
        .parse()
        .map_err(|_| err(line, format!("bad duration number '{num}'")))?;
    if v < 0.0 {
        return Err(err(line, format!("duration '{s}' must be non-negative")));
    }
    Ok((v * mult as f64) as u64)
}

fn parse_spec(line_no: usize, line: &str) -> Result<NodeSpec, ParseError> {
    let mut toks = line.split_whitespace();
    let head = toks.next().expect("caller skips blank lines");
    if head != "node" {
        return Err(err(line_no, format!("expected 'node', found '{head}'")));
    }
    let name = toks
        .next()
        .ok_or_else(|| err(line_no, "missing node name"))?
        .to_string();
    let mut spec = NodeSpec {
        line: line_no,
        name,
        parent: None,
        kind: String::new(),
        weight: None,
        prio: None,
        limit: None,
        deadlines: None,
        res: None,
        lim: None,
        share: None,
        m1: None,
        m2: None,
        burst: None,
    };
    for tok in toks {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| err(line_no, format!("expected attr=value, found '{tok}'")))?;
        match k {
            "parent" => spec.parent = Some(v.to_string()),
            "kind" => spec.kind = v.to_string(),
            "weight" => {
                spec.weight = Some(
                    v.parse()
                        .map_err(|_| err(line_no, format!("bad weight '{v}'")))?,
                )
            }
            "prio" => {
                spec.prio = Some(
                    v.parse()
                        .map_err(|_| err(line_no, format!("bad prio '{v}'")))?,
                )
            }
            "limit" => spec.limit = Some(parse_rate(v, line_no)?),
            "res" => spec.res = Some(parse_rate(v, line_no)?),
            "lim" => spec.lim = Some(parse_rate(v, line_no)?),
            "m1" => spec.m1 = Some(parse_rate(v, line_no)?),
            "m2" => spec.m2 = Some(parse_rate(v, line_no)?),
            "share" => {
                spec.share = Some(
                    v.parse()
                        .map_err(|_| err(line_no, format!("bad share '{v}'")))?,
                )
            }
            "burst" => {
                spec.burst = Some(
                    v.parse()
                        .map_err(|_| err(line_no, format!("bad burst '{v}'")))?,
                )
            }
            "deadlines" => {
                let mut ds = Vec::new();
                for part in v.split(',') {
                    ds.push(parse_duration(part, line_no)?);
                }
                spec.deadlines = Some(ds);
            }
            other => return Err(err(line_no, format!("unknown attribute '{other}'"))),
        }
    }
    if spec.kind.is_empty() {
        return Err(err(line_no, "missing kind="));
    }
    Ok(spec)
}

/// Compiles a policy description into a scheduling tree.
///
/// The first node must be the (parentless) root; parents must be declared
/// before their children.
pub fn compile(policy: &str) -> Result<PifoTree, ParseError> {
    let mut specs: Vec<NodeSpec> = Vec::new();
    let mut by_name: HashMap<String, usize> = HashMap::new();
    for (i, raw) in policy.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let spec = parse_spec(line_no, line)?;
        if by_name.contains_key(&spec.name) {
            return Err(err(line_no, format!("duplicate node '{}'", spec.name)));
        }
        by_name.insert(spec.name.clone(), specs.len());
        specs.push(spec);
    }
    if specs.is_empty() {
        return Err(err(0, "empty policy"));
    }
    if specs[0].parent.is_some() {
        return Err(err(specs[0].line, "first node must be the parentless root"));
    }

    // Resolve parents and collect children per node (ids = spec order).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); specs.len()];
    let mut parent_idx: Vec<Option<usize>> = vec![None; specs.len()];
    for (i, spec) in specs.iter().enumerate() {
        if let Some(pname) = &spec.parent {
            let p = *by_name
                .get(pname)
                .ok_or_else(|| err(spec.line, format!("unknown parent '{pname}'")))?;
            if p >= i {
                return Err(err(
                    spec.line,
                    format!("parent '{pname}' must be declared first"),
                ));
            }
            if specs[p].kind.starts_with("flow:") {
                return Err(err(
                    spec.line,
                    format!("flow leaf '{pname}' cannot have children"),
                ));
            }
            parent_idx[i] = Some(p);
            children[p].push(i);
        } else if i != 0 {
            return Err(err(spec.line, "only the first node may omit parent="));
        }
    }

    let mut b = TreeBuilder::new();
    for (i, spec) in specs.iter().enumerate() {
        let parent = parent_idx[i].map(NodeId);
        let id = match spec.kind.as_str() {
            "fifo" => b.node(&spec.name, parent, Box::new(Fifo::new()), spec.limit),
            "strict" => b.node(&spec.name, parent, Box::new(StrictPriority), spec.limit),
            "slack" => b.node(&spec.name, parent, Box::new(SlackRank), spec.limit),
            "lstf" => b.node(&spec.name, parent, Box::new(Lstf), spec.limit),
            "edf" => {
                let ds = spec
                    .deadlines
                    .clone()
                    .ok_or_else(|| err(spec.line, "edf needs deadlines=..."))?;
                b.node(&spec.name, parent, Box::new(Edf::new(ds)), spec.limit)
            }
            "childprio" => {
                let pairs: Vec<(u64, u64)> = children[i]
                    .iter()
                    .map(|&c| (c as u64, specs[c].prio.unwrap_or(63)))
                    .collect();
                b.node(
                    &spec.name,
                    parent,
                    Box::new(ChildPriority::new(&pairs)),
                    spec.limit,
                )
            }
            "stfq" => {
                let mut tx = Stfq::new();
                for &c in &children[i] {
                    if let Some(w) = specs[c].weight {
                        tx.set_weight(c as u64, w);
                    }
                }
                b.node(&spec.name, parent, Box::new(tx), spec.limit)
            }
            "wfq" => {
                let mut tx = Wfq::new();
                for &c in &children[i] {
                    if let Some(w) = specs[c].weight {
                        tx.set_weight(c as u64, w);
                    }
                }
                b.node(&spec.name, parent, Box::new(tx), spec.limit)
            }
            "flow:hclock" => {
                if parent.is_some() || spec.limit.is_some() {
                    // hClock parks limit-gated flows, which is only sound
                    // at an unshaped root (see TreeBuilder::flow_leaf).
                    return Err(err(
                        spec.line,
                        "flow:hclock must be the unshaped root (its lim= gates per flow)",
                    ));
                }
                let res = spec
                    .res
                    .ok_or_else(|| err(spec.line, "flow:hclock needs res=<rate>"))?;
                let lim = spec
                    .lim
                    .ok_or_else(|| err(spec.line, "flow:hclock needs lim=<rate>"))?;
                let qos = QosSpec {
                    reservation: res,
                    limit: lim,
                    share: spec.share.unwrap_or(1),
                };
                b.flow_leaf(
                    &spec.name,
                    parent,
                    Box::new(HClockFlow::new(vec![qos])),
                    // Two-band ranks (quantized deadlines ⊕ virtual times)
                    // span the whole u64: keep ordering exact.
                    QueueKind::BTree.build(QueueConfig::new(1, 1, 0)),
                    spec.limit,
                )
            }
            "flow:hfsc" => {
                let m1 = spec
                    .m1
                    .ok_or_else(|| err(spec.line, "flow:hfsc needs m1=<rate>"))?;
                let m2 = spec
                    .m2
                    .ok_or_else(|| err(spec.line, "flow:hfsc needs m2=<rate>"))?;
                let curve = CurveSpec {
                    m1,
                    m2,
                    burst: spec.burst.unwrap_or(15_000),
                    share: spec.share.unwrap_or(1),
                };
                b.flow_leaf(
                    &spec.name,
                    parent,
                    Box::new(HfscCurves::new(vec![curve])),
                    QueueKind::BTree.build(QueueConfig::new(1, 1, 0)),
                    spec.limit,
                )
            }
            "flow:fifo" | "flow:lqf" | "flow:pfabric" => {
                let (policy, queue): (Box<dyn ObjFlowPolicy>, _) = match spec.kind.as_str() {
                    "flow:fifo" => (
                        Box::new(FlowFifo::default()) as Box<dyn ObjFlowPolicy>,
                        QueueKind::Cffs.build(QueueConfig::new(4_096, 1, 0)),
                    ),
                    "flow:lqf" => (
                        Box::new(Lqf),
                        QueueKind::Cffs.build(QueueConfig::new(4_096, 1, LQF_CAP - 4_096)),
                    ),
                    _ => (
                        Box::new(Pfabric),
                        // Remaining flow size in packets: fixed range.
                        QueueKind::HierFfs.build(QueueConfig::new(1 << 20, 1, 0)),
                    ),
                };
                b.flow_leaf(&spec.name, parent, policy, queue, spec.limit)
            }
            other => return Err(err(spec.line, format!("unknown kind '{other}'"))),
        };
        debug_assert_eq!(id.0, i, "spec order must equal node id order");
    }
    b.build().map_err(|e| err(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eiffel_sim::Packet;

    #[test]
    fn rate_and_duration_parsing() {
        assert_eq!(parse_rate("10mbps", 1).unwrap(), Rate::mbps(10));
        assert_eq!(parse_rate("2gbps", 1).unwrap(), Rate::gbps(2));
        assert_eq!(parse_rate("750kbps", 1).unwrap(), Rate::kbps(750));
        assert_eq!(parse_rate("1.5mbps", 1).unwrap(), Rate::bps(1_500_000));
        assert!(parse_rate("10", 1).is_err());
        assert!(parse_rate("-1mbps", 1).is_err());
        assert_eq!(parse_duration("10us", 1).unwrap(), 10_000);
        assert_eq!(parse_duration("2ms", 1).unwrap(), 2_000_000);
        assert_eq!(parse_duration("1s", 1).unwrap(), 1_000_000_000);
        assert_eq!(parse_duration("1.5us", 1).unwrap(), 1_500);
        assert!(parse_duration("5", 1).is_err());
    }

    #[test]
    fn compiles_the_doc_example() {
        let t = compile(
            "# weighted share with a limited class\n\
             node root  kind=stfq\n\
             node video parent=root kind=fifo     weight=4 limit=10mbps\n\
             node web   parent=root kind=flow:lqf weight=1\n",
        )
        .unwrap();
        assert!(t.node_by_name("video").is_ok());
        assert!(t.node_by_name("web").is_ok());
    }

    #[test]
    fn compiled_strict_priority_schedules_correctly() {
        let mut t = compile(
            "node root kind=childprio\n\
             node hi   parent=root kind=fifo prio=0\n\
             node lo   parent=root kind=fifo prio=1\n",
        )
        .unwrap();
        let hi = t.node_by_name("hi").unwrap();
        let lo = t.node_by_name("lo").unwrap();
        t.enqueue(0, lo, Packet::mtu(0, 0, 0)).unwrap();
        t.enqueue(0, hi, Packet::mtu(1, 1, 0)).unwrap();
        assert_eq!(t.dequeue(0).unwrap().id, 1, "prio=0 child first");
        assert_eq!(t.dequeue(0).unwrap().id, 0);
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        let e = compile("node root kind=stfq\nnode bad parent=root kind=wat\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown kind"));

        let e = compile("node root kind=stfq\nnode a parent=ghost kind=fifo\n").unwrap_err();
        assert!(e.message.contains("unknown parent"));

        let e = compile("node root kind=stfq\nnode root parent=root kind=fifo\n").unwrap_err();
        assert!(e.message.contains("duplicate"));

        let e = compile("node root parent=x kind=fifo\n").unwrap_err();
        assert!(e.message.contains("root"));

        let e = compile("").unwrap_err();
        assert!(e.message.contains("empty"));

        let e = compile("node root kind=edf\n").unwrap_err();
        assert!(e.message.contains("deadlines"));

        let e = compile(
            "node root kind=stfq\nnode f parent=root kind=flow:lqf\nnode c parent=f kind=fifo\n",
        )
        .unwrap_err();
        assert!(e.message.contains("cannot have children"));
    }

    #[test]
    fn edf_policy_compiles_and_orders_by_deadline() {
        let mut t = compile("node root kind=edf deadlines=1ms,10ms\n").unwrap();
        let root = t.node_by_name("root").unwrap();
        let mut urgent = Packet::mtu(0, 0, 0);
        urgent.class = 0;
        let mut lax = Packet::mtu(1, 1, 0);
        lax.class = 1;
        t.enqueue(0, root, lax).unwrap();
        t.enqueue(0, root, urgent).unwrap();
        assert_eq!(t.dequeue(0).unwrap().id, 0, "1 ms deadline first");
    }
}
