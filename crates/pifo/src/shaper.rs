//! The unified shaper — Eiffel extension #3 (§3.2.2, Figures 7–8).
//!
//! Earlier programmable schedulers either had no shaping (OpenQueue) or
//! coupled one shaping transaction to each scheduling transaction (PIFO).
//! Eiffel decouples them: "any rate limit can be translated to a timestamp
//! per packet, which yields even better adherence to the set rate than token
//! buckets. Hence, we use only one shaper for the whole hierarchy which is
//! implemented using a single priority queue."
//!
//! Two pieces live here:
//! * [`TokenStamper`] — per-rate-limit state converting (packet size, rate)
//!   into a release timestamp;
//! * [`Shaper`] — the single time-indexed priority queue (a cFFS) holding
//!   every pending release in the hierarchy, whatever rate limit produced it.

use eiffel_core::{CffsQueue, RankedQueue};
use eiffel_sim::{Nanos, Rate};

/// Converts a rate limit into per-packet release timestamps.
///
/// The classic "timestamp, not token bucket" shaper: each packet's release
/// time is the previous release plus the serialization time of the
/// *previous* packet at the configured rate; an idle period resets to `now`.
#[derive(Debug, Clone)]
pub struct TokenStamper {
    rate: Rate,
    /// Earliest instant the next packet may be released.
    next_eligible: Nanos,
}

impl TokenStamper {
    /// A stamper for `rate`.
    pub fn new(rate: Rate) -> Self {
        TokenStamper {
            rate,
            next_eligible: 0,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// When the next packet may be released (for inspection).
    pub fn next_eligible(&self) -> Nanos {
        self.next_eligible
    }

    /// Updates the configured rate (operators may re-provision limits live).
    pub fn set_rate(&mut self, rate: Rate) {
        self.rate = rate;
    }

    /// Stamps a packet of `bytes` presented at `now`: returns its release
    /// time and advances the stamper.
    ///
    /// Returns `None` for a zero rate — nothing may ever be released, and
    /// the caller decides whether that means "drop" or "hold forever".
    pub fn stamp(&mut self, now: Nanos, bytes: u64) -> Option<Nanos> {
        let tx = self.rate.tx_time(bytes)?;
        let release = self.next_eligible.max(now);
        self.next_eligible = release + tx;
        Some(release)
    }
}

/// The single hierarchy-wide shaper: a time-indexed queue of pending
/// releases.
///
/// `T` is whatever the host needs back at release time — `eiffel-pifo`'s
/// tree stores `(node, packet)` journeys, the kernel qdisc stores packets.
#[derive(Debug)]
pub struct Shaper<T> {
    queue: CffsQueue<T>,
}

impl<T> Shaper<T> {
    /// Creates a shaper with `num_buckets` time buckets of `granularity`
    /// nanoseconds per window half (the paper's kernel configuration is
    /// 20k buckets over a 2-second horizon).
    pub fn new(num_buckets: usize, granularity: Nanos, start: Nanos) -> Self {
        Shaper {
            queue: CffsQueue::new(num_buckets, granularity, start),
        }
    }

    /// Schedules `item` for release at `ts`.
    pub fn schedule(&mut self, ts: Nanos, item: T) {
        self.queue
            .enqueue(ts, item)
            .unwrap_or_else(|_| unreachable!("cFFS clamps instead of refusing"));
    }

    /// Releases every item due at or before `now`, in release-time order.
    pub fn release_due(&mut self, now: Nanos, out: &mut Vec<(Nanos, T)>) {
        // Fused peek+pop: one bitmap descent per released item.
        while let Some((ts, item)) = self.queue.dequeue_min_le(now) {
            out.push((ts, item));
        }
    }

    /// The earliest pending release — `SoonestDeadline()` for timer hosts.
    ///
    /// Bucket-granular: never *later* than the true earliest release, so a
    /// timer armed here never oversleeps a deadline.
    pub fn soonest_deadline(&self) -> Option<Nanos> {
        self.queue.peek_min_rank()
    }

    /// Pending release count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Clamp statistics from the underlying circular queue.
    pub fn stats(&self) -> eiffel_core::QueueStats {
        self.queue.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamper_produces_rate_spaced_timestamps() {
        // 12 Mbps, 1500B → 1 ms per packet.
        let mut st = TokenStamper::new(Rate::mbps(12));
        assert_eq!(st.stamp(0, 1_500), Some(0));
        assert_eq!(st.stamp(0, 1_500), Some(1_000_000));
        assert_eq!(st.stamp(0, 1_500), Some(2_000_000));
        // Idle gap: the stamper resets to `now` rather than bursting.
        assert_eq!(st.stamp(10_000_000, 1_500), Some(10_000_000));
        assert_eq!(st.stamp(10_000_000, 1_500), Some(11_000_000));
    }

    #[test]
    fn zero_rate_stamps_nothing() {
        let mut st = TokenStamper::new(Rate::bps(0));
        assert_eq!(st.stamp(5, 1_500), None);
    }

    #[test]
    fn shaper_releases_in_time_order_across_rates() {
        // Two rate limits share the one shaper — the point of §3.2.2.
        let mut slow = TokenStamper::new(Rate::mbps(6)); // 2 ms/pkt
        let mut fast = TokenStamper::new(Rate::mbps(24)); // 0.5 ms/pkt
        let mut sh: Shaper<&str> = Shaper::new(4_096, 100_000, 0);
        for i in 0..3 {
            let ts = slow.stamp(0, 1_500).unwrap();
            sh.schedule(
                ts,
                if i == 0 {
                    "s0"
                } else if i == 1 {
                    "s1"
                } else {
                    "s2"
                },
            );
        }
        for i in 0..3 {
            let ts = fast.stamp(0, 1_500).unwrap();
            sh.schedule(
                ts,
                if i == 0 {
                    "f0"
                } else if i == 1 {
                    "f1"
                } else {
                    "f2"
                },
            );
        }
        let mut out = Vec::new();
        sh.release_due(1_000_000, &mut out); // everything due ≤ 1 ms
        let names: Vec<&str> = out.iter().map(|(_, n)| *n).collect();
        // Due: s0@0, f0@0, f1@0.5ms, f2@1ms — FIFO between s0/f0 (same bucket
        // edge 0), then the fast flow's later stamps.
        assert_eq!(names, vec!["s0", "f0", "f1", "f2"]);
        assert_eq!(sh.len(), 2);
        assert_eq!(sh.soonest_deadline(), Some(2_000_000));
        out.clear();
        sh.release_due(4_000_000, &mut out);
        assert_eq!(out.len(), 2);
        assert!(sh.is_empty());
    }

    #[test]
    fn soonest_deadline_never_oversleeps() {
        let mut sh: Shaper<u32> = Shaper::new(100, 1_000, 0);
        sh.schedule(12_345, 1);
        let d = sh.soonest_deadline().unwrap();
        assert!(d <= 12_345, "timer must not fire after the deadline");
        let mut out = Vec::new();
        sh.release_due(d, &mut out);
        // At the bucket edge the packet may be up to one granule early —
        // bucketed-shaper semantics (paper §2: equivalent rank in a bucket).
        assert_eq!(out.len(), 1);
    }
}
