//! The policy library: scheduling transactions and per-flow policies.
//!
//! Scheduling transactions ([`Transaction`]) are PIFO's rank functions —
//! pure "compute a rank on enqueue" logic, one per tree node. Per-flow
//! policies ([`ObjFlowPolicy`]) are Eiffel's extension: they may re-rank a
//! whole flow on enqueue *and* dequeue (Figures 6 and 14 of the paper are
//! implemented verbatim here as [`Lqf`] and [`Pfabric`]).

use std::collections::HashMap;

use eiffel_core::{QueueConfig, QueueKind};
use eiffel_sim::{Nanos, Packet};

use crate::flow::{FlowPolicy, FlowState};

/// Everything a rank function may look at.
#[derive(Debug)]
pub struct RankCtx<'a> {
    /// Virtual time of the operation.
    pub now: Nanos,
    /// The packet being ranked (for inner nodes: the packet whose arrival
    /// created the child entry).
    pub pkt: &'a Packet,
    /// Key identifying the element being ranked at this node: the child
    /// node id for inner nodes, the flow id for leaves.
    pub key: u64,
}

/// A scheduling transaction: ranks elements on enqueue (PIFO's model),
/// optionally observing dequeues (needed by virtual-time schemes).
pub trait Transaction {
    /// Rank for the element described by `ctx`. Smaller = sooner.
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64;

    /// Called with the rank of each element dequeued from this node's
    /// queue; virtual-time transactions advance their clock here.
    fn on_dequeue(&mut self, rank: u64) {
        let _ = rank;
    }

    /// Which queue geometry suits this transaction's rank distribution.
    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        (QueueKind::Cffs, QueueConfig::new(4_096, 1, 0))
    }
}

/// First-in-first-out: rank is an arrival counter.
#[derive(Debug, Default)]
pub struct Fifo {
    seq: u64,
}

impl Fifo {
    /// A fresh FIFO transaction.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transaction for Fifo {
    fn rank(&mut self, _ctx: &RankCtx<'_>) -> u64 {
        let r = self.seq;
        self.seq += 1;
        r
    }
}

/// Strict priority by the packet's annotated class (the 8-level 802.1Q
/// pattern; up to 64 levels in one FFS word).
#[derive(Debug, Default)]
pub struct StrictPriority;

impl Transaction for StrictPriority {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        ctx.pkt.class as u64
    }

    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        (QueueKind::Ffs, QueueConfig::new(64, 1, 0))
    }
}

/// Strict priority between *children* of an inner node, by a static map.
#[derive(Debug)]
pub struct ChildPriority {
    prio: HashMap<u64, u64>,
}

impl ChildPriority {
    /// Builds from `(child key, priority)` pairs; unlisted children get the
    /// lowest priority (63).
    pub fn new(pairs: &[(u64, u64)]) -> Self {
        ChildPriority {
            prio: pairs.iter().copied().collect(),
        }
    }
}

impl Transaction for ChildPriority {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        self.prio.get(&ctx.key).copied().unwrap_or(63)
    }

    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        (QueueKind::Ffs, QueueConfig::new(64, 1, 0))
    }
}

/// Start-Time Fair Queueing (Goyal et al.) — the classic software WFQ
/// approximation the paper cites (§2), and PIFO's canonical example.
///
/// Each key (child or flow) has a weight; an element's rank is
/// `max(virtual_time, finish[key])` and the key's finish advances by
/// `bytes / weight`. The virtual time is the start tag of the last
/// dequeued element.
#[derive(Debug)]
pub struct Stfq {
    vtime: u64,
    finish: HashMap<u64, u64>,
    weights: HashMap<u64, u64>,
    default_weight: u64,
    /// Rank units per byte at weight 1 (scales byte counts into ranks).
    bytes_scale: u64,
}

impl Stfq {
    /// Equal-weight STFQ.
    pub fn new() -> Self {
        Stfq {
            vtime: 0,
            finish: HashMap::new(),
            weights: HashMap::new(),
            default_weight: 1,
            bytes_scale: 1,
        }
    }

    /// Sets the weight for a key (share of bandwidth relative to siblings).
    pub fn set_weight(&mut self, key: u64, weight: u64) {
        assert!(weight > 0, "weights must be positive");
        self.weights.insert(key, weight);
    }

    fn weight(&self, key: u64) -> u64 {
        self.weights
            .get(&key)
            .copied()
            .unwrap_or(self.default_weight)
    }
}

impl Default for Stfq {
    fn default() -> Self {
        Self::new()
    }
}

impl Transaction for Stfq {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        let start = self
            .vtime
            .max(self.finish.get(&ctx.key).copied().unwrap_or(0));
        let cost = (ctx.pkt.bytes as u64 * self.bytes_scale) / self.weight(ctx.key);
        self.finish.insert(ctx.key, start + cost.max(1));
        start
    }

    fn on_dequeue(&mut self, rank: u64) {
        // Virtual time = start tag of the packet in service.
        self.vtime = self.vtime.max(rank);
    }

    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        // Virtual times move forward; bucket ≈ one MTU of virtual work.
        (QueueKind::Cffs, QueueConfig::new(8_192, 1_500, 0))
    }
}

/// Earliest Deadline First: rank = arrival time + per-class relative
/// deadline (Liu & Layland; paper §3.2.1 cites EDF as the per-packet
/// large-range example).
#[derive(Debug)]
pub struct Edf {
    /// Relative deadline per class; classes beyond the table use the last.
    deadlines: Vec<Nanos>,
}

impl Edf {
    /// Builds with one relative deadline per traffic class.
    pub fn new(deadlines: Vec<Nanos>) -> Self {
        assert!(!deadlines.is_empty());
        Edf { deadlines }
    }
}

impl Transaction for Edf {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        let class = (ctx.pkt.class as usize).min(self.deadlines.len() - 1);
        ctx.pkt.created_at + self.deadlines[class]
    }

    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        // Deadlines are timestamps: moving range, microsecond buckets.
        (QueueKind::Cffs, QueueConfig::new(16_384, 1_000, 0))
    }
}

/// Least Slack Time First: the rank is whatever slack the annotator wrote
/// into `pkt.rank` (Universal Packet Scheduling's headline policy — the
/// slack is computed upstream, the scheduler only orders by it).
#[derive(Debug, Default)]
pub struct SlackRank;

impl Transaction for SlackRank {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        ctx.pkt.rank
    }
}

// ---------------------------------------------------------------------------
// Per-flow policies (Eiffel extensions) — object-safe form for tree leaves.
// ---------------------------------------------------------------------------

/// Object-safe per-flow policy: per-flow bookkeeping lives inside the
/// policy (keyed by `FlowState::id`), so the trait has no associated type
/// and can be boxed into a scheduling tree.
pub trait ObjFlowPolicy {
    /// New rank for flow `f` after `p` was appended.
    fn rank_on_enqueue(&mut self, now: Nanos, f: &FlowState<()>, p: &Packet) -> u64;

    /// New rank after the head packet left `f` (non-empty). `None` keeps.
    fn rank_on_dequeue(&mut self, now: Nanos, f: &FlowState<()>) -> Option<u64> {
        let _ = (now, f);
        None
    }
}

impl FlowPolicy for Box<dyn ObjFlowPolicy> {
    type Data = ();

    fn rank_on_enqueue(&mut self, now: Nanos, f: &FlowState<()>, p: &Packet) -> u64 {
        (**self).rank_on_enqueue(now, f, p)
    }

    fn rank_on_dequeue(&mut self, now: Nanos, f: &FlowState<()>) -> Option<u64> {
        (**self).rank_on_dequeue(now, f)
    }
}

/// Figure 6 of the paper, verbatim — Longest Queue First:
///
/// ```text
/// # On enqueue of packet p of flow f:   f.rank = f.len
/// # On dequeue of packet p of flow f:   f.rank = f.len
/// ```
///
/// LQF serves the *longest* queue first; ranks are min-first, so the rank
/// is `CAP − len`.
#[derive(Debug, Default)]
pub struct Lqf;

/// Rank ceiling for [`Lqf`] (queues longer than this tie at the top).
pub const LQF_CAP: u64 = 1 << 24;

impl ObjFlowPolicy for Lqf {
    fn rank_on_enqueue(&mut self, _now: Nanos, f: &FlowState<()>, _p: &Packet) -> u64 {
        LQF_CAP - (f.len() as u64).min(LQF_CAP)
    }

    fn rank_on_dequeue(&mut self, _now: Nanos, f: &FlowState<()>) -> Option<u64> {
        Some(LQF_CAP - (f.len() as u64).min(LQF_CAP))
    }
}

/// Figure 14 of the paper, verbatim — pFabric's SRTF approximation:
///
/// ```text
/// # On enqueue of packet p of flow f:   f.rank = min(p.rank, f.rank)
/// # On dequeue of packet p of flow f:   f.rank = min(p.rank, f.front().rank)
/// ```
///
/// `p.rank` is the flow's remaining size at emission, written by the
/// annotator; the flow's rank tracks the minimum remaining size among its
/// queued packets, and changes on *both* enqueue and dequeue — the policy
/// PIFO cannot express (§5.1.3).
#[derive(Debug, Default)]
pub struct Pfabric;

impl ObjFlowPolicy for Pfabric {
    fn rank_on_enqueue(&mut self, _now: Nanos, f: &FlowState<()>, p: &Packet) -> u64 {
        if f.len() == 1 {
            p.rank // first packet of a (re)activated flow
        } else {
            f.rank.min(p.rank)
        }
    }

    fn rank_on_dequeue(&mut self, _now: Nanos, f: &FlowState<()>) -> Option<u64> {
        // Remaining sizes decrease towards the tail, so the head carries the
        // minimum among what is left.
        f.front().map(|head| head.rank)
    }
}

/// Per-flow FIFO service in arrival order of flow *heads* — used as the
/// neutral per-flow policy (fair round-robin emerges when combined with
/// on-dequeue re-ranking by last-service time).
#[derive(Debug, Default)]
pub struct FlowFifo {
    seq: u64,
}

impl ObjFlowPolicy for FlowFifo {
    fn rank_on_enqueue(&mut self, _now: Nanos, f: &FlowState<()>, _p: &Packet) -> u64 {
        if f.len() == 1 {
            self.seq += 1;
            self.seq
        } else {
            f.rank
        }
    }

    fn rank_on_dequeue(&mut self, _now: Nanos, _f: &FlowState<()>) -> Option<u64> {
        // Move to the back of the service order: round-robin.
        self.seq += 1;
        Some(self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowScheduler;
    use eiffel_sim::FlowId;

    fn pkt(id: u64, flow: FlowId, rank: u64) -> Packet {
        let mut p = Packet::mtu(id, flow, 0);
        p.rank = rank;
        p
    }

    #[test]
    fn fifo_ranks_monotonically() {
        let mut t = Fifo::new();
        let p = pkt(0, 0, 0);
        let ctx = RankCtx {
            now: 0,
            pkt: &p,
            key: 0,
        };
        let a = t.rank(&ctx);
        let b = t.rank(&ctx);
        assert!(b > a);
    }

    #[test]
    fn strict_priority_uses_class() {
        let mut t = StrictPriority;
        let mut p = pkt(0, 0, 0);
        p.class = 5;
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 0
            }),
            5
        );
    }

    #[test]
    fn child_priority_defaults_low() {
        let mut t = ChildPriority::new(&[(1, 0), (2, 3)]);
        let p = pkt(0, 0, 0);
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 1
            }),
            0
        );
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 2
            }),
            3
        );
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 99
            }),
            63
        );
    }

    #[test]
    fn stfq_interleaves_by_weight() {
        // Key 1 has weight 2, key 2 weight 1: over equal backlogs, key 1's
        // start tags advance half as fast, so it gets ~2/3 of service.
        let mut t = Stfq::new();
        t.set_weight(1, 2);
        t.set_weight(2, 1);
        let p = pkt(0, 0, 0);
        let mut ranks = Vec::new();
        for _ in 0..6 {
            ranks.push((
                1u64,
                t.rank(&RankCtx {
                    now: 0,
                    pkt: &p,
                    key: 1,
                }),
            ));
            ranks.push((
                2u64,
                t.rank(&RankCtx {
                    now: 0,
                    pkt: &p,
                    key: 2,
                }),
            ));
        }
        ranks.sort_by_key(|&(_, r)| r);
        let first_nine: Vec<u64> = ranks.iter().take(9).map(|&(k, _)| k).collect();
        let ones = first_nine.iter().filter(|&&k| k == 1).count();
        assert!(
            ones >= 5,
            "weight-2 key should dominate early service, got {ones}/9"
        );
    }

    #[test]
    fn edf_combines_arrival_and_class_deadline() {
        let mut t = Edf::new(vec![1_000_000, 10_000_000]);
        let mut p = pkt(0, 0, 0);
        p.created_at = 500;
        p.class = 0;
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 0
            }),
            1_000_500
        );
        p.class = 1;
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 0
            }),
            10_000_500
        );
        p.class = 9; // beyond table: clamps to last
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 0
            }),
            10_000_500
        );
    }

    #[test]
    fn lqf_serves_longest_queue_first() {
        let mut s: FlowScheduler<Box<dyn ObjFlowPolicy>> = FlowScheduler::with_kind(
            Box::new(Lqf),
            QueueKind::Cffs,
            QueueConfig::new(4_096, 1, LQF_CAP - 4_096),
        );
        s.enqueue(0, pkt(0, 0, 0));
        s.enqueue(0, pkt(1, 0, 0));
        s.enqueue(0, pkt(2, 0, 0)); // flow 0: len 3
        s.enqueue(0, pkt(3, 1, 0)); // flow 1: len 1
                                    // LQF drains flow 0 until lengths equalize.
        assert_eq!(s.dequeue(0).unwrap().flow, 0);
        assert_eq!(s.dequeue(0).unwrap().flow, 0);
        // Now both len 1 — flow 1's entry is older at the same rank? Flow
        // ranks re-derive from lengths; either flow is acceptable, but all
        // four packets must drain.
        let mut rest = 0;
        while s.dequeue(0).is_some() {
            rest += 1;
        }
        assert_eq!(rest, 2);
    }

    #[test]
    fn pfabric_tracks_min_remaining_on_both_hooks() {
        let mut s: FlowScheduler<Box<dyn ObjFlowPolicy>> = FlowScheduler::with_kind(
            Box::new(Pfabric),
            QueueKind::HierFfs,
            QueueConfig::new(100_000, 1, 0),
        );
        // Flow 7: remaining sizes 3,2,1 → flow rank settles at 1? No: rank
        // follows min(p.rank, f.rank) = 1 only after the rank-1 packet
        // arrives.
        s.enqueue(0, pkt(0, 7, 3));
        assert_eq!(s.flow(7).rank, 3);
        s.enqueue(0, pkt(1, 7, 2));
        assert_eq!(s.flow(7).rank, 2);
        s.enqueue(0, pkt(2, 7, 1));
        assert_eq!(s.flow(7).rank, 1);
        // Competing flow with 2 remaining.
        s.enqueue(0, pkt(3, 9, 2));
        // Flow 7 (rank 1) wins; after its head leaves, rank re-derives from
        // the new head (2), tying with flow 9.
        assert_eq!(s.dequeue(0).unwrap().flow, 7);
        let next = s.dequeue(0).unwrap();
        assert_eq!(next.rank, 2, "either flow at remaining 2");
        let mut left = 0;
        while s.dequeue(0).is_some() {
            left += 1;
        }
        assert_eq!(left, 2);
    }

    #[test]
    fn flow_fifo_round_robins() {
        let mut s: FlowScheduler<Box<dyn ObjFlowPolicy>> = FlowScheduler::with_kind(
            Box::new(FlowFifo::default()),
            QueueKind::Cffs,
            QueueConfig::new(4_096, 1, 0),
        );
        for i in 0..3 {
            s.enqueue(0, pkt(i, 0, 0));
            s.enqueue(0, pkt(10 + i, 1, 0));
        }
        let flows: Vec<FlowId> = std::iter::from_fn(|| s.dequeue(0).map(|p| p.flow)).collect();
        assert_eq!(flows, vec![0, 1, 0, 1, 0, 1], "round-robin service");
    }
}
