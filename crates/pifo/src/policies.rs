//! The policy library: node programs and per-flow policies.
//!
//! Node programs ([`NodeProgram`]) are PIFO's rank functions — "compute a
//! rank on enqueue" logic, one per tree node, optionally observing
//! dequeues (virtual-time clocks) and advancing with wall time. Per-flow
//! policies ([`ObjFlowPolicy`]) are Eiffel's extension: they may re-rank a
//! whole flow on enqueue *and* dequeue (Figures 6 and 14 of the paper are
//! implemented verbatim here as [`Lqf`] and [`Pfabric`]), observe every
//! service, and park flows entirely (non-work-conserving gates).
//!
//! The point of the model: each of [`Wfq`], [`Lstf`], [`HClockFlow`] and
//! [`HfscCurves`] below is a ~100-line program over the one
//! [`eiffel_core::RankedQueue`] substrate — adding a scheduling scenario
//! is a policy file, not a new crate (see DESIGN.md for the recipe).

use std::collections::HashMap;

use eiffel_core::{CffsQueue, QueueConfig, QueueKind, RankedQueue};
use eiffel_sim::{FlowId, Nanos, Packet, Rate};

use crate::flow::{FlowPolicy, FlowState, PARK};

/// Everything a rank function may look at.
#[derive(Debug)]
pub struct RankCtx<'a> {
    /// Virtual time of the operation.
    pub now: Nanos,
    /// The packet being ranked (for inner nodes: the packet whose arrival
    /// created the child entry).
    pub pkt: &'a Packet,
    /// Key identifying the element being ranked at this node: the child
    /// node id for inner nodes, the flow id for leaves.
    pub key: u64,
}

/// A node program: ranks elements on enqueue (PIFO's model), optionally
/// observing dequeues (virtual-time clocks) and wall-time advances.
pub trait NodeProgram {
    /// Rank for the element described by `ctx`. Smaller = sooner.
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64;

    /// Called with the rank of each element dequeued from this node's
    /// queue; virtual-time programs advance their clock here. Per-node
    /// call order follows the node's dequeue order; a batched descent may
    /// interleave *different* nodes' calls differently than single pops —
    /// programs must not share state across nodes.
    fn on_dequeue(&mut self, rank: u64) {
        let _ = rank;
    }

    /// Wall-time hook, fired by [`crate::tree::PifoTree::advance`] when
    /// [`NodeProgram::needs_advance`] is true. Must be idempotent at a
    /// fixed `now`, and must not assume it runs between any two dequeues.
    fn advance(&mut self, now: Nanos) {
        let _ = now;
    }

    /// Whether the tree should call [`NodeProgram::advance`].
    fn needs_advance(&self) -> bool {
        false
    }

    /// Which queue geometry suits this program's rank distribution.
    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        (QueueKind::Cffs, QueueConfig::new(4_096, 1, 0))
    }
}

/// Historical name for [`NodeProgram`] (the paper calls them scheduling
/// transactions); kept as an alias for existing call sites.
pub use NodeProgram as Transaction;

/// First-in-first-out: rank is an arrival counter.
#[derive(Debug, Default)]
pub struct Fifo {
    seq: u64,
}

impl Fifo {
    /// A fresh FIFO transaction.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NodeProgram for Fifo {
    fn rank(&mut self, _ctx: &RankCtx<'_>) -> u64 {
        let r = self.seq;
        self.seq += 1;
        r
    }
}

/// Strict priority by the packet's annotated class (the 8-level 802.1Q
/// pattern; up to 64 levels in one FFS word).
#[derive(Debug, Default)]
pub struct StrictPriority;

impl NodeProgram for StrictPriority {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        ctx.pkt.class as u64
    }

    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        (QueueKind::Ffs, QueueConfig::new(64, 1, 0))
    }
}

/// Strict priority between *children* of an inner node, by a static map.
#[derive(Debug)]
pub struct ChildPriority {
    prio: HashMap<u64, u64>,
}

impl ChildPriority {
    /// Builds from `(child key, priority)` pairs; unlisted children get the
    /// lowest priority (63).
    pub fn new(pairs: &[(u64, u64)]) -> Self {
        ChildPriority {
            prio: pairs.iter().copied().collect(),
        }
    }
}

impl NodeProgram for ChildPriority {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        self.prio.get(&ctx.key).copied().unwrap_or(63)
    }

    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        (QueueKind::Ffs, QueueConfig::new(64, 1, 0))
    }
}

/// Start-Time Fair Queueing (Goyal et al.) — the classic software WFQ
/// approximation the paper cites (§2), and PIFO's canonical example.
///
/// Each key (child or flow) has a weight; an element's rank is
/// `max(virtual_time, finish[key])` and the key's finish advances by
/// `bytes / weight`. The virtual time is the start tag of the last
/// dequeued element.
#[derive(Debug)]
pub struct Stfq {
    vtime: u64,
    finish: HashMap<u64, u64>,
    weights: HashMap<u64, u64>,
    default_weight: u64,
    /// Rank units per byte at weight 1 (scales byte counts into ranks).
    bytes_scale: u64,
}

impl Stfq {
    /// Equal-weight STFQ.
    pub fn new() -> Self {
        Stfq {
            vtime: 0,
            finish: HashMap::new(),
            weights: HashMap::new(),
            default_weight: 1,
            bytes_scale: 1,
        }
    }

    /// Sets the weight for a key (share of bandwidth relative to siblings).
    pub fn set_weight(&mut self, key: u64, weight: u64) {
        assert!(weight > 0, "weights must be positive");
        self.weights.insert(key, weight);
    }

    fn weight(&self, key: u64) -> u64 {
        self.weights
            .get(&key)
            .copied()
            .unwrap_or(self.default_weight)
    }
}

impl Default for Stfq {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeProgram for Stfq {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        let start = self
            .vtime
            .max(self.finish.get(&ctx.key).copied().unwrap_or(0));
        let cost = (ctx.pkt.bytes as u64 * self.bytes_scale) / self.weight(ctx.key);
        self.finish.insert(ctx.key, start + cost.max(1));
        start
    }

    fn on_dequeue(&mut self, rank: u64) {
        // Virtual time = start tag of the packet in service.
        self.vtime = self.vtime.max(rank);
    }

    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        // Virtual times move forward; bucket ≈ one MTU of virtual work.
        (QueueKind::Cffs, QueueConfig::new(8_192, 1_500, 0))
    }
}

/// Earliest Deadline First: rank = arrival time + per-class relative
/// deadline (Liu & Layland; paper §3.2.1 cites EDF as the per-packet
/// large-range example).
#[derive(Debug)]
pub struct Edf {
    /// Relative deadline per class; classes beyond the table use the last.
    deadlines: Vec<Nanos>,
}

impl Edf {
    /// Builds with one relative deadline per traffic class.
    pub fn new(deadlines: Vec<Nanos>) -> Self {
        assert!(!deadlines.is_empty());
        Edf { deadlines }
    }
}

impl NodeProgram for Edf {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        let class = (ctx.pkt.class as usize).min(self.deadlines.len() - 1);
        ctx.pkt.created_at + self.deadlines[class]
    }

    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        // Deadlines are timestamps: moving range, microsecond buckets.
        (QueueKind::Cffs, QueueConfig::new(16_384, 1_000, 0))
    }
}

/// Least Slack Time First: the rank is whatever slack the annotator wrote
/// into `pkt.rank` (Universal Packet Scheduling's headline policy — the
/// slack is computed upstream, the scheduler only orders by it).
#[derive(Debug, Default)]
pub struct SlackRank;

impl NodeProgram for SlackRank {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        ctx.pkt.rank
    }
}

/// Weighted Fair Queueing by virtual finish tags (Demers et al.): an
/// element's rank is its key's finish tag `F = max(V, F_prev) + bytes/w`,
/// and the virtual time `V` follows the finish tag of the element in
/// service. Unlike [`Stfq`] (start tags), the packet's own cost orders it
/// against its competitors, so heavier packets of equal-weight keys finish
/// later — the classic fluid-approximation order.
#[derive(Debug)]
pub struct Wfq {
    vtime: u64,
    finish: HashMap<u64, u64>,
    weights: HashMap<u64, u64>,
    default_weight: u64,
}

impl Wfq {
    /// Equal-weight WFQ.
    pub fn new() -> Self {
        Wfq {
            vtime: 0,
            finish: HashMap::new(),
            weights: HashMap::new(),
            default_weight: 1,
        }
    }

    /// Sets the weight for a key (share of bandwidth relative to siblings).
    pub fn set_weight(&mut self, key: u64, weight: u64) {
        assert!(weight > 0, "weights must be positive");
        self.weights.insert(key, weight);
    }

    fn weight(&self, key: u64) -> u64 {
        self.weights
            .get(&key)
            .copied()
            .unwrap_or(self.default_weight)
    }
}

impl Default for Wfq {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeProgram for Wfq {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        let start = self
            .vtime
            .max(self.finish.get(&ctx.key).copied().unwrap_or(0));
        let cost = (ctx.pkt.bytes as u64 / self.weight(ctx.key)).max(1);
        let tag = start + cost;
        self.finish.insert(ctx.key, tag);
        tag
    }

    fn on_dequeue(&mut self, rank: u64) {
        // Virtual time = finish tag of the element entering service.
        self.vtime = self.vtime.max(rank);
    }

    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        // Finish tags are unbounded and conformance is exact: use the
        // comparison tree (FIFO within equal tags, like the reference).
        (QueueKind::BTree, QueueConfig::new(1, 1, 0))
    }
}

/// Least Slack Time First (Universal Packet Scheduling's headline
/// policy): the annotator writes each packet's slack budget into
/// `pkt.rank`; its absolute deadline `created_at + slack` is the rank.
/// Ordering by absolute deadline equals ordering by remaining slack at
/// every instant, so no per-tick re-ranking is needed.
#[derive(Debug, Default)]
pub struct Lstf;

impl NodeProgram for Lstf {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        ctx.pkt.created_at.saturating_add(ctx.pkt.rank)
    }

    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        // Deadlines span the whole trace horizon; keep ordering exact.
        (QueueKind::BTree, QueueConfig::new(1, 1, 0))
    }
}

// ---------------------------------------------------------------------------
// Per-flow policies (Eiffel extensions) — object-safe form for tree leaves.
// ---------------------------------------------------------------------------

/// Object-safe per-flow policy: per-flow bookkeeping lives inside the
/// policy (keyed by `FlowState::id`), so the trait has no associated type
/// and can be boxed into a scheduling tree.
pub trait ObjFlowPolicy {
    /// New rank for flow `f` after `p` was appended.
    fn rank_on_enqueue(&mut self, now: Nanos, f: &FlowState<()>, p: &Packet) -> u64;

    /// New rank after the head packet left `f` (non-empty). `None` keeps.
    fn rank_on_dequeue(&mut self, now: Nanos, f: &FlowState<()>) -> Option<u64> {
        let _ = (now, f);
        None
    }

    /// Observes every served packet (see [`FlowPolicy::on_serve`]).
    fn on_serve(&mut self, now: Nanos, f: &FlowState<()>, p: &Packet) {
        let _ = (now, f, p);
    }

    /// Whether this policy may return [`PARK`] ranks.
    fn may_park(&self) -> bool {
        false
    }

    /// Poll hook (see [`FlowPolicy::advance`]).
    fn advance(&mut self, now: Nanos, rerank: &mut Vec<FlowId>) {
        let _ = (now, rerank);
    }

    /// Current rank for a surfaced flow (see [`FlowPolicy::rank_now`]).
    fn rank_now(&mut self, now: Nanos, f: &FlowState<()>) -> u64 {
        let _ = now;
        f.rank
    }

    /// Earliest future instant [`ObjFlowPolicy::advance`] could act.
    fn soonest_wakeup(&self) -> Option<Nanos> {
        None
    }
}

impl FlowPolicy for Box<dyn ObjFlowPolicy> {
    type Data = ();

    fn rank_on_enqueue(&mut self, now: Nanos, f: &FlowState<()>, p: &Packet) -> u64 {
        (**self).rank_on_enqueue(now, f, p)
    }

    fn rank_on_dequeue(&mut self, now: Nanos, f: &FlowState<()>) -> Option<u64> {
        (**self).rank_on_dequeue(now, f)
    }

    fn on_serve(&mut self, now: Nanos, f: &FlowState<()>, p: &Packet) {
        (**self).on_serve(now, f, p)
    }

    fn may_park(&self) -> bool {
        (**self).may_park()
    }

    fn advance(&mut self, now: Nanos, rerank: &mut Vec<FlowId>) {
        (**self).advance(now, rerank)
    }

    fn rank_now(&mut self, now: Nanos, f: &FlowState<()>) -> u64 {
        (**self).rank_now(now, f)
    }

    fn soonest_wakeup(&self) -> Option<Nanos> {
        (**self).soonest_wakeup()
    }
}

/// Figure 6 of the paper, verbatim — Longest Queue First:
///
/// ```text
/// # On enqueue of packet p of flow f:   f.rank = f.len
/// # On dequeue of packet p of flow f:   f.rank = f.len
/// ```
///
/// LQF serves the *longest* queue first; ranks are min-first, so the rank
/// is `CAP − len`.
#[derive(Debug, Default)]
pub struct Lqf;

/// Rank ceiling for [`Lqf`] (queues longer than this tie at the top).
pub const LQF_CAP: u64 = 1 << 24;

impl ObjFlowPolicy for Lqf {
    fn rank_on_enqueue(&mut self, _now: Nanos, f: &FlowState<()>, _p: &Packet) -> u64 {
        LQF_CAP - (f.len() as u64).min(LQF_CAP)
    }

    fn rank_on_dequeue(&mut self, _now: Nanos, f: &FlowState<()>) -> Option<u64> {
        Some(LQF_CAP - (f.len() as u64).min(LQF_CAP))
    }
}

/// Figure 14 of the paper, verbatim — pFabric's SRTF approximation:
///
/// ```text
/// # On enqueue of packet p of flow f:   f.rank = min(p.rank, f.rank)
/// # On dequeue of packet p of flow f:   f.rank = min(p.rank, f.front().rank)
/// ```
///
/// `p.rank` is the flow's remaining size at emission, written by the
/// annotator; the flow's rank tracks the minimum remaining size among its
/// queued packets, and changes on *both* enqueue and dequeue — the policy
/// PIFO cannot express (§5.1.3).
#[derive(Debug, Default)]
pub struct Pfabric;

impl ObjFlowPolicy for Pfabric {
    fn rank_on_enqueue(&mut self, _now: Nanos, f: &FlowState<()>, p: &Packet) -> u64 {
        if f.len() == 1 {
            p.rank // first packet of a (re)activated flow
        } else {
            f.rank.min(p.rank)
        }
    }

    fn rank_on_dequeue(&mut self, _now: Nanos, f: &FlowState<()>) -> Option<u64> {
        // Remaining sizes decrease towards the tail, so the head carries the
        // minimum among what is left.
        f.front().map(|head| head.rank)
    }
}

/// Per-flow FIFO service in arrival order of flow *heads* — used as the
/// neutral per-flow policy (fair round-robin emerges when combined with
/// on-dequeue re-ranking by last-service time).
#[derive(Debug, Default)]
pub struct FlowFifo {
    seq: u64,
}

impl ObjFlowPolicy for FlowFifo {
    fn rank_on_enqueue(&mut self, _now: Nanos, f: &FlowState<()>, _p: &Packet) -> u64 {
        if f.len() == 1 {
            self.seq += 1;
            self.seq
        } else {
            f.rank
        }
    }

    fn rank_on_dequeue(&mut self, _now: Nanos, _f: &FlowState<()>) -> Option<u64> {
        // Move to the back of the service order: round-robin.
        self.seq += 1;
        Some(self.seq)
    }
}

// ---------------------------------------------------------------------------
// QoS flow policies: two-band rank encoding over one queue.
// ---------------------------------------------------------------------------

/// Band offset separating "behind its guarantee" ranks (band 0: quantized
/// deadlines) from excess-sharing ranks (band 1: virtual times). One
/// ranked queue then realizes the two-pass semantics: any band-0 entry
/// beats every band-1 entry.
const BAND1: u64 = 1 << 62;

/// Per-flow QoS contract for [`HClockFlow`] (mirrors hClock's
/// reservation/limit/share triple).
#[derive(Debug, Clone, Copy)]
pub struct QosSpec {
    /// Guaranteed minimum rate.
    pub reservation: Rate,
    /// Maximum rate (the non-work-conserving gate).
    pub limit: Rate,
    /// Proportional share weight.
    pub share: u64,
}

/// Where a backlogged [`HClockFlow`] flow's rank currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HcPhase {
    Idle,
    /// Reservation due: band-0 rank, served before all sharers.
    Res,
    /// Sharing excess: band-1 rank by share virtual time.
    Share,
    /// Limit-gated: parked, no queue entry at all.
    Gated,
}

#[derive(Debug)]
struct HcFlow {
    r_rank: Nanos,
    l_rank: Nanos,
    s_rank: u64,
    /// Memoized per-packet costs (hot flows send one packet size).
    cost_bytes: u64,
    r_cost: Nanos,
    l_cost: Nanos,
    s_cost: u64,
    phase: HcPhase,
    /// Invalidation stamp for entries in the promotion/gate queues.
    stamp: u64,
}

impl HcFlow {
    fn new() -> Self {
        HcFlow {
            r_rank: 0,
            l_rank: 0,
            s_rank: 0,
            cost_bytes: u64::MAX,
            r_cost: 0,
            l_cost: 0,
            s_cost: 0,
            phase: HcPhase::Idle,
            stamp: 0,
        }
    }
}

/// hClock (reservations, limits, shares) as a per-flow policy — the
/// scheduler `eiffel-bess` builds as a dedicated engine, re-expressed as a
/// tree-leaf program over the one flow queue:
///
/// * a flow behind its reservation (`r_rank` due) ranks in band 0 by its
///   quantized reservation clock — ahead of every sharer;
/// * an eligible sharer ranks in band 1 by its share virtual time;
/// * a limit-gated flow returns [`PARK`] and re-surfaces through
///   [`ObjFlowPolicy::advance`] when its `l_rank` bucket comes due (the
///   paper's unified-shaper move, §3.2.2).
///
/// Promotions (reservations coming due for sharers, gates opening) ride
/// two internal cFFS time queues drained by `advance`; transitions fired
/// from those queues are authoritative, so a bucket-granular early fire
/// never re-parks the flow into the same bucket.
pub struct HClockFlow {
    specs: Vec<QosSpec>,
    flows: Vec<HcFlow>,
    /// Flows whose `r_rank` is in the future, keyed by it: fires promote
    /// to [`HcPhase::Res`] (even limit-gated flows — reserved service is
    /// owed regardless of the limit clock, as in the reference).
    resdue: CffsQueue<(FlowId, u64)>,
    /// Limit-gated flows keyed by `l_rank`: fires release to band 1.
    gate: CffsQueue<(FlowId, u64)>,
    /// Quantization of the band-0 reservation clock (ns per rank unit).
    gran: Nanos,
}

impl HClockFlow {
    /// Creates the policy with one spec per flow id; flows beyond the
    /// table use the last spec. Queue geometry derives from the slowest
    /// limit exactly as the dedicated engine's constructor does.
    pub fn new(specs: Vec<QosSpec>) -> Self {
        assert!(!specs.is_empty(), "need at least one QosSpec");
        let max_step = specs
            .iter()
            .filter_map(|s| s.limit.tx_time(1_500))
            .max()
            .unwrap_or(1_000_000);
        let gran = (2 * max_step).div_ceil(65_536).max(1_000);
        HClockFlow {
            specs,
            flows: Vec::new(),
            resdue: CffsQueue::new(65_536, gran, 0),
            gate: CffsQueue::new(65_536, gran, 0),
            gran,
        }
    }

    fn flow_mut(&mut self, id: usize) -> &mut HcFlow {
        while self.flows.len() <= id {
            self.flows.push(HcFlow::new());
        }
        &mut self.flows[id]
    }

    fn spec(&self, id: usize) -> QosSpec {
        *self
            .specs
            .get(id)
            .unwrap_or_else(|| self.specs.last().expect("constructor checked non-empty"))
    }

    /// The Figure 11 charge: advance the three clocks by one packet.
    fn charge(&mut self, now: Nanos, id: usize, bytes: u64) {
        let spec = self.spec(id);
        let f = self.flow_mut(id);
        if bytes != f.cost_bytes {
            f.cost_bytes = bytes;
            f.r_cost = spec.reservation.tx_time(bytes).unwrap_or(Nanos::MAX / 4);
            f.l_cost = spec.limit.tx_time(bytes).unwrap_or(Nanos::MAX / 4);
            f.s_cost = bytes / spec.share.max(1);
        }
        f.r_rank = f.r_rank.max(now) + f.r_cost;
        f.l_rank = f.l_rank.max(now) + f.l_cost;
        f.s_rank += f.s_cost;
    }

    /// Recomputes where a backlogged flow belongs at `now`, registering
    /// promotion/gate entries for the futures. Returns its rank (or PARK).
    fn place(&mut self, now: Nanos, id: usize) -> u64 {
        let f = self.flow_mut(id);
        f.stamp += 1;
        let (stamp, r, l, s) = (f.stamp, f.r_rank, f.l_rank, f.s_rank);
        if r <= now {
            f.phase = HcPhase::Res;
            return r / self.gran;
        }
        self.resdue
            .enqueue(r, (id as FlowId, stamp))
            .unwrap_or_else(|_| unreachable!("cFFS clamps"));
        if l <= now {
            self.flows[id].phase = HcPhase::Share;
            BAND1 + s
        } else {
            self.gate
                .enqueue(l, (id as FlowId, stamp))
                .unwrap_or_else(|_| unreachable!("cFFS clamps"));
            self.flows[id].phase = HcPhase::Gated;
            PARK
        }
    }

    fn rank_of(&self, id: usize) -> u64 {
        let f = &self.flows[id];
        match f.phase {
            HcPhase::Res => f.r_rank / self.gran,
            HcPhase::Share => BAND1 + f.s_rank,
            HcPhase::Gated | HcPhase::Idle => PARK,
        }
    }
}

impl ObjFlowPolicy for HClockFlow {
    fn rank_on_enqueue(&mut self, now: Nanos, f: &FlowState<()>, _p: &Packet) -> u64 {
        let id = f.id as usize;
        if f.len() == 1 {
            self.flow_mut(id); // ensure state exists
            self.place(now, id)
        } else {
            f.rank // already placed; clocks only move on service
        }
    }

    fn rank_on_dequeue(&mut self, now: Nanos, f: &FlowState<()>) -> Option<u64> {
        Some(self.place(now, f.id as usize))
    }

    fn on_serve(&mut self, now: Nanos, f: &FlowState<()>, p: &Packet) {
        let id = f.id as usize;
        self.charge(now, id, p.bytes as u64);
        if f.is_empty() {
            let fl = &mut self.flows[id];
            fl.phase = HcPhase::Idle;
            fl.stamp += 1; // pending promotions go stale
        }
    }

    fn may_park(&self) -> bool {
        true
    }

    fn advance(&mut self, now: Nanos, rerank: &mut Vec<FlowId>) {
        while let Some((_, (id, st))) = self.resdue.dequeue_min_le(now) {
            let f = &mut self.flows[id as usize];
            if f.stamp != st || matches!(f.phase, HcPhase::Idle | HcPhase::Res) {
                continue; // stale, or already in the reservation band
            }
            f.phase = HcPhase::Res;
            rerank.push(id);
        }
        while let Some((_, (id, st))) = self.gate.dequeue_min_le(now) {
            let f = &mut self.flows[id as usize];
            if f.stamp != st || f.phase != HcPhase::Gated {
                continue;
            }
            f.phase = HcPhase::Share;
            rerank.push(id);
        }
    }

    fn rank_now(&mut self, _now: Nanos, f: &FlowState<()>) -> u64 {
        self.rank_of(f.id as usize)
    }

    fn soonest_wakeup(&self) -> Option<Nanos> {
        match (self.resdue.peek_min_rank(), self.gate.peek_min_rank()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Two-slope HFSC-style service curve: `m1` until `burst` bytes of a
/// backlog period are served, then `m2`.
#[derive(Debug, Clone, Copy)]
pub struct CurveSpec {
    /// Burst-phase guaranteed rate.
    pub m1: Rate,
    /// Steady-state guaranteed rate.
    pub m2: Rate,
    /// Bytes served at `m1` per backlog period before falling to `m2`.
    pub burst: u64,
    /// Link-share weight for excess bandwidth.
    pub share: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HfscPhase {
    Idle,
    /// Real-time deadline due: band 0.
    Rt,
    /// Link-sharing by virtual time: band 1.
    Ls,
}

#[derive(Debug)]
struct HfscFlow {
    /// Real-time deadline: next instant the flow is owed curve service.
    d: Nanos,
    /// Bytes left in the burst (m1) segment of this backlog period.
    burst_left: u64,
    /// Link-share virtual time (weighted virtual bytes).
    v: u64,
    phase: HfscPhase,
    stamp: u64,
}

impl HfscFlow {
    fn new() -> Self {
        HfscFlow {
            d: 0,
            burst_left: 0,
            v: 0,
            phase: HfscPhase::Idle,
            stamp: 0,
        }
    }
}

/// HFSC-lite: real-time service curves decoupled from link-sharing
/// (Stoica et al.), as a work-conserving flow-leaf program.
///
/// Each flow has a two-slope concave curve ([`CurveSpec`]): on every
/// backlog period it may draw `burst` bytes at `m1`, then `m2`. A flow
/// whose deadline `d` is due ranks in band 0 by `d` (quantized) — the
/// real-time pass; otherwise it ranks in band 1 by its link-share virtual
/// time `v` (weight `share`), which catches up to the global virtual time
/// on activation so returning flows don't claim history. Unlike full
/// HFSC this does not reshift curves on reactivation (the burst refill
/// plus the `max(d, now)` deadline clamp plays that role) — the
/// conformance suite pins it against an independent linear-scan simulator
/// with the same algebra.
pub struct HfscCurves {
    specs: Vec<CurveSpec>,
    flows: Vec<HfscFlow>,
    /// Global link-share virtual time (start tag of last LS service).
    vtime: u64,
    /// Future real-time deadlines: fires promote Ls → Rt.
    rtdue: CffsQueue<(FlowId, u64)>,
    gran: Nanos,
}

impl HfscCurves {
    /// Creates the policy with one curve per flow id; flows beyond the
    /// table use the last curve.
    pub fn new(specs: Vec<CurveSpec>) -> Self {
        assert!(!specs.is_empty(), "need at least one CurveSpec");
        let max_step = specs
            .iter()
            .flat_map(|s| [s.m1.tx_time(1_500), s.m2.tx_time(1_500)])
            .flatten()
            .max()
            .unwrap_or(1_000_000);
        let gran = (2 * max_step).div_ceil(65_536).max(1_000);
        HfscCurves {
            specs,
            flows: Vec::new(),
            vtime: 0,
            rtdue: CffsQueue::new(65_536, gran, 0),
            gran,
        }
    }

    fn flow_mut(&mut self, id: usize) -> &mut HfscFlow {
        while self.flows.len() <= id {
            self.flows.push(HfscFlow::new());
        }
        &mut self.flows[id]
    }

    fn spec(&self, id: usize) -> CurveSpec {
        *self
            .specs
            .get(id)
            .unwrap_or_else(|| self.specs.last().expect("constructor checked non-empty"))
    }

    fn place(&mut self, now: Nanos, id: usize) -> u64 {
        let f = self.flow_mut(id);
        f.stamp += 1;
        let (stamp, d, v) = (f.stamp, f.d, f.v);
        if d <= now {
            f.phase = HfscPhase::Rt;
            d / self.gran
        } else {
            f.phase = HfscPhase::Ls;
            self.rtdue
                .enqueue(d, (id as FlowId, stamp))
                .unwrap_or_else(|_| unreachable!("cFFS clamps"));
            BAND1 + v
        }
    }
}

impl ObjFlowPolicy for HfscCurves {
    fn rank_on_enqueue(&mut self, now: Nanos, f: &FlowState<()>, _p: &Packet) -> u64 {
        let id = f.id as usize;
        if f.len() == 1 {
            // New backlog period: refill the burst segment, clamp the
            // deadline forward, catch the virtual time up.
            let spec = self.spec(id);
            let vtime = self.vtime;
            let fl = self.flow_mut(id);
            fl.burst_left = spec.burst;
            fl.d = fl.d.max(now);
            fl.v = fl.v.max(vtime);
            self.place(now, id)
        } else {
            f.rank
        }
    }

    fn rank_on_dequeue(&mut self, now: Nanos, f: &FlowState<()>) -> Option<u64> {
        Some(self.place(now, f.id as usize))
    }

    fn on_serve(&mut self, now: Nanos, f: &FlowState<()>, p: &Packet) {
        let id = f.id as usize;
        let spec = self.spec(id);
        let bytes = p.bytes as u64;
        let fl = self.flow_mut(id);
        // Deadline advances at the active slope of the curve.
        let rate = if fl.burst_left > 0 { spec.m1 } else { spec.m2 };
        let cost = rate.tx_time(bytes).unwrap_or(Nanos::MAX / 4);
        fl.burst_left = fl.burst_left.saturating_sub(bytes);
        fl.d = fl.d.max(now) + cost;
        // Link-share virtual time: start tag of this service.
        let start = fl.v;
        fl.v = start + (bytes / spec.share.max(1)).max(1);
        self.vtime = self.vtime.max(start);
        if f.is_empty() {
            let fl = &mut self.flows[id];
            fl.phase = HfscPhase::Idle;
            fl.stamp += 1;
        }
    }

    fn advance(&mut self, now: Nanos, rerank: &mut Vec<FlowId>) {
        while let Some((_, (id, st))) = self.rtdue.dequeue_min_le(now) {
            let f = &mut self.flows[id as usize];
            if f.stamp != st || f.phase != HfscPhase::Ls {
                continue;
            }
            f.phase = HfscPhase::Rt;
            rerank.push(id);
        }
    }

    fn rank_now(&mut self, _now: Nanos, f: &FlowState<()>) -> u64 {
        let fl = &self.flows[f.id as usize];
        match fl.phase {
            HfscPhase::Rt => fl.d / self.gran,
            HfscPhase::Ls => BAND1 + fl.v,
            HfscPhase::Idle => f.rank,
        }
    }

    fn soonest_wakeup(&self) -> Option<Nanos> {
        self.rtdue.peek_min_rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowScheduler;
    use eiffel_sim::FlowId;

    fn pkt(id: u64, flow: FlowId, rank: u64) -> Packet {
        let mut p = Packet::mtu(id, flow, 0);
        p.rank = rank;
        p
    }

    #[test]
    fn fifo_ranks_monotonically() {
        let mut t = Fifo::new();
        let p = pkt(0, 0, 0);
        let ctx = RankCtx {
            now: 0,
            pkt: &p,
            key: 0,
        };
        let a = t.rank(&ctx);
        let b = t.rank(&ctx);
        assert!(b > a);
    }

    #[test]
    fn strict_priority_uses_class() {
        let mut t = StrictPriority;
        let mut p = pkt(0, 0, 0);
        p.class = 5;
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 0
            }),
            5
        );
    }

    #[test]
    fn child_priority_defaults_low() {
        let mut t = ChildPriority::new(&[(1, 0), (2, 3)]);
        let p = pkt(0, 0, 0);
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 1
            }),
            0
        );
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 2
            }),
            3
        );
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 99
            }),
            63
        );
    }

    #[test]
    fn stfq_interleaves_by_weight() {
        // Key 1 has weight 2, key 2 weight 1: over equal backlogs, key 1's
        // start tags advance half as fast, so it gets ~2/3 of service.
        let mut t = Stfq::new();
        t.set_weight(1, 2);
        t.set_weight(2, 1);
        let p = pkt(0, 0, 0);
        let mut ranks = Vec::new();
        for _ in 0..6 {
            ranks.push((
                1u64,
                t.rank(&RankCtx {
                    now: 0,
                    pkt: &p,
                    key: 1,
                }),
            ));
            ranks.push((
                2u64,
                t.rank(&RankCtx {
                    now: 0,
                    pkt: &p,
                    key: 2,
                }),
            ));
        }
        ranks.sort_by_key(|&(_, r)| r);
        let first_nine: Vec<u64> = ranks.iter().take(9).map(|&(k, _)| k).collect();
        let ones = first_nine.iter().filter(|&&k| k == 1).count();
        assert!(
            ones >= 5,
            "weight-2 key should dominate early service, got {ones}/9"
        );
    }

    #[test]
    fn edf_combines_arrival_and_class_deadline() {
        let mut t = Edf::new(vec![1_000_000, 10_000_000]);
        let mut p = pkt(0, 0, 0);
        p.created_at = 500;
        p.class = 0;
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 0
            }),
            1_000_500
        );
        p.class = 1;
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 0
            }),
            10_000_500
        );
        p.class = 9; // beyond table: clamps to last
        assert_eq!(
            t.rank(&RankCtx {
                now: 0,
                pkt: &p,
                key: 0
            }),
            10_000_500
        );
    }

    #[test]
    fn lqf_serves_longest_queue_first() {
        let mut s: FlowScheduler<Box<dyn ObjFlowPolicy>> = FlowScheduler::with_kind(
            Box::new(Lqf),
            QueueKind::Cffs,
            QueueConfig::new(4_096, 1, LQF_CAP - 4_096),
        );
        s.enqueue(0, pkt(0, 0, 0));
        s.enqueue(0, pkt(1, 0, 0));
        s.enqueue(0, pkt(2, 0, 0)); // flow 0: len 3
        s.enqueue(0, pkt(3, 1, 0)); // flow 1: len 1
                                    // LQF drains flow 0 until lengths equalize.
        assert_eq!(s.dequeue(0).unwrap().flow, 0);
        assert_eq!(s.dequeue(0).unwrap().flow, 0);
        // Now both len 1 — flow 1's entry is older at the same rank? Flow
        // ranks re-derive from lengths; either flow is acceptable, but all
        // four packets must drain.
        let mut rest = 0;
        while s.dequeue(0).is_some() {
            rest += 1;
        }
        assert_eq!(rest, 2);
    }

    #[test]
    fn pfabric_tracks_min_remaining_on_both_hooks() {
        let mut s: FlowScheduler<Box<dyn ObjFlowPolicy>> = FlowScheduler::with_kind(
            Box::new(Pfabric),
            QueueKind::HierFfs,
            QueueConfig::new(100_000, 1, 0),
        );
        // Flow 7: remaining sizes 3,2,1 → flow rank settles at 1? No: rank
        // follows min(p.rank, f.rank) = 1 only after the rank-1 packet
        // arrives.
        s.enqueue(0, pkt(0, 7, 3));
        assert_eq!(s.flow(7).rank, 3);
        s.enqueue(0, pkt(1, 7, 2));
        assert_eq!(s.flow(7).rank, 2);
        s.enqueue(0, pkt(2, 7, 1));
        assert_eq!(s.flow(7).rank, 1);
        // Competing flow with 2 remaining.
        s.enqueue(0, pkt(3, 9, 2));
        // Flow 7 (rank 1) wins; after its head leaves, rank re-derives from
        // the new head (2), tying with flow 9.
        assert_eq!(s.dequeue(0).unwrap().flow, 7);
        let next = s.dequeue(0).unwrap();
        assert_eq!(next.rank, 2, "either flow at remaining 2");
        let mut left = 0;
        while s.dequeue(0).is_some() {
            left += 1;
        }
        assert_eq!(left, 2);
    }

    #[test]
    fn flow_fifo_round_robins() {
        let mut s: FlowScheduler<Box<dyn ObjFlowPolicy>> = FlowScheduler::with_kind(
            Box::new(FlowFifo::default()),
            QueueKind::Cffs,
            QueueConfig::new(4_096, 1, 0),
        );
        for i in 0..3 {
            s.enqueue(0, pkt(i, 0, 0));
            s.enqueue(0, pkt(10 + i, 1, 0));
        }
        let flows: Vec<FlowId> = std::iter::from_fn(|| s.dequeue(0).map(|p| p.flow)).collect();
        assert_eq!(flows, vec![0, 1, 0, 1, 0, 1], "round-robin service");
    }
}
