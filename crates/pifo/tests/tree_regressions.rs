//! Pinned tree-layer bugs (PR 10's bug squash):
//!
//! 1. Shaped-release re-ranking used the poll time instead of the release
//!    timestamp: every packet released since the last poll ranked as if it
//!    had arrived "now", erasing the order information between releases.
//! 2. `soonest_deadline` busy-woke hosts when the root was unshaped but
//!    all backlog sat behind shaped descendants (or a parking flow
//!    policy): it answered `now` although nothing was transmittable.

use eiffel_core::{QueueConfig, QueueKind};
use eiffel_pifo::policies::Fifo;
use eiffel_pifo::{NodeProgram, RankCtx, TreeBuilder};
use eiffel_sim::{Packet, Rate};

/// Serves the *latest*-released packet first: rank is the complement of
/// the ranking instant. Contrived on purpose — it makes the rank context
/// observable, so ranking a release at the poll time instead of its
/// release timestamp flips the service order.
struct LatestRelease;

impl NodeProgram for LatestRelease {
    fn rank(&mut self, ctx: &RankCtx<'_>) -> u64 {
        u64::MAX - ctx.now
    }

    fn queue_hint(&self) -> (QueueKind, QueueConfig) {
        (QueueKind::BTree, QueueConfig::new(1, 1, 0))
    }
}

#[test]
fn shaped_releases_rank_at_their_release_timestamp() {
    let mut b = TreeBuilder::new();
    let root = b.node("root", None, Box::new(LatestRelease), None);
    // 12 Mbps ⇒ 1 ms per MTU; 6 Mbps ⇒ 2 ms per MTU.
    let a = b.node("a", Some(root), Box::new(Fifo::new()), Some(Rate::mbps(12)));
    let bb = b.node("b", Some(root), Box::new(Fifo::new()), Some(Rate::mbps(6)));
    let mut t = b.build().unwrap();
    for (id, leaf) in [(0, a), (1, a), (2, bb), (3, bb)] {
        t.enqueue(0, leaf, Packet::mtu(id, leaf.0 as u32, 0))
            .unwrap();
    }
    // First packet of each leaf releases immediately.
    assert!(t.dequeue(0).is_some());
    assert!(t.dequeue(0).is_some());
    assert!(t.dequeue(0).is_none());
    // The stragglers release at ~1 ms (a) and ~2 ms (b). Polling long
    // after both: under LatestRelease the ~2 ms release must win. The old
    // code ranked both with the poll time (a tie broken by shaper order),
    // serving a's ~1 ms release first.
    let p = t.dequeue(10_000_000).expect("both released by 10 ms");
    assert_eq!(
        p.id, 3,
        "the later release (b at ~2 ms) must rank ahead under LatestRelease"
    );
    assert_eq!(t.dequeue(10_000_000).map(|p| p.id), Some(1));
    assert!(t.is_empty());
}

#[test]
fn soonest_deadline_is_the_shaper_release_behind_an_unshaped_root() {
    let mut b = TreeBuilder::new();
    let root = b.node("root", None, Box::new(Fifo::new()), None);
    let leaf = b.node(
        "leaf",
        Some(root),
        Box::new(Fifo::new()),
        Some(Rate::mbps(12)),
    );
    let mut t = b.build().unwrap();
    t.enqueue(0, leaf, Packet::mtu(0, 0, 0)).unwrap();
    t.enqueue(0, leaf, Packet::mtu(1, 0, 0)).unwrap();
    assert_eq!(t.dequeue(0).map(|p| p.id), Some(0));
    assert!(t.dequeue(0).is_none(), "second packet is paced");
    // All backlog is behind the leaf shaper: the wakeup must be its next
    // release (~1 ms at 12 Mbps), not a busy-wake at `now`.
    let d = t.soonest_deadline(0).expect("backlog pending");
    assert!(
        (1..=1_100_000).contains(&d),
        "wakeup {d} must be the ~1 ms release, not now"
    );
    assert_eq!(t.dequeue(d).map(|p| p.id), Some(1));
    assert!(t.is_empty());
    assert_eq!(t.soonest_deadline(d), None);
}

#[test]
fn soonest_deadline_is_the_gate_wakeup_when_every_flow_is_parked() {
    use eiffel_pifo::{HClockFlow, QosSpec};
    let mut b = TreeBuilder::new();
    b.flow_leaf(
        "root",
        None,
        Box::new(HClockFlow::new(vec![QosSpec {
            reservation: Rate::mbps(1),
            limit: Rate::mbps(10),
            share: 1,
        }])),
        QueueKind::BTree.build(QueueConfig::new(1, 1, 0)),
        None,
    );
    let mut t = b.build().unwrap();
    let root = t.node_by_name("root").unwrap();
    t.enqueue(0, root, Packet::mtu(0, 0, 0)).unwrap();
    t.enqueue(0, root, Packet::mtu(1, 0, 0)).unwrap();
    assert_eq!(t.dequeue(0).map(|p| p.id), Some(0), "reservation is due");
    assert!(
        t.dequeue(0).is_none(),
        "after the first service the flow is limit-gated (l_rank ~1.2 ms)"
    );
    // The flow is parked: no queue entry at all. The wakeup must be the
    // gate's release (≈ 1.2 ms at 10 Mbps, bucket-granular early is fine),
    // not `now` (busy-wake) and not `None` (lost packet).
    let w = t.soonest_deadline(0).expect("parked backlog still pending");
    assert!(
        (1..=1_200_000).contains(&w),
        "wakeup {w} must be the limit gate, not now"
    );
    assert_eq!(t.dequeue(w).map(|p| p.id), Some(1));
    assert!(t.is_empty());
}
