//! Conformance: each node program on the tree matches an independent
//! reference model.
//!
//! - WFQ vs an exact virtual-finish-time simulator (Demers fluid
//!   approximation, same tag algebra, ties by arrival order) — exact
//!   packet-sequence equality.
//! - LSTF vs a stable sort by absolute deadline — exact.
//! - HFSC vs a linear-scan two-slope curve simulator — per-flow service
//!   counts within tolerance (tie-breaks among equal quantized deadlines
//!   are the only freedom).
//!
//! The hClock-on-tree vs dedicated-engine suite lives in
//! `crates/bess/tests/tree_hclock_conformance.rs` (it needs both crates).

use std::collections::HashMap;

use eiffel_pifo::lang::compile;
use eiffel_pifo::{CurveSpec, HfscCurves, PifoTree, TreeBuilder};
use eiffel_sim::{Nanos, Packet, Rate};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// WFQ: exact virtual-finish-time reference.
// ---------------------------------------------------------------------------

/// The textbook algebra: `F(k) = max(V, F_prev(k)) + max(1, bytes/w(k))`,
/// `V = max(V, F(served))`; service order is min `(F, arrival)`.
struct RefWfq {
    vtime: u64,
    finish: HashMap<u64, u64>,
    weights: HashMap<u64, u64>,
    /// Pending `(finish tag, arrival seq, packet)`.
    pending: Vec<(u64, u64, Packet)>,
}

impl RefWfq {
    fn new(weights: &[(u64, u64)]) -> Self {
        RefWfq {
            vtime: 0,
            finish: HashMap::new(),
            weights: weights.iter().copied().collect(),
            pending: Vec::new(),
        }
    }

    fn enqueue(&mut self, key: u64, seq: u64, pkt: Packet) {
        let start = self.vtime.max(self.finish.get(&key).copied().unwrap_or(0));
        let w = self.weights.get(&key).copied().unwrap_or(1);
        let tag = start + (pkt.bytes as u64 / w).max(1);
        self.finish.insert(key, tag);
        self.pending.push((tag, seq, pkt));
    }

    fn dequeue(&mut self) -> Option<Packet> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, (tag, seq, _))| (*tag, *seq))?
            .0;
        let (tag, _, pkt) = self.pending.remove(best);
        self.vtime = self.vtime.max(tag);
        Some(pkt)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// WFQ on the tree (root program over three FIFO children) emits the
    /// exact sequence of the virtual-finish-time simulator, with enqueues
    /// and dequeues interleaved so the virtual clock is exercised mid-run.
    #[test]
    fn wfq_matches_virtual_finish_time_reference(
        ops in prop::collection::vec(
            // (child, bytes, how many to pop after this arrival)
            (0usize..3, 60u32..1_500, 0usize..3), 1..120),
    ) {
        let tree = compile(
            "node root kind=wfq\n\
             node a parent=root kind=fifo weight=1\n\
             node b parent=root kind=fifo weight=2\n\
             node c parent=root kind=fifo weight=5\n",
        )
        .unwrap();
        let leaves = [
            tree.node_by_name("a").unwrap(),
            tree.node_by_name("b").unwrap(),
            tree.node_by_name("c").unwrap(),
        ];
        // Child keys in the root program are the children's node indices.
        let weights: Vec<(u64, u64)> = leaves
            .iter()
            .zip([1u64, 2, 5])
            .map(|(id, w)| (id.0 as u64, w))
            .collect();
        let mut tree = tree;
        let mut reference = RefWfq::new(&weights);
        for (seq, &(child, bytes, pops)) in ops.iter().enumerate() {
            let seq = seq as u64;
            let pkt = Packet::new(seq, child as u32, bytes, 0);
            tree.enqueue(0, leaves[child], pkt.clone()).unwrap();
            reference.enqueue(leaves[child].0 as u64, seq, pkt);
            for _ in 0..pops {
                prop_assert_eq!(tree.dequeue(0), reference.dequeue());
            }
        }
        while let Some(expect) = reference.dequeue() {
            prop_assert_eq!(tree.dequeue(0), Some(expect));
        }
        prop_assert!(tree.is_empty());
    }
}

// ---------------------------------------------------------------------------
// LSTF: exact stable-sort-by-deadline reference.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LSTF serves by absolute deadline `created_at + slack`, ties in
    /// arrival order (Universal Packet Scheduling's invariant: the order
    /// by remaining slack is the order by absolute deadline).
    #[test]
    fn lstf_matches_deadline_sort(
        ops in prop::collection::vec(
            // (created_at, slack, how many to pop after this arrival)
            (0u64..1 << 40, 0u64..1 << 40, 0usize..3), 1..120),
    ) {
        let mut tree = compile("node root kind=lstf\n").unwrap();
        let root = tree.node_by_name("root").unwrap();
        // Pending mirror: (deadline, arrival seq, id).
        let mut pending: Vec<(u64, u64, u64)> = Vec::new();
        for (seq, &(at, slack, pops)) in ops.iter().enumerate() {
            let seq = seq as u64;
            let mut pkt = Packet::mtu(seq, 0, at);
            pkt.rank = slack;
            tree.enqueue(at, root, pkt).unwrap();
            pending.push((at.saturating_add(slack), seq, seq));
            for _ in 0..pops {
                let got = tree.dequeue(u64::MAX).map(|p| p.id);
                let best = pending
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(d, s, _))| (d, s))
                    .map(|(i, _)| i);
                let expect = best.map(|i| pending.remove(i).2);
                prop_assert_eq!(got, expect);
            }
        }
        pending.sort();
        for (_, _, id) in pending {
            prop_assert_eq!(tree.dequeue(u64::MAX).map(|p| p.id), Some(id));
        }
        prop_assert!(tree.is_empty());
    }
}

// ---------------------------------------------------------------------------
// HFSC: linear-scan two-slope curve reference (tolerance on counts).
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum RefPhase {
    Idle,
    Rt,
    Ls,
}

struct RefHfscFlow {
    backlog: usize,
    d: Nanos,
    burst_left: u64,
    v: u64,
    phase: RefPhase,
}

/// Same algebra as [`HfscCurves`], selection by linear scan: deadline-due
/// flows (bucket-quantized, like the policy's cFFS promotion) first by
/// `d`, else by link-share virtual time `v`.
struct RefHfsc {
    specs: Vec<CurveSpec>,
    flows: Vec<RefHfscFlow>,
    vtime: u64,
    gran: Nanos,
}

impl RefHfsc {
    fn new(specs: Vec<CurveSpec>) -> Self {
        let max_step = specs
            .iter()
            .flat_map(|s| [s.m1.tx_time(1_500), s.m2.tx_time(1_500)])
            .flatten()
            .max()
            .unwrap_or(1_000_000);
        // Mirrors HfscCurves::new's derivation.
        let gran = (2 * max_step).div_ceil(65_536).max(1_000);
        let flows = specs
            .iter()
            .map(|_| RefHfscFlow {
                backlog: 0,
                d: 0,
                burst_left: 0,
                v: 0,
                phase: RefPhase::Idle,
            })
            .collect();
        RefHfsc {
            specs,
            flows,
            vtime: 0,
            gran,
        }
    }

    fn place(&mut self, now: Nanos, id: usize) {
        let f = &mut self.flows[id];
        f.phase = if f.d <= now {
            RefPhase::Rt
        } else {
            RefPhase::Ls
        };
    }

    fn enqueue(&mut self, now: Nanos, id: usize) {
        let spec = self.specs[id];
        let vtime = self.vtime;
        let f = &mut self.flows[id];
        f.backlog += 1;
        if f.backlog == 1 {
            f.burst_left = spec.burst;
            f.d = f.d.max(now);
            f.v = f.v.max(vtime);
            self.place(now, id);
        }
    }

    /// Serves one packet of `bytes` bytes; returns the flow id, or `None`
    /// when nothing is backlogged.
    fn dequeue(&mut self, now: Nanos, bytes: u64) -> Option<usize> {
        // Promotion pass: cFFS fires at bucket granularity (may be early
        // by < gran).
        for f in &mut self.flows {
            if f.phase == RefPhase::Ls && (f.d / self.gran) * self.gran <= now {
                f.phase = RefPhase::Rt;
            }
        }
        let id = self
            .flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.backlog > 0)
            .min_by_key(|(_, f)| match f.phase {
                RefPhase::Rt => f.d / self.gran,
                _ => (1u64 << 62) + f.v,
            })?
            .0;
        let spec = self.specs[id];
        let f = &mut self.flows[id];
        f.backlog -= 1;
        let rate = if f.burst_left > 0 { spec.m1 } else { spec.m2 };
        let cost = rate.tx_time(bytes).unwrap_or(Nanos::MAX / 4);
        f.burst_left = f.burst_left.saturating_sub(bytes);
        f.d = f.d.max(now) + cost;
        let start = f.v;
        f.v = start + (bytes / spec.share.max(1)).max(1);
        self.vtime = self.vtime.max(start);
        if f.backlog == 0 {
            f.phase = RefPhase::Idle;
        } else {
            self.place(now, id);
        }
        Some(id)
    }
}

fn hfsc_tree(specs: Vec<CurveSpec>) -> PifoTree {
    let mut b = TreeBuilder::new();
    b.flow_leaf(
        "root",
        None,
        Box::new(HfscCurves::new(specs)),
        eiffel_core::QueueKind::BTree.build(eiffel_core::QueueConfig::new(1, 1, 0)),
        None,
    );
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// HFSC curves on the flow leaf track the linear-scan reference: over
    /// a paced drain the per-flow service counts agree within a small
    /// tolerance (tie-breaking among equal quantized deadlines is the only
    /// freedom the implementations have).
    #[test]
    fn hfsc_service_counts_match_reference(
        arrivals in prop::collection::vec(
            // (arrival step 0..50 × 100µs, flow)
            (0u64..50, 0u32..4), 40..160),
        per_step in 1usize..4,
    ) {
        let specs = vec![
            CurveSpec { m1: Rate::mbps(40), m2: Rate::mbps(5), burst: 4_500, share: 1 },
            CurveSpec { m1: Rate::mbps(20), m2: Rate::mbps(10), burst: 3_000, share: 2 },
            CurveSpec { m1: Rate::mbps(10), m2: Rate::mbps(10), burst: 1_500, share: 4 },
            CurveSpec { m1: Rate::mbps(5), m2: Rate::mbps(20), burst: 9_000, share: 8 },
        ];
        let mut tree = hfsc_tree(specs.clone());
        let root = tree.node_by_name("root").unwrap();
        let mut reference = RefHfsc::new(specs);

        let mut arrivals: Vec<(Nanos, u32)> = arrivals
            .iter()
            .map(|&(step, flow)| (step * 100_000, flow))
            .collect();
        arrivals.sort();
        let total = arrivals.len();

        let mut tree_counts = [0usize; 4];
        let mut ref_counts = [0usize; 4];
        let mut ai = 0;
        let mut now: Nanos = 0;
        let mut served = 0;
        // Paced link: `per_step` MTU services per 100 µs tick.
        while served < total {
            while ai < arrivals.len() && arrivals[ai].0 <= now {
                let (at, flow) = arrivals[ai];
                let mut pkt = Packet::mtu(ai as u64, flow, at);
                pkt.bytes = 1_500;
                tree.enqueue(at, root, pkt).unwrap();
                reference.enqueue(at, flow as usize);
                ai += 1;
            }
            for _ in 0..per_step {
                let Some(p) = tree.dequeue(now) else { break };
                tree_counts[p.flow as usize] += 1;
                let r = reference.dequeue(now, 1_500).expect("mirrored backlog");
                ref_counts[r] += 1;
                served += 1;
            }
            now += 100_000;
            prop_assert!(now < 10_000_000_000, "drain must converge");
        }
        prop_assert!(tree.is_empty());
        for flow in 0..4 {
            let diff = tree_counts[flow].abs_diff(ref_counts[flow]);
            let bound = (ref_counts[flow] / 5).max(4);
            prop_assert!(
                diff <= bound,
                "flow {} served {} on the tree vs {} in the reference (tolerance {})",
                flow, tree_counts[flow], ref_counts[flow], bound
            );
        }
    }
}
