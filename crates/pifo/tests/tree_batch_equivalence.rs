//! Property: `PifoTree::dequeue_batch` emits the exact packet sequence
//! repeated `PifoTree::dequeue` would — across tree shapes (flat, nested,
//! flow leaves), node programs (FIFO, STFQ, WFQ, LSTF, childprio, QoS flow
//! policies) and shaper geometries (unshaped, leaf limits, nested limits,
//! paced root). This is the qdisc-layer batch proof (PR 5) lifted to the
//! programmable tree.

use eiffel_pifo::lang::compile;
use eiffel_pifo::PifoTree;
use eiffel_sim::{Nanos, Packet};
use proptest::prelude::*;

/// The zoo of tree shapes under test. Each pairs a policy text with the
/// leaves arrivals may target.
const SHAPES: &[(&str, &[&str])] = &[
    ("node root kind=fifo\n", &["root"]),
    ("node root kind=fifo limit=40mbps\n", &["root"]),
    (
        "node root kind=stfq\n\
         node a parent=root kind=fifo weight=3\n\
         node b parent=root kind=fifo weight=1 limit=30mbps\n\
         node c parent=root kind=flow:lqf weight=2\n",
        &["a", "b", "c"],
    ),
    (
        "node root kind=wfq\n\
         node a parent=root kind=fifo weight=4\n\
         node mid parent=root kind=stfq weight=1 limit=60mbps\n\
         node m1 parent=mid kind=fifo weight=1\n\
         node m2 parent=mid kind=fifo weight=2\n",
        &["a", "m1", "m2"],
    ),
    (
        "node root kind=childprio\n\
         node hi parent=root kind=lstf prio=0\n\
         node lo parent=root kind=flow:pfabric prio=1\n",
        &["hi", "lo"],
    ),
    (
        // Figure 7/8: nested limits under a paced root.
        "node root kind=fifo limit=80mbps\n\
         node inner parent=root kind=fifo limit=50mbps\n\
         node leaf parent=inner kind=fifo limit=30mbps\n",
        &["leaf"],
    ),
    (
        "node root kind=flow:hclock res=5mbps lim=25mbps share=1\n",
        &["root"],
    ),
    (
        "node root kind=flow:hfsc m1=40mbps m2=10mbps burst=4500 share=2\n",
        &["root"],
    ),
];

fn build(shape: usize) -> (PifoTree, Vec<eiffel_pifo::NodeId>) {
    let (text, leaves) = SHAPES[shape];
    let tree = compile(text).unwrap_or_else(|e| panic!("shape {shape}: {e}"));
    let ids = leaves
        .iter()
        .map(|n| tree.node_by_name(n).unwrap())
        .collect();
    (tree, ids)
}

/// Drives mirrored trees through the same arrival schedule; at every probe
/// instant one side drains through `dequeue_batch` with cycling batch
/// sizes, the other through repeated `dequeue`.
fn assert_batch_matches_single(
    shape: usize,
    arrivals: &[(Nanos, usize, u32, u64)],
    batches: &[usize],
    step: Nanos,
) {
    let (mut batched, leaves) = build(shape);
    let (mut single, _) = build(shape);
    let mut ai = 0usize;
    let mut now: Nanos = 0;
    let mut round = 0usize;
    let mut out: Vec<Packet> = Vec::new();
    let mut next_id = 0u64;
    loop {
        while ai < arrivals.len() && arrivals[ai].0 <= now {
            let (at, leaf_sel, flow, slack) = arrivals[ai];
            let leaf = leaves[leaf_sel % leaves.len()];
            let mut pkt = Packet::mtu(next_id, flow, at);
            pkt.rank = slack; // LSTF slack / pFabric remaining size
            pkt.class = flow % 4;
            next_id += 1;
            batched.enqueue(at, leaf, pkt.clone()).unwrap();
            single.enqueue(at, leaf, pkt).unwrap();
            ai += 1;
        }
        loop {
            let max = batches[round % batches.len()];
            round += 1;
            out.clear();
            let got = batched.dequeue_batch(now, max, &mut out);
            assert_eq!(got, out.len(), "reported count matches the append");
            assert!(got <= max, "overfilled batch");
            for p in &out {
                assert_eq!(
                    Some(p.clone()),
                    single.dequeue(now),
                    "shape {shape} diverged at t={now}"
                );
            }
            if got < max {
                assert!(
                    single.dequeue(now).is_none(),
                    "shape {shape}: batch stopped early at t={now}"
                );
                break;
            }
        }
        assert_eq!(batched.len(), single.len());
        if ai >= arrivals.len() && batched.is_empty() {
            break;
        }
        now += step;
        assert!(
            now < 60_000_000_000,
            "shape {shape}: drain must converge (len={})",
            batched.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random tree shape × arrival schedule × batch sizes × probe step.
    #[test]
    fn tree_dequeue_batch_matches_repeated_dequeue(
        shape in 0usize..SHAPES.len(),
        arrivals in prop::collection::vec(
            // Slack stays inside pFabric's fixed 2^20 rank range.
            (0u64..4_000_000, 0usize..3, 0u32..6, 1u64..1_000_000), 1..80),
        batches in prop::collection::vec(1usize..17, 1..12),
        step in prop_oneof![Just(150_000u64), Just(400_000), Just(1_100_000)],
    ) {
        let mut arrivals = arrivals;
        arrivals.sort();
        assert_batch_matches_single(shape, &arrivals, &batches, step);
    }
}

/// Every shape is exercised at least once regardless of the generator's
/// whims (cheap deterministic sweep riding the same harness).
#[test]
fn every_shape_drains_identically() {
    let arrivals: Vec<(Nanos, usize, u32, u64)> = (0..30)
        .map(|i| {
            (
                (i as u64) * 137_000,
                (i * 7) % 3,
                (i % 5) as u32,
                1 + (i as u64 * 97) % 900_000,
            )
        })
        .collect();
    for shape in 0..SHAPES.len() {
        assert_batch_matches_single(shape, &arrivals, &[1, 5, 3, 16], 300_000);
    }
}
