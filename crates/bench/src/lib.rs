//! # eiffel-bench — regenerating every table and figure of the paper
//!
//! One binary per experiment (`cargo run --release -p eiffel-bench --bin
//! figNN_*`), each printing the same rows/series the paper plots. The
//! experiment logic lives here in the library so integration tests can run
//! scaled-down versions of every harness.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1_landscape` | Table 1 (scheduler capability matrix) |
//! | `fig09_kernel_shaping` | Fig 9 (CPU cores CDF: FQ / Carousel / Eiffel) |
//! | `fig10_cpu_breakdown` | Fig 10 (system vs softirq CPU) |
//! | `fig12_hclock_scaling` | Fig 12 (max rate vs #flows, hClock) |
//! | `fig13_batching` | Fig 13 (batching × packet size) |
//! | `fig15_pfabric_scaling` | Fig 15 (max rate vs #flows, pFabric) |
//! | `fig16_packets_per_bucket` | Fig 16 (Mpps vs packets/bucket) |
//! | `fig17_occupancy` | Fig 17 (Mpps vs occupancy) |
//! | `fig18_approx_error` | Fig 18 (approx error vs occupancy) |
//! | `fig19_pfabric_fct` | Fig 19 (normalized FCT vs load) |
//! | `fig20_guide` | Fig 20 (queue-selection decision tree) |
//!
//! Every binary accepts `--quick` (scaled-down sweep) and `--json <path>`
//! (write a machine-readable [`report::BenchReport`]; the
//! `EIFFEL_BENCH_JSON` environment variable sets a default path). The
//! committed `BENCH_*.json` baselines at the repo root are these reports —
//! see the [`report`] module docs for the schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod microbench;
pub mod report;
pub mod runners;

pub use report::BenchArgs;

/// Parses the shared `--quick` flag used by every figure binary.
///
/// Prefer [`BenchArgs::parse`], which also handles `--json`; this remains
/// for callers that only care about scaling.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}
