//! Scaled experiment runners behind the figure binaries.
//!
//! Every measurement function takes explicit scale parameters so the
//! integration tests run miniature versions of the exact code path the
//! binaries use. For the figures whose runs are recorded as committed
//! baselines, the *entire* report construction lives here too
//! ([`fig12_report`], [`table1_report`]): the binary is a thin
//! parse-args-and-finish wrapper, and tests/CI validate the same
//! [`BenchReport`] the operator records with `--json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use eiffel_bess::{
    measure_rate, measure_rate_sharded, BessScheduler, BessTc, FlowSpec, HClockEiffel, HClockHeap,
    PfabricEiffel, PfabricHeap, RoundRobinGen, WARMUP_FRACTION,
};
use eiffel_dcsim::{run_with, SchedulerBackend, SimConfig, System, Topology};
use eiffel_qdisc::{
    run_threaded, CarouselQdisc, EiffelQdisc, FqQdisc, HostConfig, HostReport, RankedShaperQdisc,
    SojournHist, ThreadedConfig, ThreadedReport, TierCounters,
};
use eiffel_sim::{Nanos, Packet, Rate, WallNanos, SECOND};

use eiffel_chaos::{AdmitPolicy, FaultFamily, FaultPlan, WatchdogConfig};
use eiffel_core::{
    DegradeTier, MemBudget, OracleAudit, OracleReport, QueueConfig, QueueKind, RankedQueue,
    FLOW_SETUP_BYTES,
};
use eiffel_pifo::compile;
use eiffel_workloads::{
    heavy_tailed_pkts, incast_starts, trace_shaped_pkts, ClosedLoopParams, FlowSizeDist,
    RankPattern, SCALE_ONE,
};

use crate::microbench::{
    approx_error_at_occupancy, drain_quality, drain_rate_occupancy, drain_rate_packets_per_bucket,
    FillOrder, FillPattern, QueueUnderTest,
};
use crate::report::{BenchArgs, BenchReport, Sweep, TextTable};

/// Figure 9/10 configuration.
#[derive(Debug, Clone)]
pub struct KernelShapingScale {
    /// Paced flows (paper: 20 000).
    pub flows: usize,
    /// Aggregate rate (paper: 24 Gbps).
    pub aggregate: Rate,
    /// Virtual duration.
    pub duration: Nanos,
    /// Accounting bin.
    pub bin: Nanos,
}

impl KernelShapingScale {
    /// The paper's workload at a shortened duration.
    pub fn default_scale() -> Self {
        KernelShapingScale {
            flows: 20_000,
            aggregate: Rate::gbps(24),
            duration: 2 * SECOND,
            bin: SECOND / 10,
        }
    }

    /// Miniature for tests / `--quick`.
    pub fn quick() -> Self {
        KernelShapingScale {
            flows: 2_000,
            aggregate: Rate::mbps(2_400),
            duration: SECOND / 2,
            bin: SECOND / 20,
        }
    }
}

/// Runs the three qdiscs of Figure 9 and returns their host reports
/// (order: FQ, Carousel, Eiffel).
pub fn kernel_shaping(scale: &KernelShapingScale) -> Vec<HostReport> {
    let cfg = HostConfig {
        flows: scale.flows,
        aggregate: scale.aggregate,
        duration: scale.duration,
        bin: scale.bin,
        tsq_budget: 2,
        batch: 1,
    };
    vec![
        eiffel_qdisc::run(FqQdisc::new(), &cfg),
        // Carousel: 2 µs wheel slots over a 2 s horizon (1M slots), the
        // granularity pacing at tens of Gbps needs.
        eiffel_qdisc::run(CarouselQdisc::new(1 << 20, 2_000), &cfg),
        // Eiffel: the paper's 20k buckets / 2 s horizon.
        eiffel_qdisc::run(EiffelQdisc::paper_config(), &cfg),
    ]
}

/// The Figure 9 claim quoted by the binary banner and EXPERIMENTS.md.
pub const FIG9_PAPER_CLAIM: &str =
    "Eiffel outperforms FQ by a median 14x and Carousel by 3x (§5.1.1, Figure 9).";

/// Per-flow pacing rate of the Figure 9 workload (paper: 24 Gbps over
/// 20k flows = 1.2 Mbps per flow), held constant across the flow sweep so
/// every threaded cell paces at the paper's per-flow granularity.
const FIG9_PER_FLOW_KBPS: u64 = 1_200;

/// A threaded cell "holds" its target rate when it achieves at least this
/// fraction of it; below, cores-to-shape extrapolates linearly.
const FIG9_HELD_FRACTION: f64 = 0.97;

/// The three Figure 9 qdiscs in the figure's legend order.
const FIG9_QDISCS: [&str; 3] = ["FQ/pacing", "Carousel", "Eiffel"];

/// Scale knobs of the Figure 9 harness: the virtual-clock CDF panel (the
/// original figure axis) plus the threaded wall-clock cores-to-shape
/// sweep over real OS threads.
#[derive(Debug, Clone)]
pub struct Fig9Scale {
    /// Flow counts of the threaded sweep; the last entry is the headline
    /// point the cores-to-shape table is built from (paper: 20 000).
    pub flows: Vec<usize>,
    /// Shard (OS thread) counts swept at every flow count.
    pub shards: Vec<usize>,
    /// Aggregate-rate ladder (Gbps) run at the headline flow count on one
    /// shard; empty skips the panel.
    pub rates_gbps: Vec<u64>,
    /// Wall-clock measurement per threaded cell.
    pub wall: WallNanos,
    /// Scale of the virtual-clock CDF panel.
    pub cdf: KernelShapingScale,
}

impl Fig9Scale {
    /// Scale chosen from the shared `--quick` flag.
    pub fn from_args(args: &BenchArgs) -> Self {
        if args.quick {
            Fig9Scale {
                flows: vec![500, 2_000],
                shards: vec![1, 2],
                rates_gbps: Vec::new(),
                wall: WallNanos::from_millis(250),
                cdf: KernelShapingScale::quick(),
            }
        } else {
            Fig9Scale {
                flows: vec![2_000, 20_000],
                shards: vec![1, 2],
                rates_gbps: vec![6, 12, 24],
                wall: WallNanos::from_millis(1_200),
                cdf: KernelShapingScale::default_scale(),
            }
        }
    }

    /// Miniature for integration tests.
    pub fn tiny() -> Self {
        Fig9Scale {
            flows: vec![12, 24],
            shards: vec![1, 2],
            rates_gbps: Vec::new(),
            wall: WallNanos::from_millis(25),
            cdf: KernelShapingScale {
                flows: 200,
                aggregate: Rate::mbps(240),
                duration: SECOND / 10,
                bin: SECOND / 50,
            },
        }
    }
}

/// One threaded Figure 9 cell: `(achieved Gbps, median busy cores)` for
/// qdisc `which` (index into [`FIG9_QDISCS`]) shaping `flows` flows to
/// `aggregate` across `shards` real OS threads for `wall` wall-clock time.
fn fig9_cell(
    which: usize,
    flows: usize,
    shards: usize,
    aggregate: Rate,
    wall: WallNanos,
) -> (f64, f64) {
    let host = HostConfig {
        flows,
        aggregate,
        duration: 2 * SECOND, // ignored by the threaded runtime
        bin: (wall.as_nanos() / 10).max(1),
        tsq_budget: 2,
        batch: 1,
    };
    let cfg = ThreadedConfig::timed(shards, host, wall);
    let rep = match which {
        0 => run_threaded(|_| FqQdisc::new(), &cfg),
        // Same qdisc constructions as the virtual-clock panel
        // ([`kernel_shaping`]), so the two clocks compare like for like.
        1 => run_threaded(|_| CarouselQdisc::new(1 << 20, 2_000), &cfg),
        _ => run_threaded(|_| EiffelQdisc::paper_config(), &cfg),
    };
    (rep.achieved_bps / 1e9, rep.total_median_cores)
}

/// Builds the complete Figure 9 report: the virtual-clock CPU CDF (the
/// original figure), then threaded wall-clock panels — achieved rate and
/// busy cores per shard count at each flow count, an optional rate ladder
/// at the headline flow count — and the cores-needed-to-shape table the
/// committed `BENCH_fig9_cores_to_shape.json` is named for.
pub fn fig9_report(args: &BenchArgs, scale: &Fig9Scale) -> BenchReport {
    let mut r = BenchReport::new(
        "fig09_kernel_shaping",
        "Figure 9",
        "CPU cores for kernel shaping: virtual-clock CDF + threaded wall-clock cores-to-shape",
        args,
    );
    r.paper_claim(FIG9_PAPER_CLAIM);
    r.config_num("cdf_flows", scale.cdf.flows as f64);
    r.config_num(
        "cdf_aggregate_gbps",
        scale.cdf.aggregate.as_bps() as f64 / 1e9,
    );
    r.config_num("cdf_virtual_seconds", scale.cdf.duration as f64 / 1e9);
    r.config_num(
        "threaded_wall_ms_per_cell",
        scale.wall.as_nanos() as f64 / 1e6,
    );
    r.config_num("per_flow_kbps", FIG9_PER_FLOW_KBPS as f64);
    r.config_num("held_fraction", FIG9_HELD_FRACTION);
    r.config_str("flows_sweep", format!("{:?}", scale.flows));
    r.config_str("shards_sweep", format!("{:?}", scale.shards));
    r.config_str("rate_ladder_gbps", format!("{:?}", scale.rates_gbps));
    r.config_str(
        "method",
        "CDF panel: real data-structure CPU metered into virtual-time bins. Threaded panels: \
         one OS thread per shard fed over lock-free SPSC rings, wall-clock time, busy cores = \
         median executed-nanoseconds per wall bin (see eiffel-qdisc::threaded)",
    );

    // Panel 1: the original virtual-clock CDF.
    let reports = kernel_shaping(&scale.cdf);
    let mut sw = Sweep::new("CPU cores used for networking (virtual-clock CDF)", "CDF");
    for sys in &reports {
        sw.add_series(sys.name, "cores", 4);
    }
    let cdfs: Vec<Vec<(f64, f64)>> = reports
        .iter()
        .map(|sys| crate::report::cdf(&sys.cores_sorted, 10))
        .collect();
    for i in 0..10 {
        let frac = cdfs[0][i].1;
        let row: Vec<f64> = cdfs.iter().map(|c| c[i].0).collect();
        sw.push_row(frac, &row);
    }
    r.push_sweep(sw);
    for sys in &reports {
        r.note(format!(
            "[virtual {}] median = {:.3} cores, transmitted = {} pkts, timer fires = {}",
            sys.name, sys.median_cores, sys.transmitted, sys.timer_fires
        ));
    }
    let (fq, carousel, eiffel) = (&reports[0], &reports[1], &reports[2]);
    r.note(format!(
        "Virtual-clock medians: FQ/Eiffel = {:.1}x, Carousel/Eiffel = {:.1}x",
        fq.median_cores / eiffel.median_cores.max(1e-9),
        carousel.median_cores / eiffel.median_cores.max(1e-9)
    ));

    // Panels 2..: threaded wall-clock, shards × flows. The headline flow
    // count's cells also feed the cores-to-shape table below.
    let headline_flows = *scale.flows.last().expect("at least one flow count");
    let mut headline: Vec<(usize, Vec<(f64, f64)>)> = Vec::new();
    for &flows in &scale.flows {
        let target = Rate::kbps(FIG9_PER_FLOW_KBPS * flows as u64);
        let target_gbps = target.as_bps() as f64 / 1e9;
        let mut sw = Sweep::new(
            format!("threaded wall clock: {flows} flows @ {target_gbps:.2} Gbps target"),
            "shards",
        );
        for name in FIG9_QDISCS {
            sw.add_series(format!("{name} achieved"), "Gbps", 3);
            sw.add_series(format!("{name} busy cores"), "cores", 3);
        }
        for &shards in &scale.shards {
            let cells: Vec<(f64, f64)> = (0..FIG9_QDISCS.len())
                .map(|q| fig9_cell(q, flows, shards, target, scale.wall))
                .collect();
            let row: Vec<f64> = cells.iter().flat_map(|&(g, c)| [g, c]).collect();
            sw.push_row(shards, &row);
            if flows == headline_flows {
                headline.push((shards, cells));
            }
        }
        r.push_sweep(sw);
    }

    // Optional rate ladder: how busy cores scale with the shaping target
    // at the headline flow count, one shard.
    if !scale.rates_gbps.is_empty() {
        let mut sw = Sweep::new(
            format!("threaded rate ladder: {headline_flows} flows, 1 shard"),
            "target Gbps",
        );
        for name in FIG9_QDISCS {
            sw.add_series(format!("{name} achieved"), "Gbps", 3);
            sw.add_series(format!("{name} busy cores"), "cores", 3);
        }
        for &g in &scale.rates_gbps {
            let cells: Vec<(f64, f64)> = (0..FIG9_QDISCS.len())
                .map(|q| fig9_cell(q, headline_flows, 1, Rate::gbps(g), scale.wall))
                .collect();
            let row: Vec<f64> = cells.iter().flat_map(|&(g, c)| [g, c]).collect();
            sw.push_row(g, &row);
        }
        r.push_sweep(sw);
    }

    // The headline table: cores needed to hold the paper's shaping rate.
    let headline_gbps = (FIG9_PER_FLOW_KBPS * headline_flows as u64) as f64 * 1e3 / 1e9;
    let mut t = TextTable::new(
        format!(
            "cores needed to shape {headline_flows} flows @ {headline_gbps:.2} Gbps \
             (held = achieved >= {:.0}% of target)",
            FIG9_HELD_FRACTION * 100.0
        ),
        &[
            "Qdisc",
            "Shards",
            "Achieved Gbps",
            "Busy cores",
            "Held",
            "Cores to shape",
        ],
    );
    let mut best = [f64::INFINITY; 3];
    for &(shards, ref cells) in &headline {
        for (q, &(gbps, cores)) in cells.iter().enumerate() {
            let held = gbps >= FIG9_HELD_FRACTION * headline_gbps;
            let need = if held {
                cores
            } else {
                cores * headline_gbps / gbps.max(1e-9)
            };
            best[q] = best[q].min(need);
            t.rows.push(vec![
                FIG9_QDISCS[q].to_string(),
                shards.to_string(),
                format!("{gbps:.3}"),
                format!("{cores:.3}"),
                if held { "yes" } else { "no" }.to_string(),
                format!("{need:.3}"),
            ]);
        }
    }
    r.push_table(t);
    r.note(format!(
        "Cores-to-shape ratios (best over shard counts): FQ/Eiffel = {:.1}x, \
         Carousel/Eiffel = {:.1}x (paper medians: 14x and 3x).",
        best[0] / best[2].max(1e-9),
        best[1] / best[2].max(1e-9)
    ));
    r.note(
        "Threaded cells run real OS threads on the wall clock. On a host with fewer physical \
         cores than shards the threads time-slice, but 'busy cores' counts executed scheduler \
         nanoseconds (plus the same modelled IRQ/lock constants as the virtual-clock host) per \
         wall bin, so it measures the CPU a multi-core host would spend and can exceed the \
         machine's core count. Cells that cannot hold their target extrapolate cores-to-shape \
         linearly (busy x target/achieved).",
    );
    r
}

/// Equal per-flow hClock specs splitting `agg_mbps` (tiny reservations,
/// equal shares). Per-flow limits are computed in kbps so they still sum
/// to the aggregate when `flows` exceeds `agg_mbps`.
pub fn flat_specs(flows: usize, agg_mbps: u64) -> Vec<FlowSpec> {
    let per_kbps = (agg_mbps * 1_000 / flows as u64).max(1);
    (0..flows)
        .map(|_| FlowSpec {
            reservation: Rate::kbps(10.min(per_kbps / 2).max(1)),
            limit: Rate::kbps(per_kbps),
            share: 1,
        })
        .collect()
}

/// One Figure 12 cell: max aggregate rate (Mbps) of an hClock variant.
pub fn hclock_max_rate(
    which: &str,
    flows: usize,
    agg_limit_mbps: u64,
    pkt_bytes: u32,
    batch: u32,
    dur: Duration,
) -> f64 {
    let mut gen = RoundRobinGen::with_batch(flows, pkt_bytes, batch);
    let occupancy = (flows * 4).clamp(64, 120_000);
    let specs = flat_specs(flows, agg_limit_mbps);
    let report = match which {
        "eiffel" => {
            let mut s = HClockEiffel::new(&specs);
            measure_rate(&mut s, &mut gen, &mut |_| {}, occupancy, dur)
        }
        "hclock" => {
            let mut s = HClockHeap::new(&specs);
            measure_rate(&mut s, &mut gen, &mut |_| {}, occupancy, dur)
        }
        "tc" => {
            let per = Rate::kbps((agg_limit_mbps * 1_000 / flows as u64).max(1));
            let mut s = BessTc::new(flows, per);
            measure_rate(&mut s, &mut gen, &mut |_| {}, occupancy, dur)
        }
        other => panic!("unknown scheduler '{other}'"),
    };
    report.mbps
}

/// The paper's Figure 12 claim, §5.1.2 ("hClock in BESS"): the single
/// sentence both the binary banner and EXPERIMENTS.md quote, kept in one
/// place so they cannot drift apart again.
pub const FIG12_PAPER_CLAIM: &str = "Eiffel's hClock sustains the maximum configured rate at up \
     to 10x the number of flows compared to the priority-queue hClock, with a larger advantage \
     over BESS tc (§5.1.2, Figure 12).";

/// Builds the complete Figure 12 report: the paper's two panels (10 Gbps
/// line rate, 5 Gbps aggregate limit) over the full flow sweep, plus a
/// CPU-bound capacity panel (limits set far above what one core can
/// schedule) that exposes raw per-packet cost — the series the perf
/// trajectory tracks across PRs.
pub fn fig12_report(args: &BenchArgs) -> BenchReport {
    let flows: &[usize] = if args.quick {
        &[10, 100, 1_000]
    } else {
        &[10, 100, 1_000, 10_000, 50_000, 100_000]
    };
    let dur = Duration::from_millis(if args.quick { 100 } else { 1_000 });
    let mut r = BenchReport::new(
        "fig12_hclock_scaling",
        "Figure 12",
        "max aggregate rate vs #flows (hClock on one core, 1500B, no batching)",
        args,
    );
    r.paper_claim(FIG12_PAPER_CLAIM);
    r.config_num("duration_ms_per_cell", dur.as_millis() as f64);
    r.config_num("warmup_fraction", WARMUP_FRACTION);
    r.config_num("pkt_bytes", 1_500.0);
    r.config_num("batch", 1.0);
    r.config_str("flows_sweep", format!("{flows:?}"));
    for (panel, agg_mbps) in [
        ("10 Gbps line rate", 10_000u64),
        ("5 Gbps aggregate rate limit", 5_000),
    ] {
        let mut sw = Sweep::new(panel, "flows");
        sw.add_series("Eiffel-hClock", "Mbps", 0);
        sw.add_series("hClock (min-heap)", "Mbps", 0);
        sw.add_series("BESS tc", "Mbps", 0);
        for &n in flows {
            let e = hclock_max_rate("eiffel", n, agg_mbps, 1_500, 1, dur);
            let h = hclock_max_rate("hclock", n, agg_mbps, 1_500, 1, dur);
            let t = hclock_max_rate("tc", n, agg_mbps, 1_500, 1, dur);
            sw.push_row(n, &[e, h, t]);
        }
        r.push_sweep(sw);
    }
    // CPU-bound panel: a 2 Tbps aggregate "limit" no single core can
    // reach, so the measured rate is the scheduler's own capacity.
    let mut sw = Sweep::new("scheduler capacity (limits never bind, 2 Tbps)", "flows");
    sw.add_series("Eiffel-hClock", "Mpps", 2);
    sw.add_series("hClock (min-heap)", "Mpps", 2);
    sw.add_series("BESS tc", "Mpps", 2);
    let to_mpps = |mbps: f64| mbps / (1_500.0 * 8.0);
    for &n in flows {
        let e = hclock_max_rate("eiffel", n, 2_000_000, 1_500, 1, dur);
        let h = hclock_max_rate("hclock", n, 2_000_000, 1_500, 1, dur);
        let t = hclock_max_rate("tc", n, 2_000_000, 1_500, 1, dur);
        sw.push_row(n, &[to_mpps(e), to_mpps(h), to_mpps(t)]);
    }
    r.push_sweep(sw);
    r.note(
        "Capacity panel caveat: with limits never binding, the heap baseline never pays its \
         pop-and-defer scan (the cost the paper attributes to hClock's priority queue), so raw \
         capacity favors simpler structures. The paper's separation appears where limits bind \
         at scale (the two rate-limited panels).",
    );
    r
}

/// Builds the Table 1 report (qualitative capability matrix).
pub fn table1_report(args: &BenchArgs) -> BenchReport {
    let mut r = BenchReport::new(
        "table1_landscape",
        "Table 1",
        "scheduler landscape: proposed work in the context of the state of the art",
        args,
    );
    let mut t = TextTable::new(
        "capability matrix",
        &[
            "System",
            "Efficiency",
            "HW/SW",
            "Unit",
            "WorkCons",
            "Shaping",
            "Prog",
            "Notes",
        ],
    );
    t.rows = table1_rows();
    r.push_table(t);
    r.note("Flexibility columns: unit of scheduling, work conserving, shaping, programmable.");
    r
}

/// The shared Figure 15 workload shape: working occupancy plus the
/// remaining-size stamper (each flow cycles through a synthetic flow of 64
/// packets — remaining 64, 63, … 1). One definition so the classic and
/// sharded cells can never drift onto different workloads.
fn pfabric_workload(flows: usize) -> (usize, impl FnMut(&mut Packet)) {
    let occupancy = (2 * flows).clamp(64, 100_000);
    let mut remaining = vec![0u32; flows];
    let stamp = move |p: &mut Packet| {
        let r = &mut remaining[p.flow as usize];
        if *r == 0 {
            *r = 64;
        }
        p.rank = *r as u64;
        *r -= 1;
    };
    (occupancy, stamp)
}

/// One Figure 15 cell: pFabric throughput (Mbps at 1500B) for a flow count.
pub fn pfabric_max_rate(eiffel: bool, flows: usize, dur: Duration) -> f64 {
    let mut gen = RoundRobinGen::new(flows, 1_500);
    let (occupancy, mut stamp) = pfabric_workload(flows);
    let report = if eiffel {
        let mut s = PfabricEiffel::new();
        measure_rate(&mut s, &mut gen, &mut stamp, occupancy, dur)
    } else {
        let mut s = PfabricHeap::new();
        measure_rate(&mut s, &mut gen, &mut stamp, occupancy, dur)
    };
    report.mbps
}

/// One Figure 15 cell: aggregate pFabric throughput (Mbps at 1500B) with
/// the flow set hashed over `shards` scheduler instances, each drained
/// through the batched trait path with `batch` packets per call.
/// `(shards, batch) = (1, 1)` is the classic single-instance
/// packet-at-a-time cell of [`pfabric_max_rate`].
pub fn pfabric_max_rate_sharded(
    eiffel: bool,
    flows: usize,
    shards: usize,
    batch: usize,
    dur: Duration,
) -> f64 {
    let mut gen = RoundRobinGen::new(flows, 1_500);
    let (occupancy, mut stamp) = pfabric_workload(flows);
    fn run<S: BessScheduler>(
        mut shards: Vec<S>,
        gen: &mut RoundRobinGen,
        stamp: &mut impl FnMut(&mut Packet),
        occupancy: usize,
        dur: Duration,
        batch: usize,
    ) -> f64 {
        measure_rate_sharded(&mut shards, gen, stamp, occupancy, dur, batch)
            .total
            .mbps
    }
    if eiffel {
        let insts = (0..shards).map(|_| PfabricEiffel::new()).collect();
        run(insts, &mut gen, &mut stamp, occupancy, dur, batch)
    } else {
        let insts = (0..shards).map(|_| PfabricHeap::new()).collect();
        run(insts, &mut gen, &mut stamp, occupancy, dur, batch)
    }
}

/// The Figure 15 claim quoted by the binary banner and EXPERIMENTS.md.
pub const FIG15_PAPER_CLAIM: &str = "Eiffel's pFabric sustains line rate at 5x the number of \
     flows the binary-heap implementation can handle, whose rate collapses as re-heapification \
     costs grow with the flow count (§5.1.3, Figure 15).";

/// Scale knobs of the Figure 15 harness (pFabric rate vs flow count,
/// across host-pipeline shapes).
#[derive(Debug, Clone)]
pub struct Fig15Scale {
    /// Flow-count sweep points.
    pub flows: Vec<usize>,
    /// `(shards, batch)` panels: scheduler instances the flow set is
    /// hashed over × packets per batched dequeue call.
    pub shard_batch: Vec<(usize, usize)>,
    /// Measurement duration per cell.
    pub dur: Duration,
}

impl Fig15Scale {
    /// Scale chosen from the shared `--quick` flag: the full cross of
    /// shard {1, 2, 4} × batch {1, 16}, on a shortened flow sweep when
    /// quick.
    pub fn from_args(args: &BenchArgs) -> Self {
        Fig15Scale {
            flows: if args.quick {
                vec![100, 1_000, 10_000]
            } else {
                vec![100, 1_000, 10_000, 100_000, 1_000_000]
            },
            shard_batch: vec![(1, 1), (2, 1), (4, 1), (1, 16), (2, 16), (4, 16)],
            dur: Duration::from_millis(if args.quick { 40 } else { 600 }),
        }
    }

    /// Miniature for integration tests.
    pub fn tiny() -> Self {
        Fig15Scale {
            flows: vec![50, 200],
            shard_batch: vec![(1, 1), (2, 8)],
            dur: Duration::from_millis(8),
        }
    }
}

/// Builds the complete Figure 15 report: one panel per `(shards, batch)`
/// pipeline shape, each sweeping flow count for the Eiffel and binary-heap
/// pFabric implementations.
pub fn fig15_report(args: &BenchArgs, scale: &Fig15Scale) -> BenchReport {
    let mut r = BenchReport::new(
        "fig15_pfabric_scaling",
        "Figure 15",
        "pFabric max rate vs #flows (cFFS-family vs binary heap; sharded + batched pipelines)",
        args,
    );
    r.paper_claim(FIG15_PAPER_CLAIM);
    r.config_num("duration_ms_per_cell", scale.dur.as_millis() as f64);
    r.config_num("warmup_fraction", WARMUP_FRACTION);
    r.config_num("pkt_bytes", 1_500.0);
    r.config_str("flows_sweep", format!("{:?}", scale.flows));
    r.config_str("shard_batch_panels", format!("{:?}", scale.shard_batch));
    r.config_str(
        "method",
        "per-flow ranking + on-dequeue ranking; heap baseline re-heapifies on rank change; \
         flows hashed to shards by eiffel_sim::shard_of; batched dequeue via the trait fast path",
    );
    for &(shards, batch) in &scale.shard_batch {
        let mut sw = Sweep::new(format!("{shards} shard(s), dequeue batch {batch}"), "flows");
        sw.add_series("pFabric-Eiffel", "Mbps", 0);
        sw.add_series("pFabric-BinaryHeap", "Mbps", 0);
        for &n in &scale.flows {
            let e = pfabric_max_rate_sharded(true, n, shards, batch, scale.dur);
            let h = pfabric_max_rate_sharded(false, n, shards, batch, scale.dur);
            sw.push_row(n, &[e, h]);
        }
        r.push_sweep(sw);
    }
    r.note(
        "Shards time-slice one physical core (this is a 1-vCPU measurement): the aggregate is \
         the core's total scheduling capacity, not an N-core extrapolation. Sharding shrinks \
         each instance's flow set — a binary heap gets shallower and its re-heapify cheaper, \
         while Eiffel's FFS walk never depended on the flow count to begin with; the batched \
         panels amortize the min-find through the dequeue_batch trait fast path (order proven \
         identical to repeated dequeue by property test).",
    );
    r
}

/// One Figure 19 measurement point: FCT panels plus the event-loop
/// throughput counter (the runner-level before/after metric for the
/// scheduler work — see [`fig19_report`]).
#[derive(Debug, Clone)]
pub struct FctPoint {
    /// Offered load fraction.
    pub load: f64,
    /// Average normalized FCT, (0, 100 kB] flows.
    pub avg_small: f64,
    /// 99th-percentile normalized FCT, (0, 100 kB] flows.
    pub p99_small: f64,
    /// Average normalized FCT, (10 MB, ∞) flows.
    pub avg_large: f64,
    /// Simulation events processed.
    pub events: u64,
    /// Wall-clock seconds of the run.
    pub wall_secs: f64,
}

impl FctPoint {
    /// Event-loop throughput in million events per second.
    pub fn mev_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs / 1e6
    }
}

/// One Figure 19 sweep: runs a system over the given loads on an explicit
/// scheduler backend, timing each point.
pub fn pfabric_fct_sweep(
    system: System,
    topo: Topology,
    loads: &[f64],
    flows: usize,
    seed: u64,
    backend: SchedulerBackend,
) -> Vec<FctPoint> {
    loads
        .iter()
        .map(|&load| {
            let t = Instant::now();
            let r = run_with(SimConfig::new(topo, system, load, flows, seed), backend);
            FctPoint {
                load,
                avg_small: r.summary.avg_small.unwrap_or(f64::NAN),
                p99_small: r.summary.p99_small.unwrap_or(f64::NAN),
                avg_large: r.summary.avg_large.unwrap_or(f64::NAN),
                events: r.counters.events,
                wall_secs: t.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

/// The Figure 19 claim quoted by the binary banner and EXPERIMENTS.md.
pub const FIG19_PAPER_CLAIM: &str = "\"approximation has minimal effect on overall network \
     behavior\" — the two pFabric series should track each other and beat DCTCP on small-flow \
     FCT (§5.2, Figure 19).";

/// Scale knobs of the Figure 19 harness, so tests drive miniatures of the
/// exact code path the binary records.
#[derive(Debug, Clone)]
pub struct Fig19Scale {
    /// Load sweep points.
    pub loads: Vec<f64>,
    /// Flow arrivals per point.
    pub flows: usize,
    /// Use the paper's 144-host fabric instead of the scaled 32-host one.
    pub paper_topo: bool,
}

impl Fig19Scale {
    /// Scale chosen from the shared `--quick` flag and a `--paper` request.
    pub fn from_args(args: &BenchArgs, paper_topo: bool) -> Self {
        Fig19Scale {
            loads: if args.quick {
                vec![0.2, 0.4, 0.6]
            } else {
                vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
            },
            flows: if args.quick { 200 } else { 1_000 },
            paper_topo,
        }
    }

    /// Miniature for integration tests.
    pub fn tiny() -> Self {
        Fig19Scale {
            loads: vec![0.3, 0.6],
            flows: 30,
            paper_topo: false,
        }
    }
}

/// Builds the complete Figure 19 report: the paper's three normalized-FCT
/// panels (DCTCP vs pFabric vs pFabric-Approx across load), plus two
/// event-loop panels — per-system events-per-second on the FFS-wheel
/// scheduler, and a heap-vs-wheel backend comparison at the highest load
/// (the runner-level counter pairing the `event_scheduler` criterion
/// microbench).
pub fn fig19_report(args: &BenchArgs, scale: &Fig19Scale) -> BenchReport {
    let topo = if scale.paper_topo {
        Topology::paper()
    } else {
        Topology::small()
    };
    let mut r = BenchReport::new(
        "fig19_pfabric_fct",
        "Figure 19",
        "normalized FCT vs load (web-search workload)",
        args,
    );
    r.paper_claim(FIG19_PAPER_CLAIM);
    r.config_num("hosts", topo.hosts() as f64);
    r.config_num("flows_per_point", scale.flows as f64);
    r.config_str(
        "topology",
        if scale.paper_topo {
            "paper (144-host)"
        } else {
            "small (32-host)"
        },
    );
    r.config_str("scheduler", "eiffel_sim::BucketedEventQueue (FFS wheel)");

    let systems = [
        ("DCTCP", System::Dctcp),
        ("pFabric", System::PfabricExact),
        ("pFabric-Approx", System::PfabricApprox),
    ];
    let mut sweeps = Vec::new();
    for (name, sys) in systems {
        let rows = pfabric_fct_sweep(
            sys,
            topo,
            &scale.loads,
            scale.flows,
            0xF19,
            SchedulerBackend::FfsWheel,
        );
        sweeps.push((name, rows));
    }
    type Panel = (&'static str, fn(&FctPoint) -> f64);
    let panels: [Panel; 3] = [
        ("Average NFCT, flows (0, 100kB]", |p| p.avg_small),
        ("99th percentile NFCT, flows (0, 100kB]", |p| p.p99_small),
        ("Average NFCT, flows (10MB, inf)", |p| p.avg_large),
    ];
    for (panel, pick) in panels {
        let mut sw = Sweep::new(panel, "load");
        for (name, _) in &sweeps {
            sw.add_series(*name, "normalized FCT", 2);
        }
        for (li, &load) in scale.loads.iter().enumerate() {
            let row: Vec<f64> = sweeps.iter().map(|(_, sweep)| pick(&sweep[li])).collect();
            sw.push_row(load, &row);
        }
        r.push_sweep(sw);
    }
    // Event-loop throughput: the runner-level counter for the scheduler
    // and frame-path optimization work.
    let mut sw = Sweep::new("dcsim event-loop throughput (FFS-wheel scheduler)", "load");
    for (name, _) in &sweeps {
        sw.add_series(*name, "Mev/s", 2);
    }
    for (li, &load) in scale.loads.iter().enumerate() {
        let row: Vec<f64> = sweeps
            .iter()
            .map(|(_, sweep)| sweep[li].mev_per_sec())
            .collect();
        sw.push_row(load, &row);
    }
    r.push_sweep(sw);
    // Backend comparison at the highest load: same simulation, binary-heap
    // event queue vs the FFS-bucketed wheel. Event sequences are
    // deterministic and identical across backends (asserted here).
    let &cmp_load = scale.loads.last().expect("at least one load");
    let mut sw = Sweep::new(
        format!("event scheduler backend comparison (pFabric, load {cmp_load})"),
        "backend",
    );
    sw.add_series("wall time", "s", 3);
    sw.add_series("event rate", "Mev/s", 2);
    let mut event_counts = Vec::new();
    for (label, backend) in [
        ("BinaryHeap baseline", SchedulerBackend::BinaryHeap),
        ("FFS wheel", SchedulerBackend::FfsWheel),
    ] {
        let p = pfabric_fct_sweep(
            System::PfabricExact,
            topo,
            &[cmp_load],
            scale.flows,
            0xF19,
            backend,
        );
        event_counts.push(p[0].events);
        sw.push_row(label, &[p[0].wall_secs, p[0].mev_per_sec()]);
    }
    assert_eq!(
        event_counts[0], event_counts[1],
        "backends must run bit-identical simulations"
    );
    r.push_sweep(sw);
    r.note(format!(
        "Backend comparison processed identical event sequences ({} events) — the wheel \
         changes wall time only, never results.",
        event_counts[0]
    ));
    r
}

/// Scale knobs of the Figure 10 harness (CPU breakdown CDFs).
#[derive(Debug, Clone)]
pub struct Fig10Scale {
    /// Scale of the virtual-clock panels (same workload as Figure 9).
    pub cdf: KernelShapingScale,
    /// Shard (OS thread) count of the threaded panels.
    pub shards: usize,
    /// Wall-clock measurement of the threaded panels.
    pub wall: WallNanos,
}

impl Fig10Scale {
    /// Scale chosen from the shared `--quick` flag.
    pub fn from_args(args: &BenchArgs) -> Self {
        Fig10Scale {
            cdf: if args.quick {
                KernelShapingScale::quick()
            } else {
                KernelShapingScale::default_scale()
            },
            shards: 2,
            wall: WallNanos::from_millis(if args.quick { 250 } else { 1_200 }),
        }
    }

    /// Miniature for integration tests.
    pub fn tiny() -> Self {
        Fig10Scale {
            cdf: KernelShapingScale {
                flows: 200,
                aggregate: Rate::mbps(240),
                duration: SECOND / 10,
                bin: SECOND / 50,
            },
            shards: 2,
            wall: WallNanos::from_millis(25),
        }
    }
}

/// The Figure 10 claim quoted by the binary banner and EXPERIMENTS.md.
pub const FIG10_PAPER_CLAIM: &str = "\"the main difference is in the overhead introduced by \
     Carousel in firing timers at constant intervals while Eiffel can trigger timers exactly \
     when needed\" — the softirq share should dominate Carousel's total (§5.1.1, Figure 10).";

/// One Figure 10 panel: the system/softirq CDFs of a per-bin breakdown.
fn fig10_panel(name: String, breakdown: &[(f64, f64)]) -> Sweep {
    let mut syscores: Vec<f64> = breakdown.iter().map(|&(s, _)| s).collect();
    let mut irq: Vec<f64> = breakdown.iter().map(|&(_, i)| i).collect();
    syscores.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    irq.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let mut sw = Sweep::new(name, "CDF");
    sw.add_series("system", "cores", 4);
    sw.add_series("softirq", "cores", 4);
    for ((s, frac), (i, _)) in crate::report::cdf(&syscores, 10)
        .into_iter()
        .zip(crate::report::cdf(&irq, 10))
    {
        sw.push_row(frac, &[s, i]);
    }
    sw
}

/// Builds the complete Figure 10 report: per-system system-vs-softIRQ
/// CPU CDFs for Carousel and Eiffel, first on the virtual-clock host
/// (same workload as Figure 9), then on the threaded runtime where the
/// per-shard [`eiffel_sim::CpuMeter`]s bin real executed nanoseconds
/// along the wall clock.
pub fn fig10_report(args: &BenchArgs, scale: &Fig10Scale) -> BenchReport {
    let mut r = BenchReport::new(
        "fig10_cpu_breakdown",
        "Figure 10",
        "CPU breakdown: system vs softIRQ (CDF), Carousel vs Eiffel, virtual + threaded",
        args,
    );
    r.paper_claim(FIG10_PAPER_CLAIM);
    r.config_num("flows", scale.cdf.flows as f64);
    r.config_num("aggregate_gbps", scale.cdf.aggregate.as_bps() as f64 / 1e9);
    r.config_num("threaded_shards", scale.shards as f64);
    r.config_num("threaded_wall_ms", scale.wall.as_nanos() as f64 / 1e6);
    r.config_str(
        "method",
        "same workload as Figure 9; enqueue path = system, timer/dequeue path = softIRQ; \
         threaded panels bin real executed nanoseconds by wall time across shard threads",
    );
    let reports = kernel_shaping(&scale.cdf);
    for sys in reports.iter().filter(|sys| sys.name != "fq") {
        r.push_sweep(fig10_panel(
            format!("virtual {} (timer fires = {})", sys.name, sys.timer_fires),
            &sys.breakdown,
        ));
    }
    let host = HostConfig {
        flows: scale.cdf.flows,
        aggregate: scale.cdf.aggregate,
        duration: 2 * SECOND, // ignored by the threaded runtime
        bin: (scale.wall.as_nanos() / 20).max(1),
        tsq_budget: 2,
        batch: 1,
    };
    let cfg = ThreadedConfig::timed(scale.shards, host, scale.wall);
    let threaded = [
        run_threaded(|_| CarouselQdisc::new(1 << 20, 2_000), &cfg),
        run_threaded(|_| EiffelQdisc::paper_config(), &cfg),
    ];
    for rep in &threaded {
        r.push_sweep(fig10_panel(
            format!(
                "threaded wall clock {} ({} shards, timer fires = {})",
                rep.name, scale.shards, rep.timer_fires
            ),
            &rep.breakdown,
        ));
    }
    r.note(
        "Virtual panels meter data-structure work into virtual-time bins on the simulated \
         host; threaded panels sum the per-shard wall-clock meters of the real OS-thread \
         runtime. Both attribute the enqueue path to \"system\" and the timer/dequeue path \
         to \"softirq\", with the same modelled IRQ/lock constants, so the Carousel-vs-Eiffel \
         softirq gap is comparable across clocks.",
    );
    r
}

/// Scale knobs of the Figure 16 harness (drain Mpps vs packets/bucket).
#[derive(Debug, Clone)]
pub struct Fig16Scale {
    /// Bucket counts, one sweep panel each (paper: 5k and 10k).
    pub nbs: Vec<usize>,
    /// Packets-per-bucket sweep points.
    pub ppbs: Vec<usize>,
    /// Measurement budget per cell.
    pub budget: Duration,
    /// Additional per-`nb` panel draining through `dequeue_batch(n)`
    /// (`None` disables it).
    pub batch_panel: Option<usize>,
    /// Oracle-audited drain rounds behind the quality panels.
    pub quality_rounds: usize,
}

impl Fig16Scale {
    /// Scale chosen from the shared `--quick` flag.
    pub fn from_args(args: &BenchArgs) -> Self {
        Fig16Scale {
            nbs: vec![5_000, 10_000],
            ppbs: vec![1, 2, 4, 6, 8],
            budget: Duration::from_millis(if args.quick { 50 } else { 400 }),
            batch_panel: Some(16),
            quality_rounds: if args.quick { 2 } else { 6 },
        }
    }

    /// Miniature for integration tests.
    pub fn tiny() -> Self {
        Fig16Scale {
            nbs: vec![512],
            ppbs: vec![1, 2],
            budget: Duration::from_millis(8),
            batch_panel: Some(8),
            quality_rounds: 2,
        }
    }
}

/// The Figure 16 claim quoted by the binary banner and EXPERIMENTS.md.
pub const FIG16_PAPER_CLAIM: &str = "at few packets per bucket the approximate queue leads (up \
     to 9% over cFFS at 10k buckets); more packets per bucket amortize the min-find and the \
     queues converge; BH trails throughout (§5.2, Figure 16).";

/// The bake-off field the §5.2 figures sweep: the paper's three contenders
/// in figure-legend order, then the SP-PIFO and RIFO related-work backends
/// (integer-only adaptive mappings; see PAPERS.md).
const BAKEOFF_CONTENDERS: [QueueUnderTest; 5] = [
    QueueUnderTest::Approx,
    QueueUnderTest::Cffs,
    QueueUnderTest::BucketHeap,
    QueueUnderTest::SpPifo,
    QueueUnderTest::Rifo,
];

/// A drain-quality sweep skeleton: per contender, average rank error in
/// buckets, then inverted-pop fraction, in [`BAKEOFF_CONTENDERS`] order.
fn quality_sweep(name: String, param: &str) -> Sweep {
    let mut sw = Sweep::new(name, param);
    for kind in BAKEOFF_CONTENDERS {
        sw.add_series(format!("{} rank err", kind.name()), "buckets", 2);
    }
    for kind in BAKEOFF_CONTENDERS {
        sw.add_series(format!("{} inv/pop", kind.name()), "fraction", 3);
    }
    sw
}

/// One row of a [`quality_sweep`]: oracle-audited drain of the given fill
/// for every contender, error columns first, inversion columns after.
fn quality_row(
    nb: usize,
    pattern: FillPattern,
    fill: usize,
    ppb: usize,
    rounds: usize,
    seed: u64,
) -> Vec<f64> {
    let reps: Vec<OracleReport> = BAKEOFF_CONTENDERS
        .into_iter()
        .map(|kind| drain_quality(kind, nb, pattern, fill, ppb, rounds, seed))
        .collect();
    reps.iter()
        .map(OracleReport::avg_rank_error)
        .chain(reps.iter().map(OracleReport::inversion_frac))
        .collect()
}

/// The note every quality panel travels with.
const QUALITY_NOTE: &str = "Quality panels are untimed: each cell refills the queue and drains \
     it fully under an ideal-PIFO oracle audit. \"rank err\" is the mean gap between the \
     dequeued rank and the true minimum at that pop; \"inv/pop\" is the fraction of pops that \
     jumped ahead of a smaller rank dequeued later. Exact backends score zero on both; SP-PIFO \
     and RIFO trade these bounded errors for integer-only adaptive mappings.";

/// Builds the complete Figure 16 report: per bucket count, drain Mpps vs
/// packets/bucket for the five bake-off contenders plus the approximate
/// queue's estimator hit rate, (optionally) a batched-dequeue panel
/// showing what `dequeue_batch` amortization is worth on the same fill,
/// and an oracle-audited drain-quality panel scoring each backend's rank
/// errors and inversions on that fill.
pub fn fig16_report(args: &BenchArgs, scale: &Fig16Scale) -> BenchReport {
    let mut r = BenchReport::new(
        "fig16_packets_per_bucket",
        "Figure 16",
        "drain Mpps vs packets/bucket (pre-filled queue fully drained; drain phase timed)",
        args,
    );
    r.paper_claim(FIG16_PAPER_CLAIM);
    r.config_num("budget_ms_per_cell", scale.budget.as_millis() as f64);
    r.config_num("quality_rounds", scale.quality_rounds as f64);
    r.config_str("ppb_sweep", format!("{:?}", scale.ppbs));
    for &nb in &scale.nbs {
        let mut sw = Sweep::new(format!("{nb} buckets"), "pkts/bucket");
        for kind in BAKEOFF_CONTENDERS {
            sw.add_series(kind.name(), "Mpps", 2);
        }
        sw.add_series("Approx est. hit rate", "fraction", 3);
        for &ppb in &scale.ppbs {
            let mut row = Vec::new();
            let mut hit_rate = 0.0;
            for kind in BAKEOFF_CONTENDERS {
                let res = drain_rate_packets_per_bucket(kind, nb, ppb, 1, scale.budget);
                if kind == QueueUnderTest::Approx {
                    hit_rate = res.hit_rate;
                }
                row.push(res.mpps);
            }
            row.push(hit_rate);
            sw.push_row(ppb, &row);
        }
        r.push_sweep(sw);
    }
    if let Some(batch) = scale.batch_panel {
        for &nb in &scale.nbs {
            let mut sw = Sweep::new(
                format!("{nb} buckets, dequeue_batch({batch})"),
                "pkts/bucket",
            );
            for kind in BAKEOFF_CONTENDERS {
                sw.add_series(kind.name(), "Mpps", 2);
            }
            for &ppb in &scale.ppbs {
                let row: Vec<f64> = BAKEOFF_CONTENDERS
                    .into_iter()
                    .map(|kind| {
                        drain_rate_packets_per_bucket(kind, nb, ppb, batch, scale.budget).mpps
                    })
                    .collect();
                sw.push_row(ppb, &row);
            }
            r.push_sweep(sw);
        }
        r.note(format!(
            "The dequeue_batch({batch}) panels drain the identical fill through the batched \
             trait path (order proven identical to repeated dequeue_min by property test); \
             SP-PIFO and RIFO bring their own bucket-local batch loops, BH falls back to \
             repeated dequeue_min."
        ));
    }
    for &nb in &scale.nbs {
        let mut sw = quality_sweep(format!("{nb} buckets, drain quality"), "pkts/bucket");
        for &ppb in &scale.ppbs {
            let row = quality_row(nb, FillPattern::Dense, nb, ppb, scale.quality_rounds, 0xF16);
            sw.push_row(ppb, &row);
        }
        r.push_sweep(sw);
    }
    r.note(QUALITY_NOTE);
    r
}

/// Scale knobs of the Figure 17 harness (drain Mpps vs occupancy).
#[derive(Debug, Clone)]
pub struct Fig17Scale {
    /// Bucket counts, one group of panels each (paper: 5k and 10k).
    pub nbs: Vec<usize>,
    /// Occupancy sweep points (fraction of non-empty buckets).
    pub occupancies: Vec<f64>,
    /// Fill shapes; `Sparse` is the paper-comparable one.
    pub patterns: Vec<FillPattern>,
    /// Measurement budget per cell.
    pub budget: Duration,
}

impl Fig17Scale {
    /// Scale chosen from the shared `--quick` flag.
    pub fn from_args(args: &BenchArgs) -> Self {
        Fig17Scale {
            nbs: vec![5_000, 10_000],
            occupancies: vec![0.5, 0.7, 0.8, 0.9, 0.99],
            patterns: vec![
                FillPattern::Sparse,
                FillPattern::Dense,
                FillPattern::Clustered,
            ],
            budget: Duration::from_millis(if args.quick { 50 } else { 400 }),
        }
    }

    /// Miniature for integration tests.
    pub fn tiny() -> Self {
        Fig17Scale {
            nbs: vec![512],
            occupancies: vec![0.7, 0.99],
            patterns: vec![FillPattern::Sparse, FillPattern::Dense],
            budget: Duration::from_millis(8),
        }
    }
}

/// The Figure 17 claim quoted by the binary banner and EXPERIMENTS.md.
pub const FIG17_PAPER_CLAIM: &str = "empty buckets trigger the approximate queue's linear \
     search, so its throughput climbs with occupancy; cFFS is insensitive (§5.2, Figure 17).";

/// Builds the complete Figure 17 report: one panel per `(bucket count,
/// fill pattern)` sweeping occupancy for the five bake-off contenders
/// plus the approximate queue's estimator hit rate.
pub fn fig17_report(args: &BenchArgs, scale: &Fig17Scale) -> BenchReport {
    let contenders = BAKEOFF_CONTENDERS;
    let mut r = BenchReport::new(
        "fig17_occupancy",
        "Figure 17",
        "drain Mpps vs occupancy (each occupied bucket holds one packet; drain phase timed)",
        args,
    );
    r.paper_claim(FIG17_PAPER_CLAIM);
    r.config_num("budget_ms_per_cell", scale.budget.as_millis() as f64);
    r.config_str(
        "patterns",
        scale
            .patterns
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", "),
    );
    let mut fill_order = FillOrder::new();
    for &nb in &scale.nbs {
        for &pattern in &scale.patterns {
            let mut sw = Sweep::new(
                format!("{nb} buckets, {} fill", pattern.name()),
                "occupancy",
            );
            for kind in contenders {
                sw.add_series(kind.name(), "Mpps", 2);
            }
            sw.add_series("Approx est. hit rate", "fraction", 3);
            for &occ in &scale.occupancies {
                let mut row = Vec::new();
                let mut hit_rate = 0.0;
                for kind in contenders {
                    let res =
                        drain_rate_occupancy(kind, nb, occ, pattern, &mut fill_order, scale.budget);
                    if kind == QueueUnderTest::Approx {
                        hit_rate = res.hit_rate;
                    }
                    row.push(res.mpps);
                }
                row.push(hit_rate);
                sw.push_row(occ, &row);
            }
            r.push_sweep(sw);
        }
    }
    r.note(
        "The sparse panels are the paper-comparable fill (random occupied subset); dense and \
         clustered bound the approximate queue's best and structured cases. The hit-rate series \
         is the fraction of min-lookups answered without the fallback search. SP-PIFO and RIFO \
         are approximate too — their ordering error is scored in the Figure 16/18 quality \
         panels, not here.",
    );
    r
}

/// Scale knobs of the Figure 18 harness (estimator error and drain
/// quality vs occupancy).
#[derive(Debug, Clone)]
pub struct Fig18Scale {
    /// Bucket counts (paper: 5k and 10k).
    pub nbs: Vec<usize>,
    /// Occupancy sweep points.
    pub occupancies: Vec<f64>,
    /// Estimator-error probe rounds per cell.
    pub rounds: usize,
    /// Oracle-audited drain rounds behind the quality panels.
    pub quality_rounds: usize,
}

impl Fig18Scale {
    /// Scale chosen from the shared `--quick` flag.
    pub fn from_args(args: &BenchArgs) -> Self {
        Fig18Scale {
            nbs: vec![5_000, 10_000],
            occupancies: vec![0.7, 0.8, 0.9, 0.99],
            rounds: if args.quick { 8 } else { 48 },
            quality_rounds: if args.quick { 2 } else { 6 },
        }
    }

    /// Miniature for integration tests.
    pub fn tiny() -> Self {
        Fig18Scale {
            nbs: vec![512],
            occupancies: vec![0.7, 0.99],
            rounds: 2,
            quality_rounds: 2,
        }
    }
}

/// The Figure 18 claim quoted by the binary banner and EXPERIMENTS.md.
pub const FIG18_PAPER_CLAIM: &str = "error grows as buckets empty (≈12 at 0.7 occupancy down \
     to ≈2 near full for 10k buckets); \"cases where the queue is more than 30% empty should \
     trigger changes in the queue's granularity\" (§5.2, Figure 18).";

/// Human-friendly bucket-count label: `5000` → "5k buckets".
fn nb_label(nb: usize) -> String {
    if nb >= 1_000 && nb % 1_000 == 0 {
        format!("{}k buckets", nb / 1_000)
    } else {
        format!("{nb} buckets")
    }
}

/// Builds the complete Figure 18 report: the paper's estimator-error
/// panel (average bucket-index error of the approximate queue's min
/// lookup vs occupancy) plus per-bucket-count oracle-audited quality
/// panels scoring all five bake-off backends on the same sparse fill.
pub fn fig18_report(args: &BenchArgs, scale: &Fig18Scale) -> BenchReport {
    let mut r = BenchReport::new(
        "fig18_approx_error",
        "Figure 18",
        "approximate-queue estimator error and five-way drain quality vs occupancy",
        args,
    );
    r.paper_claim(FIG18_PAPER_CLAIM);
    r.config_num("rounds", scale.rounds as f64);
    r.config_num("quality_rounds", scale.quality_rounds as f64);
    r.config_str(
        "method",
        "error = |selected bucket − true best bucket| per lookup, exact shadow tracked",
    );
    let mut sw = Sweep::new("estimator bucket-index error", "occupancy");
    for &nb in &scale.nbs {
        sw.add_series(nb_label(nb), "avg bucket-index error", 2);
    }
    for &occ in &scale.occupancies {
        let row: Vec<f64> = scale
            .nbs
            .iter()
            .map(|&nb| approx_error_at_occupancy(nb, occ, scale.rounds, 0xF18))
            .collect();
        sw.push_row(occ, &row);
    }
    r.push_sweep(sw);
    for &nb in &scale.nbs {
        let mut sw = quality_sweep(
            format!("{}, sparse drain quality", nb_label(nb)),
            "occupancy",
        );
        for &occ in &scale.occupancies {
            let fill = ((nb as f64 * occ) as usize).clamp(1, nb);
            let row = quality_row(
                nb,
                FillPattern::Sparse,
                fill,
                1,
                scale.quality_rounds,
                0xF18,
            );
            sw.push_row(occ, &row);
        }
        r.push_sweep(sw);
    }
    r.note(QUALITY_NOTE);
    r
}

/// Table 1 rows, tied to the implementations in this workspace.
pub fn table1_rows() -> Vec<Vec<String>> {
    let row = |sys: &str,
               eff: &str,
               hw: &str,
               unit: &str,
               wc: &str,
               shaping: &str,
               prog: &str,
               notes: &str| {
        vec![sys, eff, hw, unit, wc, shaping, prog, notes]
            .into_iter()
            .map(String::from)
            .collect()
    };
    vec![
        row(
            "FQ/pacing qdisc",
            "O(log n)",
            "SW",
            "Flows",
            "No",
            "Yes",
            "No",
            "only non-work-conserving FQ (crate eiffel-qdisc::fq)",
        ),
        row(
            "hClock",
            "O(log n)",
            "SW",
            "Flows",
            "Yes",
            "Yes",
            "No",
            "heap-based QoS (crate eiffel-bess::hclock::HClockHeap)",
        ),
        row(
            "Carousel",
            "O(1)",
            "SW",
            "Packets",
            "No",
            "Yes",
            "No",
            "timing wheel (crate eiffel-qdisc::carousel)",
        ),
        row(
            "OpenQueue",
            "O(log n)",
            "SW",
            "Pkts+Flows",
            "Yes",
            "No",
            "enq/deq",
            "not rebuilt: no artifact; characteristics from the paper",
        ),
        row(
            "PIFO",
            "O(1)",
            "HW",
            "Packets",
            "Yes",
            "Yes",
            "enq",
            "model reimplemented in SW (crate eiffel-pifo::tree)",
        ),
        row(
            "Eiffel",
            "O(1)",
            "SW",
            "Pkts+Flows",
            "Yes",
            "Yes",
            "enq/deq",
            "this repository (eiffel-core + eiffel-pifo)",
        ),
    ]
}

// ---------------------------------------------------------------------------
// Chaos degradation (fig_chaos): fault-injected threaded runs, five ranked
// backends, graceful-degradation curves vs fault intensity.
// ---------------------------------------------------------------------------

/// The five integer backends of the chaos bake-off, labelled as in the
/// Figure 16/17/18 quality panels.
pub const CHAOS_BACKENDS: [(&str, QueueKind); 5] = [
    ("Approx", QueueKind::ApproxGradient { alpha: 64 }),
    ("cFFS", QueueKind::Cffs),
    ("BH", QueueKind::BucketHeap),
    ("SP-PIFO", QueueKind::SpPifo { queues: 32 }),
    ("RIFO", QueueKind::Rifo),
];

/// One fault family per degradation panel, every family the plan DSL has.
pub const CHAOS_FAMILIES: [FaultFamily; 5] = [
    FaultFamily::Stall,
    FaultFamily::TimerJitter,
    FaultFamily::SlowConsumer,
    FaultFamily::RingSqueeze,
    FaultFamily::CompletionLoss,
];

/// Scale of the chaos degradation experiment.
#[derive(Debug, Clone)]
pub struct ChaosScale {
    /// Flows in each cell's workload.
    pub flows: usize,
    /// Heavy-tailed per-flow packet counts: mean (Pareto, α = 1.3).
    pub mean_pkts: f64,
    /// Heavy-tail cap on one flow's packet count.
    pub cap_pkts: u64,
    /// Shard threads per run.
    pub shards: usize,
    /// Fault-storm intensities swept (0 = the fault-free baseline column).
    pub intensities: Vec<f64>,
    /// Horizon the storm scatters windows over, wall ns from run start.
    pub horizon: Nanos,
}

impl ChaosScale {
    /// Full-scale (the recorded `BENCH_chaos_degradation.json`) or
    /// `--quick` (CI / tests), same shape either way.
    pub fn from_args(args: &BenchArgs) -> Self {
        if args.quick {
            ChaosScale {
                flows: 96,
                mean_pkts: 25.0,
                cap_pkts: 100,
                shards: 2,
                intensities: vec![0.0, 0.5, 1.0],
                horizon: 20_000_000,
            }
        } else {
            ChaosScale {
                flows: 512,
                mean_pkts: 100.0,
                cap_pkts: 400,
                shards: 4,
                intensities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
                horizon: 40_000_000,
            }
        }
    }

    /// Miniature for tests: the full report path in a couple of seconds.
    pub fn tiny() -> Self {
        ChaosScale {
            flows: 12,
            mean_pkts: 5.0,
            cap_pkts: 20,
            shards: 2,
            intensities: vec![0.0, 1.0],
            horizon: 4_000_000,
        }
    }
}

/// Aggregate outcome of one chaos cell.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Packets released per wall second, millions.
    pub mpps: f64,
    /// Transmit-weighted mean in-qdisc sojourn, µs.
    pub mean_sojourn_us: f64,
    /// Admission drops + evictions per 1 000 emitted packets.
    pub shed_per_k: f64,
    /// The full report, for totals and notes.
    pub report: ThreadedReport,
}

/// Runs one (backend × family × intensity) cell: heavy-tailed incast
/// workload, seeded single-family storm, ECN-marking admission, watchdog
/// on — then asserts packet conservation on the result (in release builds
/// too; the runtime's own `debug_assert` only guards dev runs).
pub fn chaos_cell(
    kind: QueueKind,
    scale: &ChaosScale,
    family: FaultFamily,
    intensity: f64,
) -> ChaosCell {
    let flows = scale.flows;
    let host = HostConfig {
        flows,
        // Sizes the producer's pacing gap (60 µs/flow); the ranked qdiscs
        // are work-conserving, so this sets the *offered* load — high
        // enough that a slowed or resuming shard falls behind its arrivals,
        // backlog piles toward the TSQ bound, and the admission cap binds.
        aggregate: Rate::mbps(200 * flows as u64),
        duration: SECOND, // ignored by threaded runs
        bin: SECOND / 20,
        tsq_budget: 4,
        batch: 16,
    };
    let mut cfg = ThreadedConfig::finite(scale.shards, host, 1);
    let seed = 0x00c4_a05e ^ ((family as u64) << 8) ^ (intensity * 100.0) as u64;
    cfg.pkts_override = Some(heavy_tailed_pkts(
        flows,
        scale.mean_pkts,
        1.3,
        scale.cap_pkts,
        seed,
    ));
    // Incast: flows arrive in 8 synchronized waves across the horizon.
    cfg.starts = Some(incast_starts(flows, flows.div_ceil(8), scale.horizon / 8));
    cfg.chaos.plan = FaultPlan::storm(seed, scale.shards, scale.horizon, intensity, &[family]);
    // Cap at an eighth of a shard's worst-case TSQ-bounded backlog: when
    // the consumer keeps up, flows self-clock near one packet in flight
    // and incast waves fit under it, but the backlog piling up behind a
    // stalled or slowed shard does not — shedding grows with intensity.
    let cap = (flows * cfg.host.tsq_budget as usize / scale.shards / 8).max(8);
    cfg.chaos.admit = AdmitPolicy::EcnMark {
        cap,
        mark_at: cap / 4,
    };
    cfg.chaos.watchdog = Some(WatchdogConfig::default());

    let pattern = RankPattern::Uniform { max: 4_095, seed };
    let qcfg = QueueConfig::new(4_096, 1, 0);
    let r = run_threaded(|_| RankedShaperQdisc::new(kind, qcfg, pattern), &cfg);

    // Conservation is the headline robustness claim: every cell is
    // audited, not just the debug test runs.
    assert_eq!(r.chaos.final_unaccounted, 0, "conservation: {:?}", r.chaos);
    assert_eq!(
        r.emitted,
        r.transmitted + r.chaos.admission_dropped + r.chaos.evicted + r.chaos.ring_residue,
        "emitted packets must split exactly into released + shed"
    );
    assert!(!r.timed_out, "no fault plan may wedge the runtime");

    let tx: u64 = r.transmitted.max(1);
    let sojourn_ns = r
        .per_shard
        .iter()
        .map(|s| s.mean_latency_ns * s.transmitted as f64)
        .sum::<f64>()
        / tx as f64;
    ChaosCell {
        mpps: r.transmitted as f64 / r.wall_elapsed.as_secs_f64().max(1e-9) / 1e6,
        mean_sojourn_us: sojourn_ns / 1e3,
        shed_per_k: (r.chaos.admission_dropped + r.chaos.evicted) as f64 * 1e3
            / r.emitted.max(1) as f64,
        report: r,
    }
}

/// Rank-adversarial drain quality at the queue level: `rounds` rounds of
/// fill-`n`-then-drain with ranks from `pattern`, audited by the PIFO
/// oracle. Flows fill in *blocks* (flow 0's packets, then flow 1's, …) so
/// a per-flow ramp pattern arrives as a sawtooth: each flow boundary is a
/// large rank drop into queues whose SP-PIFO bounds the previous ramp
/// just pushed up — the classic adversarial arrival order. Exact backends
/// drain a fill-then-drain script perfectly whatever the arrival order.
pub fn adversarial_quality(
    kind: QueueKind,
    pattern: RankPattern,
    flows: usize,
    n: usize,
    rounds: usize,
) -> OracleReport {
    let qcfg = QueueConfig::new(4_096, 1, 0);
    let mut total = OracleReport {
        pops: 0,
        inversions: 0,
        max_inversion: 0,
        rank_error_sum: 0,
        max_rank_error: 0,
    };
    let mut seq = vec![0u64; flows];
    for _ in 0..rounds {
        let mut q = kind.build_send(qcfg);
        let mut audit = OracleAudit::new();
        for i in 0..n {
            let flow = (i * flows / n).min(flows - 1);
            let rank = pattern.rank(flow as u32, seq[flow]).min(4_095);
            seq[flow] += 1;
            q.enqueue(rank, Packet::mtu(i as u64, flow as u32, 0))
                .unwrap_or_else(|_| unreachable!("ranks are clamped to the queue range"));
            audit.on_enqueue(rank);
        }
        while let Some((r, _)) = q.dequeue_min() {
            audit.on_dequeue(r);
        }
        assert!(audit.is_empty(), "{kind:?} lost elements");
        let rep = audit.finish();
        total.pops += rep.pops;
        total.inversions += rep.inversions;
        total.max_inversion = total.max_inversion.max(rep.max_inversion);
        total.rank_error_sum += rep.rank_error_sum;
        total.max_rank_error = total.max_rank_error.max(rep.max_rank_error);
    }
    total
}

/// The full `fig_chaos` report: one degradation sweep per fault family
/// (throughput / sojourn / shed-rate vs storm intensity, five backends)
/// plus the rank-adversarial quality table.
pub fn fig_chaos_report(args: &BenchArgs, scale: &ChaosScale) -> BenchReport {
    let mut r = BenchReport::new(
        "fig_chaos_degradation",
        "Chaos degradation",
        "Fault-injected threaded runtime: graceful degradation and recovery across five ranked \
         backends under seeded fault storms",
        args,
    );
    r.paper_claim(
        "Robustness counterpart to the paper's efficiency claims: the sharded end-host runtime \
         (§5.1 deployment shape) must degrade gracefully — shed load by policy, detect and fail \
         over stalled shards, reconcile lost completions — while conserving every packet.",
    );
    r.config_num("flows", scale.flows as f64);
    r.config_num("mean_pkts", scale.mean_pkts);
    r.config_num("shards", scale.shards as f64);
    r.config_num("storm_horizon_ms", scale.horizon as f64 / 1e6);
    r.config_str("intensities", format!("{:?}", scale.intensities));
    r.config_str(
        "method",
        "Per cell: heavy-tailed (Pareto α=1.3) incast workload through the threaded runtime with \
         a seeded single-family fault storm, ECN-marking admission (cap = flows·tsq/shards/8, \
         mark at cap/4), watchdog failover + completion reconciliation on. Every cell asserts \
         emitted = released + shed (admission drops + evictions) with zero unaccounted packets.",
    );

    let mut totals = ChaosReportTotals::default();
    let mut showcase: Option<ThreadedReport> = None;
    for family in CHAOS_FAMILIES {
        let mut sw = Sweep::new(
            format!(
                "{} degradation (storm intensity 0 = fault-free)",
                family.label()
            ),
            "intensity",
        );
        for (name, _) in CHAOS_BACKENDS {
            sw.add_series(format!("{name} Mpps"), "Mpps", 3);
            sw.add_series(format!("{name} sojourn"), "us", 1);
            sw.add_series(format!("{name} shed"), "per-1k", 2);
        }
        for &intensity in &scale.intensities {
            let mut row = Vec::with_capacity(CHAOS_BACKENDS.len() * 3);
            for (name, kind) in CHAOS_BACKENDS {
                let cell = chaos_cell(kind, scale, family, intensity);
                row.extend([cell.mpps, cell.mean_sojourn_us, cell.shed_per_k]);
                totals.absorb(&cell.report);
                // The per-shard observability slice: one representative
                // cell (cFFS under the hardest stall storm) recorded in
                // full per-core detail.
                if matches!(family, FaultFamily::Stall)
                    && name == "cFFS"
                    && Some(&intensity) == scale.intensities.last()
                {
                    showcase = Some(cell.report.clone());
                }
            }
            sw.push_row(intensity, &row);
        }
        r.push_sweep(sw);
    }
    if let Some(rep) = &showcase {
        r.push_table(per_shard_counters_table(
            "per-shard counters (cFFS, stall storm, max intensity)",
            rep,
        ));
    }

    // Quality under the rank adversary: exact backends stay exact; the
    // approximate mappers' error envelopes are recorded (and pinned by
    // the regression test at this exact call shape).
    let adv = RankPattern::SpPifoAdversarial {
        max: 4_000,
        period: 64,
    };
    let mut t = TextTable::new(
        "rank-adversarial drain quality (SP-PIFO ramp attack)",
        &["backend", "pops", "inv/pop", "avg rank err", "max inv"],
    );
    for (name, kind) in CHAOS_BACKENDS {
        let rep = adversarial_quality(kind, adv, 32, 2_048, 4);
        t.rows.push(vec![
            name.to_string(),
            rep.pops.to_string(),
            format!("{:.4}", rep.inversions as f64 / rep.pops.max(1) as f64),
            format!("{:.3}", rep.rank_error_sum as f64 / rep.pops.max(1) as f64),
            rep.max_inversion.to_string(),
        ]);
    }
    r.push_table(t);

    r.note(format!(
        "Conservation audited on every cell: {} packets emitted across {} runs, all accounted \
         (released {}, admission-dropped {}, evicted {}, {} ECN-marked on admission); zero \
         unaccounted.",
        totals.emitted,
        totals.cells,
        totals.transmitted,
        totals.admission_dropped,
        totals.evicted,
        totals.ecn_marked
    ));
    r.note(format!(
        "Fault handling totals: {} stalls detected, {} recoveries, {} packets redirected, {} \
         completions lost on the wire and {} reconciled, {} ring-full producer backoffs.",
        totals.stalls_detected,
        totals.recoveries,
        totals.redirected,
        totals.completions_lost,
        totals.completions_recovered,
        totals.ring_full_retries
    ));
    r.note(
        "Caveats: ECN marks are recorded as a signal only (no TCP feedback loop closes on them); \
         the virtual-clock runtime treats CompletionLoss as a no-op (no wire) and RingSqueeze \
         only binds there when combined with stalls; failover trades per-flow ordering for \
         liveness while a shard is suspect (see DESIGN.md).",
    );
    r
}

/// Sums the fault-handling counters across every cell of the report.
#[derive(Debug, Clone, Copy, Default)]
struct ChaosReportTotals {
    cells: u64,
    emitted: u64,
    transmitted: u64,
    admission_dropped: u64,
    ecn_marked: u64,
    evicted: u64,
    stalls_detected: u64,
    recoveries: u64,
    redirected: u64,
    completions_lost: u64,
    completions_recovered: u64,
    ring_full_retries: u64,
}

impl ChaosReportTotals {
    fn absorb(&mut self, r: &ThreadedReport) {
        self.cells += 1;
        self.emitted += r.emitted;
        self.transmitted += r.transmitted;
        self.admission_dropped += r.chaos.admission_dropped;
        self.ecn_marked += r.chaos.ecn_marked;
        self.evicted += r.chaos.evicted;
        self.stalls_detected += r.chaos.stalls_detected;
        self.recoveries += r.chaos.recoveries;
        self.redirected += r.chaos.redirected;
        self.completions_lost += r.chaos.completions_lost;
        self.completions_recovered += r.chaos.completions_recovered;
        self.ring_full_retries += r.ring_full_retries;
    }
}

// ---------------------------------------------------------------------------
// Overload control (fig_overload): ECN-reactive closed-loop sources vs
// open-loop sources at up to millions of flows through the threaded
// runtime, under a hard memory budget with tiered graceful degradation.
// ---------------------------------------------------------------------------

/// Scale of the overload-control experiment.
#[derive(Debug, Clone)]
pub struct OverloadScale {
    /// Flow counts swept (the overload axis).
    pub flow_grid: Vec<usize>,
    /// Flows in the uncongested baseline cell that defines the SLO and
    /// the reference goodput.
    pub baseline_flows: usize,
    /// Shard threads per run.
    pub shards: usize,
    /// Trace-shaped per-flow packet cap.
    pub cap_pkts: u64,
    /// Offered per-flow source rate, kbit/s. Multiplied by the flow
    /// count this is the offered load — past `capacity` the overload is
    /// real, not simulated.
    pub per_flow_kbps: u64,
    /// Fixed shaped drain capacity of the host — the bottleneck every
    /// cell shares, independent of how many flows offer load into it.
    pub capacity: Rate,
    /// Wall-clock budget per cell; overload cells end mid-stream by
    /// design (`timed_out` is expected there).
    pub wall: WallNanos,
    /// Hard memory budget every cell charges flow setups and packet
    /// slabs against.
    pub budget_bytes: u64,
    /// ECN admission hard cap (per shard, packets).
    pub admit_cap: usize,
    /// ECN admission mark threshold (per shard, packets).
    pub mark_at: usize,
}

impl OverloadScale {
    /// Full-scale (the recorded `BENCH_overload_closed_loop.json`) or
    /// `--quick` (CI / tests), same shape either way.
    pub fn from_args(args: &BenchArgs) -> Self {
        if args.quick {
            OverloadScale {
                flow_grid: vec![256, 1_024],
                baseline_flows: 128,
                shards: 2,
                cap_pkts: 32,
                per_flow_kbps: 100_000,
                capacity: Rate::gbps(19),
                wall: WallNanos::from_millis(150),
                budget_bytes: 256 * 1024,
                admit_cap: 4_096,
                mark_at: 64,
            }
        } else {
            // Sized so the contrast is structural, not incidental: the
            // shaped drain capacity (6 Gb/s = 0.5 Mpps) sits *below*
            // what one host CPU pushes through this stack, so the
            // shaper — not scheduler contention — is the bottleneck,
            // and offered load overtakes it as the flow grid grows
            // (100 k × 300 kb/s = 30 Gb/s is already 5x). The baseline
            // (12 288 × 300 kb/s ≈ 3.7 Gb/s) offers ~60 % of capacity.
            // The budget is the concurrency limiter by design: setups
            // stop at the cell's 70 % refuse threshold, so 64 MiB
            // admits ~92 k established flows and the per-flow shaped
            // rate stays ~5 pkt/s — enough completions per flow for
            // the control loop to converge within the wall — at
            // *every* grid point, and the flow axis stresses admission
            // churn and the refuse tier instead of starving per-flow
            // feedback. The ~30 % above the refuse threshold is a
            // structural slab reserve (~10 k packets), the bufferbloat
            // bound: closed sources pace near the granted rate, so
            // stamps sit near `now` and slabs recycle in milliseconds;
            // open sources burst their TSQ window, so slabs park
            // behind hundreds-of-ms future stamps and goodput starves.
            // The admission cap binds open-loop backlog inside the
            // reserve so cap drops (the loss signal) keep firing.
            OverloadScale {
                flow_grid: vec![100_000, 1_000_000, 10_000_000],
                baseline_flows: 12_288,
                shards: 2,
                cap_pkts: 512,
                per_flow_kbps: 300,
                capacity: Rate::mbps(6_000),
                wall: WallNanos::from_secs(6),
                budget_bytes: 64 * 1024 * 1024,
                admit_cap: 2_048,
                mark_at: 256,
            }
        }
    }

    /// Miniature for tests: the full report path in about a second.
    pub fn tiny() -> Self {
        OverloadScale {
            flow_grid: vec![128, 384],
            baseline_flows: 64,
            shards: 2,
            cap_pkts: 16,
            per_flow_kbps: 100_000,
            capacity: Rate::gbps(10),
            wall: WallNanos::from_millis(80),
            budget_bytes: 128 * 1024,
            admit_cap: 2_048,
            mark_at: 48,
        }
    }
}

/// Aggregate outcome of one overload cell.
#[derive(Debug, Clone)]
pub struct OverloadCell {
    /// Packets released per wall second, millions.
    pub goodput_mpps: f64,
    /// p99 in-qdisc sojourn, ms (merged across shards).
    pub p99_ms: f64,
    /// Merged sojourn histogram (for SLO-goodput at any threshold).
    pub sojourn: SojournHist,
    /// Admission decisions split by memory-pressure tier, merged.
    pub tiers: TierCounters,
    /// ECN marks per 1 000 emitted packets.
    pub marked_per_k: f64,
    /// Admission drops + evictions per 1 000 emitted packets.
    pub shed_per_k: f64,
    /// Memory ledger high-water mark, MB.
    pub mem_peak_mb: f64,
    /// The full report, for totals and notes.
    pub report: ThreadedReport,
}

impl OverloadCell {
    /// Goodput counting only packets that met the latency SLO: releases
    /// whose in-qdisc sojourn was at most `slo_ns`. The overload
    /// literature's collapse metric — late deliveries are useless work.
    pub fn slo_goodput_mpps(&self, slo_ns: u64) -> f64 {
        self.goodput_mpps * self.sojourn.frac_le(slo_ns)
    }
}

/// Runs one (size mix × flow count × source mode) cell: trace-shaped
/// finite flows through the threaded runtime with ECN-marking admission
/// and a hard [`MemBudget`], then asserts conservation and the memory
/// ceiling on the result (in release builds too).
///
/// A `baseline` cell is the uncongested reference instead: paced
/// (closed-loop) sources already at full scale, with uniform per-flow
/// packet counts sized to span the wall — a *sustained* offered load
/// well under capacity, so its goodput and p99 sojourn define what the
/// host delivers when not overloaded. (Open-loop sources cannot serve
/// here: they are deliberately unpaced bulk senders, so an "uncongested"
/// open-loop cell would just measure burst drain rate.)
pub fn overload_cell(
    scale: &OverloadScale,
    dist: FlowSizeDist,
    flows: usize,
    closed: bool,
    baseline: bool,
) -> OverloadCell {
    // Overload cells run the tier ladder at 40/55/70 % instead of the
    // default 60/80/95: flow setups stop charging at the refuse
    // threshold, so whatever sits above it is a structural *slab
    // reserve*. At the defaults, establishment greed fills the ledger
    // to 95 % with setups and the drain starves on the 5 % of packet
    // slabs left over; a 30 % reserve keeps the pool deep enough that
    // slab turnover — not slab count — bounds goodput.
    const TIER_PCTS: (u64, u64, u64) = (40, 55, 70);
    // The drain is the bottleneck: the shard-side shaper splits a fixed
    // capacity per flow while sources offer `per_flow_kbps` each, so the
    // offered/shaped ratio — the overload — grows with the flow grid.
    // One wrinkle: the shaper provisions that capacity over the
    // population admission can actually *establish* (the setup budget up
    // to the refuse threshold), not the offered population — past the
    // refuse point, per-flow rate would otherwise shrink with flows the
    // budget already turned away, strangling the drain exactly when
    // admission did its job.
    let admittable = (scale.budget_bytes * TIER_PCTS.2 / 100 / FLOW_SETUP_BYTES).max(1);
    let aggregate = if flows as u64 > admittable {
        Rate::bps(scale.capacity.as_bps().saturating_mul(flows as u64) / admittable)
    } else {
        scale.capacity
    };
    let host = HostConfig {
        flows,
        aggregate,
        duration: SECOND, // ignored by threaded runs
        bin: SECOND / 20,
        tsq_budget: 4,
        batch: 16,
    };
    let dtag = match dist {
        FlowSizeDist::WebSearch => 1u64,
        FlowSizeDist::DataMining => 2u64,
    };
    let seed = 0x0d05_ed50 ^ (flows as u64) ^ (u64::from(closed) << 40) ^ (dtag << 44);
    let mut cfg = ThreadedConfig::finite(scale.shards, host, 1);
    cfg.wall_limit = scale.wall;
    // Sources offer `per_flow_kbps` each regardless of what the shaper
    // grants them — the decoupling that makes the overload real.
    cfg.offered_gap = Some(1_500 * 8 * 1_000_000_000 / (scale.per_flow_kbps * 1_000).max(1));
    cfg.chaos.admit = AdmitPolicy::EcnMark {
        cap: scale.admit_cap,
        mark_at: scale.mark_at,
    };
    if baseline {
        // Enough uniform packets per flow to pace through the whole wall.
        let per_flow_bps = scale.per_flow_kbps * 1_000;
        let wall_pkts =
            scale.wall.as_nanos() as u128 * u128::from(per_flow_bps) / (1_500 * 8 * 1_000_000_000);
        cfg.pkts_per_flow = Some(wall_pkts as u64 + 2);
        cfg.closed_loop = Some(ClosedLoopParams {
            initial_scale: SCALE_ONE,
            ..ClosedLoopParams::default()
        });
    } else {
        cfg.pkts_override = Some(trace_shaped_pkts(flows, dist, scale.cap_pkts, seed));
        if closed {
            // Per-socket shaping has no work conservation across flows:
            // a source pacing *above* its granted rate accumulates
            // clock debt the shaper never forgives (stamps ride the
            // per-socket clock, which only moves forward), so the
            // stable operating point is hovering just *under* the
            // granted wire rate. Overload cells therefore enter a notch
            // below the flow-count-invariant granted share
            // (capacity / admittable, by the provisioning rule above)
            // and climb in small additive steps, with the tight mark
            // band correcting each small overshoot before debt builds:
            // entering above the granted rate puts every long-lived
            // flow permanently in debt within the first window, and
            // large additive steps re-create that debt each cycle.
            cfg.closed_loop = Some(ClosedLoopParams {
                initial_scale: 192,
                additive: 16,
                slow_start: false,
                ..ClosedLoopParams::default()
            });
        }
    }
    let budget = Arc::new(MemBudget::with_thresholds(
        scale.budget_bytes,
        TIER_PCTS.0,
        TIER_PCTS.1,
        TIER_PCTS.2,
    ));
    cfg.mem = Some(Arc::clone(&budget));

    // The paper's shaping qdisc, not the work-conserving ranked adapter:
    // overload needs release times to honor the per-flow shaped rate so
    // the fixed drain capacity is real. 2^15 buckets of 100 µs give a
    // ~3.3 s horizon per half — past the deepest honest stamp the TSQ
    // window can reach at the thinnest per-flow rate in the sweep.
    let r = run_threaded(|_| EiffelQdisc::new(1 << 15, 100_000), &cfg);

    // The two headline robustness claims, audited on every cell: exact
    // conservation, and a memory ceiling the run can never pierce.
    assert_eq!(r.chaos.final_unaccounted, 0, "conservation: {:?}", r.chaos);
    assert!(
        r.mem_peak_bytes <= budget.budget(),
        "memory peak {} pierced the {} budget",
        r.mem_peak_bytes,
        budget.budget()
    );
    assert_eq!(budget.in_use(), 0, "the ledger's books close at zero");

    let mut sojourn = SojournHist::default();
    let mut tiers = TierCounters::default();
    for s in &r.per_shard {
        sojourn.merge(&s.sojourn);
        tiers.merge(&s.tiers);
    }
    OverloadCell {
        goodput_mpps: r.transmitted as f64 / r.wall_elapsed.as_secs_f64().max(1e-9) / 1e6,
        p99_ms: sojourn.quantile(0.99) as f64 / 1e6,
        sojourn,
        tiers,
        marked_per_k: r.chaos.ecn_marked as f64 * 1e3 / r.emitted.max(1) as f64,
        shed_per_k: (r.chaos.admission_dropped + r.chaos.evicted) as f64 * 1e3
            / r.emitted.max(1) as f64,
        mem_peak_mb: r.mem_peak_bytes as f64 / 1e6,
        report: r,
    }
}

/// Per-shard ECN/drop/shed counter table — the per-core observability
/// slice of one threaded run, as recorded in the report JSON.
pub fn per_shard_counters_table(name: &str, rep: &ThreadedReport) -> TextTable {
    let mut t = TextTable::new(
        name,
        &[
            "shard",
            "flows",
            "transmitted",
            "ecn-marked",
            "adm-dropped",
            "evicted",
            "p99 us",
            "tiers seen",
        ],
    );
    for (i, s) in rep.per_shard.iter().enumerate() {
        t.rows.push(vec![
            i.to_string(),
            s.flows.to_string(),
            s.transmitted.to_string(),
            s.ecn_marked.to_string(),
            s.admission_dropped.to_string(),
            s.evicted.to_string(),
            format!("{:.1}", s.sojourn.quantile(0.99) as f64 / 1e3),
            s.tiers.tiers_exercised().to_string(),
        ]);
    }
    t
}

/// Admission decisions split by the memory-pressure tier they were made
/// under, merged across every cell of a report.
fn tier_counters_table(merged: &TierCounters) -> TextTable {
    let mut t = TextTable::new(
        "admission decisions by memory-pressure tier (all cells)",
        &["tier", "admitted", "marked", "dropped", "shed"],
    );
    for (i, label) in ["normal", "pressure", "shed", "refuse"]
        .iter()
        .enumerate()
        .take(DegradeTier::COUNT)
    {
        t.rows.push(vec![
            (*label).to_string(),
            merged.admitted[i].to_string(),
            merged.marked[i].to_string(),
            merged.dropped[i].to_string(),
            merged.shed[i].to_string(),
        ]);
    }
    t
}

/// The full `fig_overload` report: per size mix, an uncongested baseline
/// cell fixes the latency SLO and the reference goodput, then open-loop
/// and closed-loop sweeps over the flow grid show the collapse and the
/// control loop preventing it.
pub fn fig_overload_report(args: &BenchArgs, scale: &OverloadScale) -> BenchReport {
    let mut r = BenchReport::new(
        "fig_overload_closed_loop",
        "Overload control",
        "Closed-loop (DCTCP-style) vs open-loop sources at up to millions of flows under a hard \
         memory budget: SLO-goodput, tail sojourn, marks/sheds, and tiered degradation",
        args,
    );
    r.paper_claim(
        "Scale counterpart to the paper's millions-of-flows claim (§5.1): bucketed queues make \
         per-packet work cheap at huge flow counts, but only a closed control loop keeps that \
         capacity *useful* under overload — ECN marks echoed on the completion path let sources \
         back off, so queues (and tail sojourn) stay bounded while open-loop sources bufferbloat \
         the same qdiscs into SLO-goodput collapse. Memory stays under a hard budget via tiered \
         degradation: mark harder, shed worst-first, refuse new-flow setup — never OOM.",
    );
    r.config_num("shards", scale.shards as f64);
    r.config_num("per_flow_kbps", scale.per_flow_kbps as f64);
    r.config_num("capacity_gbps", scale.capacity.as_bps() as f64 / 1e9);
    r.config_num("cap_pkts", scale.cap_pkts as f64);
    r.config_num("wall_ms", scale.wall.as_nanos() as f64 / 1e6);
    r.config_num("budget_mb", scale.budget_bytes as f64 / 1e6);
    r.config_num("admit_cap", scale.admit_cap as f64);
    r.config_num("mark_at", scale.mark_at as f64);
    r.config_str("flow_grid", format!("{:?}", scale.flow_grid));
    r.config_str(
        "method",
        "Per cell: trace-shaped finite flows (empirical web-search / data-mining size CDFs) \
         through the threaded runtime over the Eiffel shaping qdisc (per-socket clocks + one \
         cFFS; the paper's 5.1.1 configuration at a 3.3 s horizon), ECN-marking admission, \
         hard MemBudget. The shard-side shaper splits a fixed drain capacity per admittable \
         flow while every source offers per_flow_kbps (offered_gap decouples the two), so \
         offered/capacity — the overload — grows with the flow grid. The setup budget caps the \
         established population, so the per-flow granted rate stays feedback-viable at every \
         grid point and the flow axis stresses admission churn, not per-flow starvation. The \
         baseline cell offers a sustained paced load at ~2/3 of capacity (uniform packets \
         spanning the wall) and fixes SLO = max(20 ms, 5x its p99 sojourn); SLO-goodput counts \
         only releases within the SLO. Every cell asserts exact conservation and peak memory \
         <= budget.",
    );

    let mut all_tiers = TierCounters::default();
    let mut totals = OverloadReportTotals::default();
    let mut showcase: Option<ThreadedReport> = None;
    for (di, dist) in [FlowSizeDist::WebSearch, FlowSizeDist::DataMining]
        .into_iter()
        .enumerate()
    {
        let base = overload_cell(scale, dist, scale.baseline_flows, true, true);
        // The SLO floor is an RPC-deadline-scale 20 ms: on a small host
        // the baseline's p99 is scheduler-noise-bound and swings by an
        // order of magnitude between runs, and a floor well above that
        // noise keeps the open/closed contrast about queueing, not about
        // which baseline got lucky. Open-loop bufferbloat at these
        // scales is hundreds of ms to seconds — far past any floor.
        let slo_ns = (5 * base.sojourn.quantile(0.99)).max(20_000_000);
        let base_slo = base.slo_goodput_mpps(slo_ns).max(1e-9);
        r.config_num(
            format!("{}_baseline_goodput_mpps", dist.label()),
            base.goodput_mpps,
        );
        r.config_num(format!("{}_slo_ms", dist.label()), slo_ns as f64 / 1e6);
        all_tiers.merge(&base.tiers);
        totals.absorb(&base.report);

        let mut open_slo: Vec<f64> = Vec::with_capacity(scale.flow_grid.len());
        let mut ratio_lines: Vec<String> = Vec::with_capacity(scale.flow_grid.len());
        for closed in [false, true] {
            let mut sw = Sweep::new(
                format!(
                    "{} mix, {} sources",
                    dist.label(),
                    if closed { "closed-loop" } else { "open-loop" }
                ),
                "flows",
            );
            sw.add_series("goodput", "Mpps", 3);
            sw.add_series("SLO-goodput", "Mpps", 3);
            sw.add_series("p99 sojourn", "ms", 2);
            sw.add_series("ECN-marked", "per-1k", 1);
            sw.add_series("shed", "per-1k", 1);
            sw.add_series("mem peak", "MB", 1);
            for (gi, &flows) in scale.flow_grid.iter().enumerate() {
                let cell = overload_cell(scale, dist, flows, closed, false);
                let slo_goodput = cell.slo_goodput_mpps(slo_ns);
                sw.push_row(
                    flows as f64,
                    &[
                        cell.goodput_mpps,
                        slo_goodput,
                        cell.p99_ms,
                        cell.marked_per_k,
                        cell.shed_per_k,
                        cell.mem_peak_mb,
                    ],
                );
                all_tiers.merge(&cell.tiers);
                totals.absorb(&cell.report);
                if closed {
                    ratio_lines.push(format!(
                        "{} flows: closed {:.2}x, open {:.2}x",
                        flows,
                        slo_goodput / base_slo,
                        open_slo[gi] / base_slo,
                    ));
                } else {
                    open_slo.push(slo_goodput);
                }
                if di == 0 && closed && gi + 1 == scale.flow_grid.len() {
                    showcase = Some(cell.report.clone());
                }
            }
            r.push_sweep(sw);
        }
        r.note(format!(
            "{} mix: SLO {:.2} ms, uncongested baseline ({} flows) SLO-goodput {:.3} Mpps; \
             SLO-goodput relative to that baseline: {}.",
            dist.label(),
            slo_ns as f64 / 1e6,
            scale.baseline_flows,
            base_slo,
            ratio_lines.join("; "),
        ));
    }

    if let Some(rep) = &showcase {
        r.push_table(per_shard_counters_table(
            "per-shard counters (web-search mix, closed loop, largest flow count)",
            rep,
        ));
    }
    r.push_table(tier_counters_table(&all_tiers));
    r.note(format!(
        "Conservation audited on every cell: {} packets emitted across {} runs, all accounted \
         (released {}, admission-dropped {}, evicted {}); zero unaccounted. Memory: peak {} MB \
         against a {} MB budget, {} new-flow setups refused at the refuse tier, {} emissions \
         deferred on slab exhaustion; every ledger closed at zero bytes in use.",
        totals.emitted,
        totals.cells,
        totals.transmitted,
        totals.admission_dropped,
        totals.evicted,
        format_args!("{:.1}", totals.mem_peak_bytes as f64 / 1e6),
        format_args!("{:.1}", scale.budget_bytes as f64 / 1e6),
        totals.setup_refused,
        totals.mem_deferrals,
    ));
    r.note(format!(
        "Degradation tiers exercised across the report: {} of {} (see the tier table).",
        all_tiers.tiers_exercised(),
        DegradeTier::COUNT,
    ));
    r.note(
        "Caveats: overload cells end at the wall limit mid-stream by design (finite flows \
         cannot drain at these flow counts), so absolute Mpps depends on host CPU; the \
         closed-vs-open contrast and the memory ceiling are the claims. Single-machine runs: \
         shard threads time-slice on small hosts, inflating sojourn for both modes equally.",
    );
    r
}

/// Scale knobs of the tree-policy cost harness (`fig_tree_policy`).
#[derive(Debug, Clone)]
pub struct TreePolicyScale {
    /// Steady occupancy held by the refill loop (packets in the tree).
    pub occupancy: usize,
    /// Consumer batch sizes (`dequeue_batch` budget per poll).
    pub batches: Vec<usize>,
    /// Measurement budget per `(policy, batch)` cell.
    pub budget: Duration,
}

impl TreePolicyScale {
    /// Scale chosen from the shared `--quick` flag.
    pub fn from_args(args: &BenchArgs) -> Self {
        TreePolicyScale {
            occupancy: if args.quick { 4_000 } else { 20_000 },
            batches: vec![1, 8, 64],
            budget: Duration::from_millis(if args.quick { 40 } else { 300 }),
        }
    }

    /// Miniature for integration tests.
    pub fn tiny() -> Self {
        TreePolicyScale {
            occupancy: 600,
            batches: vec![1, 16],
            budget: Duration::from_millis(5),
        }
    }
}

/// The node programs under test: every scheduling discipline of §3.2 as a
/// policy-text program on the one `RankedQueue` substrate, plus the FIFO
/// floor that prices the tree machinery itself.
const TREE_POLICIES: &[(&str, &str, &[&str])] = &[
    ("fifo", "node root kind=fifo\n", &["root"]),
    (
        "wfq",
        "node root kind=wfq\n\
         node a parent=root kind=fifo weight=1\n\
         node b parent=root kind=fifo weight=2\n\
         node c parent=root kind=fifo weight=4\n\
         node d parent=root kind=fifo weight=8\n",
        &["a", "b", "c", "d"],
    ),
    ("lstf", "node root kind=lstf\n", &["root"]),
    (
        "hclock",
        "node root kind=flow:hclock res=2mbps lim=100mbps share=1\n",
        &["root"],
    ),
    (
        "hfsc",
        "node root kind=flow:hfsc m1=40mbps m2=10mbps burst=4500 share=2\n",
        &["root"],
    ),
];

/// Flows cycled through by the tree-policy harness.
const TREE_POLICY_FLOWS: u32 = 64;

/// One `(policy, batch)` cell: hold `occupancy` packets in the tree and
/// time a dequeue-batch + refill loop under a virtual clock driven by
/// `soonest_deadline` (shaper gates cost wakeups, never wall waiting).
/// Returns wall nanoseconds per served packet.
fn tree_policy_cell(policy: usize, batch: usize, scale: &TreePolicyScale) -> f64 {
    let (name, text, leaf_names) = TREE_POLICIES[policy];
    let mut tree = compile(text).unwrap_or_else(|e| panic!("{name}: {e}"));
    let leaves: Vec<_> = leaf_names
        .iter()
        .map(|n| tree.node_by_name(n).unwrap())
        .collect();
    let mut next_id = 0u64;
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    let mut fill = |tree: &mut eiffel_pifo::PifoTree, n: usize, at: Nanos| {
        for _ in 0..n {
            // xorshift slack keeps LSTF/pFabric ranks inside 2^20.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let flow = (next_id % TREE_POLICY_FLOWS as u64) as u32;
            let leaf = leaves[(next_id as usize) % leaves.len()];
            let mut pkt = Packet::mtu(next_id, flow, at);
            pkt.rank = 1 + seed % ((1 << 20) - 1);
            pkt.class = flow % 4;
            next_id += 1;
            tree.enqueue(at, leaf, pkt).unwrap();
        }
    };
    fill(&mut tree, scale.occupancy, 0);

    let mut vt: Nanos = 0;
    let mut out: Vec<Packet> = Vec::with_capacity(batch);
    let mut served = 0u64;
    // Untimed warmup: fault in allocations and reach steady virtual times.
    let mut warm = scale.occupancy / 2;
    let start = Instant::now();
    let mut timed_from = Duration::ZERO;
    let mut timed_served = 0u64;
    loop {
        out.clear();
        let got = tree.dequeue_batch(vt, batch, &mut out);
        if got == 0 {
            // Nothing transmittable: hop the virtual clock to the next
            // shaper release instead of spinning.
            vt = match tree.soonest_deadline(vt) {
                Some(d) if d > vt => d,
                _ => vt + 1_000,
            };
            continue;
        }
        served += got as u64;
        fill(&mut tree, got, vt);
        if warm > 0 {
            warm = warm.saturating_sub(got);
            if warm == 0 {
                timed_from = start.elapsed();
                timed_served = served;
            }
            continue;
        }
        if start.elapsed() >= scale.budget {
            break;
        }
    }
    let secs = (start.elapsed() - timed_from).as_secs_f64();
    let pkts = served - timed_served;
    if pkts == 0 {
        return f64::NAN;
    }
    secs * 1e9 / pkts as f64
}

/// The tree-policy claim quoted by the binary banner and EXPERIMENTS.md.
pub const TREE_POLICY_PAPER_CLAIM: &str = "policies are \"programmed\" as per-node ranking \
     transactions over one priority-queue substrate (§3.2), so a new discipline costs a \
     ~100-line program, not a new data structure; per-packet cost stays flat across them.";

/// Builds the tree-policy cost report: one sweep of wall ns/packet over
/// consumer batch size, one series per node program.
pub fn fig_tree_policy_report(args: &BenchArgs, scale: &TreePolicyScale) -> BenchReport {
    let mut r = BenchReport::new(
        "fig_tree_policy",
        "Tree policy cost",
        "per-packet dequeue+refill cost of node programs on the programmable PIFO tree",
        args,
    );
    r.paper_claim(TREE_POLICY_PAPER_CLAIM);
    r.config_num("occupancy_pkts", scale.occupancy as f64);
    r.config_num("budget_ms_per_cell", scale.budget.as_millis() as f64);
    r.config_num("flows", TREE_POLICY_FLOWS as f64);
    let mut sw = Sweep::new(
        format!(
            "{} packets held, {} flows",
            scale.occupancy, TREE_POLICY_FLOWS
        ),
        "batch",
    );
    for (name, _, _) in TREE_POLICIES {
        sw.add_series(*name, "ns/pkt", 1);
    }
    for &batch in &scale.batches {
        let row: Vec<f64> = (0..TREE_POLICIES.len())
            .map(|p| tree_policy_cell(p, batch, scale))
            .collect();
        sw.push_row(batch, &row);
    }
    r.push_sweep(sw);
    r.note(
        "Virtual-clock drive: when every backlog sits behind a shaper gate the clock hops \
         straight to `soonest_deadline`, so rate parameters shape the service pattern without \
         adding wall idle time — the numbers price CPU work only. The fifo series is the floor \
         (tree descent + bucketed FIFO); the gap to each policy series is what that policy's \
         ranking transaction costs per packet.",
    );
    r
}

/// Sums the overload counters across every cell of the report.
#[derive(Debug, Clone, Copy, Default)]
struct OverloadReportTotals {
    cells: u64,
    emitted: u64,
    transmitted: u64,
    admission_dropped: u64,
    evicted: u64,
    setup_refused: u64,
    mem_deferrals: u64,
    mem_peak_bytes: u64,
}

impl OverloadReportTotals {
    fn absorb(&mut self, r: &ThreadedReport) {
        self.cells += 1;
        self.emitted += r.emitted;
        self.transmitted += r.transmitted;
        self.admission_dropped += r.chaos.admission_dropped;
        self.evicted += r.chaos.evicted;
        self.setup_refused += r.setup_refused;
        self.mem_deferrals += r.mem_deferrals;
        self.mem_peak_bytes = self.mem_peak_bytes.max(r.mem_peak_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_shaping_quick_orders_fq_worst() {
        let reports = kernel_shaping(&KernelShapingScale::quick());
        assert_eq!(reports.len(), 3);
        let (fq, carousel, eiffel) = (&reports[0], &reports[1], &reports[2]);
        assert_eq!(fq.name, "fq");
        assert_eq!(carousel.name, "carousel");
        assert_eq!(eiffel.name, "eiffel");
        // The headline ordering of Figure 9.
        assert!(
            eiffel.median_cores < carousel.median_cores,
            "eiffel {:.4} !< carousel {:.4}",
            eiffel.median_cores,
            carousel.median_cores
        );
        assert!(
            eiffel.median_cores < fq.median_cores,
            "eiffel {:.4} !< fq {:.4}",
            eiffel.median_cores,
            fq.median_cores
        );
    }

    #[test]
    fn hclock_cells_produce_rates() {
        for which in ["eiffel", "hclock", "tc"] {
            let mbps = hclock_max_rate(which, 64, 10_000, 1_500, 1, Duration::from_millis(60));
            assert!(mbps > 1.0, "{which}: {mbps} Mbps");
        }
    }

    #[test]
    fn pfabric_eiffel_beats_heap_at_scale() {
        let e = pfabric_max_rate(true, 3_000, Duration::from_millis(120));
        let h = pfabric_max_rate(false, 3_000, Duration::from_millis(120));
        assert!(
            e > h,
            "eiffel pfabric {e:.0} Mbps must beat heap {h:.0} Mbps at 3k flows"
        );
    }

    #[test]
    fn table1_has_six_systems() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|r| r[0] == "Eiffel"));
    }

    /// The exact Figure 9 report path at miniature scale: the CDF panel,
    /// the threaded wall-clock panels (real OS threads), the
    /// cores-to-shape table, and a JSON round trip.
    #[test]
    fn fig9_tiny_report_shape() {
        let args = BenchArgs::from_iter(["--quick".to_string()], None);
        let r = fig9_report(&args, &Fig9Scale::tiny());
        // One CDF panel + one threaded panel per flow count (tiny skips
        // the rate ladder).
        assert_eq!(r.sweeps.len(), 3);
        assert!(r.sweeps[0].name.contains("virtual-clock CDF"));
        for sw in &r.sweeps[1..] {
            assert!(sw.name.contains("threaded wall clock"), "{}", sw.name);
            assert_eq!(sw.series.len(), 6, "achieved + cores per qdisc");
            assert_eq!(sw.param_values.len(), 2, "tiny shard sweep");
            for pair in sw.series.chunks(2) {
                assert_eq!(pair[0].unit, "Gbps");
                assert_eq!(pair[1].unit, "cores");
                assert!(
                    pair[0].values.iter().all(|&v| v > 0.0),
                    "{}: achieved rates positive",
                    pair[0].name
                );
                assert!(
                    pair[1].values.iter().all(|&v| v >= 0.0 && v.is_finite()),
                    "{}: busy cores sane",
                    pair[1].name
                );
            }
        }
        assert_eq!(r.tables.len(), 1);
        assert!(r.tables[0].name.contains("cores needed to shape"));
        assert_eq!(r.tables[0].rows.len(), 6, "3 qdiscs x 2 shard counts");
        assert!(
            r.notes.iter().any(|n| n.contains("Cores-to-shape ratios")),
            "headline ratio note present"
        );
        let text = r.to_json().to_pretty_string();
        let doc = crate::json::JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(
            doc.get("figure").unwrap().as_str(),
            Some("fig09_kernel_shaping")
        );
    }

    /// The exact Figure 10 report path at miniature scale: a virtual and
    /// a threaded system/softirq CDF panel per system, and a JSON round
    /// trip.
    #[test]
    fn fig10_tiny_report_shape() {
        let args = BenchArgs::from_iter(["--quick".to_string()], None);
        let r = fig10_report(&args, &Fig10Scale::tiny());
        assert_eq!(r.sweeps.len(), 4, "2 systems x {{virtual, threaded}}");
        for sw in &r.sweeps[..2] {
            assert!(sw.name.starts_with("virtual"), "{}", sw.name);
        }
        for sw in &r.sweeps[2..] {
            assert!(sw.name.starts_with("threaded wall clock"), "{}", sw.name);
        }
        for sw in &r.sweeps {
            let names: Vec<&str> = sw.series.iter().map(|s| s.name.as_str()).collect();
            assert_eq!(names, ["system", "softirq"]);
            for s in &sw.series {
                assert_eq!(s.unit, "cores");
                assert!(
                    s.values.iter().all(|&v| v >= 0.0 && v.is_finite()),
                    "{}: cores sane",
                    s.name
                );
                // A CDF is non-decreasing.
                assert!(s.values.windows(2).all(|w| w[0] <= w[1]), "{}", sw.name);
            }
        }
        // Both systems execute real scheduler code on both harnesses:
        // some bin in every panel must have measured busy time.
        for sw in &r.sweeps {
            let total: f64 = sw.series.iter().flat_map(|s| &s.values).sum();
            assert!(total > 0.0, "{}: all-zero breakdown", sw.name);
        }
        let text = r.to_json().to_pretty_string();
        let doc = crate::json::JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(
            doc.get("figure").unwrap().as_str(),
            Some("fig10_cpu_breakdown")
        );
    }

    /// The exact Figure 16 report path at miniature scale: panel/series
    /// shape, positive rates, hit-rate bounds, and a JSON round trip.
    #[test]
    fn fig16_tiny_report_shape() {
        let args = BenchArgs::from_iter(["--quick".to_string()], None);
        let r = fig16_report(&args, &Fig16Scale::tiny());
        assert_eq!(r.sweeps.len(), 3, "plain + batched + quality panels");
        let plain = &r.sweeps[0];
        assert_eq!(plain.param_values.len(), 2, "tiny ppb sweep");
        let names: Vec<&str> = plain.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "Approx",
                "cFFS",
                "BH",
                "SP-PIFO",
                "RIFO",
                "Approx est. hit rate"
            ]
        );
        for s in &plain.series[..5] {
            assert!(s.values.iter().all(|&v| v > 0.0), "positive Mpps");
        }
        let hits = &plain.series[5];
        assert!(hits.values.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let batched = &r.sweeps[1];
        assert!(batched.name.contains("dequeue_batch"));
        assert_eq!(batched.series.len(), 5);
        // The quality panel: exact backends score zero on both metrics,
        // the adaptive ones pay a real, finite error.
        let quality = &r.sweeps[2];
        assert!(quality.name.contains("drain quality"), "{}", quality.name);
        assert_eq!(quality.series.len(), 10, "5 rank-err + 5 inv/pop");
        for s in &quality.series {
            let exact = s.name.starts_with("cFFS") || s.name.starts_with("BH");
            for &v in &s.values {
                assert!(v.is_finite() && v >= 0.0, "{}: {v}", s.name);
                if exact {
                    assert_eq!(v, 0.0, "exact backend {} must score zero", s.name);
                }
                if s.name.ends_with("inv/pop") {
                    assert!(v <= 1.0, "{}: {v} is a fraction", s.name);
                }
            }
        }
        let text = r.to_json().to_pretty_string();
        let doc = crate::json::JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(
            doc.get("figure").unwrap().as_str(),
            Some("fig16_packets_per_bucket")
        );
    }

    /// The exact Figure 17 report path at miniature scale.
    #[test]
    fn fig17_tiny_report_shape() {
        let args = BenchArgs::from_iter(["--quick".to_string()], None);
        let r = fig17_report(&args, &Fig17Scale::tiny());
        assert_eq!(r.sweeps.len(), 2, "1 nb × 2 patterns");
        assert!(r.sweeps[0].name.contains("sparse"));
        assert!(r.sweeps[1].name.contains("dense"));
        for sw in &r.sweeps {
            let names: Vec<&str> = sw.series.iter().map(|s| s.name.as_str()).collect();
            assert_eq!(
                names,
                [
                    "Approx",
                    "cFFS",
                    "BH",
                    "SP-PIFO",
                    "RIFO",
                    "Approx est. hit rate"
                ]
            );
            assert_eq!(sw.param_values.len(), 2, "tiny occupancy sweep");
            for s in &sw.series[..5] {
                assert!(s.values.iter().all(|&v| v > 0.0), "positive Mpps");
            }
        }
        // Dense prefix occupancy is the estimator's exact case: its hit
        // rate must dominate the sparse fill's at every occupancy.
        let sparse_hits = &r.sweeps[0].series[5].values;
        let dense_hits = &r.sweeps[1].series[5].values;
        for (d, s) in dense_hits.iter().zip(sparse_hits) {
            assert!(d >= s, "dense hit rate {d} < sparse {s}");
        }
        let text = r.to_json().to_pretty_string();
        let doc = crate::json::JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(doc.get("figure").unwrap().as_str(), Some("fig17_occupancy"));
    }

    /// The exact Figure 18 report path at miniature scale: the estimator
    /// error panel plus one five-way quality panel per bucket count.
    #[test]
    fn fig18_tiny_report_shape() {
        let args = BenchArgs::from_iter(["--quick".to_string()], None);
        let r = fig18_report(&args, &Fig18Scale::tiny());
        assert_eq!(r.sweeps.len(), 2, "estimator panel + one quality panel");
        let est = &r.sweeps[0];
        assert_eq!(est.series.len(), 1, "one bucket count in tiny");
        assert_eq!(est.series[0].name, "512 buckets");
        assert_eq!(est.param_values.len(), 2, "tiny occupancy sweep");
        for &v in &est.series[0].values {
            assert!(v.is_finite() && v >= 0.0, "estimator error {v}");
        }
        let quality = &r.sweeps[1];
        assert!(quality.name.contains("sparse drain quality"));
        assert_eq!(quality.series.len(), 10, "5 rank-err + 5 inv/pop");
        for s in &quality.series {
            if s.name.starts_with("cFFS") || s.name.starts_with("BH") {
                assert!(s.values.iter().all(|&v| v == 0.0), "{} exact", s.name);
            }
        }
        // SP-PIFO with a handful of queues must err on a sparse 512-bucket
        // fill — if this reads 0.0 the audit is not hooked up.
        let sp_err = quality
            .series
            .iter()
            .find(|s| s.name == "SP-PIFO rank err")
            .unwrap();
        assert!(
            sp_err.values.iter().any(|&v| v > 0.0),
            "{:?}",
            sp_err.values
        );
        let text = r.to_json().to_pretty_string();
        let doc = crate::json::JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(
            doc.get("figure").unwrap().as_str(),
            Some("fig18_approx_error")
        );
    }

    /// The exact tree-policy report path at miniature scale: every node
    /// program prices out as a finite positive per-packet cost.
    #[test]
    fn fig_tree_policy_tiny_report_shape() {
        let args = BenchArgs::from_iter(["--quick".to_string()], None);
        let r = fig_tree_policy_report(&args, &TreePolicyScale::tiny());
        assert_eq!(r.sweeps.len(), 1, "one batch sweep");
        let sw = &r.sweeps[0];
        let names: Vec<&str> = sw.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["fifo", "wfq", "lstf", "hclock", "hfsc"]);
        assert_eq!(sw.param_values.len(), 2, "tiny batch sweep");
        for s in &sw.series {
            assert!(
                s.values.iter().all(|&v| v.is_finite() && v > 0.0),
                "{}: {:?}",
                s.name,
                s.values
            );
        }
        let text = r.to_json().to_pretty_string();
        let doc = crate::json::JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(doc.get("figure").unwrap().as_str(), Some("fig_tree_policy"));
    }

    /// The exact Figure 15 report path at miniature scale: panel/series
    /// shape, positive rates, and a JSON round trip.
    #[test]
    fn fig15_tiny_report_shape() {
        let args = BenchArgs::from_iter(["--quick".to_string()], None);
        let r = fig15_report(&args, &Fig15Scale::tiny());
        assert_eq!(r.sweeps.len(), 2, "one panel per (shards, batch) shape");
        assert!(r.sweeps[0].name.contains("1 shard(s), dequeue batch 1"));
        assert!(r.sweeps[1].name.contains("2 shard(s), dequeue batch 8"));
        for sw in &r.sweeps {
            let names: Vec<&str> = sw.series.iter().map(|s| s.name.as_str()).collect();
            assert_eq!(names, ["pFabric-Eiffel", "pFabric-BinaryHeap"]);
            assert_eq!(sw.param_values.len(), 2, "tiny flow sweep");
            for s in &sw.series {
                assert!(s.values.iter().all(|&v| v > 0.0), "positive Mbps");
            }
        }
        let text = r.to_json().to_pretty_string();
        let doc = crate::json::JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(
            doc.get("figure").unwrap().as_str(),
            Some("fig15_pfabric_scaling")
        );
    }

    /// The sharded cell helper at `(1, 1)` runs the same workload the
    /// classic single-instance cell does (the shared `pfabric_workload`
    /// helper guarantees identical stamper and occupancy) and produces a
    /// usable reading. No wall-clock ratio is asserted: `cargo test` runs
    /// suites concurrently and rate cells wobble far too much under load
    /// for that to be meaningful (see EXPERIMENTS.md).
    #[test]
    fn fig15_sharded_cell_matches_classic_cell_shape() {
        let dur = Duration::from_millis(40);
        let classic = pfabric_max_rate(true, 500, dur);
        let sharded = pfabric_max_rate_sharded(true, 500, 1, 1, dur);
        assert!(classic > 0.0 && classic.is_finite());
        assert!(sharded > 0.0 && sharded.is_finite());
    }

    /// The exact Figure 19 report path at miniature scale: panel/series
    /// shape, the event-loop counters, the backend-comparison assertion,
    /// and a JSON round trip.
    #[test]
    fn fig19_tiny_report_shape() {
        let args = BenchArgs::from_iter(["--quick".to_string()], None);
        let r = fig19_report(&args, &Fig19Scale::tiny());
        assert_eq!(r.sweeps.len(), 5, "3 NFCT panels + throughput + backends");
        for sweep in &r.sweeps[..3] {
            assert_eq!(sweep.series.len(), 3, "DCTCP, pFabric, pFabric-Approx");
            assert_eq!(sweep.param_values.len(), 2, "tiny load sweep");
        }
        let throughput = &r.sweeps[3];
        for s in &throughput.series {
            assert_eq!(s.unit, "Mev/s");
            assert!(s.values.iter().all(|&v| v > 0.0), "positive event rates");
        }
        let backends = &r.sweeps[4];
        assert_eq!(backends.param_values.len(), 2, "heap and wheel rows");
        let text = r.to_json().to_pretty_string();
        let doc = crate::json::JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(
            doc.get("figure").unwrap().as_str(),
            Some("fig19_pfabric_fct")
        );
        assert_eq!(doc.get("sweeps").unwrap().as_array().unwrap().len(), 5);
    }

    /// The exact `fig_chaos` report path at miniature scale: one panel per
    /// fault family, three series per backend, conservation asserted inside
    /// every cell (the cell panics otherwise), and a JSON round trip.
    #[test]
    fn fig_chaos_tiny_report_shape() {
        let args = BenchArgs::from_iter(["--quick".to_string()], None);
        let r = fig_chaos_report(&args, &ChaosScale::tiny());
        assert_eq!(
            r.sweeps.len(),
            CHAOS_FAMILIES.len(),
            "one panel per fault family"
        );
        for (sw, family) in r.sweeps.iter().zip(CHAOS_FAMILIES) {
            assert!(sw.name.contains(family.label()));
            assert_eq!(
                sw.series.len(),
                CHAOS_BACKENDS.len() * 3,
                "Mpps/sojourn/shed per backend"
            );
            assert_eq!(sw.param_values.len(), 2, "tiny intensity grid");
            for chunk in sw.series.chunks(3) {
                assert!(
                    chunk[0].values.iter().all(|&v| v > 0.0),
                    "positive throughput"
                );
                assert!(chunk[1].values.iter().all(|&v| v >= 0.0), "sane sojourn");
            }
        }
        assert_eq!(
            r.tables.len(),
            2,
            "per-shard counters + adversarial quality"
        );
        assert!(r.tables[0].name.contains("per-shard counters"));
        assert_eq!(r.tables[0].rows.len(), 2, "one row per shard thread");
        assert_eq!(r.tables[1].rows.len(), CHAOS_BACKENDS.len());
        let text = r.to_json().to_pretty_string();
        let doc = crate::json::JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(
            doc.get("figure").unwrap().as_str(),
            Some("fig_chaos_degradation")
        );
    }

    /// The exact `fig_overload` report path at miniature scale: one sweep
    /// per (size mix × source mode), six series each, conservation and the
    /// memory ceiling asserted inside every cell (the cell panics
    /// otherwise), per-shard and tier tables, and a JSON round trip.
    #[test]
    fn fig_overload_tiny_report_shape() {
        let args = BenchArgs::from_iter(["--quick".to_string()], None);
        let scale = OverloadScale::tiny();
        let r = fig_overload_report(&args, &scale);
        assert_eq!(r.sweeps.len(), 4, "2 mixes x {{open, closed}}");
        for sw in &r.sweeps {
            assert_eq!(sw.series.len(), 6, "goodput/SLO/p99/marks/shed/mem");
            assert_eq!(sw.param_values.len(), scale.flow_grid.len());
            assert!(
                sw.series[0].values.iter().all(|&v| v > 0.0),
                "{}: positive goodput",
                sw.name
            );
            assert!(
                sw.series[5].values.iter().all(|&v| v > 0.0),
                "{}: memory was charged",
                sw.name
            );
        }
        assert_eq!(r.tables.len(), 2, "per-shard counters + tier table");
        assert!(r.tables[0].name.contains("per-shard counters"));
        assert_eq!(r.tables[0].rows.len(), scale.shards);
        assert!(r.tables[1].name.contains("memory-pressure tier"));
        assert_eq!(r.tables[1].rows.len(), DegradeTier::COUNT);
        // The tiny budget (384 flows x 512 B of setups alone crosses 95%
        // of 128 KiB) must walk the loop through real degradation.
        assert!(
            r.notes.iter().any(|n| n.contains("zero unaccounted")),
            "conservation note present"
        );
        let text = r.to_json().to_pretty_string();
        let doc = crate::json::JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(
            doc.get("figure").unwrap().as_str(),
            Some("fig_overload_closed_loop")
        );
        assert_eq!(doc.get("sweeps").unwrap().as_array().unwrap().len(), 4);
    }

    /// Regression pin (robustness PR satellite): under the SP-PIFO ramp
    /// attack — exactly the shape the `fig_chaos` quality table records —
    /// the exact backends stay exact while SP-PIFO's unavoidable
    /// inversions stay inside an empirically measured envelope (~2×
    /// margin over the deterministic measurement).
    #[test]
    fn adversarial_rank_quality_envelope() {
        let adv = RankPattern::SpPifoAdversarial {
            max: 4_000,
            period: 64,
        };
        for kind in [QueueKind::Cffs, QueueKind::BucketHeap] {
            let rep = adversarial_quality(kind, adv, 32, 2_048, 4);
            assert_eq!(rep.pops, 4 * 2_048);
            assert_eq!(rep.inversions, 0, "{kind:?} must drain in exact rank order");
            assert_eq!(
                rep.rank_error_sum, 0,
                "{kind:?} must drain at the true minimum"
            );
        }
        let sp = adversarial_quality(QueueKind::SpPifo { queues: 32 }, adv, 32, 2_048, 4);
        assert_eq!(sp.pops, 4 * 2_048);
        assert!(sp.inversions > 0, "the ramp attack must land on SP-PIFO");
        // The script is fully deterministic; today it measures 0.9385
        // inversions per pop and 1876 mean rank error. Pinned just above
        // so a mapping regression (worse adaptation) fails loudly while
        // an improvement sails through.
        let inv_per_pop = sp.inversions as f64 / sp.pops as f64;
        assert!(
            inv_per_pop < 0.95,
            "SP-PIFO inversion rate {inv_per_pop:.4} escaped its pinned envelope"
        );
        assert!(
            sp.rank_error_sum / sp.pops < 2_000,
            "SP-PIFO mean rank error escaped its pinned envelope"
        );
        assert!(
            sp.max_inversion <= 4_000,
            "no inversion can exceed the rank range"
        );
    }
}
