//! Figure 9 — "A comparison between the CPU overhead of the networking
//! stack using FQ/pacing, Carousel, and Eiffel": CDF of CPU cores used for
//! networking, 20k flows rate-limited to an aggregate 24 Gbps.
//!
//! `--quick` runs a scaled-down workload; `--json <path>` records the run.

use eiffel_bench::report::{BenchReport, Sweep};
use eiffel_bench::{report, runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let scale = if args.quick {
        runners::KernelShapingScale::quick()
    } else {
        runners::KernelShapingScale::default_scale()
    };
    let mut r = BenchReport::new(
        "fig09_kernel_shaping",
        "Figure 9",
        "CPU cores for networking (CDF), kernel shaping",
        &args,
    );
    r.paper_claim("Eiffel outperforms FQ by a median 14x and Carousel by 3x (§5.1.1, Figure 9).");
    r.config_num("flows", scale.flows as f64);
    r.config_num("aggregate_gbps", scale.aggregate.as_bps() as f64 / 1e9);
    r.config_num("virtual_seconds", scale.duration as f64 / 1e9);
    r.config_str(
        "method",
        "real data-structure CPU metered into bins (see eiffel-sim::cpu for modelled constants)",
    );

    let reports = runners::kernel_shaping(&scale);
    // One CDF sweep: fraction axis, one cores-series per system.
    let mut sw = Sweep::new("CPU cores used for networking", "CDF");
    for sys in &reports {
        sw.add_series(sys.name, "cores", 4);
    }
    let cdfs: Vec<Vec<(f64, f64)>> = reports
        .iter()
        .map(|sys| report::cdf(&sys.cores_sorted, 10))
        .collect();
    for i in 0..10 {
        let frac = cdfs[0][i].1;
        let row: Vec<f64> = cdfs.iter().map(|c| c[i].0).collect();
        sw.push_row(frac, &row);
    }
    r.push_sweep(sw);

    for sys in &reports {
        r.note(format!(
            "[{}] median = {:.3} cores, transmitted = {} pkts, timer fires = {}",
            sys.name, sys.median_cores, sys.transmitted, sys.timer_fires
        ));
    }
    let (fq, carousel, eiffel) = (&reports[0], &reports[1], &reports[2]);
    r.note(format!(
        "Measured medians: FQ/Eiffel = {:.1}x, Carousel/Eiffel = {:.1}x",
        fq.median_cores / eiffel.median_cores.max(1e-9),
        carousel.median_cores / eiffel.median_cores.max(1e-9)
    ));
    r.finish(&args);
}
