//! Figure 9 — "A comparison between the CPU overhead of the networking
//! stack using FQ/pacing, Carousel, and Eiffel": CDF of CPU cores used for
//! networking, 20k flows rate-limited to an aggregate 24 Gbps.
//!
//! `--quick` runs a scaled-down workload.

use eiffel_bench::{quick_mode, report, runners};

fn main() {
    let scale = if quick_mode() {
        runners::KernelShapingScale::quick()
    } else {
        runners::KernelShapingScale::default_scale()
    };
    report::banner(
        "FIGURE 9 — CPU cores for networking (CDF), kernel shaping",
        &format!(
            "{} flows, {} Gbps aggregate, {} virtual seconds — real data-structure \
             CPU metered into bins (see eiffel-sim::cpu for modelled constants)",
            scale.flows,
            scale.aggregate.as_bps() as f64 / 1e9,
            scale.duration as f64 / 1e9
        ),
    );
    let reports = runners::kernel_shaping(&scale);
    // CDF series per system.
    for r in &reports {
        println!(
            "\n[{}] median = {:.3} cores, transmitted = {} pkts, timer fires = {}",
            r.name, r.median_cores, r.transmitted, r.timer_fires
        );
        let rows: Vec<Vec<String>> = report::cdf(&r.cores_sorted, 10)
            .into_iter()
            .map(|(cores, frac)| vec![format!("{cores:.4}"), format!("{frac:.2}")])
            .collect();
        report::table(&["cores", "CDF"], &rows);
    }
    let (fq, carousel, eiffel) = (&reports[0], &reports[1], &reports[2]);
    println!("\nPaper: Eiffel outperforms FQ by a median 14x and Carousel by 3x.");
    println!(
        "Measured: FQ/Eiffel = {:.1}x, Carousel/Eiffel = {:.1}x",
        fq.median_cores / eiffel.median_cores.max(1e-9),
        carousel.median_cores / eiffel.median_cores.max(1e-9)
    );
}
