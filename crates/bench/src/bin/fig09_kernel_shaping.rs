//! Figure 9 — "A comparison between the CPU overhead of the networking
//! stack using FQ/pacing, Carousel, and Eiffel": the virtual-clock CPU
//! CDF (20k flows rate-limited to an aggregate 24 Gbps) plus the threaded
//! wall-clock cores-to-shape sweep over real OS threads.
//!
//! `--quick` runs a scaled-down workload; `--json <path>` records the run
//! (the committed record is `BENCH_fig9_cores_to_shape.json`).

use eiffel_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let scale = runners::Fig9Scale::from_args(&args);
    runners::fig9_report(&args, &scale).finish(&args);
}
