//! Chaos degradation — fault-injected threaded runtime across five ranked
//! backends: graceful degradation (throughput / sojourn / load shedding)
//! vs fault-storm intensity for every fault family, plus rank-adversarial
//! drain quality, with packet conservation asserted on every cell.
//!
//! `--quick` shrinks the workload and intensity grid; `--json <path>`
//! records the run. The report construction lives in
//! [`eiffel_bench::runners::fig_chaos_report`] so tests and CI validate
//! the exact path this binary records.

use eiffel_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let scale = runners::ChaosScale::from_args(&args);
    runners::fig_chaos_report(&args, &scale).finish(&args);
}
