//! Figure 19 — "Effect of using an Approximate Queue on the performance of
//! pFabric in terms of normalized flow completion times": DCTCP vs pFabric
//! vs pFabric-Approx across load, web-search workload, leaf-spine fabric.
//!
//! Default: the scaled (32-host) fabric with the full load sweep.
//! `--quick`: fewer loads/flows. `--paper`: the 144-host topology.
//! `--json <path>` records the run.

use eiffel_bench::report::{BenchReport, Sweep};
use eiffel_bench::{runners, BenchArgs};
use eiffel_dcsim::{System, Topology};

fn main() {
    let args = BenchArgs::parse();
    let paper_topo = std::env::args().any(|a| a == "--paper");
    let topo = if paper_topo {
        Topology::paper()
    } else {
        Topology::small()
    };
    let loads: Vec<f64> = if args.quick {
        vec![0.2, 0.4, 0.6]
    } else {
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
    };
    let flows = if args.quick { 200 } else { 1_000 };
    let mut r = BenchReport::new(
        "fig19_pfabric_fct",
        "Figure 19",
        "normalized FCT vs load (web-search workload)",
        &args,
    );
    r.paper_claim(
        "\"approximation has minimal effect on overall network behavior\" — the two pFabric \
         series should track each other and beat DCTCP on small-flow FCT (§5.2, Figure 19).",
    );
    r.config_num("hosts", topo.hosts() as f64);
    r.config_num("flows_per_point", flows as f64);
    r.config_str(
        "topology",
        if paper_topo {
            "paper (144-host)"
        } else {
            "small (32-host)"
        },
    );

    let systems = [
        ("DCTCP", System::Dctcp),
        ("pFabric", System::PfabricExact),
        ("pFabric-Approx", System::PfabricApprox),
    ];
    let mut sweeps = Vec::new();
    for (name, sys) in systems {
        let rows = runners::pfabric_fct_sweep(sys, topo, &loads, flows, 0xF19);
        sweeps.push((name, rows));
    }
    for (panel, idx) in [
        ("Average NFCT, flows (0, 100kB]", 1usize),
        ("99th percentile NFCT, flows (0, 100kB]", 2),
        ("Average NFCT, flows (10MB, inf)", 3),
    ] {
        let mut sw = Sweep::new(panel, "load");
        for (name, _) in &sweeps {
            sw.add_series(*name, "normalized FCT", 2);
        }
        for (li, &load) in loads.iter().enumerate() {
            let row: Vec<f64> = sweeps
                .iter()
                .map(|(_, sweep)| match idx {
                    1 => sweep[li].1,
                    2 => sweep[li].2,
                    _ => sweep[li].3,
                })
                .collect();
            sw.push_row(load, &row);
        }
        r.push_sweep(sw);
    }
    r.finish(&args);
}
