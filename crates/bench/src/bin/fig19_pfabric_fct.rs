//! Figure 19 — "Effect of using an Approximate Queue on the performance of
//! pFabric in terms of normalized flow completion times": DCTCP vs pFabric
//! vs pFabric-Approx across load, web-search workload, leaf-spine fabric.
//!
//! Default: the scaled (32-host) fabric with the full load sweep.
//! `--quick`: fewer loads/flows. `--paper`: the 144-host topology.

use eiffel_bench::{quick_mode, report, runners};
use eiffel_dcsim::{System, Topology};

fn main() {
    let quick = quick_mode();
    let paper_topo = std::env::args().any(|a| a == "--paper");
    let topo = if paper_topo {
        Topology::paper()
    } else {
        Topology::small()
    };
    let loads: Vec<f64> = if quick {
        vec![0.2, 0.4, 0.6]
    } else {
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
    };
    let flows = if quick { 200 } else { 1_000 };
    report::banner(
        "FIGURE 19 — normalized FCT vs load (web-search workload)",
        &format!(
            "{}-host leaf-spine, {flows} flows/point; panels: avg (0,100kB], \
             p99 (0,100kB], avg (10MB,∞)",
            topo.hosts()
        ),
    );
    let systems = [
        ("DCTCP", System::Dctcp),
        ("pFabric", System::PfabricExact),
        ("pFabric-Approx", System::PfabricApprox),
    ];
    let mut sweeps = Vec::new();
    for (name, sys) in systems {
        let rows = runners::pfabric_fct_sweep(sys, topo, &loads, flows, 0xF19);
        sweeps.push((name, rows));
    }
    for (panel, idx) in [
        ("Average NFCT, flows (0, 100kB]", 1usize),
        ("99th percentile NFCT, flows (0, 100kB]", 2),
        ("Average NFCT, flows (10MB, inf)", 3),
    ] {
        println!("\n--- {panel} ---");
        let mut rows = Vec::new();
        for (li, &load) in loads.iter().enumerate() {
            let mut row = vec![format!("{load:.1}")];
            for (_, sweep) in &sweeps {
                let v = match idx {
                    1 => sweep[li].1,
                    2 => sweep[li].2,
                    _ => sweep[li].3,
                };
                row.push(if v.is_nan() {
                    "-".into()
                } else {
                    format!("{v:.2}")
                });
            }
            rows.push(row);
        }
        report::table(&["load", "DCTCP", "pFabric", "pFabric-Approx"], &rows);
    }
    println!(
        "\nPaper: \"approximation has minimal effect on overall network behavior\" — \
         the two pFabric series should track each other and beat DCTCP on small-flow \
         FCT."
    );
}
