//! Figure 19 — "Effect of using an Approximate Queue on the performance of
//! pFabric in terms of normalized flow completion times": DCTCP vs pFabric
//! vs pFabric-Approx across load, web-search workload, leaf-spine fabric.
//!
//! Default: the scaled (32-host) fabric with the full load sweep.
//! `--quick`: fewer loads/flows. `--paper`: the 144-host topology.
//! `--json <path>` records the run. The report also carries the dcsim
//! event-loop throughput per system and a heap-vs-wheel scheduler backend
//! comparison (see `eiffel_bench::runners::fig19_report`).

use eiffel_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let paper_topo = std::env::args().any(|a| a == "--paper");
    let scale = runners::Fig19Scale::from_args(&args, paper_topo);
    runners::fig19_report(&args, &scale).finish(&args);
}
