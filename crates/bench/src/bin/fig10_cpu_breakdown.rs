//! Figure 10 — "detailed CPU utilization of Carousel and Eiffel in terms of
//! system processes (left) and soft interrupt servicing (right)".
//!
//! `--quick` runs a scaled-down workload; `--json <path>` records the run.

use eiffel_bench::report::{BenchReport, Sweep};
use eiffel_bench::{report, runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let scale = if args.quick {
        runners::KernelShapingScale::quick()
    } else {
        runners::KernelShapingScale::default_scale()
    };
    let mut r = BenchReport::new(
        "fig10_cpu_breakdown",
        "Figure 10",
        "CPU breakdown: system vs softIRQ (CDF), Carousel vs Eiffel",
        &args,
    );
    r.paper_claim(
        "\"the main difference is in the overhead introduced by Carousel in firing timers at \
         constant intervals while Eiffel can trigger timers exactly when needed\" — the softirq \
         share should dominate Carousel's total (§5.1.1, Figure 10).",
    );
    r.config_num("flows", scale.flows as f64);
    r.config_num("aggregate_gbps", scale.aggregate.as_bps() as f64 / 1e9);
    r.config_str(
        "method",
        "same workload as Figure 9; enqueue path = system, timer/dequeue path = softIRQ",
    );

    let reports = runners::kernel_shaping(&scale);
    for sys in reports.iter().filter(|sys| sys.name != "fq") {
        let mut syscores: Vec<f64> = sys.breakdown.iter().map(|&(s, _)| s).collect();
        let mut irq: Vec<f64> = sys.breakdown.iter().map(|&(_, i)| i).collect();
        syscores.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        irq.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mut sw = Sweep::new(
            format!("{} (timer fires = {})", sys.name, sys.timer_fires),
            "CDF",
        );
        sw.add_series("system", "cores", 4);
        sw.add_series("softirq", "cores", 4);
        for ((s, frac), (i, _)) in report::cdf(&syscores, 10)
            .into_iter()
            .zip(report::cdf(&irq, 10))
        {
            sw.push_row(frac, &[s, i]);
        }
        r.push_sweep(sw);
    }
    r.finish(&args);
}
