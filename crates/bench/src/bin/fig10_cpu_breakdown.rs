//! Figure 10 — "detailed CPU utilization of Carousel and Eiffel in terms of
//! system processes (left) and soft interrupt servicing (right)": per-system
//! system/softIRQ CPU CDFs on the virtual-clock host and on the threaded
//! runtime's wall-clock meters.
//!
//! The report is built by [`eiffel_bench::runners::fig10_report`] so tests
//! and CI validate the exact path this binary records.
//!
//! `--quick` runs a scaled-down workload; `--json <path>` records the run.

use eiffel_bench::runners::{fig10_report, Fig10Scale};
use eiffel_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let scale = Fig10Scale::from_args(&args);
    fig10_report(&args, &scale).finish(&args);
}
