//! Figure 10 — "detailed CPU utilization of Carousel and Eiffel in terms of
//! system processes (left) and soft interrupt servicing (right)".
//!
//! `--quick` runs a scaled-down workload.

use eiffel_bench::{quick_mode, report, runners};

fn main() {
    let scale = if quick_mode() {
        runners::KernelShapingScale::quick()
    } else {
        runners::KernelShapingScale::default_scale()
    };
    report::banner(
        "FIGURE 10 — CPU breakdown: system vs softIRQ (CDF), Carousel vs Eiffel",
        "Same workload as Figure 9; enqueue path = system, timer/dequeue path = softIRQ",
    );
    let reports = runners::kernel_shaping(&scale);
    for r in reports.iter().filter(|r| r.name != "fq") {
        let mut sys: Vec<f64> = r.breakdown.iter().map(|&(s, _)| s).collect();
        let mut irq: Vec<f64> = r.breakdown.iter().map(|&(_, i)| i).collect();
        sys.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        irq.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        println!("\n[{}] timer fires = {}", r.name, r.timer_fires);
        let rows: Vec<Vec<String>> = report::cdf(&sys, 10)
            .into_iter()
            .zip(report::cdf(&irq, 10))
            .map(|((s, f), (i, _))| vec![format!("{f:.2}"), format!("{s:.4}"), format!("{i:.4}")])
            .collect();
        report::table(&["CDF", "system cores", "softirq cores"], &rows);
    }
    println!(
        "\nPaper: \"the main difference is in the overhead introduced by Carousel in \
         firing timers at constant intervals while Eiffel can trigger timers exactly \
         when needed\" — the softirq column should dominate Carousel's total."
    );
}
