//! Figure 15 — "Performance of pFabric implementation using cFFS and a
//! binary heap showing Eiffel sustaining line rate at 5x number of flows":
//! achieved rate vs flow count, 1500B packets, one core.
//!
//! `--quick` shrinks the sweep and durations.

use std::time::Duration;

use eiffel_bench::{quick_mode, report, runners};

fn main() {
    let quick = quick_mode();
    let flows: &[usize] = if quick {
        &[100, 1_000, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000, 1_000_000]
    };
    let dur = Duration::from_millis(if quick { 100 } else { 800 });
    report::banner(
        "FIGURE 15 — pFabric rate vs #flows (cFFS-family vs binary heap)",
        "per-flow ranking + on-dequeue ranking; heap baseline re-heapifies on rank change",
    );
    let mut rows = Vec::new();
    for &n in flows {
        let e = runners::pfabric_max_rate(true, n, dur);
        let h = runners::pfabric_max_rate(false, n, dur);
        rows.push(vec![n.to_string(), format!("{e:.0}"), format!("{h:.0}")]);
    }
    report::table(
        &[
            "flows",
            "pFabric-Eiffel (Mbps)",
            "pFabric-BinaryHeap (Mbps)",
        ],
        &rows,
    );
    println!("\nPaper: Eiffel sustains line rate at 5x the number of flows.");
}
