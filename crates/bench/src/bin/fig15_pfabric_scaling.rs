//! Figure 15 — "Performance of pFabric implementation using cFFS and a
//! binary heap showing Eiffel sustaining line rate at 5x number of flows":
//! achieved rate vs flow count, 1500B packets, across host-pipeline shapes
//! (shard {1, 2, 4} scheduler instances × dequeue batch {1, 16}).
//!
//! `--quick` shrinks the sweep and durations; `--json <path>` records the
//! run. The report construction lives in
//! [`eiffel_bench::runners::fig15_report`] so tests and CI validate the
//! exact path this binary records.

use eiffel_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let scale = runners::Fig15Scale::from_args(&args);
    runners::fig15_report(&args, &scale).finish(&args);
}
