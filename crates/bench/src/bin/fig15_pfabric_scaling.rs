//! Figure 15 — "Performance of pFabric implementation using cFFS and a
//! binary heap showing Eiffel sustaining line rate at 5x number of flows":
//! achieved rate vs flow count, 1500B packets, one core.
//!
//! `--quick` shrinks the sweep and durations; `--json <path>` records the
//! run.

use std::time::Duration;

use eiffel_bench::report::{BenchReport, Sweep};
use eiffel_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let flows: &[usize] = if args.quick {
        &[100, 1_000, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000, 1_000_000]
    };
    let dur = Duration::from_millis(if args.quick { 100 } else { 800 });
    let mut r = BenchReport::new(
        "fig15_pfabric_scaling",
        "Figure 15",
        "pFabric rate vs #flows (cFFS-family vs binary heap)",
        &args,
    );
    r.paper_claim("Eiffel sustains line rate at 5x the number of flows (§5.1.3, Figure 15).");
    r.config_num("duration_ms_per_cell", dur.as_millis() as f64);
    r.config_num("pkt_bytes", 1_500.0);
    r.config_str(
        "method",
        "per-flow ranking + on-dequeue ranking; heap baseline re-heapifies on rank change",
    );
    let mut sw = Sweep::new("", "flows");
    sw.add_series("pFabric-Eiffel", "Mbps", 0);
    sw.add_series("pFabric-BinaryHeap", "Mbps", 0);
    for &n in flows {
        let e = runners::pfabric_max_rate(true, n, dur);
        let h = runners::pfabric_max_rate(false, n, dur);
        sw.push_row(n, &[e, h]);
    }
    r.push_sweep(sw);
    r.finish(&args);
}
