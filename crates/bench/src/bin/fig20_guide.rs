//! Figure 20 — "Decision tree for selecting a priority queue based on the
//! characteristics of the scheduling algorithm", exercised on the paper's
//! canonical policies.

use eiffel_bench::report;
use eiffel_core::{recommend, UseCase};

fn main() {
    report::banner(
        "FIGURE 20 — queue selection decision tree",
        "recommend() from eiffel-core::guide on the paper's canonical policies",
    );
    let cases = [
        (
            "802.1Q strict priority (8 levels)",
            UseCase {
                moving_range: false,
                priority_levels: 8,
                uniform_occupancy: false,
            },
        ),
        (
            "pFabric remaining-size ranks (fixed range)",
            UseCase {
                moving_range: false,
                priority_levels: 100_000,
                uniform_occupancy: false,
            },
        ),
        (
            "Carousel-style rate limiting (moving range, skewed)",
            UseCase {
                moving_range: true,
                priority_levels: 20_000,
                uniform_occupancy: false,
            },
        ),
        (
            "LSTF / hClock (moving range, highly occupied)",
            UseCase {
                moving_range: true,
                priority_levels: 10_000,
                uniform_occupancy: true,
            },
        ),
    ];
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|(name, uc)| vec![name.to_string(), format!("{:?}", recommend(uc))])
        .collect();
    report::table(&["policy", "recommendation"], &rows);
}
