//! Figure 20 — "Decision tree for selecting a priority queue based on the
//! characteristics of the scheduling algorithm", exercised on the paper's
//! canonical policies. `--json <path>` records the outcome.

use eiffel_bench::report::{BenchReport, TextTable};
use eiffel_bench::BenchArgs;
use eiffel_core::{recommend, UseCase};

fn main() {
    let args = BenchArgs::parse();
    let mut r = BenchReport::new(
        "fig20_guide",
        "Figure 20",
        "queue selection decision tree (recommend() from eiffel-core::guide)",
        &args,
    );
    r.paper_claim(
        "few levels → any priority queue; fixed range → FFS-based; moving range → cFFS, or the \
         approximate queue when occupancy is dense and uniform (§6, Figure 20).",
    );
    let cases = [
        (
            "802.1Q strict priority (8 levels)",
            UseCase {
                moving_range: false,
                priority_levels: 8,
                uniform_occupancy: false,
            },
        ),
        (
            "pFabric remaining-size ranks (fixed range)",
            UseCase {
                moving_range: false,
                priority_levels: 100_000,
                uniform_occupancy: false,
            },
        ),
        (
            "Carousel-style rate limiting (moving range, skewed)",
            UseCase {
                moving_range: true,
                priority_levels: 20_000,
                uniform_occupancy: false,
            },
        ),
        (
            "LSTF / hClock (moving range, highly occupied)",
            UseCase {
                moving_range: true,
                priority_levels: 10_000,
                uniform_occupancy: true,
            },
        ),
    ];
    let mut t = TextTable::new("", &["policy", "recommendation"]);
    t.rows = cases
        .iter()
        .map(|(name, uc)| vec![name.to_string(), format!("{:?}", recommend(uc))])
        .collect();
    r.push_table(t);
    r.finish(&args);
}
