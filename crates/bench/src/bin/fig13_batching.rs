//! Figure 13 — "Effect of batching and packet size on throughput for both
//! Eiffel and hClock for 5k flows": {60B, 1500B} × {no batching, per-flow
//! batching}.
//!
//! `--quick` shrinks flow count and durations.

use std::time::Duration;

use eiffel_bench::{quick_mode, report, runners};

fn main() {
    let quick = quick_mode();
    let flows = if quick { 500 } else { 5_000 };
    let dur = Duration::from_millis(if quick { 100 } else { 800 });
    report::banner(
        &format!("FIGURE 13 — batching × packet size, {flows} flows"),
        "per-flow batching = 8-packet runs from the generator (Buffer modules)",
    );
    let mut rows = Vec::new();
    for (batch_label, batch) in [("no batching", 1u32), ("batching", 8)] {
        for bytes in [60u32, 1_500] {
            let e = runners::hclock_max_rate("eiffel", flows, 10_000, bytes, batch, dur);
            let h = runners::hclock_max_rate("hclock", flows, 10_000, bytes, batch, dur);
            rows.push(vec![
                format!("{batch_label} {bytes}B"),
                format!("{h:.0}"),
                format!("{e:.0}"),
            ]);
        }
    }
    report::table(&["case", "hClock (Mbps)", "Eiffel (Mbps)"], &rows);
    println!(
        "\nPaper: with per-flow batching and small packets both schedulers approach \
         line rate (Eiffel 5-10% behind); without batching Eiffel wins at large \
         packet sizes."
    );
}
