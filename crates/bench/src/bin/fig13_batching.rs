//! Figure 13 — "Effect of batching and packet size on throughput for both
//! Eiffel and hClock for 5k flows": {60B, 1500B} × {no batching, per-flow
//! batching}.
//!
//! `--quick` shrinks flow count and durations; `--json <path>` records the
//! run.

use std::time::Duration;

use eiffel_bench::report::{BenchReport, Sweep};
use eiffel_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let flows = if args.quick { 500 } else { 5_000 };
    let dur = Duration::from_millis(if args.quick { 100 } else { 800 });
    let mut r = BenchReport::new(
        "fig13_batching",
        "Figure 13",
        format!("batching × packet size, {flows} flows"),
        &args,
    );
    r.paper_claim(
        "with per-flow batching and small packets both schedulers approach line rate (Eiffel \
         5-10% behind); without batching Eiffel wins at large packet sizes (§5.1.2, Figure 13).",
    );
    r.config_num("flows", flows as f64);
    r.config_num("duration_ms_per_cell", dur.as_millis() as f64);
    r.config_str(
        "batching",
        "per-flow batching = 8-packet runs from the generator (Buffer modules)",
    );
    let mut sw = Sweep::new("", "case");
    sw.add_series("hClock (min-heap)", "Mbps", 0);
    sw.add_series("Eiffel-hClock", "Mbps", 0);
    for (batch_label, batch) in [("no batching", 1u32), ("batching", 8)] {
        for bytes in [60u32, 1_500] {
            let e = runners::hclock_max_rate("eiffel", flows, 10_000, bytes, batch, dur);
            let h = runners::hclock_max_rate("hclock", flows, 10_000, bytes, batch, dur);
            sw.push_row(format!("{batch_label} {bytes}B"), &[h, e]);
        }
    }
    r.push_sweep(sw);
    r.finish(&args);
}
