//! Figure 12 — "maximum supported aggregate rate limit (top) and behavior
//! at a rate limit of 5 Gbps (bottom) for hClock, Eiffel's implementation
//! of hClock, and BESS tc on a single core with no batching".
//!
//! 1500B packets; the busy-poll harness measures achieved Mbps in real
//! time on one core, plus a CPU-bound capacity panel (see
//! `runners::fig12_report`). `--quick` shrinks the sweep and durations;
//! `--json <path>` records the run (the committed
//! `BENCH_fig12_hclock_scaling.json` is such a report).

use eiffel_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    runners::fig12_report(&args).finish(&args);
}
