//! Figure 12 — "maximum supported aggregate rate limit (top) and behavior
//! at a rate limit of 5 Gbps (bottom) for hClock, Eiffel's implementation
//! of hClock, and BESS tc on a single core with no batching".
//!
//! 1500B packets; the busy-poll harness measures achieved Mbps in real
//! time on one core. `--quick` shrinks the sweep and durations.

use std::time::Duration;

use eiffel_bench::{quick_mode, report, runners};

fn main() {
    let quick = quick_mode();
    let flows: &[usize] = if quick {
        &[10, 100, 1_000]
    } else {
        &[10, 100, 1_000, 10_000, 50_000, 100_000]
    };
    let dur = Duration::from_millis(if quick { 100 } else { 1_000 });
    for (title, agg_mbps) in [
        ("10 Gbps line rate", 10_000u64),
        ("5 Gbps aggregate rate limit", 5_000),
    ] {
        report::banner(
            &format!("FIGURE 12 — max aggregate rate vs #flows ({title})"),
            "series: Eiffel-hClock, hClock (min-heap), BESS tc — Mbps on one core",
        );
        let mut rows = Vec::new();
        for &n in flows {
            let e = runners::hclock_max_rate("eiffel", n, agg_mbps, 1_500, 1, dur);
            let h = runners::hclock_max_rate("hclock", n, agg_mbps, 1_500, 1, dur);
            let t = runners::hclock_max_rate("tc", n, agg_mbps, 1_500, 1, dur);
            rows.push(vec![
                n.to_string(),
                format!("{e:.0}"),
                format!("{h:.0}"),
                format!("{t:.0}"),
            ]);
        }
        report::table(
            &["flows", "Eiffel (Mbps)", "hClock (Mbps)", "BESS tc (Mbps)"],
            &rows,
        );
        println!();
    }
    println!(
        "Paper: Eiffel sustains line rate at up to 40x the number of flows compared \
         to hClock, with a larger advantage over BESS tc."
    );
}
