//! Figure 16 — "Effect of number of packets per bucket on queue performance
//! for 5k (left) and 10k (right) buckets": drain rate in Mpps vs average
//! packets per bucket for Approx, cFFS, BH.
//!
//! The report is built by [`eiffel_bench::runners::fig16_report`] so tests
//! and CI validate the exact path this binary records.
//!
//! `--quick` shortens measurement budgets; `--json <path>` records the run.

use eiffel_bench::runners::{fig16_report, Fig16Scale};
use eiffel_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let scale = Fig16Scale::from_args(&args);
    fig16_report(&args, &scale).finish(&args);
}
