//! Figure 16 — "Effect of number of packets per bucket on queue performance
//! for 5k (left) and 10k (right) buckets": drain rate in Mpps vs average
//! packets per bucket for Approx, cFFS, BH.
//!
//! `--quick` shortens measurement budgets.

use std::time::Duration;

use eiffel_bench::microbench::{drain_rate_packets_per_bucket, QueueUnderTest};
use eiffel_bench::{quick_mode, report};

fn main() {
    let budget = Duration::from_millis(if quick_mode() { 50 } else { 400 });
    for nb in [5_000usize, 10_000] {
        report::banner(
            &format!("FIGURE 16 — Mpps vs packets/bucket, {nb} buckets"),
            "pre-filled queue fully drained; drain phase timed",
        );
        let mut rows = Vec::new();
        for ppb in [1usize, 2, 4, 6, 8] {
            let mut row = vec![ppb.to_string()];
            for kind in [
                QueueUnderTest::Approx,
                QueueUnderTest::Cffs,
                QueueUnderTest::BucketHeap,
            ] {
                let mpps = drain_rate_packets_per_bucket(kind, nb, ppb, budget);
                row.push(format!("{mpps:.2}"));
            }
            rows.push(row);
        }
        report::table(
            &["pkts/bucket", "Approx (Mpps)", "cFFS (Mpps)", "BH (Mpps)"],
            &rows,
        );
        println!();
    }
    println!(
        "Paper: at few packets per bucket the approximate queue leads (up to 9% over \
         cFFS at 10k buckets); more packets per bucket amortize the min-find and the \
         queues converge. BH trails throughout."
    );
}
