//! Figure 16 — "Effect of number of packets per bucket on queue performance
//! for 5k (left) and 10k (right) buckets": drain rate in Mpps vs average
//! packets per bucket for Approx, cFFS, BH.
//!
//! `--quick` shortens measurement budgets; `--json <path>` records the run.

use std::time::Duration;

use eiffel_bench::microbench::{drain_rate_packets_per_bucket, QueueUnderTest};
use eiffel_bench::report::{BenchReport, Sweep};
use eiffel_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let budget = Duration::from_millis(if args.quick { 50 } else { 400 });
    let mut r = BenchReport::new(
        "fig16_packets_per_bucket",
        "Figure 16",
        "drain Mpps vs packets/bucket (pre-filled queue fully drained; drain phase timed)",
        &args,
    );
    r.paper_claim(
        "at few packets per bucket the approximate queue leads (up to 9% over cFFS at 10k \
         buckets); more packets per bucket amortize the min-find and the queues converge; BH \
         trails throughout (§5.2, Figure 16).",
    );
    r.config_num("budget_ms_per_cell", budget.as_millis() as f64);
    for nb in [5_000usize, 10_000] {
        let mut sw = Sweep::new(format!("{nb} buckets"), "pkts/bucket");
        sw.add_series("Approx", "Mpps", 2);
        sw.add_series("cFFS", "Mpps", 2);
        sw.add_series("BH", "Mpps", 2);
        for ppb in [1usize, 2, 4, 6, 8] {
            let row: Vec<f64> = [
                QueueUnderTest::Approx,
                QueueUnderTest::Cffs,
                QueueUnderTest::BucketHeap,
            ]
            .into_iter()
            .map(|kind| drain_rate_packets_per_bucket(kind, nb, ppb, budget))
            .collect();
            sw.push_row(ppb, &row);
        }
        r.push_sweep(sw);
    }
    r.finish(&args);
}
