//! Tree-policy cost cell — per-packet dequeue cost of the §3.2 node
//! programs (WFQ, LSTF, hClock, HFSC, plus the FIFO floor) running as
//! ranking transactions on the programmable PIFO tree, swept over the
//! consumer's `dequeue_batch` budget.
//!
//! The report is built by [`eiffel_bench::runners::fig_tree_policy_report`]
//! so tests and CI validate the exact path this binary records.
//!
//! `--quick` shortens measurement budgets; `--json <path>` records the run.

use eiffel_bench::runners::{fig_tree_policy_report, TreePolicyScale};
use eiffel_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let scale = TreePolicyScale::from_args(&args);
    fig_tree_policy_report(&args, &scale).finish(&args);
}
