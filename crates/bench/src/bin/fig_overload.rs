//! Overload control — ECN-reactive closed-loop sources vs open-loop
//! sources at up to millions of flows through the threaded runtime, under
//! a hard memory budget with tiered graceful degradation: SLO-goodput
//! collapse curves, tail sojourn, per-tier admission decisions, exact
//! packet conservation asserted on every cell.
//!
//! `--quick` shrinks the flow grid and wall budget; `--json <path>`
//! records the run. The report construction lives in
//! [`eiffel_bench::runners::fig_overload_report`] so tests and CI validate
//! the exact path this binary records.

use eiffel_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let scale = runners::OverloadScale::from_args(&args);
    runners::fig_overload_report(&args, &scale).finish(&args);
}
