//! Table 1 — "Proposed work in the context of the state of the art in
//! scheduling": the capability matrix, tied to the implementations in this
//! workspace. `--json <path>` records the matrix as a report.

use eiffel_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    runners::table1_report(&args).finish(&args);
}
