//! Table 1 — "Proposed work in the context of the state of the art in
//! scheduling": the capability matrix, tied to the implementations in this
//! workspace.

use eiffel_bench::{report, runners};

fn main() {
    report::banner(
        "TABLE 1 — scheduler landscape",
        "Flexibility columns: unit of scheduling, work conserving, shaping, programmable",
    );
    report::table(
        &[
            "System",
            "Efficiency",
            "HW/SW",
            "Unit",
            "WorkCons",
            "Shaping",
            "Prog",
            "Notes",
        ],
        &runners::table1_rows(),
    );
}
