//! Figure 18 — "Effect of having empty buckets on the error of fetching the
//! minimum element for the approximate queue": average bucket-index error
//! vs occupancy for 5k and 10k buckets.
//!
//! `--quick` reduces rounds; `--json <path>` records the run.

use eiffel_bench::microbench::approx_error_at_occupancy;
use eiffel_bench::report::{BenchReport, Sweep};
use eiffel_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let rounds = if args.quick { 8 } else { 48 };
    let mut r = BenchReport::new(
        "fig18_approx_error",
        "Figure 18",
        "approximate queue error vs occupancy",
        &args,
    );
    r.paper_claim(
        "error grows as buckets empty (≈12 at 0.7 occupancy down to ≈2 near full for 10k \
         buckets); \"cases where the queue is more than 30% empty should trigger changes in the \
         queue's granularity\" (§5.2, Figure 18).",
    );
    r.config_num("rounds", rounds as f64);
    r.config_str(
        "method",
        "error = |selected bucket − true best bucket| per lookup, exact shadow tracked",
    );
    let mut sw = Sweep::new("", "occupancy");
    sw.add_series("5k buckets", "avg bucket-index error", 2);
    sw.add_series("10k buckets", "avg bucket-index error", 2);
    for occ in [0.7, 0.8, 0.9, 0.99] {
        let e5 = approx_error_at_occupancy(5_000, occ, rounds, 0xF18);
        let e10 = approx_error_at_occupancy(10_000, occ, rounds, 0xF18);
        sw.push_row(occ, &[e5, e10]);
    }
    r.push_sweep(sw);
    r.finish(&args);
}
