//! Figure 18 — "Effect of having empty buckets on the error of fetching the
//! minimum element for the approximate queue": average bucket-index error
//! vs occupancy for 5k and 10k buckets.
//!
//! `--quick` reduces rounds.

use eiffel_bench::microbench::approx_error_at_occupancy;
use eiffel_bench::{quick_mode, report};

fn main() {
    let rounds = if quick_mode() { 4 } else { 16 };
    report::banner(
        "FIGURE 18 — approximate queue error vs occupancy",
        "error = |selected bucket − true best bucket| per lookup, exact shadow tracked",
    );
    let mut rows = Vec::new();
    for occ in [0.7, 0.8, 0.9, 0.99] {
        let e5 = approx_error_at_occupancy(5_000, occ, rounds, 0xF18);
        let e10 = approx_error_at_occupancy(10_000, occ, rounds, 0xF18);
        rows.push(vec![
            format!("{occ:.2}"),
            format!("{e5:.2}"),
            format!("{e10:.2}"),
        ]);
    }
    report::table(
        &["occupancy", "5k buckets (avg err)", "10k buckets (avg err)"],
        &rows,
    );
    println!(
        "\nPaper: error grows as buckets empty (≈12 at 0.7 occupancy down to ≈2 near \
         full for 10k buckets); \"cases where the queue is more than 30% empty should \
         trigger changes in the queue's granularity\"."
    );
}
