//! Figure 18 — "Effect of having empty buckets on the error of fetching the
//! minimum element for the approximate queue": average bucket-index error
//! vs occupancy for 5k and 10k buckets, plus oracle-audited drain-quality
//! panels scoring all five bake-off backends on the same sparse fill.
//!
//! The report is built by [`eiffel_bench::runners::fig18_report`] so tests
//! and CI validate the exact path this binary records.
//!
//! `--quick` reduces rounds; `--json <path>` records the run.

use eiffel_bench::runners::{fig18_report, Fig18Scale};
use eiffel_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let scale = Fig18Scale::from_args(&args);
    fig18_report(&args, &scale).finish(&args);
}
