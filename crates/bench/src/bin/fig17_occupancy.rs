//! Figure 17 — "Effect of queue occupancy on performance of Approximate
//! Queue for 5k (left) and 10k (right) buckets": drain Mpps vs fraction of
//! non-empty buckets for BH, Approx, cFFS.
//!
//! `--quick` shortens measurement budgets; `--json <path>` records the run.

use std::time::Duration;

use eiffel_bench::microbench::{drain_rate_occupancy, QueueUnderTest};
use eiffel_bench::report::{BenchReport, Sweep};
use eiffel_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let budget = Duration::from_millis(if args.quick { 50 } else { 400 });
    let mut r = BenchReport::new(
        "fig17_occupancy",
        "Figure 17",
        "drain Mpps vs occupancy (each occupied bucket holds one packet; drain phase timed)",
        &args,
    );
    r.paper_claim(
        "empty buckets trigger the approximate queue's linear search, so its throughput climbs \
         with occupancy; cFFS is insensitive (§5.2, Figure 17).",
    );
    r.config_num("budget_ms_per_cell", budget.as_millis() as f64);
    for nb in [5_000usize, 10_000] {
        let mut sw = Sweep::new(format!("{nb} buckets"), "occupancy");
        sw.add_series("BH", "Mpps", 2);
        sw.add_series("Approx", "Mpps", 2);
        sw.add_series("cFFS", "Mpps", 2);
        for occ in [0.7, 0.8, 0.9, 0.99] {
            let row: Vec<f64> = [
                QueueUnderTest::BucketHeap,
                QueueUnderTest::Approx,
                QueueUnderTest::Cffs,
            ]
            .into_iter()
            .map(|kind| drain_rate_occupancy(kind, nb, occ, budget))
            .collect();
            sw.push_row(occ, &row);
        }
        r.push_sweep(sw);
    }
    r.finish(&args);
}
