//! Figure 17 — "Effect of queue occupancy on performance of Approximate
//! Queue for 5k (left) and 10k (right) buckets": drain Mpps vs fraction of
//! non-empty buckets for BH, Approx, cFFS.
//!
//! `--quick` shortens measurement budgets.

use std::time::Duration;

use eiffel_bench::microbench::{drain_rate_occupancy, QueueUnderTest};
use eiffel_bench::{quick_mode, report};

fn main() {
    let budget = Duration::from_millis(if quick_mode() { 50 } else { 400 });
    for nb in [5_000usize, 10_000] {
        report::banner(
            &format!("FIGURE 17 — Mpps vs occupancy, {nb} buckets"),
            "each occupied bucket holds one packet; drain phase timed",
        );
        let mut rows = Vec::new();
        for occ in [0.7, 0.8, 0.9, 0.99] {
            let mut row = vec![format!("{occ:.2}")];
            for kind in [
                QueueUnderTest::BucketHeap,
                QueueUnderTest::Approx,
                QueueUnderTest::Cffs,
            ] {
                let mpps = drain_rate_occupancy(kind, nb, occ, budget);
                row.push(format!("{mpps:.2}"));
            }
            rows.push(row);
        }
        report::table(
            &["occupancy", "BH (Mpps)", "Approx (Mpps)", "cFFS (Mpps)"],
            &rows,
        );
        println!();
    }
    println!(
        "Paper: empty buckets trigger the approximate queue's linear search, so its \
         throughput climbs with occupancy; cFFS is insensitive."
    );
}
