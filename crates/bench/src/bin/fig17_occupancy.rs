//! Figure 17 — "Effect of queue occupancy on performance of Approximate
//! Queue for 5k (left) and 10k (right) buckets": drain Mpps vs fraction of
//! non-empty buckets for BH, Approx, cFFS, over three fill shapes (the
//! paper's random subset plus dense-prefix and clustered bounds).
//!
//! The report is built by [`eiffel_bench::runners::fig17_report`] so tests
//! and CI validate the exact path this binary records.
//!
//! `--quick` shortens measurement budgets; `--json <path>` records the run.

use eiffel_bench::runners::{fig17_report, Fig17Scale};
use eiffel_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let scale = Fig17Scale::from_args(&args);
    fig17_report(&args, &scale).finish(&args);
}
