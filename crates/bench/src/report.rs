//! Structured bench reports: one schema for every figure binary.
//!
//! Every `fig*`/`table1` binary builds a [`BenchReport`] — the machine-
//! readable record of one experiment run — then calls
//! [`BenchReport::finish`], which renders the familiar stdout tables *and*
//! writes the report as JSON when `--json <path>` (or the
//! `EIFFEL_BENCH_JSON` environment variable) is set. Committed
//! `BENCH_*.json` files at the repo root are exactly these reports.
//!
//! # Report schema (`eiffel-bench-report/v1`)
//!
//! The JSON document is one object with the following keys, serialized in
//! this order by [`BenchReport::to_json`]:
//!
//! | Key | Type | Meaning |
//! |---|---|---|
//! | `schema` | string | Always [`SCHEMA`] (`"eiffel-bench-report/v1"`) |
//! | `figure` | string | Binary/figure id, e.g. `"fig12_hclock_scaling"` |
//! | `artifact` | string | Paper artifact, e.g. `"Figure 12"` |
//! | `title` | string | Human title of the experiment |
//! | `paper_claim` | string | The claim being reproduced, with citation |
//! | `quick` | bool | Whether this was a scaled-down `--quick` run |
//! | `config` | object | Operating-point knobs (durations, flow counts…) |
//! | `environment` | object | Host, CPU count, rustc, profile, UTC date, command line |
//! | `sweeps` | array | Numeric results — see [`Sweep`] |
//! | `tables` | array | Qualitative results — see [`TextTable`] |
//! | `notes` | array of string | Free-form observations |
//! | `wall_secs` | number | Wall-clock seconds from report creation to `finish` |
//!
//! Each sweep object holds `name`, `param` (the sweep parameter's name,
//! e.g. `"flows"`), `param_values` (numbers or labels, one per row) and
//! `series`: an array of `{name, unit, values}` where `values[i]` is the
//! measurement at `param_values[i]`. Missing samples are `null` (NaN has
//! no JSON representation). Units are spelled out per series (`"Mbps"`,
//! `"Mpps"`, `"cores"`, `"buckets"`, `"normalized FCT"`), so a report is
//! self-describing without the binary that wrote it.

use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::json::JsonValue;

/// Schema identifier stamped into every report.
pub const SCHEMA: &str = "eiffel-bench-report/v1";

/// Prints a header banner for a figure.
pub fn banner(title: &str, note: &str) {
    println!("==================================================================");
    println!("{title}");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("==================================================================");
}

/// Prints an aligned table: header row then data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&hdr));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Reduces sorted samples to a compact CDF of `points` levels
/// (`(value, cumulative fraction)` pairs).
pub fn cdf(sorted: &[f64], points: usize) -> Vec<(f64, f64)> {
    if sorted.is_empty() {
        return Vec::new();
    }
    let n = sorted.len();
    (1..=points)
        .map(|i| {
            let frac = i as f64 / points as f64;
            let idx = ((n as f64 * frac).ceil() as usize).clamp(1, n) - 1;
            (sorted[idx], frac)
        })
        .collect()
}

/// Shared command line of every figure binary: `--quick` plus the JSON
/// output destination (`--json <path>`, `--json=<path>`, or the
/// `EIFFEL_BENCH_JSON` environment variable; the flag wins).
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// Scaled-down run requested.
    pub quick: bool,
    /// Where to write the JSON report, if anywhere.
    pub json: Option<PathBuf>,
}

impl BenchArgs {
    /// Parses the process arguments and environment.
    pub fn parse() -> Self {
        Self::from_iter(
            std::env::args().skip(1),
            std::env::var("EIFFEL_BENCH_JSON").ok(),
        )
    }

    /// Parses from explicit values (testable form of [`BenchArgs::parse`]).
    pub fn from_iter(args: impl IntoIterator<Item = String>, env_json: Option<String>) -> Self {
        let mut out = BenchArgs {
            quick: false,
            json: env_json.filter(|s| !s.is_empty()).map(PathBuf::from),
        };
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            if a == "--quick" {
                out.quick = true;
            } else if a == "--json" {
                if let Some(p) = args.next() {
                    out.json = Some(PathBuf::from(p));
                }
            } else if let Some(p) = a.strip_prefix("--json=") {
                out.json = Some(PathBuf::from(p));
            }
        }
        out
    }
}

/// Environment metadata recorded in every report.
#[derive(Debug, Clone)]
pub struct Environment {
    /// CPU model (from `/proc/cpuinfo`) or OS name as a fallback.
    pub host: String,
    /// Available hardware parallelism.
    pub cpus: usize,
    /// `rustc --version` of the compiler that built the binary.
    pub rustc: String,
    /// Build profile (`release` or `debug`).
    pub profile: String,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date_utc: String,
    /// The command line that produced the report.
    pub cmdline: String,
}

impl Environment {
    /// Captures the current process environment.
    pub fn capture() -> Self {
        Environment {
            host: cpu_model(),
            cpus: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            rustc: env!("EIFFEL_BENCH_RUSTC_VERSION").to_string(),
            profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }
            .to_string(),
            date_utc: utc_date_today(),
            cmdline: std::env::args().collect::<Vec<_>>().join(" "),
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("host", JsonValue::string(&self.host)),
            ("cpus", JsonValue::Number(self.cpus as f64)),
            ("rustc", JsonValue::string(&self.rustc)),
            ("profile", JsonValue::string(&self.profile)),
            ("date_utc", JsonValue::string(&self.date_utc)),
            ("cmdline", JsonValue::string(&self.cmdline)),
        ])
    }
}

fn cpu_model() -> String {
    if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in info.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, name)) = rest.split_once(':') {
                    return name.trim().to_string();
                }
            }
        }
    }
    std::env::consts::OS.to_string()
}

/// Days-to-civil-date conversion (Howard Hinnant's algorithm), so reports
/// carry a date without a clock crate.
fn utc_date_today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// A sweep-parameter value: numeric (`flows = 10000`) or categorical
/// (`case = "no batching 60B"`).
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Numeric parameter; serialized as a JSON number.
    Num(f64),
    /// Categorical parameter; serialized as a JSON string.
    Label(String),
}

impl ParamValue {
    fn to_json(&self) -> JsonValue {
        match self {
            ParamValue::Num(n) => JsonValue::Number(*n),
            ParamValue::Label(s) => JsonValue::string(s),
        }
    }

    fn display(&self) -> String {
        match self {
            ParamValue::Num(n) => {
                if *n == n.trunc() && n.abs() < 9e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            ParamValue::Label(s) => s.clone(),
        }
    }
}

impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::Num(v as f64)
    }
}

impl From<u64> for ParamValue {
    fn from(v: u64) -> Self {
        ParamValue::Num(v as f64)
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Num(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Label(v.to_string())
    }
}

impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Label(v)
    }
}

/// One measured series of a sweep: `values[i]` is this series' sample at
/// the sweep's `param_values[i]`. `NaN` means "no sample" and serializes
/// as `null`.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name, e.g. `"Eiffel-hClock"`.
    pub name: String,
    /// Unit of every value, e.g. `"Mbps"`.
    pub unit: String,
    /// Decimal places used when rendering to stdout (JSON keeps full
    /// precision).
    pub decimals: usize,
    /// One sample per sweep row.
    pub values: Vec<f64>,
}

/// One numeric result block: a parameter axis and the series measured
/// along it. A figure with several panels (e.g. Figure 12's line-rate and
/// rate-limit experiments) holds one sweep per panel.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Panel name, e.g. `"10 Gbps line rate"`.
    pub name: String,
    /// Sweep parameter's name, e.g. `"flows"`.
    pub param: String,
    /// Parameter value of each row.
    pub param_values: Vec<ParamValue>,
    /// Measured series, each aligned with `param_values`.
    pub series: Vec<Series>,
}

impl Sweep {
    /// Creates an empty sweep over the named parameter.
    pub fn new(name: impl Into<String>, param: impl Into<String>) -> Self {
        Sweep {
            name: name.into(),
            param: param.into(),
            param_values: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Declares a series (order matters: it must match the value order
    /// later given to [`Sweep::push_row`]).
    pub fn add_series(
        &mut self,
        name: impl Into<String>,
        unit: impl Into<String>,
        decimals: usize,
    ) -> &mut Self {
        self.series.push(Series {
            name: name.into(),
            unit: unit.into(),
            decimals,
            values: Vec::new(),
        });
        self
    }

    /// Appends one row: the parameter value plus one sample per declared
    /// series, in declaration order.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the number of series.
    pub fn push_row(&mut self, param: impl Into<ParamValue>, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.series.len(),
            "one value per declared series"
        );
        self.param_values.push(param.into());
        for (s, &v) in self.series.iter_mut().zip(values) {
            s.values.push(v);
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", JsonValue::string(&self.name)),
            ("param", JsonValue::string(&self.param)),
            (
                "param_values",
                JsonValue::Array(self.param_values.iter().map(ParamValue::to_json).collect()),
            ),
            (
                "series",
                JsonValue::Array(
                    self.series
                        .iter()
                        .map(|s| {
                            JsonValue::object(vec![
                                ("name", JsonValue::string(&s.name)),
                                ("unit", JsonValue::string(&s.unit)),
                                (
                                    "values",
                                    JsonValue::Array(
                                        s.values.iter().map(|&v| JsonValue::Number(v)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn render(&self) {
        let mut headers: Vec<String> = vec![self.param.clone()];
        for s in &self.series {
            headers.push(if s.unit.is_empty() {
                s.name.clone()
            } else {
                format!("{} ({})", s.name, s.unit)
            });
        }
        let rows: Vec<Vec<String>> = self
            .param_values
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut row = vec![p.display()];
                for s in &self.series {
                    let v = s.values[i];
                    row.push(if v.is_nan() {
                        "-".to_string()
                    } else {
                        format!("{v:.prec$}", prec = s.decimals)
                    });
                }
                row
            })
            .collect();
        if !self.name.is_empty() {
            println!("--- {} ---", self.name);
        }
        let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
        table(&hdr, &rows);
        println!();
    }
}

/// One qualitative result block: a plain string matrix (Table 1, the
/// Figure 20 decision-tree output).
#[derive(Debug, Clone)]
pub struct TextTable {
    /// Block name.
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a text table from headers; rows are pushed by the caller.
    pub fn new(name: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            name: name.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", JsonValue::string(&self.name)),
            (
                "headers",
                JsonValue::Array(self.headers.iter().map(JsonValue::string).collect()),
            ),
            (
                "rows",
                JsonValue::Array(
                    self.rows
                        .iter()
                        .map(|r| JsonValue::Array(r.iter().map(JsonValue::string).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    fn render(&self) {
        if !self.name.is_empty() {
            println!("--- {} ---", self.name);
        }
        let hdr: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        table(&hdr, &self.rows);
        println!();
    }
}

/// The machine-readable record of one figure-binary run.
///
/// Build it as the experiment progresses (sweeps, tables, notes), then
/// call [`BenchReport::finish`] once: it renders the human tables to
/// stdout and writes the JSON document if the run asked for one. See the
/// [module docs](crate::report) for the JSON schema.
#[derive(Debug)]
pub struct BenchReport {
    /// Figure id — the binary name, e.g. `"fig12_hclock_scaling"`.
    pub figure: String,
    /// Paper artifact, e.g. `"Figure 12"`.
    pub artifact: String,
    /// Human title.
    pub title: String,
    /// The paper claim under reproduction, with a section citation.
    pub paper_claim: String,
    /// Whether this run used `--quick` scaling.
    pub quick: bool,
    /// Operating-point configuration recorded for reproducibility.
    pub config: Vec<(String, JsonValue)>,
    /// Captured environment metadata.
    pub env: Environment,
    /// Numeric result blocks.
    pub sweeps: Vec<Sweep>,
    /// Qualitative result blocks.
    pub tables: Vec<TextTable>,
    /// Free-form observations, printed after the tables.
    pub notes: Vec<String>,
    started: Instant,
}

impl BenchReport {
    /// Starts a report; the wall clock runs from here to
    /// [`BenchReport::finish`].
    pub fn new(
        figure: impl Into<String>,
        artifact: impl Into<String>,
        title: impl Into<String>,
        args: &BenchArgs,
    ) -> Self {
        BenchReport {
            figure: figure.into(),
            artifact: artifact.into(),
            title: title.into(),
            paper_claim: String::new(),
            quick: args.quick,
            config: Vec::new(),
            env: Environment::capture(),
            sweeps: Vec::new(),
            tables: Vec::new(),
            notes: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Sets the paper claim line.
    pub fn paper_claim(&mut self, claim: impl Into<String>) -> &mut Self {
        self.paper_claim = claim.into();
        self
    }

    /// Records a numeric operating-point knob.
    pub fn config_num(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.config.push((key.into(), JsonValue::Number(value)));
        self
    }

    /// Records a textual operating-point knob.
    pub fn config_str(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.config
            .push((key.into(), JsonValue::String(value.into())));
        self
    }

    /// Appends a completed sweep.
    pub fn push_sweep(&mut self, sweep: Sweep) -> &mut Self {
        self.sweeps.push(sweep);
        self
    }

    /// Appends a completed text table.
    pub fn push_table(&mut self, table: TextTable) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Appends an observation line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Serializes the report (schema `eiffel-bench-report/v1`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("schema", JsonValue::string(SCHEMA)),
            ("figure", JsonValue::string(&self.figure)),
            ("artifact", JsonValue::string(&self.artifact)),
            ("title", JsonValue::string(&self.title)),
            ("paper_claim", JsonValue::string(&self.paper_claim)),
            ("quick", JsonValue::Bool(self.quick)),
            ("config", JsonValue::Object(self.config.clone())),
            ("environment", self.env.to_json()),
            (
                "sweeps",
                JsonValue::Array(self.sweeps.iter().map(Sweep::to_json).collect()),
            ),
            (
                "tables",
                JsonValue::Array(self.tables.iter().map(TextTable::to_json).collect()),
            ),
            (
                "notes",
                JsonValue::Array(self.notes.iter().map(JsonValue::string).collect()),
            ),
            (
                "wall_secs",
                JsonValue::Number((self.started.elapsed().as_secs_f64() * 1e3).round() / 1e3),
            ),
        ])
    }

    /// Renders the report to stdout in the figure binaries' table style.
    pub fn render(&self) {
        banner(
            &format!("{} — {}", self.artifact.to_uppercase(), self.title),
            &if self.quick {
                "(--quick run: scaled-down sweep; not for the record)".to_string()
            } else {
                String::new()
            },
        );
        for sweep in &self.sweeps {
            sweep.render();
        }
        for t in &self.tables {
            t.render();
        }
        for n in &self.notes {
            println!("{n}");
        }
        if !self.paper_claim.is_empty() {
            println!("Paper: {}", self.paper_claim);
        }
    }

    /// Writes the JSON document to `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty_string())
    }

    /// Renders to stdout, then writes JSON if the run asked for it. Every
    /// figure binary's last call.
    pub fn finish(&self, args: &BenchArgs) {
        self.render();
        if let Some(path) = &args.json {
            match self.write_json(path) {
                Ok(()) => println!("\n[report] wrote {}", path.display()),
                Err(e) => {
                    eprintln!("[report] FAILED to write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reduces_monotonically() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let c = cdf(&samples, 10);
        assert_eq!(c.len(), 10);
        assert!((c[0].0 - 10.0).abs() < 1e-9);
        assert!((c[9].0 - 100.0).abs() < 1e-9);
        assert!(c.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
    }

    #[test]
    fn cdf_of_empty_is_empty() {
        assert!(cdf(&[], 5).is_empty());
    }

    #[test]
    fn args_parse_quick_and_json_forms() {
        let a = BenchArgs::from_iter(
            [
                "--quick".to_string(),
                "--json".to_string(),
                "out.json".to_string(),
            ],
            None,
        );
        assert!(a.quick);
        assert_eq!(a.json.as_deref(), Some(Path::new("out.json")));

        let a = BenchArgs::from_iter(["--json=x.json".to_string()], None);
        assert!(!a.quick);
        assert_eq!(a.json.as_deref(), Some(Path::new("x.json")));

        // Env var supplies a default; the flag overrides it.
        let a = BenchArgs::from_iter([], Some("env.json".to_string()));
        assert_eq!(a.json.as_deref(), Some(Path::new("env.json")));
        let a = BenchArgs::from_iter(
            ["--json".to_string(), "flag.json".to_string()],
            Some("env.json".to_string()),
        );
        assert_eq!(a.json.as_deref(), Some(Path::new("flag.json")));
    }

    #[test]
    fn report_round_trips_through_json() {
        let args = BenchArgs::from_iter(["--quick".to_string()], None);
        let mut r = BenchReport::new("fig00_test", "Figure 0", "unit-test report", &args);
        r.paper_claim("claims are cited (§0)");
        r.config_num("duration_ms", 100.0);
        r.config_str("workload", "uniform");
        let mut sw = Sweep::new("panel A", "flows");
        sw.add_series("Eiffel", "Mbps", 0);
        sw.add_series("heap", "Mbps", 0);
        sw.push_row(10usize, &[9_900.0, 9_700.0]);
        sw.push_row(100usize, &[9_950.0, f64::NAN]);
        r.push_sweep(sw);
        let mut t = TextTable::new("matrix", &["System", "Verdict"]);
        t.rows.push(vec!["Eiffel".into(), "O(1)".into()]);
        r.push_table(t);
        r.note("an observation with \"quotes\"");

        let text = r.to_json().to_pretty_string();
        let doc = JsonValue::parse(&text).expect("report JSON must parse");
        assert_eq!(doc.get("schema").unwrap().as_str().unwrap(), SCHEMA);
        assert_eq!(doc.get("figure").unwrap().as_str().unwrap(), "fig00_test");
        assert_eq!(doc.get("quick").unwrap().as_bool(), Some(true));
        let sweeps = doc.get("sweeps").unwrap().as_array().unwrap();
        assert_eq!(sweeps.len(), 1);
        let series = sweeps[0].get("series").unwrap().as_array().unwrap();
        assert_eq!(series[0].get("name").unwrap().as_str(), Some("Eiffel"));
        assert_eq!(series[0].get("unit").unwrap().as_str(), Some("Mbps"));
        // NaN became null.
        assert_eq!(
            series[1].get("values").unwrap().as_array().unwrap()[1],
            JsonValue::Null
        );
        // Environment is present and self-describing.
        let env = doc.get("environment").unwrap();
        assert!(env
            .get("rustc")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("rustc"));
        assert!(env.get("cpus").unwrap().as_f64().unwrap() >= 1.0);
        assert_eq!(env.get("date_utc").unwrap().as_str().unwrap().len(), 10);
        assert!(doc.get("wall_secs").unwrap().as_f64().is_some());
    }

    #[test]
    #[should_panic(expected = "one value per declared series")]
    fn sweep_rejects_ragged_rows() {
        let mut sw = Sweep::new("p", "x");
        sw.add_series("a", "u", 0);
        sw.push_row(1usize, &[1.0, 2.0]);
    }

    #[test]
    fn utc_date_is_sane() {
        let d = utc_date_today();
        // YYYY-MM-DD with a plausible year.
        assert_eq!(d.len(), 10);
        let year: i32 = d[..4].parse().unwrap();
        assert!((2024..2100).contains(&year), "{d}");
        assert_eq!(&d[4..5], "-");
        assert_eq!(&d[7..8], "-");
    }
}
