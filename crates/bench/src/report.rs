//! Plain-text table/series output shared by the figure binaries.

/// Prints a header banner for a figure.
pub fn banner(title: &str, note: &str) {
    println!("==================================================================");
    println!("{title}");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("==================================================================");
}

/// Prints an aligned table: header row then data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&hdr));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Reduces sorted samples to a compact CDF of `points` levels
/// (`(value, cumulative fraction)` pairs).
pub fn cdf(sorted: &[f64], points: usize) -> Vec<(f64, f64)> {
    if sorted.is_empty() {
        return Vec::new();
    }
    let n = sorted.len();
    (1..=points)
        .map(|i| {
            let frac = i as f64 / points as f64;
            let idx = ((n as f64 * frac).ceil() as usize).clamp(1, n) - 1;
            (sorted[idx], frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reduces_monotonically() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let c = cdf(&samples, 10);
        assert_eq!(c.len(), 10);
        assert!((c[0].0 - 10.0).abs() < 1e-9);
        assert!((c[9].0 - 100.0).abs() < 1e-9);
        assert!(c.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
    }

    #[test]
    fn cdf_of_empty_is_empty() {
        assert!(cdf(&[], 5).is_empty());
    }
}
