//! Minimal JSON value tree with a serializer and parser.
//!
//! The container has no crates.io access, so `BENCH_*.json` reports are
//! produced by this hand-rolled implementation instead of `serde_json`.
//! Scope is exactly what [`crate::report::BenchReport`] needs:
//!
//! * objects keep **insertion order** (reports read top-to-bottom),
//! * numbers are `f64` (integers up to 2⁵³ round-trip exactly),
//! * non-finite numbers serialize as `null` (JSON has no NaN — figure
//!   harnesses use NaN for "no sample", e.g. empty FCT buckets),
//! * strings escape the control characters, quotes and backslashes
//!   required by RFC 8259.
//!
//! The parser exists so tests can round-trip reports and so integration
//! tests can validate what the figure binaries wrote; it accepts exactly
//! the JSON this module emits plus standard whitespace and escapes.

use std::collections::VecDeque;
use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Non-finite values serialize as `null`.
    Number(f64),
    /// A string (unescaped in memory).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor: an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor: a string node.
    pub fn string(s: impl Into<String>) -> JsonValue {
        JsonValue::String(s.into())
    }

    /// Looks up a key in an object node; `None` for other node kinds.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number node.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean node.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array node.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the `BENCH_*.json` house style.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let flat = items
                    .iter()
                    .all(|i| !matches!(i, JsonValue::Array(_) | JsonValue::Object(_)));
                if flat {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write_pretty(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        pad(out, indent + 1);
                        item.write_pretty(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    pad(out, indent);
                    out.push(']');
                }
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this module emits, which is all
    /// of standard JSON except exponent-heavy number formats are
    /// normalized through `f64`).
    pub fn parse(text: &str) -> Result<JsonValue, ParseError> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Infinity
    } else if n == n.trunc() && n.abs() < 9e15 {
        fmt::write(out, format_args!("{}", n as i64)).expect("string write");
    } else {
        fmt::write(out, format_args!("{n}")).expect("string write");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                fmt::write(out, format_args!("\\u{:04x}", c as u32)).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`JsonValue::parse`]: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Character offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{c}'")))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        for c in lit.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some('n') => self.literal("null", JsonValue::Null),
            Some('t') => self.literal("true", JsonValue::Bool(true)),
            Some('f') => self.literal("false", JsonValue::Bool(false)),
            Some('"') => Ok(JsonValue::String(self.string()?)),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?,
                        );
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || "+-.eE".contains(c)) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(JsonValue::Object(pairs)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Breadth-first iterator over every string payload in a document — used
/// by tests asserting "series X appears somewhere in the report".
pub fn all_strings(root: &JsonValue) -> Vec<&str> {
    let mut out = Vec::new();
    let mut queue: VecDeque<&JsonValue> = VecDeque::new();
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        match v {
            JsonValue::String(s) => out.push(s.as_str()),
            JsonValue::Array(items) => queue.extend(items.iter()),
            JsonValue::Object(pairs) => queue.extend(pairs.iter().map(|(_, v)| v)),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Number(0.0),
            JsonValue::Number(-17.0),
            JsonValue::Number(3.25),
            JsonValue::Number(1e15),
            JsonValue::string("plain"),
        ] {
            let text = v.to_pretty_string();
            assert_eq!(JsonValue::parse(&text).unwrap(), v, "text: {text}");
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_pretty_string(), "null\n");
        assert_eq!(
            JsonValue::Number(f64::INFINITY).to_pretty_string(),
            "null\n"
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode→é";
        let v = JsonValue::string(nasty);
        let text = v.to_pretty_string();
        assert!(text.contains("\\\""));
        assert!(text.contains("\\\\"));
        assert!(text.contains("\\n"));
        assert!(text.contains("\\u0001"));
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn nested_document_round_trips_preserving_order() {
        let doc = JsonValue::object(vec![
            ("zeta", JsonValue::Number(1.0)),
            ("alpha", JsonValue::Array(vec![])),
            (
                "rows",
                JsonValue::Array(vec![
                    JsonValue::object(vec![
                        ("flows", JsonValue::Number(100.0)),
                        ("mbps", JsonValue::Number(9923.5)),
                    ]),
                    JsonValue::Null,
                ]),
            ),
            ("empty", JsonValue::Object(vec![])),
        ]);
        let text = doc.to_pretty_string();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Key order survives (Vec-backed objects).
        if let JsonValue::Object(pairs) = &back {
            assert_eq!(pairs[0].0, "zeta");
            assert_eq!(pairs[3].0, "empty");
        } else {
            panic!("expected object");
        }
    }

    #[test]
    fn integers_have_no_fraction_in_output() {
        let text = JsonValue::Number(100_000.0).to_pretty_string();
        assert_eq!(text, "100000\n");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "\"open", "nul", "{\"a\" 1}", "1 2"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_accepts_foreign_whitespace_and_escapes() {
        let text = "\t{ \"a\" : [ 1 , 2.5 , \"\\u0041\\/\" ] }\n";
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str().unwrap(),
            "A/"
        );
    }

    #[test]
    fn all_strings_walks_everything() {
        let doc = JsonValue::object(vec![
            ("k", JsonValue::string("v1")),
            ("arr", JsonValue::Array(vec![JsonValue::string("v2")])),
        ]);
        let strings = all_strings(&doc);
        assert!(strings.contains(&"v1") && strings.contains(&"v2"));
    }
}
