//! The §5.2 microbenchmarks: Figures 16, 17 and 18.
//!
//! Methodology per the paper: "the queue is initially filled with elements
//! according to queue occupancy rate or average number of packets per
//! bucket parameters. Then, packets are dequeued from the queue. Reported
//! results are in million packets per second." We measure the drain phase
//! (the min-find cost under study) and repeat fill+drain rounds until a
//! time budget elapses.
//!
//! Units: the drain-rate functions return a [`DrainResult`] whose `mpps`
//! is **Mpps** (million packets per second, drain phase only) and whose
//! `hit_rate` is the fraction of min-lookups the approximate queue's
//! curvature estimate answered without a fallback search (1.0-trivially
//! for the exact queues); [`approx_error_at_occupancy`] returns an
//! **average bucket-index error** (dimensionless bucket distance). The
//! figure binaries record these through [`crate::report::BenchReport`]
//! with the same unit strings.
//!
//! Allocation discipline: every per-cell scratch buffer (the shuffled fill
//! order, the batch output vector) lives in a caller-owned [`FillOrder`] /
//! local that is reused across cells and deterministically reseeded, so
//! back-to-back cells measure the queue, not the allocator.

use std::time::{Duration, Instant};

use eiffel_core::{
    ApproxGradientQueue, BucketHeapQueue, CffsQueue, OracleAudit, OracleReport, RankedQueue,
    RifoQueue, SpPifoQueue,
};
use eiffel_sim::SplitMix64;

/// SP-PIFO's queue count in the bake-off: 32 strict-priority FIFOs, the
/// mid-size configuration of the SP-PIFO paper's evaluation (8–64).
pub const SP_PIFO_QUEUES: usize = 32;

/// The bake-off contenders: the three §5.2 incumbents plus the two
/// integer-only related-work backends (SP-PIFO, RIFO) added in PR 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueUnderTest {
    /// Bucketed queue + binary heap of bucket indices (baseline).
    BucketHeap,
    /// Circular hierarchical FFS queue.
    Cffs,
    /// Approximate gradient queue.
    Approx,
    /// SP-PIFO adaptive strict-priority mapping ([`SP_PIFO_QUEUES`] queues).
    SpPifo,
    /// RIFO adaptive rank-range bucket mapping over `nb` buckets.
    Rifo,
}

impl QueueUnderTest {
    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            QueueUnderTest::BucketHeap => "BH",
            QueueUnderTest::Cffs => "cFFS",
            QueueUnderTest::Approx => "Approx",
            QueueUnderTest::SpPifo => "SP-PIFO",
            QueueUnderTest::Rifo => "RIFO",
        }
    }
}

/// Which buckets a partial fill occupies — the shape Figure 17 sweeps.
///
/// The paper fills "according to queue occupancy rate"; a random subset
/// ([`FillPattern::Sparse`]) matches that and is the paper-comparable
/// setting. The two extra shapes bound the approximate queue's behaviour:
/// a dense prefix is its best case (the estimator is exact there, §3.1.2)
/// and evenly spread clusters are a structured middle ground resembling
/// per-port backlogs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillPattern {
    /// The first `fill` buckets, a dense prefix of the rank space.
    Dense,
    /// A uniform random `fill`-subset of all buckets (the paper's fill).
    Sparse,
    /// Runs of up to 64 consecutive buckets, spread evenly over the range.
    Clustered,
}

impl FillPattern {
    /// Display name used in report panel titles.
    pub fn name(self) -> &'static str {
        match self {
            FillPattern::Dense => "dense",
            FillPattern::Sparse => "sparse",
            FillPattern::Clustered => "clustered",
        }
    }
}

/// Reusable fill-order scratch: one allocation for a whole figure sweep.
///
/// `prepare` writes the bucket visit order for a `(nb, pattern, fill)`
/// cell into the same buffer, reseeding the shuffle deterministically, so
/// consecutive cells differ only in the queue under test.
#[derive(Debug, Default)]
pub struct FillOrder {
    order: Vec<u64>,
}

impl FillOrder {
    /// An empty scratch; the first `prepare` sizes it.
    pub fn new() -> Self {
        FillOrder::default()
    }

    /// Fills the buffer with `fill` distinct bucket indices out of
    /// `[0, nb)` following `pattern`, reseeded from `seed`, and returns
    /// the slice.
    pub fn prepare(&mut self, nb: usize, pattern: FillPattern, fill: usize, seed: u64) -> &[u64] {
        let fill = fill.clamp(1, nb);
        self.order.clear();
        match pattern {
            FillPattern::Dense => self.order.extend(0..fill as u64),
            FillPattern::Sparse => {
                // Partial Fisher-Yates over the full universe: the first
                // `fill` entries are a uniform random subset in random
                // order.
                let mut rng = SplitMix64::new(seed);
                self.order.extend(0..nb as u64);
                for i in 0..fill.min(nb - 1) {
                    let j = i as u64 + rng.next_below((nb - i) as u64);
                    self.order.swap(i, j as usize);
                }
                self.order.truncate(fill);
            }
            FillPattern::Clustered => {
                // ceil(fill/64) clusters of ≤64 adjacent buckets, cluster
                // starts spread evenly across the range.
                let clusters = fill.div_ceil(64);
                let stride = (nb / clusters).max(64);
                for c in 0..clusters {
                    let start = c * stride;
                    let run = 64.min(fill - c * 64).min(nb - start);
                    self.order.extend((start..start + run).map(|b| b as u64));
                }
                self.order.truncate(fill);
            }
        }
        &self.order
    }
}

/// One drain-rate measurement cell.
#[derive(Debug, Clone, Copy)]
pub struct DrainResult {
    /// Drain throughput, million packets per second.
    pub mpps: f64,
    /// Fraction of min-lookups answered by the curvature estimate's O(1)
    /// hit path (approximate queue only; 1.0 for the exact queues, whose
    /// min-find never searches).
    pub hit_rate: f64,
    /// Min-lookups the queue answered during the timed drains.
    pub lookups: u64,
}

fn build(kind: QueueUnderTest, nb: usize) -> Box<dyn RankedQueue<u64>> {
    match kind {
        QueueUnderTest::BucketHeap => Box::new(BucketHeapQueue::new(nb, 1)),
        QueueUnderTest::Cffs => Box::new(CffsQueue::new(nb, 1, 0)),
        QueueUnderTest::Approx => Box::new(ApproxGradientQueue::new(nb, 1)),
        QueueUnderTest::SpPifo => Box::new(SpPifoQueue::new(SP_PIFO_QUEUES)),
        QueueUnderTest::Rifo => Box::new(RifoQueue::new(nb)),
    }
}

fn finish(q: &dyn RankedQueue<u64>, drained: u64, drain_time: Duration) -> DrainResult {
    let s = q.stats();
    DrainResult {
        mpps: drained as f64 / drain_time.as_secs_f64() / 1e6,
        hit_rate: if s.lookups == 0 { 1.0 } else { s.hit_rate() },
        lookups: s.lookups,
    }
}

/// Figure 16 point: `ppb` packets in each of `nb` buckets (the paper's
/// "average number of packets per bucket" fill — *uniform*, every bucket
/// occupied, which is why the approximate queue "has zero error in such
/// cases"). Fills, drains, repeats; returns drain-phase throughput.
///
/// `batch = 1` drains with `dequeue_min` per packet (the paper's loop);
/// larger values drain through [`RankedQueue::dequeue_batch`], amortizing
/// the min-find across each batch.
pub fn drain_rate_packets_per_bucket(
    kind: QueueUnderTest,
    nb: usize,
    ppb: usize,
    batch: usize,
    budget: Duration,
) -> DrainResult {
    assert!(batch >= 1);
    let mut q = build(kind, nb);
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(batch);
    let mut drained = 0u64;
    let mut drain_time = Duration::ZERO;
    let start = Instant::now();
    while start.elapsed() < budget {
        for pass in 0..ppb {
            for b in 0..nb as u64 {
                q.enqueue(b, pass as u64).expect("in range");
            }
        }
        let t = Instant::now();
        if batch == 1 {
            while q.dequeue_min().is_some() {
                drained += 1;
            }
        } else {
            loop {
                out.clear();
                let got = q.dequeue_batch(batch, &mut out);
                if got == 0 {
                    break;
                }
                drained += got as u64;
            }
        }
        drain_time += t.elapsed();
    }
    finish(q.as_ref(), drained, drain_time)
}

/// Figure 17 point: `occupancy` fraction of `nb` buckets hold one packet,
/// placed per `pattern`. Returns drain-phase throughput.
pub fn drain_rate_occupancy(
    kind: QueueUnderTest,
    nb: usize,
    occupancy: f64,
    pattern: FillPattern,
    fill_order: &mut FillOrder,
    budget: Duration,
) -> DrainResult {
    assert!((0.0..=1.0).contains(&occupancy));
    let mut q = build(kind, nb);
    let fill = ((nb as f64 * occupancy) as usize).max(1);
    let mut drained = 0u64;
    let mut drain_time = Duration::ZERO;
    let start = Instant::now();
    let mut round = 0u64;
    // Time only the first 30% of each drain: the figure reports performance
    // *at* occupancy ρ, so the measured window must hold occupancy near ρ
    // rather than sweep it down to empty (the remainder drains untimed).
    // Hit/miss accounting follows the same window — the untimed tail sweeps
    // through every occupancy below ρ and would dilute the statistic.
    let probe = (fill * 3 / 10).max(1);
    let (mut hits, mut lookups) = (0u64, 0u64);
    while start.elapsed() < budget {
        // A fresh deterministic subset per round (reusing the hoisted
        // buffer): the per-subset spread of the drain statistics is large,
        // so a cell averages over many subset draws, not one.
        let order = fill_order.prepare(
            nb,
            pattern,
            fill,
            0x17_17 ^ nb as u64 ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        for &b in order {
            q.enqueue(b, 0).expect("in range");
        }
        let before = q.stats();
        let t = Instant::now();
        for _ in 0..probe {
            q.dequeue_min().expect("filled above probe count");
        }
        drain_time += t.elapsed();
        drained += probe as u64;
        let after = q.stats();
        hits += after.est_hits - before.est_hits;
        lookups += after.lookups - before.lookups;
        while q.dequeue_min().is_some() {}
        round += 1;
    }
    DrainResult {
        mpps: drained as f64 / drain_time.as_secs_f64() / 1e6,
        hit_rate: if lookups == 0 {
            1.0
        } else {
            hits as f64 / lookups as f64
        },
        lookups,
    }
}

/// Figure 18 point: average bucket error of the approximate queue *at* the
/// given occupancy (error tracking on, measured against the exact shadow).
///
/// Methodology: fill a fresh queue to occupancy ρ with a random bucket
/// subset, then record the error of the first ~2% of dequeues — enough
/// lookups to sample the estimator without letting the drain collapse the
/// occupancy away from ρ. The paper-literal alternative (drain to empty,
/// average over everything) is dominated by the miss-heavy near-empty
/// tail common to every starting ρ — it measures the tail, not the
/// occupancy on the x-axis; see EXPERIMENTS.md for both numbers. The
/// per-subset spread of this statistic is large (which random holes sit
/// near the head matters), so each round draws a fresh subset and the
/// average over `rounds` is the figure point.
pub fn approx_error_at_occupancy(nb: usize, occupancy: f64, rounds: usize, seed: u64) -> f64 {
    let fill = ((nb as f64 * occupancy) as usize).max(1).min(nb);
    let probe = (fill / 50).max(16).min(fill);
    let mut fill_order = FillOrder::new();
    let mut err_sum = 0u64;
    let mut lookups = 0u64;
    for round in 0..rounds {
        // Fresh deterministic reseed → fresh random occupied subset.
        let round_seed = seed ^ (round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let order = fill_order.prepare(nb, FillPattern::Sparse, fill, round_seed);
        let mut q: ApproxGradientQueue<u64> = ApproxGradientQueue::new(nb, 1).track_error();
        for &b in order {
            q.enqueue(b, 0).expect("in range");
        }
        for _ in 0..probe {
            q.dequeue_min().expect("filled above probe count");
        }
        let s = q.stats();
        err_sum += s.error_sum;
        lookups += s.lookups;
    }
    err_sum as f64 / lookups.max(1) as f64
}

/// Scheduling-quality cell: fills a fresh queue (`ppb` packets in each of
/// `fill` buckets placed per `pattern`), drains it to empty under the
/// PIFO-oracle audit, and returns the inversion / rank-error report —
/// **untimed**, so the oracle's `BTreeMap` bookkeeping never pollutes the
/// throughput cells measured by the functions above. Averaged over
/// `rounds` fresh deterministic subsets for the same reason the
/// throughput cells re-draw theirs: which holes land near the head
/// dominates a single draw.
pub fn drain_quality(
    kind: QueueUnderTest,
    nb: usize,
    pattern: FillPattern,
    fill: usize,
    ppb: usize,
    rounds: usize,
    seed: u64,
) -> OracleReport {
    let mut fill_order = FillOrder::new();
    // A fresh audit per round: the inversion counter is a suffix-min pass
    // over one drain sequence, and stitching rounds together would count
    // every round boundary (high tail → next round's low head) as a pile
    // of fake inversions.
    let mut total = OracleReport {
        pops: 0,
        inversions: 0,
        max_inversion: 0,
        rank_error_sum: 0,
        max_rank_error: 0,
    };
    for round in 0..rounds {
        let round_seed = seed ^ (round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let order = fill_order.prepare(nb, pattern, fill, round_seed);
        let mut q = build(kind, nb);
        let mut audit = OracleAudit::new();
        for pass in 0..ppb.max(1) {
            for &b in order {
                q.enqueue(b, pass as u64).expect("in range");
                audit.on_enqueue(b);
            }
        }
        while let Some((r, _)) = q.dequeue_min() {
            audit.on_dequeue(r);
        }
        assert!(audit.is_empty(), "{kind:?} lost elements");
        let rep = audit.finish();
        total.pops += rep.pops;
        total.inversions += rep.inversions;
        total.max_inversion = total.max_inversion.max(rep.max_inversion);
        total.rank_error_sum += rep.rank_error_sum;
        total.max_rank_error = total.max_rank_error.max(rep.max_rank_error);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queues_report_positive_rates() {
        let mut fo = FillOrder::new();
        for kind in [
            QueueUnderTest::BucketHeap,
            QueueUnderTest::Cffs,
            QueueUnderTest::Approx,
            QueueUnderTest::SpPifo,
            QueueUnderTest::Rifo,
        ] {
            let r = drain_rate_packets_per_bucket(kind, 512, 2, 1, Duration::from_millis(30));
            assert!(r.mpps > 0.1, "{kind:?} rate {} Mpps", r.mpps);
            if kind == QueueUnderTest::Approx {
                assert!(r.lookups > 0, "approx must record its lookups");
            }
            for pattern in [
                FillPattern::Dense,
                FillPattern::Sparse,
                FillPattern::Clustered,
            ] {
                let r = drain_rate_occupancy(
                    kind,
                    512,
                    0.9,
                    pattern,
                    &mut fo,
                    Duration::from_millis(20),
                );
                assert!(r.mpps > 0.1, "{kind:?}/{pattern:?} rate {} Mpps", r.mpps);
            }
        }
    }

    #[test]
    fn batched_drain_reports_positive_rates() {
        for kind in [
            QueueUnderTest::Cffs,
            QueueUnderTest::Approx,
            QueueUnderTest::SpPifo,
            QueueUnderTest::Rifo,
        ] {
            let r = drain_rate_packets_per_bucket(kind, 512, 4, 16, Duration::from_millis(30));
            assert!(r.mpps > 0.1, "{kind:?} batched rate {} Mpps", r.mpps);
        }
    }

    /// The quality pass separates the tiers: exact backends score zero on
    /// both metrics, the integer-only adaptive backends show bounded but
    /// non-zero inversions on a sparse fill.
    #[test]
    fn drain_quality_separates_exact_from_adaptive() {
        let nb = 512;
        for kind in [QueueUnderTest::BucketHeap, QueueUnderTest::Cffs] {
            let rep = drain_quality(kind, nb, FillPattern::Sparse, 256, 2, 4, 7);
            assert_eq!(rep.inversions, 0, "{kind:?} must be exact");
            assert_eq!(rep.rank_error_sum, 0, "{kind:?} must be exact");
            assert_eq!(rep.pops, 4 * 2 * 256);
        }
        for kind in [QueueUnderTest::SpPifo, QueueUnderTest::Rifo] {
            let rep = drain_quality(kind, nb, FillPattern::Sparse, 256, 2, 4, 7);
            assert_eq!(rep.pops, 4 * 2 * 256, "{kind:?} conserves");
            assert!(
                rep.inversions > 0,
                "{kind:?} on a one-shot random fill must show inversions \
                 (that is the trade these mappers make)"
            );
            // One-shot random fills are these mappers' worst case (SP-PIFO
            // adapts to *continuous* arrivals; RIFO's `lo` pins at the
            // first random rank, clamping everything below). Sanity band
            // only: the mean error stays under half the rank span.
            assert!(
                rep.avg_rank_error() < nb as f64 / 2.0,
                "{kind:?} avg rank error {} out of band",
                rep.avg_rank_error()
            );
        }
    }

    #[test]
    fn fill_patterns_have_requested_size_and_shape() {
        let mut fo = FillOrder::new();
        let dense = fo.prepare(1_000, FillPattern::Dense, 300, 1).to_vec();
        assert_eq!(dense, (0..300).collect::<Vec<u64>>());
        let sparse = fo.prepare(1_000, FillPattern::Sparse, 300, 1).to_vec();
        assert_eq!(sparse.len(), 300);
        let mut uniq = sparse.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 300, "sparse fill must be distinct buckets");
        assert!(uniq.iter().all(|&b| b < 1_000));
        assert_ne!(sparse, dense, "sparse fill should not be a prefix");
        let clustered = fo.prepare(1_000, FillPattern::Clustered, 300, 1).to_vec();
        assert_eq!(clustered.len(), 300);
        let mut uniq = clustered.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 300, "clusters must not overlap");
        // 300 buckets in ≥5 runs of ≤64: gaps exist between clusters.
        let gaps = clustered.windows(2).filter(|w| w[1] != w[0] + 1).count();
        assert!(gaps >= 4, "expected ≥4 cluster boundaries, got {gaps}");
        // Same seed → identical order (deterministic reseed).
        let again = fo.prepare(1_000, FillPattern::Sparse, 300, 1).to_vec();
        assert_eq!(again, sparse);
    }

    /// The hit-rate column orders the patterns as the theory says it must:
    /// dense prefix ⇒ estimator exact (hits ≈ 1); sparse ⇒ misses.
    #[test]
    fn hit_rate_tracks_pattern_difficulty() {
        let mut fo = FillOrder::new();
        let budget = Duration::from_millis(40);
        let dense = drain_rate_occupancy(
            QueueUnderTest::Approx,
            2_048,
            0.5,
            FillPattern::Dense,
            &mut fo,
            budget,
        );
        let sparse = drain_rate_occupancy(
            QueueUnderTest::Approx,
            2_048,
            0.5,
            FillPattern::Sparse,
            &mut fo,
            budget,
        );
        assert!(
            dense.hit_rate > sparse.hit_rate,
            "dense {p:.3} must out-hit sparse {q:.3}",
            p = dense.hit_rate,
            q = sparse.hit_rate
        );
        assert!(dense.hit_rate > 0.95, "dense prefix ⇒ estimator ≈ exact");
    }

    /// Figure 18's trend: error grows as occupancy falls.
    #[test]
    fn approx_error_grows_with_emptiness() {
        let hi = approx_error_at_occupancy(1_024, 0.99, 24, 42);
        let lo = approx_error_at_occupancy(1_024, 0.5, 24, 42);
        assert!(
            lo > hi,
            "error at 50% occupancy ({lo:.2}) must exceed error at 99% ({hi:.2})"
        );
    }
}
