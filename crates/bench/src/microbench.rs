//! The §5.2 microbenchmarks: Figures 16, 17 and 18.
//!
//! Methodology per the paper: "the queue is initially filled with elements
//! according to queue occupancy rate or average number of packets per
//! bucket parameters. Then, packets are dequeued from the queue. Reported
//! results are in million packets per second." We measure the drain phase
//! (the min-find cost under study) and repeat fill+drain rounds until a
//! time budget elapses.
//!
//! Units: the drain-rate functions return **Mpps** (million packets per
//! second, drain phase only); [`approx_error_at_occupancy`] returns an
//! **average bucket-index error** (dimensionless bucket distance). The
//! figure binaries record these through [`crate::report::BenchReport`]
//! with the same unit strings.

use std::time::{Duration, Instant};

use eiffel_core::{ApproxGradientQueue, BucketHeapQueue, CffsQueue, RankedQueue};
use eiffel_sim::SplitMix64;

/// The three §5.2 contenders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueUnderTest {
    /// Bucketed queue + binary heap of bucket indices (baseline).
    BucketHeap,
    /// Circular hierarchical FFS queue.
    Cffs,
    /// Approximate gradient queue.
    Approx,
}

impl QueueUnderTest {
    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            QueueUnderTest::BucketHeap => "BH",
            QueueUnderTest::Cffs => "cFFS",
            QueueUnderTest::Approx => "Approx",
        }
    }
}

fn build(kind: QueueUnderTest, nb: usize) -> Box<dyn RankedQueue<u64>> {
    match kind {
        QueueUnderTest::BucketHeap => Box::new(BucketHeapQueue::new(nb, 1)),
        QueueUnderTest::Cffs => Box::new(CffsQueue::new(nb, 1, 0)),
        QueueUnderTest::Approx => Box::new(ApproxGradientQueue::new(nb, 1)),
    }
}

/// Figure 16 point: `ppb` packets in each of `nb` buckets (the paper's
/// "average number of packets per bucket" fill — *uniform*, every bucket
/// occupied, which is why the approximate queue "has zero error in such
/// cases"). Fills, drains, repeats; returns Mpps of the drain phase.
pub fn drain_rate_packets_per_bucket(
    kind: QueueUnderTest,
    nb: usize,
    ppb: usize,
    budget: Duration,
) -> f64 {
    let mut q = build(kind, nb);
    let mut drained = 0u64;
    let mut drain_time = Duration::ZERO;
    let start = Instant::now();
    while start.elapsed() < budget {
        for pass in 0..ppb {
            for b in 0..nb as u64 {
                q.enqueue(b, pass as u64).expect("in range");
            }
        }
        let t = Instant::now();
        while q.dequeue_min().is_some() {
            drained += 1;
        }
        drain_time += t.elapsed();
    }
    drained as f64 / drain_time.as_secs_f64() / 1e6
}

/// Figure 17 point: `occupancy` fraction of `nb` buckets hold one packet.
/// Returns drain Mpps.
pub fn drain_rate_occupancy(
    kind: QueueUnderTest,
    nb: usize,
    occupancy: f64,
    budget: Duration,
) -> f64 {
    assert!((0.0..=1.0).contains(&occupancy));
    let mut q = build(kind, nb);
    let mut rng = SplitMix64::new(0x17_17);
    let fill = ((nb as f64 * occupancy) as usize).max(1);
    // Pre-pick a shuffled bucket universe so exactly `fill` distinct
    // buckets are occupied each round.
    let mut order: Vec<u64> = (0..nb as u64).collect();
    for i in (1..order.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    let mut drained = 0u64;
    let mut drain_time = Duration::ZERO;
    let start = Instant::now();
    let mut round = 0usize;
    // Time only the first 30% of each drain: the figure reports performance
    // *at* occupancy ρ, so the measured window must hold occupancy near ρ
    // rather than sweep it down to empty (the remainder drains untimed).
    let probe = (fill * 3 / 10).max(1);
    while start.elapsed() < budget {
        // Rotate which buckets are used so cache patterns don't ossify.
        let base = (round * 131) % nb;
        for k in 0..fill {
            let b = order[(base + k) % nb];
            q.enqueue(b, 0).expect("in range");
        }
        let t = Instant::now();
        for _ in 0..probe {
            q.dequeue_min().expect("filled above probe count");
        }
        drain_time += t.elapsed();
        drained += probe as u64;
        while q.dequeue_min().is_some() {}
        round += 1;
    }
    drained as f64 / drain_time.as_secs_f64() / 1e6
}

/// Figure 18 point: average bucket error of the approximate queue *at* the
/// given occupancy (error tracking on, measured against the exact shadow).
///
/// Methodology: fill a fresh queue to occupancy ρ with a random bucket
/// subset, then record the error of the first ~2% of dequeues — enough
/// lookups to sample the estimator without letting the drain collapse the
/// occupancy away from ρ (a full drain sweeps through *every* occupancy
/// below ρ and is dominated by the straggler dynamics of the near-empty
/// tail; see EXPERIMENTS.md).
pub fn approx_error_at_occupancy(nb: usize, occupancy: f64, rounds: usize, seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let fill = ((nb as f64 * occupancy) as usize).max(1);
    let probe = (fill / 50).max(16).min(fill);
    let mut order: Vec<u64> = (0..nb as u64).collect();
    let mut err_sum = 0u64;
    let mut lookups = 0u64;
    for _ in 0..rounds {
        // Fresh shuffle → fresh random occupied subset each round.
        for i in (1..order.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let mut q: ApproxGradientQueue<u64> = ApproxGradientQueue::new(nb, 1).track_error();
        for &b in order.iter().take(fill) {
            q.enqueue(b, 0).expect("in range");
        }
        for _ in 0..probe {
            q.dequeue_min().expect("filled above probe count");
        }
        let s = q.stats();
        err_sum += s.error_sum;
        lookups += s.lookups;
    }
    err_sum as f64 / lookups.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queues_report_positive_rates() {
        for kind in [
            QueueUnderTest::BucketHeap,
            QueueUnderTest::Cffs,
            QueueUnderTest::Approx,
        ] {
            let r = drain_rate_packets_per_bucket(kind, 512, 2, Duration::from_millis(30));
            assert!(r > 0.1, "{kind:?} rate {r} Mpps");
            let r = drain_rate_occupancy(kind, 512, 0.9, Duration::from_millis(30));
            assert!(r > 0.1, "{kind:?} rate {r} Mpps");
        }
    }

    /// Figure 18's trend: error grows as occupancy falls.
    #[test]
    fn approx_error_grows_with_emptiness() {
        let hi = approx_error_at_occupancy(1_024, 0.99, 6, 42);
        let lo = approx_error_at_occupancy(1_024, 0.5, 6, 42);
        assert!(
            lo > hi,
            "error at 50% occupancy ({lo:.2}) must exceed error at 99% ({hi:.2})"
        );
    }
}
