//! Captures `rustc --version` at build time so bench reports can record
//! the exact compiler in their environment block without spawning
//! processes at run time.

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "rustc (version unknown)".to_string());
    println!("cargo:rustc-env=EIFFEL_BENCH_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-env-changed=RUSTC");
}
