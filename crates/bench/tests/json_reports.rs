//! End-to-end checks of the `--json` report plumbing: run the real figure
//! binaries (the same executables CI and operators run) and validate the
//! reports they write against the `eiffel-bench-report/v1` schema.

use std::path::PathBuf;
use std::process::Command;

use eiffel_bench::json::{all_strings, JsonValue};
use eiffel_bench::report::SCHEMA;

/// Runs a figure binary with `--quick --json <tmp>` and parses the report.
fn run_and_parse(exe: &str, extra: &[&str]) -> JsonValue {
    let mut path = PathBuf::from(
        std::env::var("CARGO_TARGET_TMPDIR")
            .unwrap_or_else(|_| std::env::temp_dir().to_string_lossy().into_owned()),
    );
    path.push(format!(
        "report_{}.json",
        PathBuf::from(exe)
            .file_stem()
            .expect("binary has a name")
            .to_string_lossy()
    ));
    let _ = std::fs::remove_file(&path);
    let mut cmd = Command::new(exe);
    cmd.args(extra).arg("--json").arg(&path);
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "{exe} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("report file written");
    JsonValue::parse(&text).expect("report is valid JSON")
}

/// Schema-level assertions shared by every report.
fn assert_schema(doc: &JsonValue, figure: &str) {
    assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
    assert_eq!(doc.get("figure").unwrap().as_str(), Some(figure));
    for key in [
        "artifact",
        "title",
        "paper_claim",
        "quick",
        "config",
        "environment",
        "sweeps",
        "tables",
        "notes",
        "wall_secs",
    ] {
        assert!(doc.get(key).is_some(), "missing key {key}");
    }
    let env = doc.get("environment").unwrap();
    for key in ["host", "cpus", "rustc", "profile", "date_utc", "cmdline"] {
        assert!(env.get(key).is_some(), "missing environment key {key}");
    }
}

#[test]
fn fig12_quick_json_report_has_expected_series() {
    let doc = run_and_parse(env!("CARGO_BIN_EXE_fig12_hclock_scaling"), &["--quick"]);
    assert_schema(&doc, "fig12_hclock_scaling");
    assert_eq!(doc.get("quick").unwrap().as_bool(), Some(true));

    let sweeps = doc.get("sweeps").unwrap().as_array().unwrap();
    assert_eq!(sweeps.len(), 3, "two rate-limited panels + capacity panel");
    let names: Vec<&str> = sweeps
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    assert!(names[0].contains("10 Gbps line rate"), "{names:?}");
    assert!(names[1].contains("5 Gbps"), "{names:?}");
    assert!(names[2].contains("capacity"), "{names:?}");

    for sweep in sweeps {
        let series = sweep.get("series").unwrap().as_array().unwrap();
        let series_names: Vec<&str> = series
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(
            series_names,
            ["Eiffel-hClock", "hClock (min-heap)", "BESS tc"],
            "every Figure 12 panel compares the same three schedulers"
        );
        let n_params = sweep.get("param_values").unwrap().as_array().unwrap().len();
        assert!(
            n_params >= 3,
            "quick sweep still covers several flow counts"
        );
        for s in series {
            let values = s.get("values").unwrap().as_array().unwrap();
            assert_eq!(values.len(), n_params, "values align with param_values");
            for v in values {
                let rate = v.as_f64().expect("measured rates are numbers");
                assert!(rate > 0.0, "rates are positive, got {rate}");
            }
        }
    }
    // The reconciled paper claim (the 40x/10x drift fix) travels with the
    // data.
    let claim = doc.get("paper_claim").unwrap().as_str().unwrap();
    assert!(claim.contains("10x") && claim.contains("§5.1.2"), "{claim}");
}

#[test]
fn fig9_quick_json_report_has_cdf_and_threaded_panels() {
    let doc = run_and_parse(env!("CARGO_BIN_EXE_fig09_kernel_shaping"), &["--quick"]);
    assert_schema(&doc, "fig09_kernel_shaping");
    assert_eq!(doc.get("quick").unwrap().as_bool(), Some(true));

    let sweeps = doc.get("sweeps").unwrap().as_array().unwrap();
    assert_eq!(sweeps.len(), 3, "CDF + two threaded flow panels (quick)");
    let names: Vec<&str> = sweeps
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    assert!(names[0].contains("virtual-clock CDF"), "{names:?}");
    for name in &names[1..] {
        assert!(name.contains("threaded wall clock"), "{names:?}");
    }
    // The threaded panels interleave achieved-Gbps and busy-cores series
    // for the three qdiscs, with positive achieved rates.
    for sweep in &sweeps[1..] {
        let series = sweep.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 6);
        for (i, s) in series.iter().enumerate() {
            let unit = s.get("unit").unwrap().as_str().unwrap();
            assert_eq!(unit, if i % 2 == 0 { "Gbps" } else { "cores" });
            for v in s.get("values").unwrap().as_array().unwrap() {
                let x = v.as_f64().expect("threaded cells are numbers");
                if i % 2 == 0 {
                    assert!(x > 0.0, "achieved rates positive, got {x}");
                } else {
                    assert!(x >= 0.0, "busy cores non-negative, got {x}");
                }
            }
        }
    }
    // The cores-to-shape table travels with the data.
    let tables = doc.get("tables").unwrap().as_array().unwrap();
    assert_eq!(tables.len(), 1);
    let name = tables[0].get("name").unwrap().as_str().unwrap();
    assert!(name.contains("cores needed to shape"), "{name}");
    let rows = tables[0].get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 6, "3 qdiscs x 2 shard counts");
    let strings = all_strings(&doc);
    for sys in ["FQ/pacing", "Carousel", "Eiffel"] {
        assert!(strings.contains(&sys), "missing qdisc {sys}");
    }
}

#[test]
fn fig10_quick_json_report_has_virtual_and_threaded_panels() {
    let doc = run_and_parse(env!("CARGO_BIN_EXE_fig10_cpu_breakdown"), &["--quick"]);
    assert_schema(&doc, "fig10_cpu_breakdown");
    let sweeps = doc.get("sweeps").unwrap().as_array().unwrap();
    assert_eq!(sweeps.len(), 4, "2 systems x {{virtual, threaded}}");
    let names: Vec<&str> = sweeps
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names.iter().filter(|n| n.starts_with("virtual")).count(), 2);
    assert_eq!(
        names
            .iter()
            .filter(|n| n.starts_with("threaded wall clock"))
            .count(),
        2,
        "{names:?}"
    );
    for sys in ["carousel", "eiffel"] {
        assert_eq!(
            names.iter().filter(|n| n.contains(sys)).count(),
            2,
            "{names:?}"
        );
    }
    for sweep in sweeps {
        let series = sweep.get("series").unwrap().as_array().unwrap();
        let series_names: Vec<&str> = series
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(series_names, ["system", "softirq"]);
        let mut total = 0.0;
        for s in series {
            let mut prev = f64::NEG_INFINITY;
            for v in s.get("values").unwrap().as_array().unwrap() {
                let x = v.as_f64().expect("CDF cells are numbers");
                assert!(x >= 0.0 && x >= prev, "CDF non-decreasing, got {x}");
                prev = x;
                total += x;
            }
        }
        let name = sweep.get("name").unwrap().as_str().unwrap();
        assert!(total > 0.0, "{name}: all-zero breakdown");
    }
}

#[test]
fn table1_json_report_carries_the_matrix() {
    let doc = run_and_parse(env!("CARGO_BIN_EXE_table1_landscape"), &[]);
    assert_schema(&doc, "table1_landscape");
    let tables = doc.get("tables").unwrap().as_array().unwrap();
    assert_eq!(tables.len(), 1);
    let rows = tables[0].get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 6, "six systems in the landscape");
    let strings = all_strings(&doc);
    for sys in ["Eiffel", "hClock", "Carousel", "PIFO"] {
        assert!(strings.contains(&sys), "missing system {sys}");
    }
}

#[test]
fn fig15_quick_json_report_has_expected_series() {
    let doc = run_and_parse(env!("CARGO_BIN_EXE_fig15_pfabric_scaling"), &["--quick"]);
    assert_schema(&doc, "fig15_pfabric_scaling");
    assert_eq!(doc.get("quick").unwrap().as_bool(), Some(true));
    let sweeps = doc.get("sweeps").unwrap().as_array().unwrap();
    assert_eq!(sweeps.len(), 6, "shard {{1,2,4}} x batch {{1,16}} panels");
    let names: Vec<&str> = sweeps
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    for shards in [1, 2, 4] {
        assert_eq!(
            names
                .iter()
                .filter(|n| n.starts_with(&format!("{shards} shard")))
                .count(),
            2,
            "{names:?}"
        );
    }
    for batch in [1, 16] {
        assert_eq!(
            names
                .iter()
                .filter(|n| n.ends_with(&format!("batch {batch}")))
                .count(),
            3,
            "{names:?}"
        );
    }
    for sweep in sweeps {
        let series = sweep.get("series").unwrap().as_array().unwrap();
        let series_names: Vec<&str> = series
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(series_names, ["pFabric-Eiffel", "pFabric-BinaryHeap"]);
        let n_params = sweep.get("param_values").unwrap().as_array().unwrap().len();
        assert!(n_params >= 3, "quick sweep covers several flow counts");
        for s in series {
            let values = s.get("values").unwrap().as_array().unwrap();
            assert_eq!(values.len(), n_params);
            for v in values {
                let rate = v.as_f64().expect("measured rates are numbers");
                assert!(rate > 0.0, "rates are positive, got {rate}");
            }
        }
    }
    let claim = doc.get("paper_claim").unwrap().as_str().unwrap();
    assert!(claim.contains("5x") && claim.contains("§5.1.3"), "{claim}");
}

#[test]
fn fig16_quick_json_report_has_expected_series() {
    let doc = run_and_parse(env!("CARGO_BIN_EXE_fig16_packets_per_bucket"), &["--quick"]);
    assert_schema(&doc, "fig16_packets_per_bucket");
    let sweeps = doc.get("sweeps").unwrap().as_array().unwrap();
    assert_eq!(
        sweeps.len(),
        6,
        "5k/10k plain + 5k/10k batched + 5k/10k quality panels"
    );
    for sweep in &sweeps[..2] {
        let series: Vec<&str> = sweep
            .get("series")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(
            series,
            [
                "Approx",
                "cFFS",
                "BH",
                "SP-PIFO",
                "RIFO",
                "Approx est. hit rate"
            ]
        );
    }
    for sweep in &sweeps[2..4] {
        let name = sweep.get("name").unwrap().as_str().unwrap();
        assert!(name.contains("dequeue_batch"), "{name}");
    }
    // The drain-quality panels carry the oracle metrics: exact backends
    // score zero, everything is a finite non-negative number.
    for sweep in &sweeps[4..] {
        let name = sweep.get("name").unwrap().as_str().unwrap();
        assert!(name.contains("drain quality"), "{name}");
        let series = sweep.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 10, "5 rank-err + 5 inv/pop series");
        for s in series {
            let sname = s.get("name").unwrap().as_str().unwrap();
            let exact = sname.starts_with("cFFS") || sname.starts_with("BH");
            for v in s.get("values").unwrap().as_array().unwrap() {
                let x = v.as_f64().expect("quality cells are numbers");
                assert!(x >= 0.0, "{sname}: {x}");
                if exact {
                    assert_eq!(x, 0.0, "exact backend {sname} must score zero");
                }
            }
        }
    }
}

#[test]
fn fig17_quick_json_report_has_expected_series() {
    let doc = run_and_parse(env!("CARGO_BIN_EXE_fig17_occupancy"), &["--quick"]);
    assert_schema(&doc, "fig17_occupancy");
    let sweeps = doc.get("sweeps").unwrap().as_array().unwrap();
    assert_eq!(sweeps.len(), 6, "2 bucket counts x 3 fill patterns");
    let mut patterns_seen = Vec::new();
    for sweep in sweeps {
        let name = sweep.get("name").unwrap().as_str().unwrap();
        for p in ["sparse", "dense", "clustered"] {
            if name.contains(p) && !patterns_seen.contains(&p) {
                patterns_seen.push(p);
            }
        }
        let series: Vec<&str> = sweep
            .get("series")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(
            series,
            [
                "Approx",
                "cFFS",
                "BH",
                "SP-PIFO",
                "RIFO",
                "Approx est. hit rate"
            ]
        );
    }
    assert_eq!(patterns_seen.len(), 3, "all three fill patterns recorded");
}

#[test]
fn fig18_quick_json_report_has_expected_series() {
    let doc = run_and_parse(env!("CARGO_BIN_EXE_fig18_approx_error"), &["--quick"]);
    assert_schema(&doc, "fig18_approx_error");
    let sweeps = doc.get("sweeps").unwrap().as_array().unwrap();
    assert_eq!(sweeps.len(), 3, "estimator panel + 5k/10k quality panels");
    let est = &sweeps[0];
    let series: Vec<&str> = est
        .get("series")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(series, ["5k buckets", "10k buckets"]);
    for sweep in &sweeps[1..] {
        let name = sweep.get("name").unwrap().as_str().unwrap();
        assert!(name.contains("sparse drain quality"), "{name}");
        let series = sweep.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 10, "5 rank-err + 5 inv/pop series");
        for s in series {
            let sname = s.get("name").unwrap().as_str().unwrap();
            let exact = sname.starts_with("cFFS") || sname.starts_with("BH");
            for v in s.get("values").unwrap().as_array().unwrap() {
                let x = v.as_f64().expect("quality cells are numbers");
                assert!(x >= 0.0, "{sname}: {x}");
                if exact {
                    assert_eq!(x, 0.0, "exact backend {sname} must score zero");
                }
            }
        }
    }
    let claim = doc.get("paper_claim").unwrap().as_str().unwrap();
    assert!(
        claim.contains("granularity") && claim.contains("Figure 18"),
        "{claim}"
    );
}
