//! Criterion microbenchmark of the discrete-event scheduler backends:
//! the `BinaryHeap` baseline (`eiffel_sim::EventQueue`) vs the
//! FFS-bucketed timing wheel (`eiffel_sim::BucketedEventQueue`).
//!
//! Workload is the classic *hold model*: the queue is pre-loaded with a
//! fixed population of pending events, then every iteration pops the next
//! event and reschedules it a pseudo-random delta into the future —
//! steady-state churn at constant occupancy, the access pattern a
//! simulation event loop produces. A fraction of deltas lands beyond the
//! wheel horizon so the overflow level is exercised too (RTO-style
//! timers). The comparison-based heap degrades with the pending-event
//! population; the wheel's FFS descent does not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use eiffel_sim::{BucketedEventQueue, EventQueue, EventScheduler, SplitMix64};

/// Pending-event populations: a quick fig19 point holds a few hundred
/// events; a full-scale run tens of thousands (pre-generated arrivals).
const POPULATIONS: [usize; 3] = [500, 5_000, 50_000];

/// Delta distribution: mostly sub-horizon (serialization, propagation,
/// ACK latencies), occasionally far future (RTO-scale, overflow level).
fn next_delta(rng: &mut SplitMix64) -> u64 {
    if rng.next_below(64) == 0 {
        1_000_000 + rng.next_below(4_000_000) // RTO-scale: overflow level
    } else {
        1 + rng.next_below(6_000) // in-wheel: µs-scale fabric events
    }
}

fn hold<S: EventScheduler<u64>>(q: &mut S, rng: &mut SplitMix64) {
    let (at, ev) = q.pop().expect("hold model keeps population constant");
    q.schedule(at + next_delta(rng), black_box(ev));
}

fn scheduler_hold(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_scheduler_hold");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    group.sample_size(30);
    for &n in &POPULATIONS {
        group.bench_function(BenchmarkId::new("binary_heap", n), |b| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut rng = SplitMix64::new(0xE7);
            for i in 0..n as u64 {
                q.schedule(rng.next_below(60_000), i);
            }
            b.iter(|| hold(&mut q, &mut rng));
        });
        group.bench_function(BenchmarkId::new("ffs_wheel", n), |b| {
            let mut q: BucketedEventQueue<u64> = BucketedEventQueue::new();
            let mut rng = SplitMix64::new(0xE7);
            for i in 0..n as u64 {
                EventScheduler::schedule(&mut q, rng.next_below(60_000), i);
            }
            b.iter(|| hold(&mut q, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, scheduler_hold);
criterion_main!(benches);
