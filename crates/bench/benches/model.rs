//! Criterion benchmarks of the programming-model layer: per-packet cost of
//! the Eiffel per-flow transaction, the unified shaper, and the end-to-end
//! hClock/pFabric modules — the "constant overhead per ranking function"
//! claim of §1.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use eiffel_bess::{FlowSpec, HClockEiffel, HClockHeap, PfabricEiffel, PfabricHeap};
use eiffel_pifo::{Shaper, TokenStamper};
use eiffel_sim::{Packet, Rate};

fn shaper_stamp_and_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("unified_shaper");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);
    group.bench_function("stamp_schedule_release", |b| {
        let mut stamper = TokenStamper::new(Rate::gbps(10));
        let mut shaper: Shaper<u64> = Shaper::new(20_000, 100_000, 0);
        let mut now = 0u64;
        let mut out = Vec::new();
        b.iter(|| {
            now += 1_200;
            let ts = stamper.stamp(now, 1_500).expect("non-zero rate");
            shaper.schedule(ts, black_box(1));
            out.clear();
            shaper.release_due(now, &mut out);
            black_box(out.len());
        });
    });
    group.finish();
}

fn hclock_per_packet(c: &mut Criterion) {
    let mut group = c.benchmark_group("hclock_per_packet");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);
    let specs: Vec<FlowSpec> = (0..5_000)
        .map(|_| FlowSpec {
            reservation: Rate::kbps(10),
            limit: Rate::mbps(2),
            share: 1,
        })
        .collect();
    group.bench_function("eiffel_5k_flows", |b| {
        let mut s = HClockEiffel::new(&specs);
        let mut now = 0u64;
        let mut id = 0u64;
        for _ in 0..20_000 {
            s.enqueue(0, Packet::mtu(id, (id % 5_000) as u32, 0));
            id += 1;
        }
        b.iter(|| {
            now += 1_200;
            let flow = (id % 5_000) as u32;
            s.enqueue(now, Packet::mtu(id, flow, now));
            id += 1;
            black_box(s.dequeue(now));
        });
    });
    group.bench_function("heap_5k_flows", |b| {
        let mut s = HClockHeap::new(&specs);
        let mut now = 0u64;
        let mut id = 0u64;
        for _ in 0..20_000 {
            s.enqueue(Packet::mtu(id, (id % 5_000) as u32, 0));
            id += 1;
        }
        b.iter(|| {
            now += 1_200;
            let flow = (id % 5_000) as u32;
            s.enqueue(Packet::mtu(id, flow, now));
            id += 1;
            black_box(s.dequeue(now));
        });
    });
    group.finish();
}

fn pfabric_per_packet(c: &mut Criterion) {
    let mut group = c.benchmark_group("pfabric_per_packet");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);
    for (name, flows) in [("1k_flows", 1_000u32), ("10k_flows", 10_000)] {
        group.bench_function(format!("eiffel_{name}"), |b| {
            let mut s = PfabricEiffel::new();
            let mut id = 0u64;
            for _ in 0..2 * flows as u64 {
                let mut p = Packet::mtu(id, (id % flows as u64) as u32, 0);
                p.rank = 1 + id % 64;
                s.enqueue(0, p);
                id += 1;
            }
            b.iter(|| {
                let flow = (id % flows as u64) as u32;
                let mut p = Packet::mtu(id, flow, 0);
                p.rank = 1 + id % 64;
                s.enqueue(0, p);
                id += 1;
                black_box(s.dequeue(0));
            });
        });
        group.bench_function(format!("heap_{name}"), |b| {
            let mut s = PfabricHeap::new();
            let mut id = 0u64;
            for _ in 0..2 * flows as u64 {
                let mut p = Packet::mtu(id, (id % flows as u64) as u32, 0);
                p.rank = 1 + id % 64;
                s.enqueue(0, p);
                id += 1;
            }
            b.iter(|| {
                let flow = (id % flows as u64) as u32;
                let mut p = Packet::mtu(id, flow, 0);
                p.rank = 1 + id % 64;
                s.enqueue(0, p);
                id += 1;
                black_box(s.dequeue(0));
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    shaper_stamp_and_release,
    hclock_per_packet,
    pfabric_per_packet
);
criterion_main!(benches);
