//! Hot-path microbenchmarks of the §5.2 queue contenders — the per-packet
//! costs ISSUE/ROADMAP track across PRs: the cFFS `dequeue_min` word-descent
//! and the approximate queue's estimator hit and miss paths.
//!
//! Scenarios are chosen so each benchmark isolates one path:
//!
//! * `cffs_churn` / `hffs_churn` — one random enqueue + one `dequeue_min`
//!   per iteration at steady ~20k occupancy over 10k buckets: the two-level
//!   FFS descent plus bitmap maintenance.
//! * `approx_hit` — dense occupancy (every bucket ≥ 3 packets), so the
//!   curvature estimate always lands on an occupied bucket: the paper's
//!   O(1) hit path with no fallback search.
//! * `approx_miss` — sparse random occupancy (~25%), so lookups routinely
//!   miss and pay the occupancy-bitmap fallback search.
//! * `cffs_drain_single` / `cffs_drain_batched` — refill 32 random ranks
//!   then drain them one `dequeue_min` at a time vs one `dequeue_batch`
//!   call: what batch amortization of the descent is worth.
//! * `sp_pifo_churn` / `rifo_churn` — the same steady-churn workload as
//!   `cffs_churn` on the related-work adaptive backends: SP-PIFO's
//!   bounds scan + push-up/push-down, RIFO's range mapping + hierarchical
//!   bitmap descent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use eiffel_core::{
    ApproxGradientQueue, CffsQueue, HierFfsQueue, RankedQueue, RifoQueue, SpPifoQueue,
};
use eiffel_sim::SplitMix64;

const NB: usize = 10_000;
const PRELOAD: usize = 20_000;

fn tune(group: &mut criterion::BenchmarkGroup<'_>) {
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);
}

/// FFS-descent churn: one random enqueue + one dequeue per iteration.
fn ffs_descent(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_hot_paths");
    tune(&mut group);
    group.bench_function(BenchmarkId::from_parameter("cffs_churn"), |b| {
        let mut q: CffsQueue<u64> = CffsQueue::new(NB, 1, 0);
        let mut rng = SplitMix64::new(0x51);
        for _ in 0..PRELOAD {
            q.enqueue(rng.next_below(NB as u64), 0).expect("in range");
        }
        b.iter(|| {
            q.enqueue(black_box(rng.next_below(NB as u64)), 0)
                .expect("in range");
            black_box(q.dequeue_min());
        });
    });
    group.bench_function(BenchmarkId::from_parameter("hffs_churn"), |b| {
        let mut q: HierFfsQueue<u64> = HierFfsQueue::new(NB, 1);
        let mut rng = SplitMix64::new(0x52);
        for _ in 0..PRELOAD {
            q.enqueue(rng.next_below(NB as u64), 0).expect("in range");
        }
        b.iter(|| {
            q.enqueue(black_box(rng.next_below(NB as u64)), 0)
                .expect("in range");
            black_box(q.dequeue_min());
        });
    });
    group.finish();
}

/// Approximate-queue estimator paths: hit (dense) and miss (sparse).
fn approx_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_hot_paths");
    tune(&mut group);
    group.bench_function(BenchmarkId::from_parameter("approx_hit"), |b| {
        // Dense fill: every bucket holds 4 packets, so the estimate is exact
        // and always lands occupied. The iter pair re-enqueues the dequeued
        // rank, keeping occupancy dense forever.
        let nb = 8_192;
        let mut q: ApproxGradientQueue<u64> = ApproxGradientQueue::new(nb, 1);
        for pass in 0..4u64 {
            for r in 0..nb as u64 {
                q.enqueue(r, pass).expect("in range");
            }
        }
        b.iter(|| {
            let (r, v) = q.dequeue_min().expect("never drained");
            q.enqueue(black_box(r), v).expect("in range");
        });
    });
    group.bench_function(BenchmarkId::from_parameter("approx_miss"), |b| {
        // Sparse random occupancy (~25% of 8k buckets, one packet each):
        // the estimate routinely lands on an empty bucket and pays the
        // fallback search.
        let nb = 8_192u64;
        let mut q: ApproxGradientQueue<u64> = ApproxGradientQueue::new(nb as usize, 1);
        let mut rng = SplitMix64::new(0x53);
        for _ in 0..nb / 4 {
            q.enqueue(rng.next_below(nb), 0).expect("in range");
        }
        b.iter(|| {
            q.enqueue(black_box(rng.next_below(nb)), 0)
                .expect("in range");
            black_box(q.dequeue_min());
        });
    });
    group.finish();
}

/// Batched vs single-step drain of the same 32-packet refill.
fn batched_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_hot_paths");
    tune(&mut group);
    group.bench_function(BenchmarkId::from_parameter("cffs_drain_single"), |b| {
        let mut q: CffsQueue<u64> = CffsQueue::new(NB, 1, 0);
        let mut rng = SplitMix64::new(0x54);
        b.iter(|| {
            for _ in 0..32 {
                q.enqueue(rng.next_below(NB as u64), 0).expect("in range");
            }
            for _ in 0..32 {
                black_box(q.dequeue_min());
            }
        });
    });
    group.bench_function(BenchmarkId::from_parameter("cffs_drain_batched"), |b| {
        let mut q: CffsQueue<u64> = CffsQueue::new(NB, 1, 0);
        let mut rng = SplitMix64::new(0x54);
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(32);
        b.iter(|| {
            for _ in 0..32 {
                q.enqueue(rng.next_below(NB as u64), 0).expect("in range");
            }
            out.clear();
            q.dequeue_batch(32, &mut out);
            black_box(out.len());
        });
    });
    group.finish();
}

/// Steady churn on the related-work adaptive backends.
fn adaptive_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_hot_paths");
    tune(&mut group);
    group.bench_function(BenchmarkId::from_parameter("sp_pifo_churn"), |b| {
        let mut q: SpPifoQueue<u64> = SpPifoQueue::new(32);
        let mut rng = SplitMix64::new(0x55);
        for _ in 0..PRELOAD {
            q.enqueue(rng.next_below(NB as u64), 0).expect("unbounded");
        }
        b.iter(|| {
            q.enqueue(black_box(rng.next_below(NB as u64)), 0)
                .expect("unbounded");
            black_box(q.dequeue_min());
        });
    });
    group.bench_function(BenchmarkId::from_parameter("rifo_churn"), |b| {
        let mut q: RifoQueue<u64> = RifoQueue::new(NB);
        let mut rng = SplitMix64::new(0x56);
        for _ in 0..PRELOAD {
            q.enqueue(rng.next_below(NB as u64), 0).expect("unbounded");
        }
        b.iter(|| {
            q.enqueue(black_box(rng.next_below(NB as u64)), 0)
                .expect("unbounded");
            black_box(q.dequeue_min());
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    ffs_descent,
    approx_paths,
    batched_drain,
    adaptive_churn
);
criterion_main!(benches);
