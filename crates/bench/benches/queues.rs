//! Criterion microbenchmarks of the core integer priority queues —
//! the quantitative backbone of §5.2 ("bucketed priority queues perform 6x
//! better [than comparison-based ones] in most cases"; "the approximate
//! queue can outperform FFS-based queues by up to 9%").
//!
//! Each benchmark measures a steady-state enqueue+dequeue pair on a queue
//! pre-loaded to a fixed occupancy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use eiffel_core::{
    ApproxGradientQueue, BucketHeapQueue, CffsQueue, HeapPq, HierFfsQueue, RankedQueue, TreePq,
};
use eiffel_sim::SplitMix64;

const NB: usize = 10_000;
const PRELOAD: usize = 20_000;

type QueueFactory = Box<dyn Fn() -> Box<dyn RankedQueue<u64>>>;

fn preload(q: &mut dyn RankedQueue<u64>, rng: &mut SplitMix64) {
    for _ in 0..PRELOAD {
        q.enqueue(rng.next_below(NB as u64), 0).expect("in range");
    }
}

/// One enqueue + one dequeue per iteration at constant occupancy.
fn churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_enq_deq");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);
    let contenders: Vec<(&str, QueueFactory)> = vec![
        ("cffs", Box::new(|| Box::new(CffsQueue::new(NB, 1, 0)))),
        ("hffs", Box::new(|| Box::new(HierFfsQueue::new(NB, 1)))),
        (
            "approx",
            Box::new(|| Box::new(ApproxGradientQueue::new(NB, 1))),
        ),
        (
            "bucket_heap",
            Box::new(|| Box::new(BucketHeapQueue::new(NB, 1))),
        ),
        ("binary_heap", Box::new(|| Box::new(HeapPq::new()))),
        ("btree", Box::new(|| Box::new(TreePq::new()))),
    ];
    for (name, make) in contenders {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut q = make();
            let mut rng = SplitMix64::new(42);
            preload(q.as_mut(), &mut rng);
            b.iter(|| {
                let r = rng.next_below(NB as u64);
                q.enqueue(black_box(r), 0).expect("in range");
                black_box(q.dequeue_min());
            });
        });
    }
    group.finish();
}

/// Pure min-find cost: peek on a loaded queue.
fn peek(c: &mut Criterion) {
    let mut group = c.benchmark_group("peek_min");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);
    let contenders: Vec<(&str, QueueFactory)> = vec![
        ("cffs", Box::new(|| Box::new(CffsQueue::new(NB, 1, 0)))),
        (
            "approx",
            Box::new(|| Box::new(ApproxGradientQueue::new(NB, 1))),
        ),
        (
            "bucket_heap",
            Box::new(|| Box::new(BucketHeapQueue::new(NB, 1))),
        ),
        ("btree", Box::new(|| Box::new(TreePq::new()))),
    ];
    for (name, make) in contenders {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut q = make();
            let mut rng = SplitMix64::new(43);
            preload(q.as_mut(), &mut rng);
            b.iter(|| black_box(q.peek_min_rank()));
        });
    }
    group.finish();
}

/// Timer-wheel style: enqueue a moving-rank element then drain-to-time —
/// the shaping workload shape (cFFS's home turf).
fn moving_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("moving_window_shaper");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(30);
    group.bench_function("cffs_20k_buckets", |b| {
        let mut q: CffsQueue<u64> = CffsQueue::new(20_000, 100_000, 0);
        let mut ts = 0u64;
        let mut out = 0u64;
        b.iter(|| {
            ts += 479; // ~2 Mpps of timestamps moving forward
            q.enqueue(black_box(ts), 0).expect("clamps");
            if q.len() > 4_096 {
                out += 1;
                black_box(q.dequeue_min());
            }
        });
        black_box(out);
    });
    group.finish();
}

criterion_group!(benches, churn, peek, moving_window);
criterion_main!(benches);
