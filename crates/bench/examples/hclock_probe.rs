//! Single-cell hClock probe for profiling the Figure 12 hot path.
//!
//! Runs one `(scheduler, flows, aggregate-limit)` cell of Figure 12 and
//! prints the achieved rate — the minimal reproducer for `perf`/before-after
//! work on `HClockEiffel` and `CffsQueue` (see EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p eiffel-bench --example hclock_probe -- \
//!     eiffel 50000 200000 1000   # scheduler flows agg_mbps duration_ms
//! ```

use std::time::Duration;

use eiffel_bench::runners;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("eiffel");
    let parse = |i: usize, default: u64| -> u64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let flows = parse(1, 50_000) as usize;
    let agg_mbps = parse(2, 200_000);
    let dur = Duration::from_millis(parse(3, 1_000));
    let mbps = runners::hclock_max_rate(which, flows, agg_mbps, 1_500, 1, dur);
    let pps = mbps * 1e6 / (1_500.0 * 8.0);
    println!("{which} flows={flows} agg={agg_mbps}Mbps -> {mbps:.0} Mbps ({pps:.0} pps)");
}
