//! Drain-rate comparison at the paper's native approximate-queue scale
//! (≤ 48·α buckets, where the f64 curvature is exact end to end).
use eiffel_bench::microbench::{drain_rate_packets_per_bucket, QueueUnderTest};
use std::time::Duration;

fn main() {
    for nb in [523usize, 768] {
        for kind in [
            QueueUnderTest::Approx,
            QueueUnderTest::Cffs,
            QueueUnderTest::BucketHeap,
        ] {
            let r = drain_rate_packets_per_bucket(kind, nb, 1, 1, Duration::from_millis(300));
            println!("nb={nb} {:>7}: {:.2} Mpps", kind.name(), r.mpps);
        }
    }
}
