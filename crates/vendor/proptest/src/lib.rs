//! Offline shim of the [proptest](https://crates.io/crates/proptest)
//! property-testing harness, exposing the API subset this workspace uses.
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-test RNG (seeded from the test's module path and
//! name, so failures reproduce run-to-run) and failing cases are **not
//! shrunk** — the assertion message carries the raw failing input via the
//! normal `assert!` panic instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG for one test case from the test identity and index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of values of one type.
///
/// Unlike the real proptest there is no shrinking: a strategy is just a
/// deterministic sampling function over a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased alternatives ([`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> Union<V> {
    /// Builds a union; weights must sum to a non-zero value.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_below(self.total as u64) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.next_below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128) + 1;
                if span > u64::MAX as u128 {
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.next_below(span as u64) as $t)
                }
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).sample(rng)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary {
    /// Draws an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Case-count multiplier from the `PROPTEST_CASES_MULT` environment
/// variable (default 1). CI's chaos job sets it to run every property at
/// elevated seed counts without editing per-test configs; unset or
/// unparsable values mean "no scaling". A multiplier (not an absolute
/// count) preserves each test's relative weighting.
pub fn cases_multiplier() -> u32 {
    std::env::var("PROPTEST_CASES_MULT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&m| m > 0)
        .unwrap_or(1)
}

/// Per-run configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Strategies for variable-length collections.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Length bounds for [`vec`](fn@vec): built from a `usize` or a `Range<usize>`.
        pub struct SizeRange {
            min: usize,
            max: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        /// Strategy yielding `Vec`s of `element` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Output of [`vec`](fn@vec).
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min) as u64;
                let len = self.size.min + rng.next_below(span.max(1)) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Weighted (`3 => strat`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

/// `assert!` under a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// `assert_eq!` under a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.cases.saturating_mul($crate::cases_multiplier());
                for case in 0..cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}
