//! Offline shim of the [criterion](https://crates.io/crates/criterion)
//! benchmark harness, exposing the API subset this workspace uses.
//!
//! It is a *real* measuring harness, not a no-op: each `Bencher::iter`
//! call warms up for the configured duration, calibrates an iteration
//! count per sample from the warm-up throughput, takes `sample_size`
//! timed samples, and reports `[low mid high]` nanoseconds per iteration
//! in criterion's familiar output shape. Environment knob:
//! `CRITERION_SHIM_FAST=1` divides warm-up/measurement times by 10
//! (used by smoke tests so `cargo test` stays quick).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level benchmark driver, handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

/// One finished measurement: identifier plus ns/iter statistics.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Fastest sample, ns per iteration.
    pub low_ns: f64,
    /// Median sample, ns per iteration.
    pub median_ns: f64,
    /// Slowest sample, ns per iteration.
    pub high_ns: f64,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            sample_size: 100,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    /// Drains every result recorded so far (shim extension; the real
    /// criterion persists to `target/criterion` instead).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// A group of benchmarks sharing warm-up/measurement configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how long each benchmark warms up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the total time budget spread across the samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets per-iteration throughput metadata (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Measures one benchmark routine.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.0
        } else {
            format!("{}/{}", self.name, id.0)
        };
        let fast = std::env::var_os("CRITERION_SHIM_FAST").is_some_and(|v| v != "0");
        let scale = if fast { 10 } else { 1 };
        let mut bencher = Bencher {
            warm_up: self.warm_up / scale,
            measurement: self.measurement / scale,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples_ns;
        if samples.is_empty() {
            // Routine never called `iter`; record a zero result rather than panic.
            samples.push(0.0);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            id: full,
            low_ns: samples[0],
            median_ns: samples[samples.len() / 2],
            high_ns: samples[samples.len() - 1],
        };
        println!(
            "{:<44} time: [{} {} {}]",
            result.id,
            fmt_ns(result.low_ns),
            fmt_ns(result.median_ns),
            fmt_ns(result.high_ns),
        );
        self.criterion.results.push(result);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{:.2} ns", ns)
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Per-iteration throughput metadata (accepted for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to each benchmark routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times the routine: warm-up, calibration, then `sample_size` samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, counting iterations to calibrate the sample batch size.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(0.5);
        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / per_iter_ns).ceil() as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

/// Declares a function that runs the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` to run the listed `criterion_group!` functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
