//! Property: packet conservation under chaos. For any finite workload,
//! any shaping qdisc, any shard count, any admission policy, and any
//! seeded fault storm, every minted packet ends the run accounted for:
//!
//! ```text
//! flows × pkts_per_flow = transmitted + admission_dropped + evicted
//! ```
//!
//! with zero backlog (the run ends by draining). The identity is checked
//! twice: here, from the report totals, and *inside* the event loop —
//! `sharded::drive` re-audits `emitted = delivered + dropped + in-flight`
//! at every fault-window boundary it crosses (`ShardedReport::audits`
//! counts those), so a violation pins the exact fault edge that caused
//! it rather than surfacing at the end of the run.
//!
//! Flow-cap drops sit outside the identity by design: a capped arrival is
//! refused *before* the packet is minted and the source retries it, so it
//! consumes no conservation budget — the cap changes timing, not totals.

use eiffel_chaos::{AdmitPolicy, FaultFamily, FaultPlan};
use eiffel_qdisc::{
    run_sharded, CarouselQdisc, EiffelQdisc, FqQdisc, HostConfig, ShaperQdisc, ShardedConfig,
};
use eiffel_sim::{Rate, SECOND};
use proptest::prelude::*;

/// All five fault families — the virtual clock treats `CompletionLoss`
/// as a no-op (there is no wire to lose completions on) but must still
/// cross its boundaries without miscounting.
const ALL_FAMILIES: [FaultFamily; 5] = [
    FaultFamily::Stall,
    FaultFamily::TimerJitter,
    FaultFamily::SlowConsumer,
    FaultFamily::RingSqueeze,
    FaultFamily::CompletionLoss,
];

fn run_and_audit<Q: ShaperQdisc>(
    mk: impl FnMut(usize) -> Q,
    cfg: &ShardedConfig,
    pkts_per_flow: u64,
    label: &str,
) {
    let rep = run_sharded(mk, cfg);
    let minted = cfg.host.flows as u64 * pkts_per_flow;
    assert_eq!(
        rep.transmitted + rep.admission_dropped + rep.evicted,
        minted,
        "{label}: conservation over report totals \
         (tx={} adm_drop={} evict={} of {minted})",
        rep.transmitted,
        rep.admission_dropped,
        rep.evicted
    );
    assert!(rep.audits >= 1, "{label}: end-of-run audit must have run");
    if matches!(cfg.chaos.admit, AdmitPolicy::Unlimited) {
        assert_eq!(rep.admission_dropped, 0, "{label}: nothing to refuse");
        assert_eq!(rep.evicted, 0, "{label}");
        assert_eq!(rep.ecn_marked, 0, "{label}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The full cross-product: qdisc × shards × flow cap × admission
    /// policy × fault intensity, all on one seeded storm.
    #[test]
    fn chaos_runs_conserve_packets(
        flows in 3usize..16,
        shards in 1usize..5,
        pkts in 4u64..24,
        cap_sel in 0u32..3,
        policy_sel in 0usize..4,
        tenths in 0u32..9, // storm intensity × 10; 0 = no faults
        seed in 0u64..1_000,
    ) {
        let host = HostConfig {
            flows,
            aggregate: Rate::mbps(12 * flows as u64),
            duration: SECOND / 8,
            bin: SECOND / 20,
            tsq_budget: 2,
            batch: 4,
        };
        let mut cfg = ShardedConfig::new(shards, host);
        cfg.pkts_per_flow = Some(pkts);
        cfg.flow_cap = (cap_sel > 0).then_some(cap_sel);
        cfg.chaos.admit = match policy_sel {
            0 => AdmitPolicy::Unlimited,
            1 => AdmitPolicy::TailDrop { cap: 3 },
            2 => AdmitPolicy::PriorityDrop { cap: 3 },
            _ => AdmitPolicy::EcnMark { cap: 4, mark_at: 2 },
        };
        cfg.chaos.plan = FaultPlan::storm(
            seed,
            shards,
            SECOND / 16,
            f64::from(tenths) / 10.0,
            &ALL_FAMILIES,
        );

        run_and_audit(
            |_| EiffelQdisc::new(1 << 14, 100_000),
            &cfg,
            pkts,
            "eiffel",
        );
        run_and_audit(
            |_| CarouselQdisc::new(1 << 16, 20_000),
            &cfg,
            pkts,
            "carousel",
        );
        run_and_audit(|_| FqQdisc::new(), &cfg, pkts, "fq");
    }

    /// With no faults and no admission pressure, the chaos plumbing must
    /// be invisible: zero drops, zero marks, zero deferred emissions.
    #[test]
    fn noop_chaos_changes_nothing(
        flows in 3usize..12,
        shards in 1usize..4,
        pkts in 4u64..16,
    ) {
        let host = HostConfig {
            flows,
            aggregate: Rate::mbps(24 * flows as u64),
            duration: SECOND / 8,
            bin: SECOND / 20,
            tsq_budget: 2,
            batch: 4,
        };
        let mut cfg = ShardedConfig::new(shards, host);
        cfg.pkts_per_flow = Some(pkts);
        let rep = run_sharded(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        prop_assert_eq!(rep.transmitted, flows as u64 * pkts);
        prop_assert_eq!(rep.admission_dropped, 0);
        prop_assert_eq!(rep.ecn_marked, 0);
        prop_assert_eq!(rep.evicted, 0);
        prop_assert_eq!(rep.ring_full_retries, 0);
        prop_assert_eq!(rep.dropped, 0);
    }
}
