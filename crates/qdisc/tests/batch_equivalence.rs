//! Property: `ShaperQdisc::dequeue_batch` releases the exact same packet
//! sequence as repeated `ShaperQdisc::dequeue` — PR 4's queue-layer proof
//! lifted one layer up, covering the qdisc overrides (Eiffel's cFFS
//! due-drain, Carousel's staged-slot drain) and the default loop (FQ).

use eiffel_qdisc::{CarouselQdisc, EiffelQdisc, FqQdisc, ShaperQdisc};
use eiffel_sim::{FlowId, Nanos, Packet};
use proptest::prelude::*;

/// Drive mirrored instances through the same arrival schedule; at every
/// probe instant, one side drains through `dequeue_batch` with varying
/// batch sizes, the other through repeated `dequeue`.
fn assert_batch_matches_single<Q: ShaperQdisc>(
    mut batched: Q,
    mut single: Q,
    arrivals: &[(Nanos, FlowId, u64)],
    batches: &[usize],
    step: Nanos,
) {
    let mut ai = 0usize;
    let mut now: Nanos = 0;
    let mut round = 0usize;
    let mut out: Vec<Packet> = Vec::new();
    let mut next_id = 0u64;
    loop {
        // Deliver everything that arrives up to `now`.
        while ai < arrivals.len() && arrivals[ai].0 <= now {
            let (at, flow, rate) = arrivals[ai];
            let pkt = Packet::mtu(next_id, flow, at);
            next_id += 1;
            batched.enqueue(at, pkt.clone(), rate);
            single.enqueue(at, pkt, rate);
            ai += 1;
        }
        // Drain the due backlog both ways, cross-checking batch by batch.
        loop {
            let max = batches[round % batches.len()];
            round += 1;
            out.clear();
            let got = batched.dequeue_batch(now, max, &mut out);
            assert_eq!(got, out.len(), "reported count matches the append");
            assert!(got <= max, "overfilled batch");
            for p in &out {
                assert_eq!(Some(p.clone()), single.dequeue(now), "at t={now}");
            }
            if got < max {
                assert!(
                    single.dequeue(now).is_none(),
                    "batch stopped early at t={now}"
                );
                break;
            }
        }
        assert_eq!(batched.len(), single.len());
        if ai >= arrivals.len() && batched.is_empty() {
            break;
        }
        now += step;
        assert!(now < 1_000 * step + 10_000_000_000, "drain must converge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random arrival schedules, pacing rates, probe steps, batch sizes.
    #[test]
    fn qdisc_dequeue_batch_matches_repeated_dequeue(
        arrivals in prop::collection::vec(
            (0u64..2_000_000, 0u32..12, 1u64..5), 1..120),
        batches in prop::collection::vec(1usize..33, 1..20),
        step in prop_oneof![Just(100_000u64), Just(250_000), Just(1_000_000)],
    ) {
        // Sort arrivals by time; scale the rate selector to real rates
        // (12..60 Mbps ⇒ 0.2..1 ms per MTU, commensurate with the step).
        let mut arrivals: Vec<(Nanos, FlowId, u64)> = arrivals
            .into_iter()
            .map(|(t, f, r)| (t, f, r * 12_000_000))
            .collect();
        arrivals.sort();
        assert_batch_matches_single(
            EiffelQdisc::new(1 << 12, 100_000),
            EiffelQdisc::new(1 << 12, 100_000),
            &arrivals,
            &batches,
            step,
        );
        assert_batch_matches_single(
            CarouselQdisc::new(1 << 14, 50_000),
            CarouselQdisc::new(1 << 14, 50_000),
            &arrivals,
            &batches,
            step,
        );
        assert_batch_matches_single(
            FqQdisc::new(),
            FqQdisc::new(),
            &arrivals,
            &batches,
            step,
        );
    }

    /// `enqueue_batch` must admit a burst exactly as the enqueue loop
    /// would: same stamps, same release schedule (the default is that loop
    /// verbatim — this pins the contract any future override must keep).
    #[test]
    fn qdisc_enqueue_batch_matches_enqueue_loop(
        bursts in prop::collection::vec(
            prop::collection::vec(0u32..8, 1..12), 1..12),
        rate_sel in 1u64..5,
        gap in prop_oneof![Just(50_000u64), Just(400_000)],
    ) {
        let rate = rate_sel * 12_000_000;
        fn check<Q: ShaperQdisc>(
            mut via_batch: Q,
            mut via_loop: Q,
            bursts: &[Vec<FlowId>],
            rate: u64,
            gap: Nanos,
        ) {
            let mut next_id = 0u64;
            let mut now: Nanos = 0;
            let mut staged: Vec<Packet> = Vec::new();
            for flows in bursts {
                staged.clear();
                for &f in flows {
                    let p = Packet::mtu(next_id, f, now);
                    next_id += 1;
                    via_loop.enqueue(now, p.clone(), rate);
                    staged.push(p);
                }
                via_batch.enqueue_batch(now, &mut staged, rate);
                assert!(staged.is_empty(), "enqueue_batch drains its input");
                assert_eq!(via_batch.len(), via_loop.len());
                now += gap;
            }
            // Identical stamps ⇒ identical release schedules.
            loop {
                let (a, b) = (via_batch.dequeue(now), via_loop.dequeue(now));
                assert_eq!(a, b, "release at t={now}");
                if a.is_none() {
                    if via_batch.is_empty() {
                        break;
                    }
                    now += gap;
                }
                assert!(now < 1_000_000_000_000, "drain must converge");
            }
        }
        check(
            EiffelQdisc::new(1 << 12, 100_000),
            EiffelQdisc::new(1 << 12, 100_000),
            &bursts,
            rate,
            gap,
        );
        check(
            CarouselQdisc::new(1 << 14, 50_000),
            CarouselQdisc::new(1 << 14, 50_000),
            &bursts,
            rate,
            gap,
        );
        check(FqQdisc::new(), FqQdisc::new(), &bursts, rate, gap);
    }
}
