//! Contention-ordering property of the threaded runtime: with real OS
//! threads racing over the SPSC rings, every flow's release sequence must
//! still be **complete** (exactly `pkts_per_flow` packets, none lost or
//! duplicated) and **monotonic** (wall release times non-decreasing,
//! per-flow packet ids strictly increasing — per-flow FIFO survives the
//! ring, the qdisc, and the completion path).
//!
//! Runs 2–8 shards over seeded random flow mixes for ≥16 seeds per
//! discipline family, with and without the flow cap (cap drops are
//! scheduling-dependent in wall time, so only their *bookkeeping* is
//! asserted, never their count).

use eiffel_qdisc::{
    run_threaded_traced, CarouselQdisc, EiffelQdisc, FqQdisc, HostConfig, ShaperQdisc,
    ThreadedConfig,
};
use eiffel_sim::{Rate, SECOND};
use proptest::prelude::*;

fn host(flows: usize, tsq_budget: u32, batch: usize) -> HostConfig {
    HostConfig {
        flows,
        // 60 Mbps per flow → one MTU every 200 µs per flow: short runs,
        // real pacing.
        aggregate: Rate::mbps(60 * flows as u64),
        duration: SECOND, // ignored by the threaded runtime
        bin: SECOND / 20,
        tsq_budget,
        batch,
    }
}

fn assert_ordered_and_complete<Q: ShaperQdisc + Send>(
    mk: impl FnMut(usize) -> Q,
    cfg: &ThreadedConfig,
    label: &str,
) {
    let pkts = cfg.pkts_per_flow.expect("ordering needs a finite workload");
    let (r, tr) = run_threaded_traced(mk, cfg);
    assert!(!r.timed_out, "{label}: drain run hit the wall limit");
    assert_eq!(
        r.transmitted,
        pkts * cfg.host.flows as u64,
        "{label}: total released"
    );
    assert_eq!(r.emitted, r.transmitted, "{label}: nothing stuck in rings");
    assert_eq!(r.dropped as usize, tr.drops.len(), "{label}: drop records");
    for flow in 0..cfg.host.flows as u32 {
        let releases = tr.flow_releases(flow);
        assert_eq!(
            releases.len(),
            pkts as usize,
            "{label}: flow {flow} incomplete"
        );
        assert!(
            releases.windows(2).all(|w| w[0].0 <= w[1].0),
            "{label}: flow {flow} wall release times went backwards"
        );
        let ids = tr.flow_release_ids(flow);
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "{label}: flow {flow} per-flow FIFO violated (ids {ids:?})"
        );
    }
}

proptest! {
    // 18 seeded cases ≥ the issue's 16; each runs all three disciplines.
    #![proptest_config(ProptestConfig::with_cases(18))]

    #[test]
    fn per_flow_releases_are_monotonic_and_complete_under_contention(
        flows in 4usize..24,
        shards in 2usize..9,
        pkts in 3u64..14,
        tsq_budget in 1u32..4,
        batch in prop_oneof![Just(1usize), Just(4), Just(16)],
        with_cap in prop_oneof![Just(false), Just(true)],
    ) {
        let mut cfg = ThreadedConfig::finite(shards, host(flows, tsq_budget, batch), pkts);
        if with_cap {
            // A cap at 1 under a larger budget binds hard on real threads.
            cfg.flow_cap = Some(1);
        }
        assert_ordered_and_complete(
            |_| EiffelQdisc::new(1 << 14, 100_000),
            &cfg,
            "eiffel",
        );
        assert_ordered_and_complete(
            |_| CarouselQdisc::new(1 << 16, 20_000),
            &cfg,
            "carousel",
        );
        assert_ordered_and_complete(|_| FqQdisc::new(), &cfg, "fq");
    }
}

/// Tiny rings force constant full-ring backpressure on the producer and
/// full completion rings on the shards — the deadlock-freedom claim under
/// the worst plumbing geometry.
#[test]
fn tiny_rings_backpressure_without_deadlock() {
    let mut cfg = ThreadedConfig::finite(4, host(12, 3, 2), 10);
    cfg.ring_capacity = 2;
    let (r, tr) = run_threaded_traced(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
    assert!(!r.timed_out);
    assert_eq!(r.transmitted, 12 * 10);
    for flow in 0..12u32 {
        assert_eq!(tr.flow_release_ids(flow).len(), 10);
    }
    // Capacity-2 rings under a 3-packet TSQ budget must actually have
    // exercised the backpressure path we claim to survive.
    assert!(
        r.ring_full_retries > 0,
        "rings never filled — test is vacuous"
    );
}
